//! Fault-injection integration tests: the paper's resilience story end to
//! end on the simulator (Fig 11, §2.2, §5.2–§5.4).

use consensus_inside::manycore_sim::{Fault, Profile, SimBuilder};
use consensus_inside::onepaxos::multipaxos::{self, MultiPaxosNode};
use consensus_inside::onepaxos::onepaxos::{OnePaxosNode, Timing};
use consensus_inside::onepaxos::twopc::TwoPcNode;
use consensus_inside::onepaxos::{ClusterConfig, NodeId};

fn cfg(m: &[NodeId], me: NodeId) -> ClusterConfig {
    ClusterConfig::new(m.to_vec(), me)
}

const DUR: u64 = 2_000_000_000;
const FAULT_AT: u64 = 700_000_000;

fn paced_onepaxos(faults: &[Fault]) -> Vec<f64> {
    let timing = Timing {
        tick: 1_000_000,
        io_timeout: 40_000_000,
        suspect_after: 80_000_000,
    };
    let mut b = SimBuilder::new(Profile::opteron8(), move |m: &[NodeId], me| {
        OnePaxosNode::with_timing(cfg(m, me), timing)
    })
    .replicas(3)
    .clients(5)
    .think(2_000_000)
    .client_timeout(40_000_000)
    .duration(DUR);
    for f in faults {
        b = b.fault(*f);
    }
    b.run().timeline.rates().map(|(_, v)| v).collect()
}

fn tail_max(rates: &[f64]) -> f64 {
    rates.iter().rev().take(15).copied().fold(0.0, f64::max)
}

fn head_max(rates: &[f64]) -> f64 {
    rates.iter().take(50).copied().fold(0.0, f64::max)
}

#[test]
fn onepaxos_recovers_from_slow_leader() {
    let rates = paced_onepaxos(&[Fault {
        at: FAULT_AT,
        core: 0,
        slowdown: 5000.0,
    }]);
    let before = head_max(&rates);
    let after = tail_max(&rates);
    assert!(before > 2_000.0, "steady state before fault: {before}");
    assert!(
        after > before * 0.9,
        "1Paxos must recover to the same level: {after} vs {before}"
    );
    // And there is a visible gap during the change.
    let dip = rates[70..90].iter().copied().fold(f64::INFINITY, f64::min);
    assert!(dip < before * 0.2, "leader change dip: {dip}");
}

#[test]
fn onepaxos_survives_slow_acceptor_via_backup() {
    let rates = paced_onepaxos(&[Fault {
        at: FAULT_AT,
        core: 1, // the active acceptor
        slowdown: 5000.0,
    }]);
    let after = tail_max(&rates);
    assert!(
        after > 2_000.0,
        "backup acceptor must restore throughput: {after}"
    );
}

#[test]
fn onepaxos_blocks_on_double_failure_until_one_recovers() {
    // §5.4: leader + active acceptor slow simultaneously → liveness (not
    // safety) suffers until either responds again.
    let recover_at = FAULT_AT + 600_000_000;
    let rates = paced_onepaxos(&[
        Fault {
            at: FAULT_AT,
            core: 0,
            slowdown: 5000.0,
        },
        Fault {
            at: FAULT_AT,
            core: 1,
            slowdown: 5000.0,
        },
        Fault {
            at: recover_at,
            core: 1,
            slowdown: 1.0,
        },
    ]);
    // Blocked window: (fault, recover) — allow slack for detection.
    let blocked = &rates[(FAULT_AT / 10_000_000 + 15) as usize..(recover_at / 10_000_000) as usize];
    let max_blocked = blocked.iter().copied().fold(0.0f64, f64::max);
    assert!(
        max_blocked < 500.0,
        "no progress while both are slow: {max_blocked}"
    );
    let after = tail_max(&rates);
    assert!(
        after > 2_000.0,
        "progress resumes once the acceptor responds: {after}"
    );
}

#[test]
fn multipaxos_recovers_but_twopc_does_not() {
    let mp_timing = multipaxos::Timing {
        tick: 1_000_000,
        suspect_after: 80_000_000,
    };
    let fault = Fault {
        at: FAULT_AT,
        core: 0,
        slowdown: 5000.0,
    };
    let mp = SimBuilder::new(Profile::opteron8(), move |m: &[NodeId], me| {
        MultiPaxosNode::with_timing(cfg(m, me), mp_timing)
    })
    .replicas(3)
    .clients(5)
    .think(2_000_000)
    .client_timeout(40_000_000)
    .duration(DUR)
    .fault(fault)
    .run();
    let mp_rates: Vec<f64> = mp.timeline.rates().map(|(_, v)| v).collect();
    assert!(
        tail_max(&mp_rates) > head_max(&mp_rates) * 0.9,
        "Multi-Paxos (non-blocking) must also recover"
    );

    let two = SimBuilder::new(Profile::opteron8(), |m: &[NodeId], me| {
        TwoPcNode::new(cfg(m, me))
    })
    .replicas(3)
    .clients(5)
    .think(2_000_000)
    .client_timeout(40_000_000)
    .duration(DUR)
    .fault(fault)
    .run();
    let two_rates: Vec<f64> = two.timeline.rates().map(|(_, v)| v).collect();
    assert!(
        tail_max(&two_rates) < head_max(&two_rates) * 0.2,
        "2PC (blocking) must stay down: {} vs {}",
        tail_max(&two_rates),
        head_max(&two_rates)
    );
}

#[test]
fn slow_backup_acceptor_does_not_affect_onepaxos() {
    // The defining 1Paxos property: backups are outside the fast path.
    let rates = paced_onepaxos(&[Fault {
        at: FAULT_AT,
        core: 2, // a backup acceptor
        slowdown: 5000.0,
    }]);
    let before = head_max(&rates);
    // No dip at all around the fault.
    let around = &rates[(FAULT_AT / 10_000_000) as usize..(FAULT_AT / 10_000_000 + 20) as usize];
    let min_around = around.iter().copied().fold(f64::INFINITY, f64::min);
    assert!(
        min_around > before * 0.7,
        "slow backup must not dent throughput: {min_around} vs {before}"
    );
}
