//! Chaos soak: the failure-hardened wire layer under a live nemesis.
//!
//! The TCP soak runs the sharded + cross-shard-transaction workload
//! over `.spawn_tcp()` while a nemesis severs client connections and
//! stops/restarts a replica mid-run, asserting per-key safety the whole
//! time; after the nemesis stops, every operation must succeed again
//! (throughput recovery) and `NodeMetrics` must show that links really
//! died and really healed (`reconnects > 0` — no permanently-dead peer
//! pair). A seeded in-process twin drives the same workload through
//! `FaultTransport<MemTransport>` under deterministic drop/delay dice.
//!
//! Safety model (single writer per key): each worker owns a disjoint
//! key and writes `key*1_000_000 + attempt` with a strictly increasing
//! attempt counter. Any read must return a value from that key's
//! attempted set — never another key's encoding, never a value from the
//! future. A put that times out stays "open" (the paper's model: a
//! crash is a *slow* core, so an abandoned request may still linearize
//! later), which is why the check is set-membership rather than
//! naive monotonicity. Cross-shard `txn_put`s ride along on dedicated
//! keys; a txn that times out mid-protocol may leave locks prepared, so
//! the worker stops touching those keys (coordinator recovery is out of
//! scope for the blocking client handle).
//!
//! The nemesis restarts only replica 2 — the OnePaxos backup, whose
//! lost *acceptor* state the leader can re-supply. Its applied state is
//! a different matter: the soak runs with periodic agreed truncation
//! (`truncate_every`), so by the time the backup reboots the log prefix
//! below the watermark is gone and replay can never refill it. The
//! restarted loop closes the hole through snapshot-install catch-up —
//! it probes a peer for a `(snapshot, watermark)` pair at boot and
//! whenever an apply gap persists — and the test asserts it actually
//! *converged*: its local copy of every worker key matches the
//! linearized value once the dust settles. A second, time-capped soak
//! (`mem_soak_*`) restarts the backup continuously and gates on the
//! RSS-proxy gauges (applied log, reply outputs, finished-txn outcomes)
//! staying flat, writing its stats next to `CHAOS_soak.json`.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use consensus_inside::onepaxos::onepaxos::{OnePaxosNode, Timing};
use consensus_inside::onepaxos::{ClusterConfig, NodeId, ShardRouter, TxnOutcome};
use consensus_inside::onepaxos_runtime::{
    ClientHandle, ClusterBuilder, FaultPlan, RetryPolicy, Transport,
};

/// Per-key value encoding: worker key in the high digits, attempt
/// counter in the low — a read returning another key's value (a
/// cross-connection frame mixup) or a never-written value (corruption)
/// is immediately distinguishable.
const KEY_STRIDE: u64 = 1_000_000;

fn one_timing() -> Timing {
    Timing {
        tick: 2_000_000,
        io_timeout: 400_000_000,
        suspect_after: 800_000_000,
    }
}

fn cfg(m: &[NodeId], me: NodeId) -> ClusterConfig {
    ClusterConfig::new(m.to_vec(), me)
}

/// What one worker saw, for the recovery assertions and the soak-stats
/// artifact.
#[derive(Debug, Default)]
struct WorkerReport {
    ops_during_chaos: u64,
    ops_after_chaos: u64,
    timeouts_during_chaos: u64,
    txns_committed: u64,
    txns_abandoned: u64,
    kills_injected: u64,
    safety_checks: u64,
}

/// Checks one read of `key` against the single-writer model: the value
/// must decode to this key's own attempt space and must not come from
/// the future. `None` is only legal before the first acked write.
fn check_read(key: u64, got: Option<u64>, last_attempted: u64, last_acked: u64, ctx: &str) {
    match got {
        None => assert_eq!(
            last_acked, 0,
            "{ctx}: key {key} lost its acked writes (read None after ack {last_acked})"
        ),
        Some(v) => {
            assert_eq!(
                v / KEY_STRIDE,
                key,
                "{ctx}: key {key} returned another key's value {v}"
            );
            let attempt = v % KEY_STRIDE;
            assert!(
                attempt >= 1 && attempt <= last_attempted,
                "{ctx}: key {key} returned unwritten attempt {attempt} (attempted up to {last_attempted})"
            );
        }
    }
}

/// The chaos workload: hammer puts + linearized reads on a private key,
/// fold in cross-shard transactions on dedicated keys, optionally sever
/// this client's own sockets, and assert safety on every reply. After
/// the `chaos` flag clears, run a recovery batch in which *every*
/// operation must succeed.
fn run_worker<M, T>(
    mut c: ClientHandle<M, T>,
    key: u64,
    txn_keys: Option<(u64, u64)>,
    chaos: Arc<AtomicBool>,
    kill_sockets: bool,
) -> WorkerReport
where
    M: Clone + std::fmt::Debug + Send + 'static,
    T: Transport<M>,
{
    c.set_retry_policy(RetryPolicy {
        base: Duration::from_millis(200),
        cap: Duration::from_millis(1600),
        jitter_permille: 250,
        max_attempts: 8,
    });
    let mut report = WorkerReport::default();
    let mut last_attempted: u64 = 0;
    let mut last_acked: u64 = 0;
    let mut txn_seq: u64 = 0;
    let mut txn_alive = txn_keys.is_some();
    let mut iter: u64 = 0;

    while chaos.load(Ordering::Relaxed) {
        iter += 1;
        last_attempted += 1;
        match c.put(key, key * KEY_STRIDE + last_attempted) {
            Ok(prev) => {
                check_read(key, prev, last_attempted - 1, last_acked, "chaos put");
                report.safety_checks += 1;
                report.ops_during_chaos += 1;
                last_acked = last_attempted;
            }
            Err(_) => report.timeouts_during_chaos += 1,
        }
        match c.get(key) {
            Ok(v) => {
                check_read(key, v, last_attempted, last_acked, "chaos get");
                report.safety_checks += 1;
                report.ops_during_chaos += 1;
            }
            Err(_) => report.timeouts_during_chaos += 1,
        }
        if txn_alive && iter.is_multiple_of(5) {
            let (ta, tb) = txn_keys.expect("txn_alive implies keys");
            txn_seq += 1;
            match c.txn_put(&[(ta, txn_seq), (tb, txn_seq)]) {
                Ok(TxnOutcome::Committed) => report.txns_committed += 1,
                Ok(TxnOutcome::Aborted) => {}
                Err(_) => {
                    // Possibly prepared-but-undecided on a subset of
                    // shards: its locks may be orphaned, so these keys
                    // are now off limits for this run.
                    txn_alive = false;
                    report.txns_abandoned += 1;
                }
            }
        }
        if kill_sockets && iter.is_multiple_of(9) {
            c.kill_connection(NodeId((iter / 9 % 3) as u16));
            report.kills_injected += 1;
        }
    }

    // Recovery: the nemesis is gone, so the cluster must serve every
    // operation again — no permanently-dead peer pair, no stuck state.
    for _ in 0..25 {
        last_attempted += 1;
        let prev = c
            .put(key, key * KEY_STRIDE + last_attempted)
            .expect("post-chaos put must commit");
        check_read(key, prev, last_attempted - 1, last_acked, "recovery put");
        last_acked = last_attempted;
        report.ops_after_chaos += 1;
        report.safety_checks += 1;
    }
    let v = c.get(key).expect("post-chaos read must be served");
    check_read(key, v, last_attempted, last_acked, "recovery get");
    report.ops_after_chaos += 1;
    report.safety_checks += 1;
    report
}

/// Two keys owned by different shard groups, drawn from a keyspace
/// disjoint from the put workload.
fn cross_shard_pair(shards: u16, base: u64) -> (u64, u64) {
    let router = ShardRouter::new(shards);
    let a = base;
    let b = (base + 1..)
        .find(|&k| router.route_key(k) != router.route_key(a))
        .expect("some key lands on another shard");
    (a, b)
}

#[test]
fn chaos_soak_over_tcp_with_nemesis() {
    let t = one_timing();
    let shards = 2u16;
    // Relaxed reads stay off for the workers (their `get`s are the
    // linearized safety probes); they exist so the convergence check can
    // ask each replica for its *local* copy afterwards. Truncation makes
    // the restarts honest: the rebooted backup cannot replay the dropped
    // prefix, so rejoining at all proves the snapshot path works.
    let (mut cluster, mut clients) = ClusterBuilder::new(3, move |m: &[NodeId], me| {
        OnePaxosNode::with_timing(cfg(m, me), t).with_relaxed_reads()
    })
    .clients(3)
    .shards(shards)
    .truncate_every(512)
    .spawn_tcp()
    .expect("tcp setup");

    let mut nemesis_client = clients.pop().expect("nemesis client");
    nemesis_client.set_timeout(Duration::from_secs(2));
    let chaos = Arc::new(AtomicBool::new(true));
    let workers: Vec<_> = clients
        .into_iter()
        .enumerate()
        .map(|(w, c)| {
            let chaos = Arc::clone(&chaos);
            let key = (w as u64 + 1) * 10;
            // Only worker 0 runs transactions: its abandoned locks (if
            // any) then cannot interfere with the other worker's keys.
            let txn_keys = (w == 0).then(|| cross_shard_pair(shards, 1_000 + w as u64 * 100));
            std::thread::spawn(move || run_worker(c, key, txn_keys, chaos, true))
        })
        .collect();

    // Nemesis: two rounds of stop + restart of the OnePaxos backup
    // (replica 2), with the workers' own socket kills running the whole
    // time. The restarted process rebinds the same address and rejoins
    // through the reconnect lifecycle. A stop request is a frame like
    // any other — it can be lost across a reconnect gap (here: the
    // nemesis client's own link to the replica died at the *previous*
    // stop and is redialed lazily) — so re-send it until the thread is
    // observably gone before joining.
    let mut restarts = 0u64;
    for round in 0..2 {
        std::thread::sleep(Duration::from_millis(400));
        let deadline = Instant::now() + Duration::from_secs(30);
        while !cluster.replica_finished(2) {
            nemesis_client.stop_replica(NodeId(2));
            assert!(
                Instant::now() < deadline,
                "nemesis round {round}: replica 2 never processed the stop"
            );
            std::thread::sleep(Duration::from_millis(50));
        }
        std::thread::sleep(Duration::from_millis(200));
        cluster.restart_replica(2);
        restarts += 1;
    }
    // Grace for the last restart to knit back in, then end the chaos.
    std::thread::sleep(Duration::from_millis(500));
    chaos.store(false, Ordering::Relaxed);

    let reports: Vec<WorkerReport> = workers.into_iter().map(|w| w.join().unwrap()).collect();

    // Liveness through chaos and full recovery after it.
    for (w, r) in reports.iter().enumerate() {
        assert!(
            r.ops_during_chaos > 0,
            "worker {w} made no progress during chaos: {r:?}"
        );
        assert!(r.ops_after_chaos >= 26, "worker {w} did not recover: {r:?}");
        assert!(r.kills_injected > 0, "worker {w} never pulled a cable");
    }

    // The wire layer really did die and really did heal: every replica
    // that lost a link re-established one.
    let metrics = cluster.metrics();
    let reconnects: u64 = metrics
        .iter()
        .map(|m| m.reconnects.load(Ordering::Relaxed))
        .sum();
    let conn_kills: u64 = metrics
        .iter()
        .map(|m| m.conn_kills.load(Ordering::Relaxed))
        .sum();
    assert!(
        reconnects > 0,
        "nemesis ran but no replica recorded a reconnect (kills {conn_kills})"
    );
    assert!(
        conn_kills > 0,
        "nemesis ran but no replica recorded a killed connection"
    );

    // The restarted backup rejoined *warm*: agreed truncation ran (the
    // prefix it missed is unreplayable), and it installed at least one
    // peer snapshot to get back in.
    let truncations: u64 = metrics
        .iter()
        .map(|m| m.truncations.load(Ordering::Relaxed))
        .sum();
    let snapshots_served: u64 = metrics
        .iter()
        .map(|m| m.snapshots_served.load(Ordering::Relaxed))
        .sum();
    let snapshots_installed = metrics[2].snapshots_installed.load(Ordering::Relaxed);
    assert!(truncations > 0, "agreed truncation never ran");
    assert!(
        snapshots_installed > 0,
        "restarted replica 2 never installed a snapshot (served {snapshots_served})"
    );

    // Convergence: the restarted replica's *local* applied state agrees
    // with the linearized value of every worker key at the quiesced
    // watermark — not just "it answers", but "it caught up". Local
    // copies may trail the commit front briefly, so poll under a
    // deadline.
    for key in [10u64, 20] {
        let expect = nemesis_client.get(key).expect("linearized read");
        let deadline = Instant::now() + Duration::from_secs(30);
        for r in 0..3u16 {
            loop {
                match nemesis_client.get_relaxed(NodeId(r), key) {
                    Ok(v) if v == expect => break,
                    got => {
                        assert!(
                            Instant::now() < deadline,
                            "replica {r} never converged on key {key}: \
                             local {got:?} vs linearized {expect:?}"
                        );
                        std::thread::sleep(Duration::from_millis(50));
                    }
                }
            }
        }
    }

    // Nemesis/recovery stats artifact for the CI chaos-smoke job.
    let total_chaos_ops: u64 = reports.iter().map(|r| r.ops_during_chaos).sum();
    let total_recovery_ops: u64 = reports.iter().map(|r| r.ops_after_chaos).sum();
    let total_timeouts: u64 = reports.iter().map(|r| r.timeouts_during_chaos).sum();
    let total_checks: u64 = reports.iter().map(|r| r.safety_checks).sum();
    let total_kills_injected: u64 = reports.iter().map(|r| r.kills_injected).sum();
    let txns: u64 = reports.iter().map(|r| r.txns_committed).sum();
    let json = format!(
        "{{\n  \"replica_restarts\": {restarts},\n  \"client_kills_injected\": {total_kills_injected},\n  \"replica_conn_kills\": {conn_kills},\n  \"replica_reconnects\": {reconnects},\n  \"truncations\": {truncations},\n  \"snapshots_served\": {snapshots_served},\n  \"snapshots_installed\": {snapshots_installed},\n  \"ops_during_chaos\": {total_chaos_ops},\n  \"timeouts_during_chaos\": {total_timeouts},\n  \"txns_committed\": {txns},\n  \"ops_after_recovery\": {total_recovery_ops},\n  \"safety_checks_passed\": {total_checks}\n}}\n"
    );
    let _ = std::fs::create_dir_all("target/chaos");
    let _ = std::fs::write("target/chaos/CHAOS_soak.json", json);

    cluster.shutdown();
}

/// The in-process twin: same engines, same workload, same assertions —
/// but the faults come from a seeded [`FaultPlan`] wrapped around every
/// replica's shared-memory transport, so the scenario reproduces from
/// its seed (determinism of the dice is pinned separately by
/// `crates/runtime/tests/fault_injection.rs`, which replays one seed
/// three times and demands identical traces).
#[test]
fn chaos_soak_in_process_with_seeded_faults() {
    let t = one_timing();
    let shards = 2u16;
    let plan = FaultPlan::seeded(0x50AC_CAFE)
        .drops(20)
        .delays(40, Duration::from_millis(1));
    let (cluster, clients) = ClusterBuilder::new(3, move |m: &[NodeId], me| {
        OnePaxosNode::with_timing(cfg(m, me), t)
    })
    .clients(2)
    .shards(shards)
    .faults(plan)
    .spawn();

    let chaos = Arc::new(AtomicBool::new(true));
    let workers: Vec<_> = clients
        .into_iter()
        .enumerate()
        .map(|(w, c)| {
            let chaos = Arc::clone(&chaos);
            let key = (w as u64 + 1) * 10;
            let txn_keys = (w == 0).then(|| cross_shard_pair(shards, 2_000 + w as u64 * 100));
            // Queue links cannot be severed, so no socket kills here —
            // the seeded drop/delay dice are the whole nemesis.
            std::thread::spawn(move || run_worker(c, key, txn_keys, chaos, false))
        })
        .collect();

    let soak_until = Instant::now() + Duration::from_millis(800);
    while Instant::now() < soak_until {
        std::thread::sleep(Duration::from_millis(50));
    }
    chaos.store(false, Ordering::Relaxed);

    let reports: Vec<WorkerReport> = workers.into_iter().map(|w| w.join().unwrap()).collect();
    for (w, r) in reports.iter().enumerate() {
        assert!(
            r.ops_during_chaos > 0,
            "worker {w} made no progress under seeded faults: {r:?}"
        );
        assert!(r.ops_after_chaos >= 26, "worker {w} did not recover: {r:?}");
        assert!(r.safety_checks > 0);
    }
    cluster.shutdown();
}

/// The bounded-memory soak: a time-capped run under periodic agreed
/// truncation with the backup replica stopped and restarted
/// *continuously*, gating on the RSS-proxy gauges staying flat. Without
/// truncation every one of these counters grows linearly with committed
/// commands (the unbounded-memory bug family); with it, the applied log
/// stays near the truncation period, reply outputs stay O(clients), and
/// finished-txn outcomes stay within the per-coordinator window — no
/// matter how long the soak runs or how often the backup reboots. The
/// stats land in `target/chaos/MEM_soak.json` next to the chaos soak's
/// artifact, where the CI mem-smoke job picks them up.
#[test]
fn mem_soak_flat_gauges_under_truncation_and_continuous_restarts() {
    const TRUNCATE_EVERY: u64 = 256;
    let t = one_timing();
    let shards = 2u16;
    let (mut cluster, mut clients) = ClusterBuilder::new(3, move |m: &[NodeId], me| {
        OnePaxosNode::with_timing(cfg(m, me), t)
    })
    .clients(2)
    .shards(shards)
    .truncate_every(TRUNCATE_EVERY)
    .spawn_tcp()
    .expect("tcp setup");

    let mut nemesis_client = clients.pop().expect("nemesis client");
    nemesis_client.set_timeout(Duration::from_secs(2));
    let chaos = Arc::new(AtomicBool::new(true));
    // One worker hammering puts + linearized reads, with cross-shard
    // transactions riding along so the finished-outcome gauge is
    // exercised too. The restarts are the whole nemesis — no socket
    // kills.
    let worker = {
        let chaos = Arc::clone(&chaos);
        let c = clients.pop().expect("worker client");
        let txn_keys = Some(cross_shard_pair(shards, 3_000));
        std::thread::spawn(move || run_worker(c, 10, txn_keys, chaos, false))
    };

    // Time-capped soak: sample the gauges a few times between restart
    // cycles, then bounce the backup again.
    let soak_deadline = Instant::now() + Duration::from_secs(6);
    let mut restarts = 0u64;
    let mut max_applied_log = 0u64;
    let mut max_outputs = 0u64;
    let mut max_finished = 0u64;
    while Instant::now() < soak_deadline {
        for _ in 0..3 {
            std::thread::sleep(Duration::from_millis(150));
            for m in cluster.metrics() {
                max_applied_log = max_applied_log.max(m.applied_log_len.load(Ordering::Relaxed));
                max_outputs = max_outputs.max(m.outputs_len.load(Ordering::Relaxed));
                max_finished = max_finished.max(m.finished_len.load(Ordering::Relaxed));
            }
        }
        let stop_deadline = Instant::now() + Duration::from_secs(30);
        while !cluster.replica_finished(2) {
            nemesis_client.stop_replica(NodeId(2));
            assert!(
                Instant::now() < stop_deadline,
                "mem soak: replica 2 never processed stop {restarts}"
            );
            std::thread::sleep(Duration::from_millis(50));
        }
        cluster.restart_replica(2);
        restarts += 1;
    }
    chaos.store(false, Ordering::Relaxed);
    let report = worker.join().unwrap();

    // Liveness through the restart storm and full recovery after it.
    assert!(restarts >= 2, "soak too short to exercise restarts");
    assert!(
        report.ops_during_chaos > 0,
        "no progress during the restart storm: {report:?}"
    );
    assert!(
        report.ops_after_chaos >= 26,
        "worker did not recover: {report:?}"
    );

    // The mechanisms that bound memory actually ran.
    let metrics = cluster.metrics();
    let truncations: u64 = metrics
        .iter()
        .map(|m| m.truncations.load(Ordering::Relaxed))
        .sum();
    let snapshots_installed = metrics[2].snapshots_installed.load(Ordering::Relaxed);
    let committed: u64 = metrics
        .iter()
        .map(|m| m.committed.load(Ordering::Relaxed))
        .sum();
    assert!(truncations > 0, "agreed truncation never ran");
    assert!(
        snapshots_installed > 0,
        "the restarted backup never installed a snapshot"
    );

    // The flatness gates. Each gauge sums over both shard groups of a
    // replica, so the bounds carry a factor of `shards` plus generous
    // in-flight slack — what matters is that none of them scales with
    // the committed-command count.
    assert!(
        max_applied_log < 16 * TRUNCATE_EVERY,
        "applied log grew to {max_applied_log} — truncation is not bounding memory"
    );
    assert!(
        max_outputs <= 16,
        "reply outputs grew to {max_outputs} for 2 clients"
    );
    assert!(
        max_finished <= 256,
        "finished-txn outcomes grew to {max_finished} — GC floor not engaging"
    );

    let reconnects: u64 = metrics
        .iter()
        .map(|m| m.reconnects.load(Ordering::Relaxed))
        .sum();
    let json = format!(
        "{{\n  \"replica_restarts\": {restarts},\n  \"truncations\": {truncations},\n  \"snapshots_installed\": {snapshots_installed},\n  \"replica_reconnects\": {reconnects},\n  \"committed_commands\": {committed},\n  \"ops_during_soak\": {},\n  \"ops_after_recovery\": {},\n  \"txns_committed\": {},\n  \"max_applied_log_len\": {max_applied_log},\n  \"max_outputs_len\": {max_outputs},\n  \"max_finished_len\": {max_finished}\n}}\n",
        report.ops_during_chaos, report.ops_after_chaos, report.txns_committed
    );
    let _ = std::fs::create_dir_all("target/chaos");
    let _ = std::fs::write("target/chaos/MEM_soak.json", json);

    cluster.shutdown();
}
