//! Cross-crate integration: every protocol deployed on the many-core
//! simulator commits client commands consistently.

use consensus_inside::manycore_sim::{Profile, SimBuilder, Workload};
use consensus_inside::onepaxos::basic_paxos::BasicPaxosNode;
use consensus_inside::onepaxos::multipaxos::MultiPaxosNode;
use consensus_inside::onepaxos::onepaxos::OnePaxosNode;
use consensus_inside::onepaxos::twopc::TwoPcNode;
use consensus_inside::onepaxos::{ClusterConfig, NodeId};

fn cfg(m: &[NodeId], me: NodeId) -> ClusterConfig {
    ClusterConfig::new(m.to_vec(), me)
}

#[test]
fn all_protocols_complete_the_budget() {
    macro_rules! check {
        ($name:literal, $factory:expr) => {{
            let r = SimBuilder::new(Profile::opteron48(), $factory)
                .replicas(3)
                .clients(4)
                .requests_per_client(100)
                .run();
            assert_eq!(r.completed, 400, "{} completed", $name);
            assert!(r.throughput > 0.0);
        }};
    }
    check!("1Paxos", |m: &[NodeId], me| OnePaxosNode::new(cfg(m, me)));
    check!("Multi-Paxos", |m: &[NodeId], me| MultiPaxosNode::new(cfg(
        m, me
    )));
    check!("2PC", |m: &[NodeId], me| TwoPcNode::new(cfg(m, me)));
    check!("Basic-Paxos", |m: &[NodeId], me| BasicPaxosNode::new(cfg(
        m, me
    )));
}

#[test]
fn replica_state_machines_converge() {
    // A write-heavy KV workload across many clients: after the run, the
    // replicas' KV digests must agree (the commit oracle inside the sim
    // already asserts per-instance agreement; this checks end state).
    let r = SimBuilder::new(Profile::opteron48(), |m: &[NodeId], me| {
        OnePaxosNode::new(cfg(m, me))
    })
    .replicas(3)
    .clients(8)
    .workload(Workload::ReadMix {
        read_pct: 25,
        keys: 64,
        hot_pct: 0,
    })
    .requests_per_client(200)
    .run();
    assert_eq!(r.completed, 1_600);
    let d = &r.replica_digests;
    assert_eq!(d[0], d[1], "replica 0 vs 1 diverged");
    assert_eq!(d[1], d[2], "replica 1 vs 2 diverged");
}

#[test]
fn five_replicas_work_for_all_quorum_protocols() {
    macro_rules! check {
        ($name:literal, $factory:expr) => {{
            let r = SimBuilder::new(Profile::opteron48(), $factory)
                .replicas(5)
                .clients(4)
                .requests_per_client(50)
                .run();
            assert_eq!(r.completed, 200, "{}", $name);
        }};
    }
    check!("1Paxos", |m: &[NodeId], me| OnePaxosNode::new(cfg(m, me)));
    check!("Multi-Paxos", |m: &[NodeId], me| MultiPaxosNode::new(cfg(
        m, me
    )));
    check!("2PC", |m: &[NodeId], me| TwoPcNode::new(cfg(m, me)));
}

#[test]
fn sharded_replicas_converge_across_groups_for_every_protocol() {
    // Sharded deployments through the facade: every protocol completes a
    // keyed budget over 4 groups, and the replicas' folded (cross-shard)
    // KV digests agree at the end.
    macro_rules! check {
        ($name:literal, $factory:expr) => {{
            let r = SimBuilder::new(Profile::opteron48(), $factory)
                .replicas(3)
                .shards(4)
                .clients(6)
                .workload(Workload::ReadMix {
                    read_pct: 20,
                    keys: 256,
                    hot_pct: 0,
                })
                .requests_per_client(100)
                .run();
            assert_eq!(r.completed, 600, "{} completed", $name);
            let d = &r.replica_digests;
            assert_eq!(d[0], d[1], "{}: replica 0 vs 1 diverged", $name);
            assert_eq!(d[1], d[2], "{}: replica 1 vs 2 diverged", $name);
        }};
    }
    check!("1Paxos", |m: &[NodeId], me| OnePaxosNode::new(cfg(m, me)));
    check!("Multi-Paxos", |m: &[NodeId], me| MultiPaxosNode::new(cfg(
        m, me
    )));
    check!("2PC", |m: &[NodeId], me| TwoPcNode::new(cfg(m, me)));
}

#[test]
fn sharded_relaxed_mix_completes_through_the_facade() {
    // RelaxedMix + sharding: 2PC serves the reads from each key's owning
    // group's local copy; the budget still completes exactly.
    let r = SimBuilder::new(Profile::opteron48(), |m: &[NodeId], me| {
        TwoPcNode::new(cfg(m, me))
    })
    .replicas(3)
    .shards(2)
    .clients(4)
    .workload(Workload::RelaxedMix {
        read_pct: 60,
        keys: 64,
    })
    .requests_per_client(100)
    .run();
    assert_eq!(r.completed, 400);
}

#[test]
fn onepaxos_message_budget_is_half_of_multipaxos() {
    // §4.3/Fig 3: 1Paxos halves the per-commit message count (with client
    // traffic: 5 vs 10 per commit on three nodes).
    let one = SimBuilder::new(Profile::opteron48(), |m: &[NodeId], me| {
        OnePaxosNode::new(cfg(m, me))
    })
    .requests_per_client(500)
    .run();
    let multi = SimBuilder::new(Profile::opteron48(), |m: &[NodeId], me| {
        MultiPaxosNode::new(cfg(m, me))
    })
    .requests_per_client(500)
    .run();
    let per_commit_one = one.total_messages as f64 / one.completed as f64;
    let per_commit_multi = multi.total_messages as f64 / multi.completed as f64;
    // 1Paxos: request + accept + 2 learns + reply = 5.
    assert!(
        (4.8..5.4).contains(&per_commit_one),
        "1Paxos messages/commit = {per_commit_one}"
    );
    // Multi-Paxos: request + 2 accepts + 6 learns + reply = 10 (+ a few
    // heartbeats).
    assert!(
        (9.5..11.5).contains(&per_commit_multi),
        "Multi-Paxos messages/commit = {per_commit_multi}"
    );
    assert!(
        per_commit_multi / per_commit_one > 1.8,
        "the factor-of-two claim"
    );
}

#[test]
fn deterministic_runs_are_bit_identical() {
    let go = |seed: u64| {
        let r = SimBuilder::new(Profile::opteron48(), |m: &[NodeId], me| {
            OnePaxosNode::new(cfg(m, me))
        })
        .clients(6)
        .workload(Workload::ReadMix {
            read_pct: 50,
            keys: 16,
            hot_pct: 0,
        })
        .requests_per_client(100)
        .seed(seed)
        .run();
        (r.completed, r.ended_at, r.total_messages, r.replica_digests)
    };
    assert_eq!(go(7), go(7));
    // And a different seed gives a different (but still correct) schedule.
    let (c_a, end_a, _, _) = go(7);
    let (c_b, end_b, _, _) = go(8);
    assert_eq!(c_a, c_b);
    assert_ne!(end_a, end_b);
}
