//! Integration of the threaded runtime: real threads, real qc-channel
//! queues, every protocol, concurrent clients.

use std::time::Duration;

use consensus_inside::onepaxos::multipaxos::{self, MultiPaxosNode};
use consensus_inside::onepaxos::onepaxos::{OnePaxosNode, Timing};
use consensus_inside::onepaxos::twopc::TwoPcNode;
use consensus_inside::onepaxos::{AdaptiveBatch, BatchConfig, ClusterConfig, NodeId, Op};
use consensus_inside::onepaxos_runtime::ClusterBuilder;

fn cfg(m: &[NodeId], me: NodeId) -> ClusterConfig {
    ClusterConfig::new(m.to_vec(), me)
}

/// Relaxed timeouts: CI machines oversubscribe cores heavily.
fn one_timing() -> Timing {
    Timing {
        tick: 2_000_000,
        io_timeout: 400_000_000,
        suspect_after: 800_000_000,
    }
}

fn mp_timing() -> multipaxos::Timing {
    multipaxos::Timing {
        tick: 2_000_000,
        suspect_after: 800_000_000,
    }
}

#[test]
fn onepaxos_kv_over_threads() {
    let t = one_timing();
    let (cluster, mut clients) = ClusterBuilder::new(3, move |m: &[NodeId], me| {
        OnePaxosNode::with_timing(cfg(m, me), t)
    })
    .clients(1)
    .spawn();
    let c = &mut clients[0];
    c.set_timeout(Duration::from_secs(2));
    assert_eq!(c.put(1, 11).expect("commit"), None);
    assert_eq!(c.put(1, 12).expect("commit"), Some(11));
    assert_eq!(c.get(1).expect("commit"), Some(12));
    assert_eq!(c.get(99).expect("commit"), None);
    cluster.shutdown();
}

#[test]
fn multipaxos_kv_over_threads() {
    let t = mp_timing();
    let (cluster, mut clients) = ClusterBuilder::new(3, move |m: &[NodeId], me| {
        MultiPaxosNode::with_timing(cfg(m, me), t)
    })
    .clients(1)
    .spawn();
    let c = &mut clients[0];
    c.set_timeout(Duration::from_secs(2));
    assert_eq!(c.put(5, 50).expect("commit"), None);
    assert_eq!(c.get(5).expect("commit"), Some(50));
    cluster.shutdown();
}

#[test]
fn twopc_kv_over_threads() {
    let (cluster, mut clients) =
        ClusterBuilder::new(3, |m: &[NodeId], me| TwoPcNode::new(cfg(m, me)))
            .clients(1)
            .spawn();
    let c = &mut clients[0];
    c.set_timeout(Duration::from_secs(2));
    assert_eq!(c.put(3, 33).expect("commit"), None);
    assert_eq!(c.get(3).expect("commit"), Some(33));
    cluster.shutdown();
}

#[test]
fn concurrent_clients_make_consistent_progress() {
    let t = one_timing();
    let (cluster, clients) = ClusterBuilder::new(3, move |m: &[NodeId], me| {
        OnePaxosNode::with_timing(cfg(m, me), t)
    })
    .clients(3)
    .spawn();
    let workers: Vec<_> = clients
        .into_iter()
        .enumerate()
        .map(|(w, mut c)| {
            std::thread::spawn(move || {
                c.set_timeout(Duration::from_secs(2));
                for i in 0..30u64 {
                    c.put(w as u64 * 100 + i, i).expect("commit");
                }
                // Own writes are visible through ordered reads.
                assert_eq!(c.get(w as u64 * 100).expect("commit"), Some(0));
                c
            })
        })
        .collect();
    let _clients: Vec<_> = workers.into_iter().map(|w| w.join().unwrap()).collect();
    // All commands decided on every replica (deltas may lag commits by a
    // poll loop; the ordered read above already synchronised).
    let committed: Vec<u64> = cluster
        .metrics()
        .iter()
        .map(|m| m.committed.load(std::sync::atomic::Ordering::Relaxed))
        .collect();
    assert!(
        committed.iter().all(|&c| c >= 90),
        "every replica must commit all 90+ commands: {committed:?}"
    );
    cluster.shutdown();
}

#[test]
fn batched_cluster_serves_concurrent_clients_consistently() {
    // Engine-level batching on real threads: several synchronous clients
    // hit the same replicas, commands coalesce per agreement (or flush on
    // the 200 µs deadline), and every write stays readable. Exercises
    // size flushes, deadline flushes and the commit-time reply fan-out
    // under AfterApply reply mode.
    let t = one_timing();
    let (cluster, clients) = ClusterBuilder::new(3, move |m: &[NodeId], me| {
        OnePaxosNode::with_timing(cfg(m, me), t)
    })
    .clients(3)
    .batching(BatchConfig::new(4, 200_000))
    .spawn();
    let workers: Vec<_> = clients
        .into_iter()
        .enumerate()
        .map(|(w, mut c)| {
            std::thread::spawn(move || {
                c.set_timeout(Duration::from_secs(2));
                for i in 0..20u64 {
                    c.put(w as u64 * 100 + i, i).expect("commit");
                }
                assert_eq!(c.get(w as u64 * 100 + 19).expect("commit"), Some(19));
                c
            })
        })
        .collect();
    let _clients: Vec<_> = workers.into_iter().map(|w| w.join().unwrap()).collect();
    cluster.shutdown();
}

#[test]
fn adaptive_batched_cluster_serves_clients_and_publishes_depth() {
    // Adaptive batch depth on real threads: the engines learn their own
    // flush depth, every write stays readable, and the replica loops
    // republish the learned depth through NodeMetrics.
    let t = one_timing();
    let (cluster, clients) = ClusterBuilder::new(3, move |m: &[NodeId], me| {
        OnePaxosNode::with_timing(cfg(m, me), t)
    })
    .clients(3)
    .batching(BatchConfig::adaptive(AdaptiveBatch::new(8, 200_000)))
    .spawn();
    let workers: Vec<_> = clients
        .into_iter()
        .enumerate()
        .map(|(w, mut c)| {
            std::thread::spawn(move || {
                c.set_timeout(Duration::from_secs(2));
                for i in 0..20u64 {
                    c.put(w as u64 * 100 + i, i).expect("commit");
                }
                assert_eq!(c.get(w as u64 * 100 + 19).expect("commit"), Some(19));
                c
            })
        })
        .collect();
    let _clients: Vec<_> = workers.into_iter().map(|w| w.join().unwrap()).collect();
    // The leader's loop published a live depth within the bounds; with
    // three synchronous clients it may or may not have grown, but it can
    // never be 0 or above the cap.
    let depth = cluster.metrics()[0]
        .batch_depth
        .load(std::sync::atomic::Ordering::Relaxed);
    assert!((1..=8).contains(&depth), "published depth {depth}");
    assert!(
        cluster.metrics()[0]
            .batch_flushes
            .load(std::sync::atomic::Ordering::Relaxed)
            > 0,
        "leader must have flushed batches"
    );
    cluster.shutdown();
}

#[test]
fn sharded_cluster_partitions_keys_and_serves_every_client() {
    // Two consensus groups per replica slot, still one thread per slot:
    // every key routes to its owning group, callers stay oblivious.
    let t = one_timing();
    let (cluster, mut clients) = ClusterBuilder::new(3, move |m: &[NodeId], me| {
        OnePaxosNode::with_timing(cfg(m, me), t)
    })
    .clients(1)
    .shards(2)
    .spawn();
    let c = &mut clients[0];
    c.set_timeout(Duration::from_secs(2));
    let mut seen = std::collections::BTreeSet::new();
    for key in 0..12u64 {
        seen.insert(c.shard_of(key));
        assert_eq!(c.put(key, key * 7).expect("commit"), None, "key {key}");
    }
    assert_eq!(seen.len(), 2, "12 keys must touch both groups");
    for key in 0..12u64 {
        assert_eq!(c.get(key).expect("commit"), Some(key * 7), "key {key}");
    }
    // Cross-group read-your-writes held above; relaxed reads degrade to
    // ordered reads per group and still answer.
    assert_eq!(c.get_relaxed(NodeId(0), 3).expect("read"), Some(21));
    cluster.shutdown();
}

#[test]
fn sharded_batched_cluster_serves_concurrent_clients() {
    // Sharding composes with batching on real threads: each group keeps
    // its own accumulator, per-client replies fan back out on commit.
    let t = one_timing();
    let (cluster, clients) = ClusterBuilder::new(3, move |m: &[NodeId], me| {
        OnePaxosNode::with_timing(cfg(m, me), t)
    })
    .clients(3)
    .shards(2)
    .batching(BatchConfig::new(4, 200_000))
    .spawn();
    let workers: Vec<_> = clients
        .into_iter()
        .enumerate()
        .map(|(w, mut c)| {
            std::thread::spawn(move || {
                c.set_timeout(Duration::from_secs(2));
                for i in 0..20u64 {
                    c.put(w as u64 * 100 + i, i).expect("commit");
                }
                assert_eq!(c.get(w as u64 * 100 + 19).expect("commit"), Some(19));
                c
            })
        })
        .collect();
    let _clients: Vec<_> = workers.into_iter().map(|w| w.join().unwrap()).collect();
    cluster.shutdown();
}

#[test]
fn sharded_twopc_serves_relaxed_reads_from_the_owning_group() {
    let (cluster, mut clients) =
        ClusterBuilder::new(3, |m: &[NodeId], me| TwoPcNode::new(cfg(m, me)))
            .clients(1)
            .shards(3)
            .spawn();
    let c = &mut clients[0];
    c.set_timeout(Duration::from_secs(2));
    for key in 0..6u64 {
        assert_eq!(c.put(key, key + 100).expect("commit"), None);
    }
    // Every replica answers from the local copy of the key's own group.
    for n in 0..3u16 {
        for key in 0..6u64 {
            assert_eq!(
                c.get_relaxed(NodeId(n), key).expect("read"),
                Some(key + 100),
                "replica {n} key {key}"
            );
        }
    }
    cluster.shutdown();
}

#[test]
fn submit_noop_commits() {
    let t = one_timing();
    let (cluster, mut clients) = ClusterBuilder::new(3, move |m: &[NodeId], me| {
        OnePaxosNode::with_timing(cfg(m, me), t)
    })
    .clients(1)
    .spawn();
    let c = &mut clients[0];
    c.set_timeout(Duration::from_secs(2));
    // The paper's benchmark op: no payload.
    assert_eq!(c.submit(Op::Noop).expect("commit"), None);
    cluster.shutdown();
}

#[test]
fn onepaxos_survives_stopped_backup() {
    // A stopped *backup* acceptor is outside the fast path (§4.3): the
    // cluster keeps committing without it.
    let t = one_timing();
    let (cluster, mut clients) = ClusterBuilder::new(3, move |m: &[NodeId], me| {
        OnePaxosNode::with_timing(cfg(m, me), t)
    })
    .clients(1)
    .spawn();
    let c = &mut clients[0];
    c.set_timeout(Duration::from_secs(2));
    c.put(1, 1).expect("commit before fault");
    // n2 is a backup (leader n0, active acceptor n1).
    c.stop_replica(NodeId(2));
    std::thread::sleep(Duration::from_millis(50));
    for i in 2..8u64 {
        c.put(i, i).expect("commit with stopped backup");
    }
    assert_eq!(c.get(5).expect("read"), Some(5));
    cluster.shutdown();
}

#[test]
fn onepaxos_fails_over_after_stopped_leader() {
    // The limit case of a slow leader: its thread stops entirely. The
    // client re-targets; a proposer takes over via PaxosUtility and is
    // adopted by the still-running active acceptor (§5.3, Fig 5).
    let timing = Timing {
        tick: 2_000_000,
        io_timeout: 300_000_000,
        suspect_after: 600_000_000,
    };
    let (cluster, mut clients) = ClusterBuilder::new(3, move |m: &[NodeId], me| {
        OnePaxosNode::with_timing(cfg(m, me), timing)
    })
    .clients(1)
    .spawn();
    let c = &mut clients[0];
    c.set_timeout(Duration::from_millis(1_500));
    c.put(1, 10).expect("commit before fault");
    c.stop_replica(NodeId(0)); // the leader
    std::thread::sleep(Duration::from_millis(50));
    // This submission needs the full detection + takeover chain; give it
    // a generous per-attempt budget (CI boxes are slow).
    c.put(2, 20).expect("commit after leader failover");
    assert_eq!(c.get(2).expect("read"), Some(20));
    assert_eq!(c.get(1).expect("read"), Some(10), "history preserved");
    cluster.shutdown();
}

#[test]
fn metrics_reflect_message_flow() {
    let t = one_timing();
    let (cluster, mut clients) = ClusterBuilder::new(3, move |m: &[NodeId], me| {
        OnePaxosNode::with_timing(cfg(m, me), t)
    })
    .clients(1)
    .spawn();
    let c = &mut clients[0];
    c.set_timeout(Duration::from_secs(2));
    for i in 0..10 {
        c.put(i, i).expect("commit");
    }
    let m = cluster.metrics();
    // Every replica commits all 10 commands. The last learn may still be
    // in flight when the client's reply arrives, so poll briefly.
    let deadline = std::time::Instant::now() + Duration::from_secs(3);
    for (i, nm) in m.iter().enumerate() {
        while nm.committed.load(std::sync::atomic::Ordering::Relaxed) < 10 {
            assert!(
                std::time::Instant::now() < deadline,
                "replica {i} commits: {}",
                nm.committed.load(std::sync::atomic::Ordering::Relaxed)
            );
            std::thread::yield_now();
        }
    }
    // The leader (replica 0) sends at least one accept per command plus
    // replies; the acceptor (replica 1) sends the learn broadcasts.
    assert!(m[0].sent.load(std::sync::atomic::Ordering::Relaxed) >= 20);
    assert!(m[1].sent.load(std::sync::atomic::Ordering::Relaxed) >= 20);
    cluster.shutdown();
}

#[test]
fn pinned_cluster_works_when_cores_exist() {
    // Pinning is best-effort; the cluster must work either way.
    let t = one_timing();
    let (cluster, mut clients) = ClusterBuilder::new(3, move |m: &[NodeId], me| {
        OnePaxosNode::with_timing(cfg(m, me), t)
    })
    .clients(1)
    .pin_cores(true)
    .spawn();
    let c = &mut clients[0];
    c.set_timeout(Duration::from_secs(2));
    assert_eq!(c.put(1, 2).expect("commit"), None);
    cluster.shutdown();
}

#[test]
fn txn_put_commits_atomically_across_shard_groups() {
    use consensus_inside::onepaxos::{ShardRouter, TxnOutcome};
    let t = one_timing();
    let (cluster, mut clients) = ClusterBuilder::new(3, move |m: &[NodeId], me| {
        OnePaxosNode::with_timing(cfg(m, me), t)
    })
    .clients(1)
    .shards(4)
    .spawn();
    let c = &mut clients[0];
    c.set_timeout(Duration::from_secs(2));
    // Two keys owned by different shard groups: a real cross-group 2PC.
    let router = ShardRouter::new(4);
    let k0 = 0u64;
    let k1 = (1u64..)
        .find(|&k| router.route_key(k) != router.route_key(k0))
        .unwrap();
    assert_ne!(c.shard_of(k0), c.shard_of(k1));
    assert_eq!(
        c.txn_put(&[(k0, 10), (k1, 20)]).expect("commit"),
        TxnOutcome::Committed
    );
    // Linearized reads see both writes (atomicity end-to-end).
    assert_eq!(c.get(k0).expect("read"), Some(10));
    assert_eq!(c.get(k1).expect("read"), Some(20));
    // A SECOND cross-shard transaction from the same handle touches the
    // same shards: it must run under a fresh TxnId (the handle persists
    // the coordinator's sequence across calls), so its writes land
    // instead of the shards echoing the first transaction's recorded
    // outcome while dropping the new fragments.
    assert_eq!(
        c.txn_put(&[(k0, 30), (k1, 40)]).expect("commit"),
        TxnOutcome::Committed
    );
    assert_eq!(c.get(k0).expect("read"), Some(30));
    assert_eq!(c.get(k1).expect("read"), Some(40));
    // A single-shard write set short-circuits to one MultiPut agreement.
    let twin = (1u64..)
        .find(|&k| k != k0 && router.route_key(k) == router.route_key(k0))
        .unwrap();
    assert_eq!(
        c.txn_put(&[(k0, 11), (twin, 12)]).expect("commit"),
        TxnOutcome::Committed
    );
    assert_eq!(c.get(k0).expect("read"), Some(11));
    assert_eq!(c.get(twin).expect("read"), Some(12));
    // Plain traffic keeps working on the same handle afterwards (the
    // request-id counter was resynced through the coordinator).
    assert_eq!(c.put(k1, 21).expect("commit"), Some(40));
    cluster.shutdown();
}

#[test]
fn txn_put_relaxed_reads_wait_out_the_lock_window() {
    use consensus_inside::onepaxos::{ShardRouter, TxnOutcome};
    // 2PC shards support relaxed reads; a transaction's lock window must
    // never show a reader half a write set. After the txn commits, every
    // replica's local copy has BOTH writes — a relaxed read can race the
    // outcome's application (and wait), but never observe a fragment.
    let (cluster, mut clients) =
        ClusterBuilder::new(3, |m: &[NodeId], me| TwoPcNode::new(cfg(m, me)))
            .clients(1)
            .shards(2)
            .spawn();
    let c = &mut clients[0];
    c.set_timeout(Duration::from_secs(2));
    let router = ShardRouter::new(2);
    let k0 = 0u64;
    let k1 = (1u64..)
        .find(|&k| router.route_key(k) != router.route_key(k0))
        .unwrap();
    assert_eq!(
        c.txn_put(&[(k0, 1), (k1, 2)]).expect("commit"),
        TxnOutcome::Committed
    );
    for n in 0..3u16 {
        assert_eq!(c.get_relaxed(NodeId(n), k0).expect("read"), Some(1));
        assert_eq!(c.get_relaxed(NodeId(n), k1).expect("read"), Some(2));
    }
    cluster.shutdown();
}
