//! The §7.5 relaxed-read fast path, end to end on two harnesses.
//!
//! The engine centralizes `can_read_locally` gating and the local-copy
//! read; these tests exercise it through `TestNet` (deterministic lock
//! window control) and the threaded runtime (`get_relaxed`), for both a
//! protocol that allows local reads (2PC) and one that orders every read
//! through consensus (1Paxos).

use std::time::Duration;

use consensus_inside::onepaxos::onepaxos::{OnePaxosNode, Timing};
use consensus_inside::onepaxos::testnet::TestNet;
use consensus_inside::onepaxos::twopc::TwoPcNode;
use consensus_inside::onepaxos::{ClusterConfig, NodeId, Op};
use consensus_inside::onepaxos_runtime::ClusterBuilder;

fn cfg(m: &[NodeId], me: NodeId) -> ClusterConfig {
    ClusterConfig::new(m.to_vec(), me)
}

#[test]
fn testnet_serves_local_reads_outside_the_lock_window() {
    let mut net = TestNet::new(3, |m, me| TwoPcNode::new(cfg(m, me)));
    net.client_request(NodeId(0), NodeId(9), 1, Op::Put { key: 1, value: 11 });
    net.run_to_quiescence();
    // Quiescent: no round in flight, every replica serves the read
    // locally — no messages needed.
    let delivered = net.delivered();
    for n in 0..3u16 {
        assert_eq!(net.local_read(NodeId(n), 1), Some(Some(11)), "replica {n}");
        assert_eq!(net.local_read(NodeId(n), 99), Some(None), "replica {n}");
    }
    assert_eq!(net.delivered(), delivered, "local reads moved messages");
}

#[test]
fn testnet_blocks_local_reads_inside_the_lock_window() {
    let mut net = TestNet::new(3, |m, me| TwoPcNode::new(cfg(m, me)));
    // Start a round but do not deliver anything: the coordinator has
    // locked its own copy ("the gap between two phases of 2PC", §7.5).
    net.client_request(NodeId(0), NodeId(9), 1, Op::Put { key: 1, value: 11 });
    assert_eq!(
        net.local_read(NodeId(0), 1),
        None,
        "read inside the coordinator's lock window must wait"
    );
    // The other replicas have not locked yet; they still serve reads.
    assert_eq!(net.local_read(NodeId(1), 1), Some(None));
    // Completing the round reopens the window, now with the new value.
    net.run_to_quiescence();
    assert_eq!(net.local_read(NodeId(0), 1), Some(Some(11)));
}

#[test]
fn testnet_paxos_never_serves_local_reads() {
    let mut net = TestNet::new(3, |m, me| OnePaxosNode::new(cfg(m, me)));
    net.run_to_quiescence();
    net.client_request(NodeId(0), NodeId(9), 1, Op::Put { key: 1, value: 11 });
    net.run_to_quiescence();
    for n in 0..3u16 {
        assert_eq!(
            net.local_read(NodeId(n), 1),
            None,
            "ordered-reads protocol leaked a local read at {n}"
        );
    }
}

#[test]
fn runtime_relaxed_reads_bypass_consensus_for_twopc() {
    let (cluster, mut clients) =
        ClusterBuilder::new(3, |m: &[NodeId], me| TwoPcNode::new(cfg(m, me)))
            .clients(1)
            .spawn();
    let c = &mut clients[0];
    c.set_timeout(Duration::from_secs(2));
    assert_eq!(c.put(7, 70).expect("commit"), None);
    // Every replica answers from its local copy.
    for n in 0..3u16 {
        assert_eq!(c.get_relaxed(NodeId(n), 7).expect("read"), Some(70));
        assert_eq!(c.get_relaxed(NodeId(n), 8).expect("read"), None);
    }
    cluster.shutdown(&mut clients[0]);
}

#[test]
fn runtime_relaxed_reads_degrade_to_ordered_for_paxos() {
    let timing = Timing {
        tick: 2_000_000,
        io_timeout: 400_000_000,
        suspect_after: 800_000_000,
    };
    let (cluster, mut clients) = ClusterBuilder::new(3, move |m: &[NodeId], me| {
        OnePaxosNode::with_timing(cfg(m, me), timing)
    })
    .clients(1)
    .spawn();
    let c = &mut clients[0];
    c.set_timeout(Duration::from_secs(2));
    assert_eq!(c.put(3, 33).expect("commit"), None);
    // 1Paxos cannot serve the read locally; the replica orders it
    // through consensus and the client still gets an answer.
    assert_eq!(c.get_relaxed(NodeId(0), 3).expect("read"), Some(33));
    cluster.shutdown(&mut clients[0]);
}
