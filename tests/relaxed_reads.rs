//! The §7.5 relaxed-read fast path, end to end on two harnesses.
//!
//! The engine centralizes `can_read_locally` gating and the local-copy
//! read; these tests exercise it through `TestNet` (deterministic lock
//! window control) and the threaded runtime (`get_relaxed`), for both a
//! protocol that allows local reads (2PC) and one that orders every read
//! through consensus (1Paxos).

use std::time::Duration;

use consensus_inside::onepaxos::onepaxos::{OnePaxosNode, Timing};
use consensus_inside::onepaxos::testnet::TestNet;
use consensus_inside::onepaxos::twopc::TwoPcNode;
use consensus_inside::onepaxos::{ClusterConfig, NodeId, Op};
use consensus_inside::onepaxos_runtime::ClusterBuilder;

fn cfg(m: &[NodeId], me: NodeId) -> ClusterConfig {
    ClusterConfig::new(m.to_vec(), me)
}

#[test]
fn testnet_serves_local_reads_outside_the_lock_window() {
    let mut net = TestNet::new(3, |m, me| TwoPcNode::new(cfg(m, me)));
    net.client_request(NodeId(0), NodeId(9), 1, Op::Put { key: 1, value: 11 });
    net.run_to_quiescence();
    // Quiescent: no round in flight, every replica serves the read
    // locally — no messages needed.
    let delivered = net.delivered();
    for n in 0..3u16 {
        assert_eq!(net.local_read(NodeId(n), 1), Some(Some(11)), "replica {n}");
        assert_eq!(net.local_read(NodeId(n), 99), Some(None), "replica {n}");
    }
    assert_eq!(net.delivered(), delivered, "local reads moved messages");
}

#[test]
fn testnet_blocks_local_reads_inside_the_lock_window() {
    let mut net = TestNet::new(3, |m, me| TwoPcNode::new(cfg(m, me)));
    // Start a round but do not deliver anything: the coordinator has
    // locked its own copy ("the gap between two phases of 2PC", §7.5).
    net.client_request(NodeId(0), NodeId(9), 1, Op::Put { key: 1, value: 11 });
    assert_eq!(
        net.local_read(NodeId(0), 1),
        None,
        "read inside the coordinator's lock window must wait"
    );
    // The other replicas have not locked yet; they still serve reads.
    assert_eq!(net.local_read(NodeId(1), 1), Some(None));
    // Completing the round reopens the window, now with the new value.
    net.run_to_quiescence();
    assert_eq!(net.local_read(NodeId(0), 1), Some(Some(11)));
}

#[test]
fn testnet_paxos_never_serves_local_reads() {
    let mut net = TestNet::new(3, |m, me| OnePaxosNode::new(cfg(m, me)));
    net.run_to_quiescence();
    net.client_request(NodeId(0), NodeId(9), 1, Op::Put { key: 1, value: 11 });
    net.run_to_quiescence();
    for n in 0..3u16 {
        assert_eq!(
            net.local_read(NodeId(n), 1),
            None,
            "ordered-reads protocol leaked a local read at {n}"
        );
    }
}

#[test]
fn relaxed_reads_never_observe_a_partial_cross_shard_write_set() {
    // Isolation against the §7.5 fast path: a get_relaxed issued inside
    // another transaction's lock window must never observe a partially
    // applied write set. Staged fragments only touch the map atomically
    // at TxnCommit, and locked keys refuse relaxed reads outright — so
    // even when one shard has committed and the other has not, a reader
    // can only see (a) pre-transaction values for keys whose outcome is
    // pending BLOCKED, or (b) post-transaction values for keys already
    // committed; never a stale read after a new one.
    use consensus_inside::onepaxos::shard::ShardRouter;
    use consensus_inside::onepaxos::testnet::TestNet;
    use consensus_inside::onepaxos::txn::{TxnCoordinator, TxnOutcome, TxnStep};
    let mut net = TestNet::builder(3)
        .shards(4)
        .build(|m, me| TwoPcNode::new(cfg(m, me)));
    let router = ShardRouter::new(4);
    let k_a = 0u64;
    let k_b = (1u64..)
        .find(|&k| router.route_key(k) != router.route_key(k_a))
        .unwrap();
    // Pre-transaction values, so "old" is distinguishable from "absent".
    net.client_request(NodeId(0), NodeId(9), 1, Op::Put { key: k_a, value: 1 });
    net.run_to_quiescence();
    net.client_request(NodeId(0), NodeId(9), 2, Op::Put { key: k_b, value: 2 });
    net.run_to_quiescence();
    // Start the cross-shard transaction and land both prepares — every
    // replica is now inside the lock window for both keys.
    let mut coord = TxnCoordinator::new(NodeId(100), router);
    let frags = coord.begin(&[(k_a, 10), (k_b, 20)]);
    let reply_floor = net.replies().len();
    net.submit_fragments(NodeId(0), coord.client(), frags);
    net.run_to_quiescence();
    for n in 0..3u16 {
        assert_eq!(net.local_read(NodeId(n), k_a), None, "locked key readable");
        assert_eq!(net.local_read(NodeId(n), k_b), None, "locked key readable");
    }
    // Collect the votes and take the commit fragments, but deliver the
    // outcome to ONLY shard A — the window where one shard has applied
    // the transaction and the other has not.
    let mut outcome = Vec::new();
    for i in reply_floor..net.replies().len() {
        let r = net.replies()[i];
        if r.client == NodeId(100) {
            // The final yes vote forces the commit decision (early
            // ack) and hands back the outcome fan-out.
            if let TxnStep::Decided { submit, .. } = coord.on_reply(r.req_id, r.value) {
                outcome = submit;
            }
        }
    }
    assert_eq!(outcome.len(), 2, "commit fragments for both shards");
    let (a_frag, b_frag): (Vec<_>, Vec<_>) = outcome
        .into_iter()
        .partition(|f| f.shard == router.route_key(k_a));
    net.submit_fragments(NodeId(0), coord.client(), a_frag);
    net.run_to_quiescence();
    // Shard A committed: its key reads NEW. Shard B still prepared: its
    // key is locked, so the read WAITS instead of serving the old value
    // — no reader can assemble {new A, old B}.
    for n in 0..3u16 {
        assert_eq!(net.local_read(NodeId(n), k_a), Some(Some(10)), "node {n}");
        assert_eq!(net.local_read(NodeId(n), k_b), None, "partial view leaked");
    }
    // Unrelated keys read fine throughout (the lock is per key, not per
    // shard).
    assert_eq!(net.local_read(NodeId(0), 9_999), Some(None));
    // Deliver B's outcome: the window closes with the full write set.
    assert_eq!(
        net.drive_txn(NodeId(0), &mut coord, b_frag),
        TxnOutcome::Committed
    );
    for n in 0..3u16 {
        assert_eq!(net.local_read(NodeId(n), k_a), Some(Some(10)));
        assert_eq!(net.local_read(NodeId(n), k_b), Some(Some(20)));
    }
    net.assert_consistent();
}

#[test]
fn runtime_relaxed_reads_bypass_consensus_for_twopc() {
    let (cluster, mut clients) =
        ClusterBuilder::new(3, |m: &[NodeId], me| TwoPcNode::new(cfg(m, me)))
            .clients(1)
            .spawn();
    let c = &mut clients[0];
    c.set_timeout(Duration::from_secs(2));
    assert_eq!(c.put(7, 70).expect("commit"), None);
    // Every replica answers from its local copy.
    for n in 0..3u16 {
        assert_eq!(c.get_relaxed(NodeId(n), 7).expect("read"), Some(70));
        assert_eq!(c.get_relaxed(NodeId(n), 8).expect("read"), None);
    }
    cluster.shutdown();
}

#[test]
fn runtime_relaxed_reads_degrade_to_ordered_for_paxos() {
    let timing = Timing {
        tick: 2_000_000,
        io_timeout: 400_000_000,
        suspect_after: 800_000_000,
    };
    let (cluster, mut clients) = ClusterBuilder::new(3, move |m: &[NodeId], me| {
        OnePaxosNode::with_timing(cfg(m, me), timing)
    })
    .clients(1)
    .spawn();
    let c = &mut clients[0];
    c.set_timeout(Duration::from_secs(2));
    assert_eq!(c.put(3, 33).expect("commit"), None);
    // 1Paxos cannot serve the read locally; the replica orders it
    // through consensus and the client still gets an answer.
    assert_eq!(c.get_relaxed(NodeId(0), 3).expect("read"), Some(33));
    cluster.shutdown();
}
