//! The runtime integration suite again — but over loopback TCP sockets.
//!
//! Same engines, same `ClusterBuilder`, same `ClientHandle` API; only
//! `.spawn()` became `.spawn_tcp()`, so every protocol message, client
//! request and reply now crosses a real socket as a length-prefixed
//! `onepaxos::wire` frame. Sharded puts, cross-shard `txn_put`, relaxed
//! reads, batching and concurrent clients must all behave exactly as
//! they do over shared memory — that equivalence is what proves the
//! `Transport` abstraction (and the codec under it) honest.

use std::time::Duration;

use consensus_inside::onepaxos::multipaxos::{self, MultiPaxosNode};
use consensus_inside::onepaxos::onepaxos::{OnePaxosNode, Timing};
use consensus_inside::onepaxos::twopc::TwoPcNode;
use consensus_inside::onepaxos::{BatchConfig, ClusterConfig, EngineConfig, NodeId, Op};
use consensus_inside::onepaxos_runtime::ClusterBuilder;

fn cfg(m: &[NodeId], me: NodeId) -> ClusterConfig {
    ClusterConfig::new(m.to_vec(), me)
}

/// Relaxed timeouts: CI machines oversubscribe cores heavily, and TCP
/// adds syscall latency on top.
fn one_timing() -> Timing {
    Timing {
        tick: 2_000_000,
        io_timeout: 400_000_000,
        suspect_after: 800_000_000,
    }
}

fn mp_timing() -> multipaxos::Timing {
    multipaxos::Timing {
        tick: 2_000_000,
        suspect_after: 800_000_000,
    }
}

#[test]
fn onepaxos_kv_over_tcp() {
    let t = one_timing();
    let (cluster, mut clients) = ClusterBuilder::new(3, move |m: &[NodeId], me| {
        OnePaxosNode::with_timing(cfg(m, me), t)
    })
    .clients(1)
    .spawn_tcp()
    .expect("tcp setup");
    let c = &mut clients[0];
    c.set_timeout(Duration::from_secs(2));
    assert_eq!(c.put(1, 11).expect("commit"), None);
    assert_eq!(c.put(1, 12).expect("commit"), Some(11));
    assert_eq!(c.get(1).expect("commit"), Some(12));
    assert_eq!(c.get(99).expect("commit"), None);
    assert_eq!(c.submit(Op::Noop).expect("commit"), None);
    cluster.shutdown();
}

#[test]
fn multipaxos_kv_over_tcp() {
    let t = mp_timing();
    let (cluster, mut clients) = ClusterBuilder::new(3, move |m: &[NodeId], me| {
        MultiPaxosNode::with_timing(cfg(m, me), t)
    })
    .clients(1)
    .spawn_tcp()
    .expect("tcp setup");
    let c = &mut clients[0];
    c.set_timeout(Duration::from_secs(2));
    assert_eq!(c.put(5, 50).expect("commit"), None);
    assert_eq!(c.get(5).expect("commit"), Some(50));
    cluster.shutdown();
}

#[test]
fn twopc_kv_over_tcp() {
    let (cluster, mut clients) =
        ClusterBuilder::new(3, |m: &[NodeId], me| TwoPcNode::new(cfg(m, me)))
            .clients(1)
            .spawn_tcp()
            .expect("tcp setup");
    let c = &mut clients[0];
    c.set_timeout(Duration::from_secs(2));
    assert_eq!(c.put(3, 33).expect("commit"), None);
    assert_eq!(c.get(3).expect("commit"), Some(33));
    cluster.shutdown();
}

#[test]
fn concurrent_clients_make_consistent_progress_over_tcp() {
    let t = one_timing();
    let (cluster, clients) = ClusterBuilder::new(3, move |m: &[NodeId], me| {
        OnePaxosNode::with_timing(cfg(m, me), t)
    })
    .clients(3)
    .spawn_tcp()
    .expect("tcp setup");
    let workers: Vec<_> = clients
        .into_iter()
        .enumerate()
        .map(|(w, mut c)| {
            std::thread::spawn(move || {
                c.set_timeout(Duration::from_secs(2));
                for i in 0..30u64 {
                    c.put(w as u64 * 100 + i, i).expect("commit");
                }
                // Own writes are visible through ordered reads.
                assert_eq!(c.get(w as u64 * 100).expect("commit"), Some(0));
                c
            })
        })
        .collect();
    let _clients: Vec<_> = workers.into_iter().map(|w| w.join().unwrap()).collect();
    let committed: Vec<u64> = cluster
        .metrics()
        .iter()
        .map(|m| m.committed.load(std::sync::atomic::Ordering::Relaxed))
        .collect();
    assert!(
        committed.iter().all(|&c| c >= 90),
        "every replica must commit all 90+ commands: {committed:?}"
    );
    cluster.shutdown();
}

#[test]
fn sharded_cluster_partitions_keys_over_tcp() {
    // Sharding over sockets: all shard-group topics multiplex one
    // connection per replica pair, tagged inside each frame, and the
    // key→group routing is byte-for-byte the shared-memory one.
    let t = one_timing();
    let (cluster, mut clients) = ClusterBuilder::new(3, move |m: &[NodeId], me| {
        OnePaxosNode::with_timing(cfg(m, me), t)
    })
    .clients(1)
    .shards(2)
    .spawn_tcp()
    .expect("tcp setup");
    let c = &mut clients[0];
    c.set_timeout(Duration::from_secs(2));
    let mut seen = std::collections::BTreeSet::new();
    for key in 0..12u64 {
        seen.insert(c.shard_of(key));
        assert_eq!(c.put(key, key * 7).expect("commit"), None, "key {key}");
    }
    assert_eq!(seen.len(), 2, "12 keys must touch both groups");
    for key in 0..12u64 {
        assert_eq!(c.get(key).expect("commit"), Some(key * 7), "key {key}");
    }
    cluster.shutdown();
}

#[test]
fn batched_sharded_cluster_over_tcp_via_engine_config() {
    // The unified EngineConfig drives the TCP deployment too; batch
    // accumulators and the frame codec compose.
    let t = one_timing();
    let (cluster, clients) = ClusterBuilder::new(3, move |m: &[NodeId], me| {
        OnePaxosNode::with_timing(cfg(m, me), t)
    })
    .clients(3)
    .config(
        EngineConfig::new()
            .shards(2)
            .batching(BatchConfig::new(4, 200_000)),
    )
    .spawn_tcp()
    .expect("tcp setup");
    let workers: Vec<_> = clients
        .into_iter()
        .enumerate()
        .map(|(w, mut c)| {
            std::thread::spawn(move || {
                c.set_timeout(Duration::from_secs(2));
                for i in 0..20u64 {
                    c.put(w as u64 * 100 + i, i).expect("commit");
                }
                assert_eq!(c.get(w as u64 * 100 + 19).expect("commit"), Some(19));
                c
            })
        })
        .collect();
    let _clients: Vec<_> = workers.into_iter().map(|w| w.join().unwrap()).collect();
    cluster.shutdown();
}

#[test]
fn txn_put_commits_atomically_across_shard_groups_over_tcp() {
    use consensus_inside::onepaxos::{ShardRouter, TxnOutcome};
    let t = one_timing();
    let (cluster, mut clients) = ClusterBuilder::new(3, move |m: &[NodeId], me| {
        OnePaxosNode::with_timing(cfg(m, me), t)
    })
    .clients(1)
    .shards(4)
    .spawn_tcp()
    .expect("tcp setup");
    let c = &mut clients[0];
    c.set_timeout(Duration::from_secs(2));
    // Two keys owned by different shard groups: a real cross-group 2PC,
    // every phase decision now a framed Op::Txn* on the wire.
    let router = ShardRouter::new(4);
    let k0 = 0u64;
    let k1 = (1u64..)
        .find(|&k| router.route_key(k) != router.route_key(k0))
        .unwrap();
    assert_ne!(c.shard_of(k0), c.shard_of(k1));
    assert_eq!(
        c.txn_put(&[(k0, 10), (k1, 20)]).expect("commit"),
        TxnOutcome::Committed
    );
    assert_eq!(c.get(k0).expect("read"), Some(10));
    assert_eq!(c.get(k1).expect("read"), Some(20));
    // Second transaction from the same handle: fresh TxnId over the wire.
    assert_eq!(
        c.txn_put(&[(k0, 30), (k1, 40)]).expect("commit"),
        TxnOutcome::Committed
    );
    assert_eq!(c.get(k0).expect("read"), Some(30));
    assert_eq!(c.get(k1).expect("read"), Some(40));
    // Single-shard write set short-circuits to one MultiPut agreement.
    let twin = (1u64..)
        .find(|&k| k != k0 && router.route_key(k) == router.route_key(k0))
        .unwrap();
    assert_eq!(
        c.txn_put(&[(k0, 11), (twin, 12)]).expect("commit"),
        TxnOutcome::Committed
    );
    assert_eq!(c.get(k0).expect("read"), Some(11));
    assert_eq!(c.get(twin).expect("read"), Some(12));
    // Plain traffic keeps working on the same handle afterwards.
    assert_eq!(c.put(k1, 21).expect("commit"), Some(40));
    cluster.shutdown();
}

#[test]
fn relaxed_reads_bypass_consensus_over_tcp() {
    let (cluster, mut clients) =
        ClusterBuilder::new(3, |m: &[NodeId], me| TwoPcNode::new(cfg(m, me)))
            .clients(1)
            .shards(2)
            .spawn_tcp()
            .expect("tcp setup");
    let c = &mut clients[0];
    c.set_timeout(Duration::from_secs(2));
    use consensus_inside::onepaxos::TxnOutcome;
    let router = consensus_inside::onepaxos::ShardRouter::new(2);
    let k0 = 0u64;
    let k1 = (1u64..)
        .find(|&k| router.route_key(k) != router.route_key(k0))
        .unwrap();
    assert_eq!(
        c.txn_put(&[(k0, 1), (k1, 2)]).expect("commit"),
        TxnOutcome::Committed
    );
    // Every replica answers from the local copy of the key's own group
    // (racing the outcome application only makes it wait, never lie).
    for n in 0..3u16 {
        assert_eq!(c.get_relaxed(NodeId(n), k0).expect("read"), Some(1));
        assert_eq!(c.get_relaxed(NodeId(n), k1).expect("read"), Some(2));
        assert_eq!(c.get_relaxed(NodeId(n), 9_999).expect("read"), None);
    }
    cluster.shutdown();
}

#[test]
fn relaxed_reads_degrade_to_ordered_for_paxos_over_tcp() {
    let t = one_timing();
    let (cluster, mut clients) = ClusterBuilder::new(3, move |m: &[NodeId], me| {
        OnePaxosNode::with_timing(cfg(m, me), t)
    })
    .clients(1)
    .spawn_tcp()
    .expect("tcp setup");
    let c = &mut clients[0];
    c.set_timeout(Duration::from_secs(2));
    assert_eq!(c.put(3, 33).expect("commit"), None);
    for n in 0..3u16 {
        assert_eq!(c.get_relaxed(NodeId(n), 3).expect("read"), Some(33));
    }
    cluster.shutdown();
}

#[test]
fn onepaxos_survives_stopped_backup_over_tcp() {
    // A dead socket peer must degrade exactly like a dead queue peer:
    // the transport drops the connection, the protocols keep going.
    let t = one_timing();
    let (cluster, mut clients) = ClusterBuilder::new(3, move |m: &[NodeId], me| {
        OnePaxosNode::with_timing(cfg(m, me), t)
    })
    .clients(1)
    .spawn_tcp()
    .expect("tcp setup");
    let c = &mut clients[0];
    c.set_timeout(Duration::from_secs(2));
    c.put(1, 1).expect("commit before fault");
    // n2 is a backup (leader n0, active acceptor n1).
    c.stop_replica(NodeId(2));
    std::thread::sleep(Duration::from_millis(50));
    for i in 2..8u64 {
        c.put(i, i).expect("commit with stopped backup");
    }
    assert_eq!(c.get(5).expect("read"), Some(5));
    cluster.shutdown();
}
