//! Property-based schedule exploration: the Appendix B safety properties
//! must hold under *every* delivery schedule, block/unblock pattern and
//! client behaviour — and liveness must return once the network heals.

use consensus_inside::onepaxos::mencius::MenciusNode;
use consensus_inside::onepaxos::multipaxos::MultiPaxosNode;
use consensus_inside::onepaxos::onepaxos::OnePaxosNode;
use consensus_inside::onepaxos::testnet::TestNet;
use consensus_inside::onepaxos::twopc::TwoPcNode;
use consensus_inside::onepaxos::{ClusterConfig, NodeId, Op, Protocol};
use proptest::prelude::*;

const N: u16 = 3;
const TICK: u64 = 100_000;

/// One step of an adversarial schedule.
#[derive(Clone, Debug)]
enum Step {
    /// Deliver the head message of the k-th currently deliverable link.
    Deliver(u8),
    /// Advance virtual time (fires due timers), then settle fully.
    AdvanceAndSettle(u8),
    /// Block a node (slow core).
    Block(u8),
    /// Unblock a node.
    Unblock(u8),
    /// Submit a fresh client request to a node.
    Request { target: u8, client: u8 },
    /// Re-submit the most recent request of a client to another node (a
    /// client retry after timeout).
    Retry { target: u8, client: u8 },
}

fn step_strategy() -> impl Strategy<Value = Step> {
    prop_oneof![
        4 => any::<u8>().prop_map(Step::Deliver),
        2 => any::<u8>().prop_map(Step::AdvanceAndSettle),
        1 => (0..N as u8).prop_map(Step::Block),
        2 => (0..N as u8).prop_map(Step::Unblock),
        3 => ((0..N as u8), (0..3u8)).prop_map(|(target, client)| Step::Request { target, client }),
        1 => ((0..N as u8), (0..3u8)).prop_map(|(target, client)| Step::Retry { target, client }),
    ]
}

/// Runs a schedule against a fresh cluster of protocol `P`; afterwards
/// heals the network and checks safety plus healed-liveness.
fn explore<P: Protocol>(
    steps: &[Step],
    make: impl FnMut(&[NodeId], NodeId) -> P,
    check_liveness: bool,
) -> Result<(), TestCaseError> {
    let mut net = TestNet::new(N, make);
    net.run_to_quiescence();
    let mut next_req = [0u64; 3];
    let mut issued: Vec<(NodeId, u64)> = Vec::new();
    for step in steps {
        match *step {
            Step::Deliver(k) => {
                let links = net.deliverable_links();
                if !links.is_empty() {
                    let (from, to) = links[k as usize % links.len()];
                    net.deliver_one(from, to);
                }
            }
            Step::AdvanceAndSettle(units) => {
                net.advance(TICK * (1 + units as u64 % 30));
                net.run_to_quiescence();
            }
            Step::Block(node) => {
                net.block(NodeId(node as u16));
            }
            Step::Unblock(node) => {
                net.unblock(NodeId(node as u16));
            }
            Step::Request { target, client } => {
                let c = NodeId(100 + client as u16);
                next_req[client as usize] += 1;
                let r = next_req[client as usize];
                let t = NodeId(target as u16);
                if !net.is_blocked(t) {
                    net.client_request(t, c, r, Op::Noop);
                    issued.push((c, r));
                }
            }
            Step::Retry { target, client } => {
                let c = NodeId(100 + client as u16);
                let r = next_req[client as usize];
                let t = NodeId(target as u16);
                if r > 0 && !net.is_blocked(t) {
                    net.client_request(t, c, r, Op::Noop);
                }
            }
        }
        // Safety must hold at every point of every schedule.
        net.assert_consistent();
    }
    // Heal: unblock everyone, give the timers plenty of rounds.
    for n in 0..N {
        net.unblock(NodeId(n));
    }
    for _ in 0..60 {
        net.advance(TICK * 25);
        net.run_to_quiescence();
    }
    net.assert_consistent();
    if check_liveness {
        // Every issued request commits somewhere once the network heals.
        let committed: std::collections::BTreeSet<(NodeId, u64)> = (0..N)
            .flat_map(|n| net.commits(NodeId(n)).values().map(|c| c.id()))
            .collect();
        for id in &issued {
            prop_assert!(
                committed.contains(id),
                "request {id:?} never committed after healing"
            );
        }
        // All replicas converge to the same committed log.
        let logs: Vec<_> = (0..N).map(|n| net.commits(NodeId(n)).clone()).collect();
        for n in 1..N as usize {
            prop_assert_eq!(&logs[0], &logs[n], "replica logs diverged");
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 96,
        max_shrink_iters: 2_000,
        ..ProptestConfig::default()
    })]

    #[test]
    fn onepaxos_is_safe_and_heals(steps in prop::collection::vec(step_strategy(), 0..80)) {
        explore(
            &steps,
            |m, me| OnePaxosNode::new(ClusterConfig::new(m.to_vec(), me)),
            true,
        )?;
    }

    #[test]
    fn multipaxos_is_safe_and_heals(steps in prop::collection::vec(step_strategy(), 0..80)) {
        explore(
            &steps,
            |m, me| MultiPaxosNode::new(ClusterConfig::new(m.to_vec(), me)),
            true,
        )?;
    }

    #[test]
    fn twopc_is_safe(steps in prop::collection::vec(step_strategy(), 0..80)) {
        // 2PC is blocking: liveness is not guaranteed under this
        // adversary (a request can be stuck behind a round whose
        // participant was blocked at the wrong moment), but safety and
        // replica convergence must hold.
        explore(
            &steps,
            |m, me| TwoPcNode::new(ClusterConfig::new(m.to_vec(), me)),
            false,
        )?;
    }

    #[test]
    fn mencius_is_safe_and_heals(steps in prop::collection::vec(step_strategy(), 0..80)) {
        // Multi-leader: every node advocates its own requests in its own
        // slots; skips fill the rest. After healing, every issued request
        // must be decided and all logs agree.
        explore(
            &steps,
            |m, me| MenciusNode::new(ClusterConfig::new(m.to_vec(), me)),
            true,
        )?;
    }
}
