//! Criterion smoke-bench of every figure harness at reduced scale, so
//! `cargo bench` exercises each experiment path end to end.

use consensus_bench::experiments::{
    exp_ip, fig10, fig2, fig8, fig9, slow_core_timeline, tab_latency, Proto,
};
use criterion::{criterion_group, criterion_main, Criterion};
use manycore_sim::Fault;
use std::hint::black_box;

fn figures(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures_reduced_scale");
    g.sample_size(10);
    g.bench_function("fig2", |b| b.iter(|| black_box(fig2(&[1, 3], 30_000_000))));
    g.bench_function("tab_latency", |b| b.iter(|| black_box(tab_latency(100))));
    g.bench_function("fig8_onepaxos", |b| {
        b.iter(|| black_box(fig8(Proto::OnePaxos, &[1, 8], 30_000_000)))
    });
    g.bench_function("fig9_joint", |b| {
        b.iter(|| black_box(fig9(Proto::OnePaxos, &[3, 10], 60_000_000)))
    });
    g.bench_function("fig10_reads", |b| b.iter(|| black_box(fig10(40_000_000))));
    g.bench_function("fig11_slow_leader", |b| {
        b.iter(|| {
            black_box(slow_core_timeline(
                Proto::OnePaxos,
                &[Fault {
                    at: 100_000_000,
                    core: 0,
                    slowdown: 400.0,
                }],
                400_000_000,
            ))
        })
    });
    g.bench_function("exp_ip", |b| b.iter(|| black_box(exp_ip(10, 300_000_000))));
    g.finish();
}

criterion_group!(benches, figures);
criterion_main!(benches);
