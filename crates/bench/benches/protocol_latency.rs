//! Criterion bench over the §7.2 commit path: wall time of a fixed-size
//! simulated run per protocol. Since simulator work is proportional to
//! event (= message) count, the relative cost of the three protocols here
//! mirrors their message complexity: 1Paxos < Multi-Paxos ≈ 2PC.

use consensus_bench::experiments::{run, Proto, RunCfg};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn commit_path(c: &mut Criterion) {
    let mut g = c.benchmark_group("commit_path_100req");
    g.sample_size(20);
    for p in [Proto::OnePaxos, Proto::MultiPaxos, Proto::TwoPc, Proto::BasicPaxos] {
        g.bench_function(p.name(), |b| {
            b.iter(|| {
                let r = run(
                    p,
                    &RunCfg {
                        requests: 100,
                        ..RunCfg::standard48()
                    },
                );
                black_box(r.completed)
            })
        });
    }
    g.finish();
}

fn saturation_run(c: &mut Criterion) {
    let mut g = c.benchmark_group("saturated_50ms_12clients");
    g.sample_size(10);
    for p in Proto::PAPER_SET {
        g.bench_function(p.name(), |b| {
            b.iter(|| {
                let r = run(p, &RunCfg::throughput48(12, 50_000_000));
                black_box(r.throughput)
            })
        });
    }
    g.finish();
}

criterion_group!(benches, commit_path, saturation_run);
criterion_main!(benches);
