//! Criterion microbenches of the wire codec hot path: frame encode into
//! a pooled [`SendQueue`] segment, chunked decode out of a [`RecvBuf`],
//! and the full encode→frame→decode round trip for the op shapes the
//! transports actually carry. These are the per-frame costs that bound
//! `exp_wire`'s tcp row once the syscalls themselves are paid.
//!
//! Like the sibling benches, this file needs the `criterion` crate and
//! is kept out of the offline build by `autobenches = false`; the CI
//! `codec-bench` job adds criterion as a dev-dependency and runs it
//! non-gating.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use std::io::IoSlice;
use std::sync::Arc;

use onepaxos::wire::{decode_exact, encode_to_vec, Codec, RecvBuf, SendQueue};
use onepaxos::{Command, NodeId, Op};

/// The op shapes worth separate data points: the keyless noop the paper
/// benchmarks with, a plain put, and a payload-bearing batch where the
/// zero-copy decode path matters most.
fn shapes() -> Vec<(&'static str, Op)> {
    let batch: Arc<[Command]> = (0..16u64)
        .map(|i| Command::new(NodeId(0), i, Op::Put { key: i, value: i }))
        .collect();
    vec![
        ("noop", Op::Noop),
        ("put", Op::Put { key: 7, value: 42 }),
        ("batch16", Op::Batch(batch)),
    ]
}

fn encode_into_sendqueue(c: &mut Criterion) {
    let mut g = c.benchmark_group("frame_encode");
    for (name, op) in shapes() {
        g.throughput(Throughput::Elements(1));
        g.bench_with_input(BenchmarkId::from_parameter(name), &op, |b, op| {
            let mut q = SendQueue::new();
            b.iter(|| {
                q.push_frame(|out| op.encode(out));
                // Consume what was queued so the pooled segment is
                // recycled instead of growing without bound.
                let n = q.queued_bytes();
                q.consume(n);
            })
        });
    }
    g.finish();
}

fn decode_from_recvbuf(c: &mut Criterion) {
    let mut g = c.benchmark_group("frame_decode");
    for (name, op) in shapes() {
        // One pre-framed wire image, replayed into the chunked reader.
        let mut q = SendQueue::new();
        q.push_frame(|out| op.encode(out));
        let mut bufs = [IoSlice::new(&[]); 8];
        let n = q.slices(&mut bufs);
        let image: Vec<u8> = bufs[..n].iter().flat_map(|s| s.to_vec()).collect();

        g.throughput(Throughput::Bytes(image.len() as u64));
        g.bench_with_input(BenchmarkId::from_parameter(name), &image, |b, image| {
            let mut rb = RecvBuf::new();
            b.iter(|| {
                rb.writable()[..image.len()].copy_from_slice(image);
                rb.commit(image.len());
                let frame = rb.next_frame().expect("well-formed").expect("complete");
                black_box(decode_exact::<Op>(frame.as_slice()).expect("decodes"));
            })
        });
    }
    g.finish();
}

fn round_trip(c: &mut Criterion) {
    let mut g = c.benchmark_group("codec_round_trip");
    for (name, op) in shapes() {
        g.throughput(Throughput::Elements(1));
        g.bench_with_input(BenchmarkId::from_parameter(name), &op, |b, op| {
            b.iter(|| {
                let bytes = encode_to_vec(black_box(op));
                black_box(decode_exact::<Op>(&bytes).expect("round trip"))
            })
        });
    }
    g.finish();
}

criterion_group!(benches, encode_into_sendqueue, decode_from_recvbuf, round_trip);
criterion_main!(benches);
