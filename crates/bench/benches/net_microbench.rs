//! Criterion bench of the real qc-channel substrate: the §3 transmission
//! measurement, single-slot ping cycles, and the §6.1 design ablations
//! (slot count).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use qc_channel::spsc;
use std::hint::black_box;

fn transmission(c: &mut Criterion) {
    // §3: sender repeatedly issuing messages into an (effectively)
    // unbounded queue — per-message cost ≈ transmission delay.
    let mut g = c.benchmark_group("transmission_delay");
    g.throughput(Throughput::Elements(1));
    g.bench_function("unbounded_send", |b| {
        b.iter_custom(|iters| {
            let (tx, _rx) = spsc::channel::<u64>(iters as usize + 1);
            let start = std::time::Instant::now();
            for i in 0..iters {
                tx.try_send(i).unwrap();
            }
            start.elapsed()
        })
    });
    g.finish();
}

fn single_slot_cycle(c: &mut Criterion) {
    // §3: 1-slot queue with an active consumer — cycle ≈ 2·trans+2·prop.
    let mut g = c.benchmark_group("propagation_cycle");
    g.throughput(Throughput::Elements(1));
    g.bench_function("single_slot_ping", |b| {
        b.iter_custom(|iters| {
            let (tx, rx) = spsc::channel::<u64>(1);
            let consumer = std::thread::spawn(move || {
                let mut got = 0u64;
                while got < iters {
                    if rx.try_recv().is_some() {
                        got += 1;
                    } else {
                        std::hint::spin_loop();
                    }
                }
            });
            let start = std::time::Instant::now();
            for i in 0..iters {
                tx.send_spin(i);
            }
            let d = start.elapsed();
            consumer.join().unwrap();
            d
        })
    });
    g.finish();
}

fn slot_count_ablation(c: &mut Criterion) {
    // §6.1 ablation: the paper defaults to 7 slots per queue. Streaming
    // throughput across threads as the queue depth varies.
    let mut g = c.benchmark_group("slot_count");
    g.throughput(Throughput::Elements(10_000));
    for slots in [1usize, 3, 7, 15, 63] {
        g.bench_with_input(BenchmarkId::from_parameter(slots), &slots, |b, &slots| {
            b.iter_custom(|iters| {
                let n: u64 = 10_000;
                let mut total = std::time::Duration::ZERO;
                for _ in 0..iters {
                    let (tx, rx) = spsc::channel::<u64>(slots);
                    let consumer = std::thread::spawn(move || {
                        let mut got = 0u64;
                        while got < n {
                            if rx.try_recv().is_some() {
                                got += 1;
                            } else {
                                std::hint::spin_loop();
                            }
                        }
                    });
                    let start = std::time::Instant::now();
                    for i in 0..n {
                        tx.send_spin(i);
                    }
                    total += start.elapsed();
                    consumer.join().unwrap();
                }
                total
            })
        });
    }
    g.finish();
}

fn broadcast_vs_unicast(c: &mut Criterion) {
    // §8 ablation: ZIMP-style one-to-many broadcast vs the per-pair
    // unicast QC-libtask chose. The unicast *sender* pays O(subscribers)
    // per message; the broadcast writer pays O(1) but shares cache lines
    // with every reader.
    use qc_channel::broadcast;
    let mut g = c.benchmark_group("fanout_3_readers");
    g.throughput(Throughput::Elements(2_000));
    g.bench_function("unicast_per_pair", |b| {
        b.iter_custom(|iters| {
            let n: u64 = 2_000;
            let mut total = std::time::Duration::ZERO;
            for _ in 0..iters {
                let pairs: Vec<_> = (0..3).map(|_| spsc::channel::<u64>(64)).collect();
                let mut txs = Vec::new();
                let mut readers = Vec::new();
                for (tx, rx) in pairs {
                    txs.push(tx);
                    readers.push(std::thread::spawn(move || {
                        let mut got = 0u64;
                        while got < n {
                            if rx.try_recv().is_some() {
                                got += 1;
                            } else {
                                std::thread::yield_now();
                            }
                        }
                    }));
                }
                let start = std::time::Instant::now();
                for i in 0..n {
                    for tx in &txs {
                        tx.send_spin(i);
                    }
                }
                total += start.elapsed();
                for r in readers {
                    r.join().unwrap();
                }
            }
            total
        })
    });
    g.bench_function("zimp_broadcast", |b| {
        b.iter_custom(|iters| {
            let n: u64 = 2_000;
            let mut total = std::time::Duration::ZERO;
            for _ in 0..iters {
                let (bx, subs) = broadcast::channel::<u64>(64, 3);
                let readers: Vec<_> = subs
                    .into_iter()
                    .map(|mut s| {
                        std::thread::spawn(move || {
                            let mut got = 0u64;
                            while got < n {
                                if s.try_recv().is_some() {
                                    got += 1;
                                } else {
                                    std::thread::yield_now();
                                }
                            }
                        })
                    })
                    .collect();
                let start = std::time::Instant::now();
                for i in 0..n {
                    bx.broadcast_spin(i);
                }
                total += start.elapsed();
                for r in readers {
                    r.join().unwrap();
                }
            }
            total
        })
    });
    g.finish();
}

fn mailbox_poll(c: &mut Criterion) {
    use qc_channel::Mailbox;
    let mut g = c.benchmark_group("mailbox");
    g.bench_function("poll_16_peers_one_ready", |b| {
        let mut mb: Mailbox<u16, u64> = Mailbox::new();
        let mut txs = Vec::new();
        for p in 0..16u16 {
            let (tx, rx) = spsc::channel::<u64>(8);
            mb.add_peer(p, rx);
            txs.push(tx);
        }
        b.iter(|| {
            txs[7].try_send(1).unwrap();
            black_box(mb.poll())
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    transmission,
    single_slot_cycle,
    slot_count_ablation,
    broadcast_vs_unicast,
    mailbox_poll
);
criterion_main!(benches);
