//! Tiny aligned-text table printer for the experiment binaries.

/// Builds an aligned text table.
///
/// # Examples
///
/// ```
/// use consensus_bench::table::Table;
/// let mut t = Table::new(&["protocol", "latency"]);
/// t.row(&["1Paxos", "16.0"]);
/// let s = t.render();
/// assert!(s.contains("1Paxos"));
/// ```
#[derive(Debug)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must have as many cells as the header).
    ///
    /// # Panics
    ///
    /// Panics on a column-count mismatch.
    pub fn row(&mut self, cells: &[impl AsRef<str>]) {
        assert_eq!(cells.len(), self.header.len(), "column count mismatch");
        self.rows
            .push(cells.iter().map(|c| c.as_ref().to_string()).collect());
    }

    /// Renders the table with a separator under the header.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths = vec![0usize; cols];
        for (i, h) in self.header.iter().enumerate() {
            widths[i] = widths[i].max(h.chars().count());
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.chars().count());
            }
        }
        let fmt_row = |cells: &[String]| {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>w$}", c, w = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let mut out = String::new();
        out.push_str(&fmt_row(&self.header));
        out.push('\n');
        out.push_str(
            &widths
                .iter()
                .map(|&w| "-".repeat(w))
                .collect::<Vec<_>>()
                .join("  "),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }
}

/// Formats ops/sec with thousands separators.
pub fn ops(v: f64) -> String {
    let n = v.round() as u64;
    let s = n.to_string();
    let mut out = String::new();
    for (i, ch) in s.chars().enumerate() {
        if i > 0 && (s.len() - i).is_multiple_of(3) {
            out.push(',');
        }
        out.push(ch);
    }
    out
}

/// Formats a microsecond value with one decimal.
pub fn us(v: f64) -> String {
    format!("{v:.1}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(&["a", "long-header"]);
        t.row(&["x", "1"]);
        t.row(&["yyyy", "22"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert_eq!(lines[1].len(), lines[0].len());
    }

    #[test]
    fn ops_formats_thousands() {
        assert_eq!(ops(1234567.4), "1,234,567");
        assert_eq!(ops(999.0), "999");
        assert_eq!(ops(0.0), "0");
    }

    #[test]
    #[should_panic(expected = "column count mismatch")]
    fn row_width_checked() {
        let mut t = Table::new(&["a", "b"]);
        t.row(&["only-one"]);
    }
}
