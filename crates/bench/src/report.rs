//! Shared scaffolding for the `BENCH_*.json` experiment binaries: the
//! `--smoke`/`--out` CLI contract and the hand-rolled JSON envelope (the
//! workspace builds offline, without serde). One implementation, so the
//! recorded data files cannot silently diverge in shape between
//! experiments.

use std::fmt::Write as _;

/// The CLI every `BENCH_*.json`-writing binary speaks:
/// `<bin> [--smoke] [--out PATH]`.
#[derive(Clone, Debug)]
pub struct BenchCli {
    /// Run the reduced CI-speed variant of the sweep.
    pub smoke: bool,
    out: Option<String>,
}

impl BenchCli {
    /// Parses the process arguments.
    pub fn parse() -> Self {
        let args: Vec<String> = std::env::args().skip(1).collect();
        BenchCli {
            smoke: args.iter().any(|a| a == "--smoke"),
            out: args
                .iter()
                .position(|a| a == "--out")
                .and_then(|i| args.get(i + 1))
                .cloned(),
        }
    }

    /// The output path: `--out` if given, else `default`.
    pub fn out_path<'a>(&'a self, default: &'a str) -> &'a str {
        self.out.as_deref().unwrap_or(default)
    }
}

/// Renders the common experiment envelope:
///
/// ```json
/// { "experiment": ..., "protocol": ..., <meta...>, "smoke": ..., "points": [...] }
/// ```
///
/// `meta` values are raw JSON fragments (numbers unquoted, strings
/// pre-quoted by the caller); `rows` are pre-rendered point objects, one
/// per line.
pub fn render_json(
    experiment: &str,
    protocol: &str,
    meta: &[(&str, String)],
    smoke: bool,
    rows: &[String],
) -> String {
    let mut s = String::from("{\n");
    let _ = writeln!(s, "  \"experiment\": \"{experiment}\",");
    let _ = writeln!(s, "  \"protocol\": \"{protocol}\",");
    for (key, value) in meta {
        let _ = writeln!(s, "  \"{key}\": {value},");
    }
    let _ = writeln!(s, "  \"smoke\": {smoke},");
    s.push_str("  \"points\": [\n");
    for (i, row) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        let _ = writeln!(s, "    {row}{comma}");
    }
    s.push_str("  ]\n}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn envelope_shape_is_stable() {
        let json = render_json(
            "demo",
            "1Paxos",
            &[
                ("profile", "\"opteron-48\"".into()),
                ("clients", "4".into()),
            ],
            true,
            &["{\"x\": 1}".into(), "{\"x\": 2}".into()],
        );
        assert_eq!(
            json,
            "{\n  \"experiment\": \"demo\",\n  \"protocol\": \"1Paxos\",\n  \
             \"profile\": \"opteron-48\",\n  \"clients\": 4,\n  \"smoke\": true,\n  \
             \"points\": [\n    {\"x\": 1},\n    {\"x\": 2}\n  ]\n}\n"
        );
    }

    #[test]
    fn last_row_has_no_trailing_comma() {
        let json = render_json("d", "p", &[], false, &["{}".into()]);
        assert!(json.contains("    {}\n  ]"));
        assert!(!json.contains("{},"));
    }
}
