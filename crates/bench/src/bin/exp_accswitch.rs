//! §5.2/§5.4 behaviour: acceptor switching and the double-failure
//! trade-off, shown as throughput timelines.
//!
//! Expected shape: a slow *acceptor* causes a brief dip while the leader
//! installs a backup acceptor via PaxosUtility, then full recovery; when
//! the leader and the acceptor are slow *simultaneously*, 1Paxos blocks —
//! by design, trading liveness for safety — and resumes as soon as the
//! acceptor responds again.

use consensus_bench::experiments::exp_accswitch;
use consensus_bench::table::{ops, Table};

fn main() {
    println!("§5.2/§5.4 — acceptor switch and double failure (8-core profile, 5 clients)\n");
    for (label, timeline) in exp_accswitch(900_000_000) {
        println!("{label}:");
        let mut t = Table::new(&["t (ms)", "op/s"]);
        for (i, (at, rate)) in timeline.iter().enumerate() {
            if i % 4 != 0 {
                continue;
            }
            t.row(&[format!("{}", at / 1_000_000), ops(*rate)]);
        }
        print!("{}", t.render());
        println!();
    }
}
