//! Cross-shard transaction sweep: committed-txn throughput vs cross-shard
//! fan-out (1, 2, 4 shard groups touched) against the plain batched-put
//! baseline, on the saturated sharded 48-core sim harness.
//!
//! The transaction layer (`onepaxos::txn`) runs classic 2PC across the
//! per-shard Paxos groups, every phase a command agreed by the
//! participant group's own log — with the fan-out hot path riding three
//! compounding optimizations: shard-id-ordered prepares with lock-wait
//! queues (conflicts park instead of aborting), presumed-durability
//! early ack (the commit is acked at unanimous yes votes and the outcome
//! legs drain in the background, overlapping the next transaction's
//! prepares), and conflict-aware scheduling (re-probes and write sets
//! aimed at recently-contended keys are held back one flush window).
//! A fan-out-F transaction still buys its atomicity with F prepare + F
//! outcome agreements, but the client-visible critical path is the
//! prepare phase only — while the fan-out-1 short-circuit
//! (`Op::MultiPut`, one agreement, no lock window) must ride the
//! ordinary batched-put path at ordinary cost. This experiment records
//! both facts plus the latency distribution (p50/p99/p999) in
//! `BENCH_txn.json` and gates on them (`bench-smoke` runs the `--smoke`
//! variant in CI): single-shard transactions within 10% of plain batched
//! puts, cross-shard fan-out-2 at half the plain-put rate or better, and
//! an abort rate below one per hundred committed transactions.
//!
//! Usage: `exp_txn [--smoke] [--out PATH]`

use consensus_bench::experiments::{exp_txn, Proto};
use consensus_bench::report::{render_json, BenchCli};
use consensus_bench::table::{ops, us, Table};
use onepaxos::BatchConfig;

/// Batching on every point (transactions must compose with the batch
/// accumulator, not replace it): the depth the batching sweep found best
/// at saturation.
const BATCH: (usize, u64) = (8, 20_000);

/// Shard groups in the deployment (the fan-out sweep's ceiling).
const SHARDS: u16 = 4;

fn main() {
    let cli = BenchCli::parse();
    let out_path = cli.out_path("BENCH_txn.json");

    // Smoke keeps CI fast: the two gated points on a shorter run. The
    // full sweep adds fan-out 4 (every transaction touches every group)
    // and more clients: 3×4 = 12 replica-shard processes + 24 clients =
    // 36 cores of the 48-core profile.
    let (fanouts, clients, duration): (&[u16], usize, u64) = if cli.smoke {
        (&[1, 2], 16, 120_000_000)
    } else {
        (&[1, 2, 4], 24, 300_000_000)
    };
    let proto = Proto::OnePaxos;

    println!(
        "Cross-shard txn sweep — {} replicas=3 shards={SHARDS} clients={clients} \
         duration={}ms batch={}cmds/{}µs{}\n",
        proto.name(),
        duration / 1_000_000,
        BATCH.0,
        BATCH.1 / 1_000,
        if cli.smoke { " (smoke)" } else { "" }
    );
    let points = exp_txn(
        proto,
        fanouts,
        SHARDS,
        clients,
        duration,
        BatchConfig::new(BATCH.0, BATCH.1),
        0, // uniform keys; the hot_pct contention knob is for targeted runs
    );

    let mut t = Table::new(&[
        "workload",
        "fanout",
        "op/s",
        "mean µs",
        "p50 µs",
        "p99 µs",
        "p999 µs",
        "aborts/txn",
        "retries",
        "vs puts",
    ]);
    let base = points[0].throughput;
    for p in &points {
        t.row(&[
            if p.txn { "txn" } else { "plain puts" }.to_string(),
            if p.txn {
                p.fanout.to_string()
            } else {
                "-".to_string()
            },
            ops(p.throughput),
            us(p.latency_us),
            us(p.p50_us),
            us(p.p99_us),
            us(p.p999_us),
            format!("{:.4}", p.abort_rate),
            p.retries.to_string(),
            format!("{:.2}x", p.throughput / base),
        ]);
    }
    print!("{}", t.render());

    let rows: Vec<String> = points
        .iter()
        .map(|p| {
            format!(
                "{{\"txn\": {}, \"fanout\": {}, \"throughput_ops\": {:.1}, \
                 \"mean_latency_us\": {:.2}, \"p50_us\": {:.2}, \"p99_us\": {:.2}, \
                 \"p999_us\": {:.2}, \"server_messages\": {}, \"completed\": {}, \
                 \"aborted\": {}, \"abort_rate\": {:.5}, \"retries\": {}}}",
                p.txn,
                p.fanout,
                p.throughput,
                p.latency_us,
                p.p50_us,
                p.p99_us,
                p.p999_us,
                p.server_messages,
                p.completed,
                p.aborted,
                p.abort_rate,
                p.retries
            )
        })
        .collect();
    let json = render_json(
        "txn",
        proto.name(),
        &[
            ("profile", "\"opteron-48\"".into()),
            ("shards", SHARDS.to_string()),
            ("clients", clients.to_string()),
            ("duration_ns", duration.to_string()),
            ("batch_max_commands", BATCH.0.to_string()),
            ("batch_max_delay_ns", BATCH.1.to_string()),
        ],
        cli.smoke,
        &rows,
    );
    std::fs::write(out_path, &json).expect("write BENCH_txn.json");
    println!("\nwrote {out_path}");

    // The acceptance gates, both modes.
    let baseline = &points[0];
    let f1 = points
        .iter()
        .find(|p| p.txn && p.fanout == 1)
        .expect("sweep includes fan-out 1");
    let f2 = points
        .iter()
        .find(|p| p.txn && p.fanout == 2)
        .expect("sweep includes fan-out 2");
    println!(
        "fanout-1 txns: {} op/s vs plain batched puts: {} op/s ({:.2}x); \
         fanout-2: {} op/s ({:.2}x), {} committed, {} aborted ({:.4}/txn), {} retries",
        ops(f1.throughput),
        ops(baseline.throughput),
        f1.throughput / baseline.throughput,
        ops(f2.throughput),
        f2.throughput / baseline.throughput,
        f2.completed,
        f2.aborted,
        f2.abort_rate,
        f2.retries
    );
    if f1.throughput < 0.9 * baseline.throughput {
        eprintln!("FAIL: single-shard txns must stay within 10% of plain batched puts");
        std::process::exit(1);
    }
    if f2.completed == 0 || f2.throughput <= 0.0 {
        eprintln!("FAIL: fan-out-2 transactions made no forward progress");
        std::process::exit(1);
    }
    if f2.throughput < 0.5 * baseline.throughput {
        eprintln!(
            "FAIL: fan-out-2 txns must reach half the plain batched-put rate \
             (got {:.2}x) — the fan-out cliff is back",
            f2.throughput / baseline.throughput
        );
        std::process::exit(1);
    }
    if f2.abort_rate > 0.01 {
        eprintln!(
            "FAIL: fan-out-2 abort rate {:.4} aborts/committed txn exceeds 0.01 — \
             the lock-wait queues or the conflict-aware scheduler regressed",
            f2.abort_rate
        );
        std::process::exit(1);
    }
}
