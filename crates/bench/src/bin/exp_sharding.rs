//! Shard-count sweep: throughput/latency vs number of key-hash-routed
//! consensus groups, on the saturated 48-core sim harness with batching
//! enabled on every point.
//!
//! The engine is the unit of sharding: S independent `ReplicaEngine`
//! groups with key-hash routing put S leader cores to work, so agreement
//! throughput scales with cores while protocol code stays untouched —
//! the ROADMAP's structural multiplier after batching. This experiment
//! measures the payoff end-to-end and records it in
//! `BENCH_sharding.json`, so the perf trajectory has data and CI can
//! fail on a sharding regression (`bench-smoke` runs the `--smoke`
//! variant and asserts S=4 beats S=1; the full sweep additionally gates
//! S=4 ≥ 2× S=1).
//!
//! Usage: `exp_sharding [--smoke] [--out PATH]`

use consensus_bench::experiments::{exp_sharding, Proto};
use consensus_bench::report::{render_json, BenchCli};
use consensus_bench::table::{ops, us, Table};
use onepaxos::BatchConfig;

/// Batching for every point (the acceptance criterion compares *batched*
/// runs): the depth the batching sweep found best at saturation.
const BATCH: (usize, u64) = (8, 20_000);

fn main() {
    let cli = BenchCli::parse();
    let out_path = cli.out_path("BENCH_sharding.json");

    // Smoke mode keeps CI fast: the two points the acceptance gate
    // compares, on a shorter (still saturated) run. The full sweep uses
    // 24 clients, which saturate even four shard groups while S=8 still
    // fits the profile: 24 replica-shard processes + 24 clients = 48
    // cores.
    let (shard_counts, clients, duration): (&[u16], usize, u64) = if cli.smoke {
        (&[1, 4], 16, 120_000_000)
    } else {
        (&[1, 2, 4, 8], 24, 300_000_000)
    };
    let proto = Proto::OnePaxos;

    println!(
        "Shard-count sweep — {} replicas=3 clients={clients} duration={}ms \
         batch={}cmds/{}µs{}\n",
        proto.name(),
        duration / 1_000_000,
        BATCH.0,
        BATCH.1 / 1_000,
        if cli.smoke { " (smoke)" } else { "" }
    );
    let points = exp_sharding(
        proto,
        shard_counts,
        clients,
        duration,
        BatchConfig::new(BATCH.0, BATCH.1),
    );

    let mut t = Table::new(&["shards", "op/s", "mean µs", "server msgs", "vs S=1"]);
    let base = points[0].throughput;
    for p in &points {
        t.row(&[
            p.shards.to_string(),
            ops(p.throughput),
            us(p.latency_us),
            p.server_messages.to_string(),
            format!("{:.2}x", p.throughput / base),
        ]);
    }
    print!("{}", t.render());

    let rows: Vec<String> = points
        .iter()
        .map(|p| {
            format!(
                "{{\"shards\": {}, \"throughput_ops\": {:.1}, \"mean_latency_us\": {:.2}, \
                 \"server_messages\": {}, \"completed\": {}}}",
                p.shards, p.throughput, p.latency_us, p.server_messages, p.completed
            )
        })
        .collect();
    let json = render_json(
        "sharding",
        proto.name(),
        &[
            ("profile", "\"opteron-48\"".into()),
            ("clients", clients.to_string()),
            ("duration_ns", duration.to_string()),
            ("batch_max_commands", BATCH.0.to_string()),
            ("batch_max_delay_ns", BATCH.1.to_string()),
        ],
        cli.smoke,
        &rows,
    );
    std::fs::write(out_path, &json).expect("write BENCH_sharding.json");
    println!("\nwrote {out_path}");

    // The acceptance gates. Both modes: S=4 must strictly beat S=1 (the
    // CI direction check). Full mode: S=4 must reach 2x — the point of a
    // structural multiplier is multiplying.
    let s1 = points
        .iter()
        .find(|p| p.shards == 1)
        .expect("sweep includes the unsharded baseline");
    let s4 = points
        .iter()
        .find(|p| p.shards == 4)
        .expect("sweep includes 4 shards");
    println!(
        "S=4: {} op/s vs S=1: {} op/s ({:.2}x)",
        ops(s4.throughput),
        ops(s1.throughput),
        s4.throughput / s1.throughput
    );
    if s4.throughput <= s1.throughput {
        eprintln!("FAIL: 4 shards must strictly beat 1 shard");
        std::process::exit(1);
    }
    if !cli.smoke && s4.throughput < 2.0 * s1.throughput {
        eprintln!("FAIL: the full sweep requires S=4 >= 2x S=1 saturated throughput");
        std::process::exit(1);
    }
}
