//! Adaptive-vs-static batch-depth sweep: throughput/latency at three
//! offered-load levels, sharded and unsharded, comparing the engine's
//! adaptive depth controller against every static depth.
//!
//! The PR 2 sweep (`BENCH_batching.json`) showed the optimal static
//! depth tracks offered load — 16 is best at 24 closed-loop clients
//! while 32 already loses throughput and adds latency — so any fixed
//! `BatchConfig` is wrong at every load but one. The adaptive controller
//! (`BatchConfig::Adaptive`, see `onepaxos::engine`) is the cure: it
//! must land within a few percent of whichever static depth happens to
//! win at *each* load, without being told the load. This experiment
//! measures that end-to-end and records it in `BENCH_adaptive.json`, so
//! CI can fail on a controller regression (`bench-smoke` runs the
//! `--smoke` variant and asserts adaptive beats unbatched and reaches
//! 90% of the best static point).
//!
//! Usage: `exp_adaptive [--smoke] [--out PATH]`

use consensus_bench::experiments::{exp_adaptive, AdaptivePoint, Proto};
use consensus_bench::report::{render_json, BenchCli};
use consensus_bench::table::{ops, us, Table};

/// Flush deadline for every batched point (static and adaptive): the
/// PR 2 choice, well under the 1 ms client patience.
const MAX_DELAY: u64 = 20_000;

/// Adaptive depth ceiling: the largest static depth in the sweep, so
/// the controller's whole range is covered by static reference points.
const CAP: usize = 32;

fn main() {
    let cli = BenchCli::parse();
    let out_path = cli.out_path("BENCH_adaptive.json");

    // Smoke mode keeps CI fast: one saturated load, the statics the gate
    // compares against (off / the known-best 16 / the overshooting 32),
    // on a shorter run. The full sweep covers three offered-load levels
    // (48 clients outnumber the profile's spare cores and are
    // co-located, see `packed_placement`), sharded and unsharded.
    let (loads, shard_counts, statics, duration): (&[usize], &[u16], &[usize], u64) = if cli.smoke {
        (&[24], &[1], &[1, 16, 32], 120_000_000)
    } else {
        (&[6, 24, 48], &[1, 4], &[1, 8, 16, 32], 200_000_000)
    };
    let proto = Proto::OnePaxos;

    println!(
        "Adaptive batch-depth sweep — {} replicas=3 loads={loads:?} shards={shard_counts:?} \
         duration={}ms delay={}µs cap={CAP}{}\n",
        proto.name(),
        duration / 1_000_000,
        MAX_DELAY / 1_000,
        if cli.smoke { " (smoke)" } else { "" }
    );
    let points = exp_adaptive(
        proto,
        loads,
        shard_counts,
        statics,
        CAP,
        duration,
        MAX_DELAY,
    );

    let mut t = Table::new(&[
        "clients",
        "shards",
        "policy",
        "op/s",
        "mean µs",
        "final depth",
        "mean fill",
    ]);
    for p in &points {
        t.row(&[
            p.clients.to_string(),
            p.shards.to_string(),
            if p.adaptive {
                format!("adaptive<={}", p.depth)
            } else if p.depth == 1 {
                "static 1 (off)".to_string()
            } else {
                format!("static {}", p.depth)
            },
            ops(p.throughput),
            us(p.latency_us),
            p.final_depth.to_string(),
            format!("{:.2}", p.mean_fill),
        ]);
    }
    print!("{}", t.render());

    let rows: Vec<String> = points
        .iter()
        .map(|p| {
            format!(
                "{{\"clients\": {}, \"shards\": {}, \"adaptive\": {}, \"depth\": {}, \
                 \"throughput_ops\": {:.1}, \"mean_latency_us\": {:.2}, \
                 \"server_messages\": {}, \"completed\": {}, \"final_depth\": {}, \
                 \"mean_fill\": {:.2}}}",
                p.clients,
                p.shards,
                p.adaptive,
                p.depth,
                p.throughput,
                p.latency_us,
                p.server_messages,
                p.completed,
                p.final_depth,
                p.mean_fill
            )
        })
        .collect();
    let json = render_json(
        "adaptive",
        proto.name(),
        &[
            ("profile", "\"opteron-48\"".into()),
            ("duration_ns", duration.to_string()),
            ("max_delay_ns", MAX_DELAY.to_string()),
            ("adaptive_cap", CAP.to_string()),
        ],
        cli.smoke,
        &rows,
    );
    std::fs::write(out_path, &json).expect("write BENCH_adaptive.json");
    println!("\nwrote {out_path}");

    // The acceptance gates, per (load, shards) cell: adaptive must
    // reach 90% of the best static point — i.e. adapt at least as well
    // as a hand-tuned knob, at *every* load (static depth 1 = batching
    // off is one of the contenders; at light load it wins, and the
    // controller's goodput veto is what keeps adaptive on its heels
    // there). At the saturated 24-client load, adaptive must strictly
    // beat both mistuned extremes: static depth 1 and static depth 32.
    let mut failed = false;
    for &shards in shard_counts {
        for &clients in loads {
            let cell: Vec<&AdaptivePoint> = points
                .iter()
                .filter(|p| p.clients == clients && p.shards == shards)
                .collect();
            let adaptive = cell
                .iter()
                .find(|p| p.adaptive)
                .expect("adaptive point per cell");
            let best_static = cell
                .iter()
                .filter(|p| !p.adaptive)
                .map(|p| p.throughput)
                .fold(0.0f64, f64::max);
            println!(
                "clients={clients} shards={shards}: adaptive {} op/s vs best static {} op/s \
                 ({:.1}%)",
                ops(adaptive.throughput),
                ops(best_static),
                100.0 * adaptive.throughput / best_static,
            );
            if adaptive.throughput < 0.9 * best_static {
                eprintln!(
                    "FAIL: adaptive must reach 90% of the best static depth at \
                     clients={clients} shards={shards}"
                );
                failed = true;
            }
            if clients == 24 {
                for extreme in [1usize, 32] {
                    if let Some(s) = cell.iter().find(|p| !p.adaptive && p.depth == extreme) {
                        if adaptive.throughput <= s.throughput {
                            eprintln!(
                                "FAIL: adaptive must strictly beat static depth {extreme} at \
                                 24 clients (shards={shards})"
                            );
                            failed = true;
                        }
                    }
                }
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
}
