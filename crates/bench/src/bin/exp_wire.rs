//! Wire-transport experiment: the same threaded 1Paxos cluster, closed
//! loop and client count, deployed twice — once over shared-memory
//! qc-channel queues (`.spawn()`), once over loopback TCP sockets
//! (`.spawn_tcp()`), where every message crosses the kernel as a
//! length-prefixed `onepaxos::wire` frame.
//!
//! The gap between the two rows is the price of the codec plus the
//! socket path (syscalls, copies, TCP_NODELAY-sized writes); the §6.1
//! shared-memory design exists precisely to avoid paying it inside one
//! machine. A third `sim` row runs the same deployment shape through
//! the simulator under [`Profile::loopback_tcp`], whose socket-cost
//! constants are derived from this experiment's measured deltas — the
//! sim-vs-measured sanity check of the ROADMAP's network story.
//!
//! Records throughput and the client-observed latency distribution
//! (p50/p99) per transport in `BENCH_wire.json`. Gates: progress on
//! both transports, a tcp/mem throughput-ratio floor (default 0.2, a
//! regression backstop under the ~0.39 measured band; override with
//! `WIRE_MIN_RATIO`), and — on full runs — the sim prediction landing
//! within a small factor of the measured tcp row.
//!
//! Usage: `exp_wire [--smoke] [--out PATH]`

use std::time::{Duration, Instant};

use consensus_bench::report::{render_json, BenchCli};
use consensus_bench::table::{ops, us, Table};
use manycore_sim::metrics::LatencyStats;
use manycore_sim::{Profile, SimBuilder, Workload};
use onepaxos::onepaxos::{Msg, OnePaxosNode, Timing};
use onepaxos::{ClusterConfig, NodeId};
use onepaxos_runtime::{ClientHandle, ClusterBuilder, Transport};

/// Replicas in every deployment (the paper's f=1 triple).
const REPLICAS: usize = 3;

/// Relaxed protocol timers: CI machines oversubscribe their cores, and
/// the TCP rows add scheduler + syscall latency on top.
fn timing() -> Timing {
    Timing {
        tick: 2_000_000,
        io_timeout: 400_000_000,
        suspect_after: 800_000_000,
    }
}

fn builder(
    clients: usize,
) -> ClusterBuilder<OnePaxosNode, impl FnMut(&[NodeId], NodeId) -> OnePaxosNode> {
    let t = timing();
    ClusterBuilder::new(REPLICAS, move |m: &[NodeId], me| {
        OnePaxosNode::with_timing(ClusterConfig::new(m.to_vec(), me), t)
    })
    .clients(clients)
}

/// One measured deployment: every client runs the closed loop of puts
/// until the deadline, recording per-op wall latency.
struct Point {
    transport: &'static str,
    committed: u64,
    throughput: f64,
    mean_us: f64,
    p50_us: f64,
    p99_us: f64,
}

fn drive<T>(clients: Vec<ClientHandle<Msg, T>>, duration: Duration) -> (u64, f64, LatencyStats)
where
    T: Transport<Msg> + 'static,
{
    let started = Instant::now();
    let deadline = started + duration;
    let workers: Vec<_> = clients
        .into_iter()
        .enumerate()
        .map(|(w, mut c)| {
            std::thread::spawn(move || {
                c.set_timeout(Duration::from_secs(5));
                let mut samples = Vec::new();
                let mut i = 0u64;
                while Instant::now() < deadline {
                    let t0 = Instant::now();
                    c.put(w as u64 * 1_000 + (i % 128), i).expect("commit");
                    samples.push(t0.elapsed().as_nanos() as u64);
                    i += 1;
                }
                samples
            })
        })
        .collect();
    let mut stats = LatencyStats::new();
    let mut committed = 0u64;
    for w in workers {
        let samples = w.join().expect("client thread");
        committed += samples.len() as u64;
        for s in samples {
            stats.record(s);
        }
    }
    let wall = started.elapsed().as_secs_f64();
    (committed, committed as f64 / wall, stats)
}

fn point(
    transport: &'static str,
    (committed, throughput, mut stats): (u64, f64, LatencyStats),
) -> Point {
    Point {
        transport,
        committed,
        throughput,
        mean_us: stats.mean() as f64 / 1_000.0,
        p50_us: stats.p50() as f64 / 1_000.0,
        p99_us: stats.p99() as f64 / 1_000.0,
    }
}

/// The same deployment shape — 3 replicas, `clients` closed-loop put
/// clients, everything timesharing one core — run through the simulator
/// under the [`Profile::loopback_tcp`] cost model, whose constants are
/// derived from this experiment's own measured deltas. The returned row
/// is the sim's prediction of the `tcp` row; agreement within a small
/// factor is the sanity check that the profile's socket costs explain
/// the measured gap (ROADMAP network story, step 2).
fn sim_point(clients: usize, duration: Duration) -> Point {
    let mut report = SimBuilder::new(Profile::loopback_tcp(), |m: &[NodeId], me| {
        OnePaxosNode::new(ClusterConfig::new(m.to_vec(), me))
    })
    .replicas(REPLICAS)
    .clients(clients)
    .placement(vec![0; REPLICAS + clients])
    .workload(Workload::ReadMix {
        read_pct: 0,
        keys: 128,
        hot_pct: 0,
    })
    .duration(duration.as_nanos() as u64)
    .warmup(duration.as_nanos() as u64 / 10)
    .run();
    Point {
        transport: "sim",
        committed: report.completed,
        throughput: report.throughput,
        mean_us: report.mean_latency_us(),
        p50_us: report.p50_latency_us(),
        p99_us: report.p99_latency_us(),
    }
}

fn main() {
    let cli = BenchCli::parse();
    let out_path = cli.out_path("BENCH_wire.json");
    let (clients, duration) = if cli.smoke {
        (2usize, Duration::from_millis(500))
    } else {
        (4usize, Duration::from_secs(3))
    };

    println!(
        "Wire transport — 1Paxos replicas={REPLICAS} clients={clients} \
         duration={}ms{}\n",
        duration.as_millis(),
        if cli.smoke { " (smoke)" } else { "" }
    );

    let (cluster, mem_clients) = builder(clients).spawn();
    let mem = point("mem", drive(mem_clients, duration));
    cluster.shutdown();

    let (cluster, tcp_clients) = builder(clients).spawn_tcp().expect("tcp cluster setup");
    let tcp = point("tcp", drive(tcp_clients, duration));
    cluster.shutdown();

    let sim = sim_point(clients, duration);

    let points = [mem, tcp, sim];
    let mut t = Table::new(&[
        "transport",
        "committed",
        "op/s",
        "mean µs",
        "p50 µs",
        "p99 µs",
    ]);
    for p in &points {
        t.row(&[
            p.transport.to_string(),
            p.committed.to_string(),
            ops(p.throughput),
            us(p.mean_us),
            us(p.p50_us),
            us(p.p99_us),
        ]);
    }
    print!("{}", t.render());
    let ratio = points[1].throughput / points[0].throughput;
    let p50x = points[1].p50_us / points[0].p50_us;
    let sim_vs_tcp = points[2].throughput / points[1].throughput;
    println!(
        "\ntcp/mem throughput ratio {ratio:.2}x, tcp p50 {p50x:.2}x mem; \
         sim predicts {:.2}x of measured tcp.\n\
         shared-memory queues vs loopback sockets: the gap is the codec plus the\n\
         kernel round trips the paper's in-machine deployment (§6.1) avoids.",
        sim_vs_tcp
    );

    let rows: Vec<String> = points
        .iter()
        .map(|p| {
            format!(
                "{{\"transport\": \"{}\", \"clients\": {clients}, \"committed\": {}, \
                 \"throughput_ops\": {:.1}, \"mean_latency_us\": {:.2}, \
                 \"p50_us\": {:.2}, \"p99_us\": {:.2}}}",
                p.transport, p.committed, p.throughput, p.mean_us, p.p50_us, p.p99_us,
            )
        })
        .collect();
    let json = render_json(
        "wire_transport",
        "1Paxos",
        &[
            ("replicas", REPLICAS.to_string()),
            ("clients", clients.to_string()),
            ("duration_ms", duration.as_millis().to_string()),
        ],
        cli.smoke,
        &rows,
    );
    std::fs::write(out_path, &json).expect("write bench json");
    println!("\nwrote {out_path}");

    // Gate 1: everything must actually replicate.
    for p in &points {
        assert!(
            p.committed > 0 && p.p99_us > 0.0,
            "{} transport made no progress",
            p.transport
        );
    }

    // Gate 2: the tcp/mem throughput ratio must not regress. The default
    // floor is a backstop under the measured band (~0.39 full, ~0.3
    // smoke on this single-core box, where mem's 7.5 µs/op leaves TCP's
    // ~8 µs of unavoidable data-syscall cost nowhere to hide); CI can
    // tighten it via WIRE_MIN_RATIO on hardware with spare cores.
    let min_ratio: f64 = std::env::var("WIRE_MIN_RATIO")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.2);
    assert!(
        ratio >= min_ratio,
        "tcp throughput fell to {ratio:.2}x of mem (floor {min_ratio})"
    );

    // Gate 3 (full runs only — smoke windows are too short to trust):
    // the simulator under the measurement-derived profile must land
    // within a small factor of the measured tcp row, or the profile's
    // cost model has drifted from reality.
    if !cli.smoke {
        assert!(
            (0.3..=3.0).contains(&sim_vs_tcp),
            "sim predicted {:.0} op/s vs measured {:.0} ({sim_vs_tcp:.2}x): \
             loopback_tcp profile no longer matches measurement",
            points[2].throughput,
            points[1].throughput
        );
    }
}
