//! Wire-transport experiment: the same threaded 1Paxos cluster, closed
//! loop and client count, deployed twice — once over shared-memory
//! qc-channel queues (`.spawn()`), once over loopback TCP sockets
//! (`.spawn_tcp()`), where every message crosses the kernel as a
//! length-prefixed `onepaxos::wire` frame.
//!
//! The gap between the two rows is the price of the codec plus the
//! socket path (syscalls, copies, TCP_NODELAY-sized writes); the §6.1
//! shared-memory design exists precisely to avoid paying it inside one
//! machine. Records throughput and the client-observed latency
//! distribution (p50/p99) per transport in `BENCH_wire.json`; the CI
//! `wire-smoke` step runs the `--smoke` variant and gates only on both
//! transports making progress — loopback latency on a shared CI runner
//! is too noisy for a ratio gate.
//!
//! Usage: `exp_wire [--smoke] [--out PATH]`

use std::time::{Duration, Instant};

use consensus_bench::report::{render_json, BenchCli};
use consensus_bench::table::{ops, us, Table};
use manycore_sim::metrics::LatencyStats;
use onepaxos::onepaxos::{Msg, OnePaxosNode, Timing};
use onepaxos::{ClusterConfig, NodeId};
use onepaxos_runtime::{ClientHandle, ClusterBuilder, Transport};

/// Replicas in every deployment (the paper's f=1 triple).
const REPLICAS: usize = 3;

/// Relaxed protocol timers: CI machines oversubscribe their cores, and
/// the TCP rows add scheduler + syscall latency on top.
fn timing() -> Timing {
    Timing {
        tick: 2_000_000,
        io_timeout: 400_000_000,
        suspect_after: 800_000_000,
    }
}

fn builder(
    clients: usize,
) -> ClusterBuilder<OnePaxosNode, impl FnMut(&[NodeId], NodeId) -> OnePaxosNode> {
    let t = timing();
    ClusterBuilder::new(REPLICAS, move |m: &[NodeId], me| {
        OnePaxosNode::with_timing(ClusterConfig::new(m.to_vec(), me), t)
    })
    .clients(clients)
}

/// One measured deployment: every client runs the closed loop of puts
/// until the deadline, recording per-op wall latency.
struct Point {
    transport: &'static str,
    committed: u64,
    throughput: f64,
    mean_us: f64,
    p50_us: f64,
    p99_us: f64,
}

fn drive<T>(clients: Vec<ClientHandle<Msg, T>>, duration: Duration) -> (u64, f64, LatencyStats)
where
    T: Transport<Msg> + 'static,
{
    let started = Instant::now();
    let deadline = started + duration;
    let workers: Vec<_> = clients
        .into_iter()
        .enumerate()
        .map(|(w, mut c)| {
            std::thread::spawn(move || {
                c.set_timeout(Duration::from_secs(5));
                let mut samples = Vec::new();
                let mut i = 0u64;
                while Instant::now() < deadline {
                    let t0 = Instant::now();
                    c.put(w as u64 * 1_000 + (i % 128), i).expect("commit");
                    samples.push(t0.elapsed().as_nanos() as u64);
                    i += 1;
                }
                samples
            })
        })
        .collect();
    let mut stats = LatencyStats::new();
    let mut committed = 0u64;
    for w in workers {
        let samples = w.join().expect("client thread");
        committed += samples.len() as u64;
        for s in samples {
            stats.record(s);
        }
    }
    let wall = started.elapsed().as_secs_f64();
    (committed, committed as f64 / wall, stats)
}

fn point(
    transport: &'static str,
    (committed, throughput, mut stats): (u64, f64, LatencyStats),
) -> Point {
    Point {
        transport,
        committed,
        throughput,
        mean_us: stats.mean() as f64 / 1_000.0,
        p50_us: stats.p50() as f64 / 1_000.0,
        p99_us: stats.p99() as f64 / 1_000.0,
    }
}

fn main() {
    let cli = BenchCli::parse();
    let out_path = cli.out_path("BENCH_wire.json");
    let (clients, duration) = if cli.smoke {
        (2usize, Duration::from_millis(500))
    } else {
        (4usize, Duration::from_secs(3))
    };

    println!(
        "Wire transport — 1Paxos replicas={REPLICAS} clients={clients} \
         duration={}ms{}\n",
        duration.as_millis(),
        if cli.smoke { " (smoke)" } else { "" }
    );

    let (cluster, mem_clients) = builder(clients).spawn();
    let mem = point("mem", drive(mem_clients, duration));
    cluster.shutdown();

    let (cluster, tcp_clients) = builder(clients).spawn_tcp().expect("tcp cluster setup");
    let tcp = point("tcp", drive(tcp_clients, duration));
    cluster.shutdown();

    let points = [mem, tcp];
    let mut t = Table::new(&[
        "transport",
        "committed",
        "op/s",
        "mean µs",
        "p50 µs",
        "p99 µs",
    ]);
    for p in &points {
        t.row(&[
            p.transport.to_string(),
            p.committed.to_string(),
            ops(p.throughput),
            us(p.mean_us),
            us(p.p50_us),
            us(p.p99_us),
        ]);
    }
    print!("{}", t.render());
    println!(
        "\nshared-memory queues vs loopback sockets: the gap is the codec plus the\n\
         kernel round trips the paper's in-machine deployment (§6.1) avoids."
    );

    let rows: Vec<String> = points
        .iter()
        .map(|p| {
            format!(
                "{{\"transport\": \"{}\", \"clients\": {clients}, \"committed\": {}, \
                 \"throughput_ops\": {:.1}, \"mean_latency_us\": {:.2}, \
                 \"p50_us\": {:.2}, \"p99_us\": {:.2}}}",
                p.transport, p.committed, p.throughput, p.mean_us, p.p50_us, p.p99_us,
            )
        })
        .collect();
    let json = render_json(
        "wire_transport",
        "1Paxos",
        &[
            ("replicas", REPLICAS.to_string()),
            ("clients", clients.to_string()),
            ("duration_ms", duration.as_millis().to_string()),
        ],
        cli.smoke,
        &rows,
    );
    std::fs::write(out_path, &json).expect("write bench json");
    println!("\nwrote {out_path}");

    // The gate: both transports must actually replicate. Everything
    // subtler than "the sockets work" is too noisy for shared runners.
    for p in &points {
        assert!(
            p.committed > 0 && p.p99_us > 0.0,
            "{} transport made no progress",
            p.transport
        );
    }
}
