//! Fig 1 ablation: non-uniform inter-core latency. "Cores C0 and C1 share
//! the same last-level cache and communicate much faster than Cores C0
//! and C3, which have to go through the interconnect network."
//!
//! Same protocol, same load — only the *placement* of the three replicas
//! changes: all on one socket (sharing the LLC) vs spread over three
//! sockets. The measured latency difference is pure propagation.

use consensus_bench::table::{ops, us, Table};
use manycore_sim::{Profile, SimBuilder};
use onepaxos::onepaxos::OnePaxosNode;
use onepaxos::{ClusterConfig, NodeId};

fn cfg(m: &[NodeId], me: NodeId) -> ClusterConfig {
    ClusterConfig::new(m.to_vec(), me)
}

fn run(placement: Vec<usize>) -> (f64, f64) {
    // Latency with a single, unsaturated client: propagation is visible.
    let lat = SimBuilder::new(Profile::opteron48(), |m, me| OnePaxosNode::new(cfg(m, me)))
        .replicas(3)
        .clients(1)
        .placement(placement[..4].to_vec())
        .requests_per_client(2_000)
        .run()
        .mean_latency_us();
    // Throughput with saturating load: CPU-bound, placement-insensitive.
    let tput = SimBuilder::new(Profile::opteron48(), |m, me| OnePaxosNode::new(cfg(m, me)))
        .replicas(3)
        .clients(6)
        .placement(placement)
        .duration(150_000_000)
        .warmup(20_000_000)
        .run()
        .throughput;
    (lat, tput)
}

fn main() {
    println!("Fig 1 ablation — replica placement on the 48-core topology (6 cores/socket)\n");
    // Same socket: replicas on cores 0,1,2; clients on 3,4,5 (socket 0).
    let same = run(vec![0, 1, 2, 3, 4, 5, 6, 7, 8]);
    // Cross socket: replicas on 0, 6, 12 (three sockets); clients across
    // further sockets.
    let cross = run(vec![0, 6, 12, 18, 24, 30, 36, 42, 43]);
    let mut t = Table::new(&["placement", "latency (µs)", "throughput (op/s)"]);
    t.row(&[
        "replicas share one socket (LLC)".to_string(),
        us(same.0),
        ops(same.1),
    ]);
    t.row(&[
        "replicas on three sockets".to_string(),
        us(cross.0),
        ops(cross.1),
    ]);
    print!("{}", t.render());
    println!(
        "\nsame-LLC placement saves {:.1} µs per commit — propagation only; the CPU-bound",
        cross.0 - same.0
    );
    println!("saturation throughput barely moves, confirming §3: transmission (CPU) is the");
    println!("scarce resource, propagation merely adds latency.");
}
