//! Batch-size sweep: throughput/latency/message-count vs commands per
//! agreement, on the saturated 48-core sim harness.
//!
//! The §3 profile says per-message tx/rx CPU cost is the bottleneck
//! inside a machine; the engine's `BatchConfig` amortises it by
//! coalescing client commands into one agreement. This experiment
//! measures the payoff end-to-end and records it in
//! `BENCH_batching.json`, so the perf trajectory has data and CI can
//! fail on a batching regression (`bench-smoke` runs the `--smoke`
//! variant and asserts batched ≥8 beats unbatched).
//!
//! Usage: `exp_batching [--smoke] [--out PATH]`

use consensus_bench::experiments::{exp_batching, Proto};
use consensus_bench::report::{render_json, BenchCli};
use consensus_bench::table::{ops, us, Table};

/// Flush deadline for every batched point: well under the 1 ms client
/// patience, a small bound on added latency.
const MAX_DELAY: u64 = 20_000;

fn main() {
    let cli = BenchCli::parse();
    let out_path = cli.out_path("BENCH_batching.json");

    // Smoke mode keeps CI fast: the two points the acceptance gate
    // compares, on a shorter (still saturated) run.
    let (sizes, clients, duration): (&[usize], usize, u64) = if cli.smoke {
        (&[1, 8], 16, 120_000_000)
    } else {
        (&[1, 2, 4, 8, 16, 32], 24, 300_000_000)
    };
    let proto = Proto::OnePaxos;

    println!(
        "Batch-size sweep — {} replicas=3 clients={clients} duration={}ms delay={}µs{}\n",
        proto.name(),
        duration / 1_000_000,
        MAX_DELAY / 1_000,
        if cli.smoke { " (smoke)" } else { "" }
    );
    let points = exp_batching(proto, sizes, clients, duration, MAX_DELAY);

    let mut t = Table::new(&[
        "cmds/agreement",
        "op/s",
        "mean µs",
        "server msgs",
        "msgs/op",
    ]);
    for p in &points {
        t.row(&[
            if p.batched {
                p.max_commands.to_string()
            } else {
                "1 (off)".to_string()
            },
            ops(p.throughput),
            us(p.latency_us),
            p.server_messages.to_string(),
            format!(
                "{:.2}",
                p.server_messages as f64 / p.completed.max(1) as f64
            ),
        ]);
    }
    print!("{}", t.render());

    let rows: Vec<String> = points
        .iter()
        .map(|p| {
            format!(
                "{{\"max_commands\": {}, \"batched\": {}, \"throughput_ops\": {:.1}, \
                 \"mean_latency_us\": {:.2}, \"server_messages\": {}, \"completed\": {}}}",
                p.max_commands,
                p.batched,
                p.throughput,
                p.latency_us,
                p.server_messages,
                p.completed
            )
        })
        .collect();
    let json = render_json(
        "batching",
        proto.name(),
        &[
            ("profile", "\"opteron-48\"".into()),
            ("clients", clients.to_string()),
            ("duration_ns", duration.to_string()),
            ("max_delay_ns", MAX_DELAY.to_string()),
        ],
        cli.smoke,
        &rows,
    );
    std::fs::write(out_path, &json).expect("write BENCH_batching.json");
    println!("\nwrote {out_path}");

    // The acceptance gate: a deep batch (≥8 cmds/agreement) must beat the
    // unbatched baseline outright, or batching has regressed.
    let unbatched = points
        .iter()
        .find(|p| !p.batched)
        .expect("sweep includes the unbatched baseline");
    let deep = points
        .iter()
        .filter(|p| p.batched && p.max_commands >= 8)
        .map(|p| p.throughput)
        .fold(0.0f64, f64::max);
    println!(
        "deep-batch best: {} op/s vs unbatched {} op/s ({:+.1}%)",
        ops(deep),
        ops(unbatched.throughput),
        100.0 * (deep / unbatched.throughput - 1.0)
    );
    if deep <= unbatched.throughput {
        eprintln!("FAIL: batched (≥8 cmds/agreement) throughput must be strictly greater");
        std::process::exit(1);
    }
}
