//! Fig 10: "Throughput of 2PC-Joint, which is run directly among the
//! clients" — read-ratio bars at 3 and 5 clients vs 1Paxos with 0% reads.
//!
//! Paper shape: with 0% reads 2PC-Joint is far below 1Paxos; at 75% reads
//! and 3 clients it catches up (local reads), but at 5 clients it falls
//! behind again — the local-read optimisation does not scale with the
//! number of nodes (§7.5).

use consensus_bench::experiments::fig10;
use consensus_bench::table::{ops, Table};

fn main() {
    println!("Fig 10 — read workloads in joint deployments (48-core profile)\n");
    let rows = fig10(300_000_000);
    let mut t = Table::new(&["series", "3 clients op/s", "5 clients op/s"]);
    let labels: Vec<&String> = rows.iter().map(|(l, _, _)| l).collect();
    let mut uniq: Vec<String> = Vec::new();
    for l in labels {
        if !uniq.contains(l) {
            uniq.push(l.clone());
        }
    }
    for label in uniq {
        let find = |n: usize| {
            rows.iter()
                .find(|(l, nn, _)| *l == label && *nn == n)
                .map(|(_, _, tp)| *tp)
                .unwrap_or(0.0)
        };
        t.row(&[label.clone(), ops(find(3)), ops(find(5))]);
    }
    print!("{}", t.render());
    println!(
        "\npaper shape: 75% reads let 2PC-Joint keep up with 1Paxos at 3 clients but not at 5."
    );
}
