//! §1 extension experiment: "For more relaxed read consistency
//! guarantees, local reads may be performed even with non-blocking
//! protocols."
//!
//! Compares joint 1Paxos with linearized reads (every `Get` is a
//! consensus round) against 1Paxos with relaxed local reads (answered
//! from the local learner state), over the Fig 10 read mixes.

use consensus_bench::table::{ops, Table};
use manycore_sim::{Profile, SimBuilder, Workload};
use onepaxos::onepaxos::OnePaxosNode;
use onepaxos::{ClusterConfig, NodeId};

const DUR: u64 = 250_000_000;

fn run(n: usize, read_pct: u8, relaxed: bool) -> f64 {
    SimBuilder::new(Profile::opteron48(), move |m: &[NodeId], me| {
        let node = OnePaxosNode::new(ClusterConfig::new(m.to_vec(), me));
        if relaxed {
            node.with_relaxed_reads()
        } else {
            node
        }
    })
    .joint(n)
    .workload(Workload::ReadMix {
        read_pct,
        keys: 128,
        hot_pct: 0,
    })
    .duration(DUR)
    .warmup(DUR / 8)
    .run()
    .throughput
}

fn main() {
    println!("§1 extension — 1Paxos-Joint: linearized vs relaxed local reads\n");
    let mut t = Table::new(&[
        "nodes",
        "read %",
        "linearized op/s",
        "relaxed op/s",
        "speedup",
    ]);
    for n in [3usize, 5, 15] {
        for read_pct in [10u8, 50, 90] {
            let lin = run(n, read_pct, false);
            let rel = run(n, read_pct, true);
            t.row(&[
                n.to_string(),
                read_pct.to_string(),
                ops(lin),
                ops(rel),
                format!("{:.2}x", rel / lin),
            ]);
        }
    }
    print!("{}", t.render());
    println!("\nrelaxed reads bypass the leader/acceptor entirely, so unlike 2PC-Joint's");
    println!("lock-window reads (Fig 10) the benefit *grows* with the number of nodes.");
}
