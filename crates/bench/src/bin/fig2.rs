//! Fig 2: "The scalability of Multi-Paxos in LAN compared to many-core
//! systems" — throughput vs number of clients on both network profiles.
//!
//! Paper shape: on a LAN the throughput keeps rising up to ~100 clients;
//! on the many-core it stops improving after about 3 clients because the
//! cores saturate on message transmission.

use consensus_bench::experiments::fig2;
use consensus_bench::table::{ops, Table};

fn main() {
    let clients = [1usize, 2, 3, 5, 7, 10, 15, 20, 30, 45];
    let rows = fig2(&clients, 200_000_000);
    let mut t = Table::new(&["clients", "many-core op/s", "LAN op/s"]);
    for (c, mc, lan) in rows {
        t.row(&[c.to_string(), ops(mc), ops(lan)]);
    }
    println!("Fig 2 — Multi-Paxos throughput vs clients (3 replicas)\n");
    print!("{}", t.render());
    println!("\npaper shape: many-core flattens after ~3 clients; LAN keeps scaling.");
}
