//! Fig 9: "The throughput w.r.t the number of replicas in a 48-core
//! machine" — joint deployments (every client is a replica), 2 ms think
//! time, leader on Core 0.
//!
//! Paper shape: Multi-Paxos-Joint and 2PC-Joint saturate around 20 nodes
//! and then *decline* (more messages per agreement, same per-core
//! budget); 1Paxos-Joint grows roughly linearly up to 47 nodes. At 15
//! nodes the paper reports 32 µs (1Paxos) vs 190 µs (Multi-Paxos) vs
//! 125 µs (2PC) commit latency.

use consensus_bench::experiments::{fig9, Proto};
use consensus_bench::table::{ops, us, Table};

fn main() {
    let nodes = [3usize, 5, 10, 15, 20, 25, 30, 35, 40, 45, 47];
    println!("Fig 9 — joint deployments, 2 ms think time (48-core profile)\n");
    let mut series = Vec::new();
    for p in Proto::PAPER_SET {
        series.push((p, fig9(p, &nodes, 400_000_000)));
    }
    let mut t = Table::new(&[
        "replicas",
        "1Paxos-Joint op/s",
        "Multi-Paxos-Joint op/s",
        "2PC-Joint op/s",
    ]);
    for (i, &n) in nodes.iter().enumerate() {
        t.row(&[
            n.to_string(),
            ops(series[0].1[i].throughput),
            ops(series[1].1[i].throughput),
            ops(series[2].1[i].throughput),
        ]);
    }
    print!("{}", t.render());
    let at15 = nodes.iter().position(|&n| n == 15).expect("15 in sweep");
    println!(
        "\nlatency at 15 nodes: 1Paxos {} µs (paper 32), Multi-Paxos {} µs (paper 190), 2PC {} µs (paper 125)",
        us(series[0].1[at15].latency_us),
        us(series[1].1[at15].latency_us),
        us(series[2].1[at15].latency_us),
    );
}
