//! Runs every experiment binary's workload in sequence — the one-shot
//! regeneration of all paper artifacts. Output mirrors the individual
//! `fig*`/`tab*`/`sec*`/`exp*` binaries.

use std::process::Command;

fn main() {
    let bins = [
        "tab_net",
        "tab_latency",
        "fig2",
        "fig8",
        "fig9",
        "fig10",
        "fig11",
        "sec2_2",
        "exp_ip",
        "exp_accswitch",
        "ablation_mencius",
        "ablation_placement",
    ];
    let me = std::env::current_exe().expect("own path");
    let dir = me.parent().expect("bin dir");
    for bin in bins {
        println!("==================================================================");
        println!("== {bin}");
        println!("==================================================================");
        let path = dir.join(bin);
        let status = Command::new(&path)
            .status()
            .unwrap_or_else(|e| panic!("running {path:?}: {e}"));
        assert!(status.success(), "{bin} failed");
        println!();
    }
}
