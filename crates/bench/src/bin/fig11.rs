//! Fig 11: "The changes in throughput achieved by 1Paxos when the leader
//! is slow" — 8-core profile, 5 clients, 3 replicas, leader (Core 0)
//! slowed by CPU hogs mid-run; plotted against the no-failure run in
//! 10 ms buckets.
//!
//! Paper shape: throughput drops to ~zero during the leader change, then
//! recovers to the original level once another node takes over via
//! PaxosUtility and is adopted by the active acceptor.

use consensus_bench::experiments::{slow_core_timeline, Proto};
use consensus_bench::table::{ops, Table};
use manycore_sim::Fault;

fn main() {
    let duration = 4_000_000_000; // 4 s, 10 ms buckets
    let fault_at = 1_500_000_000;
    println!("Fig 11 — 1Paxos throughput with a slow leader (8-core profile, 5 clients)\n");
    let slow = slow_core_timeline(
        Proto::OnePaxos,
        &[Fault {
            at: fault_at,
            core: 0,
            slowdown: 5000.0,
        }],
        duration,
    );
    let healthy = slow_core_timeline(Proto::OnePaxos, &[], duration);
    let mut t = Table::new(&["t (ms)", "slow-leader op/s", "no-failure op/s"]);
    for (i, (at, rate)) in slow.iter().enumerate() {
        // Print every 15th bucket to keep the table readable.
        if i % 15 != 0 {
            continue;
        }
        let h = healthy.get(i).map(|&(_, r)| r).unwrap_or(0.0);
        t.row(&[format!("{}", at / 1_000_000), ops(*rate), ops(h)]);
    }
    print!("{}", t.render());
    let before = slow
        .iter()
        .filter(|&&(at, _)| at < fault_at)
        .map(|&(_, r)| r)
        .fold(0.0f64, f64::max);
    let dip = slow
        .iter()
        .filter(|&&(at, _)| at >= fault_at && at < fault_at + 300_000_000)
        .map(|&(_, r)| r)
        .fold(f64::INFINITY, f64::min);
    let after = slow
        .iter()
        .rev()
        .take(20)
        .map(|&(_, r)| r)
        .fold(0.0f64, f64::max);
    println!(
        "\nbefore fault: {} op/s — dip during leader change: {} op/s — recovered: {} op/s",
        ops(before),
        ops(if dip.is_finite() { dip } else { 0.0 }),
        ops(after)
    );
    println!("paper shape: drop to ~0 during the change, then recovery to the original level.");
}
