//! §7.2: single-client commit latency and throughput for the three
//! protocols on the 48-core profile.
//!
//! Paper values: 1Paxos 16.0 µs < Multi-Paxos 19.6 µs < 2PC 21.4 µs,
//! with throughput ordered inversely.

use consensus_bench::experiments::tab_latency;
use consensus_bench::table::{ops, us, Table};

fn main() {
    let rows = tab_latency(2_000);
    let paper = [16.0, 19.6, 21.4];
    let mut t = Table::new(&[
        "protocol",
        "latency (µs)",
        "paper (µs)",
        "throughput (op/s)",
    ]);
    for ((p, lat, tput), paper_lat) in rows.into_iter().zip(paper) {
        t.row(&[p.name().to_string(), us(lat), us(paper_lat), ops(tput)]);
    }
    println!("§7.2 — single-client commit latency (3 replicas, 48-core profile)\n");
    print!("{}", t.render());
    println!("\npaper shape: 1Paxos < Multi-Paxos < 2PC.");
}
