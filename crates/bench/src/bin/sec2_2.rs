//! §2.2 experiment: 2PC throughput when the coordinator becomes slow —
//! 8-core profile, 5 clients, 3 replicas, Core 0 slowed by CPU hogs.
//!
//! Paper shape: "after Core 0 becomes slow, only a few requests can
//! commit and the throughput drops to zero" — and stays there, because
//! 2PC is blocking.

use consensus_bench::experiments::{slow_core_timeline, Proto};
use consensus_bench::table::{ops, Table};
use manycore_sim::Fault;

fn main() {
    let duration = 4_000_000_000;
    let fault_at = 1_500_000_000;
    println!("§2.2 — 2PC throughput with a slow coordinator (8-core profile, 5 clients)\n");
    let slow = slow_core_timeline(
        Proto::TwoPc,
        &[Fault {
            at: fault_at,
            core: 0,
            slowdown: 5000.0,
        }],
        duration,
    );
    let mut t = Table::new(&["t (ms)", "op/s"]);
    for (i, (at, rate)) in slow.iter().enumerate() {
        if i % 15 != 0 {
            continue;
        }
        t.row(&[format!("{}", at / 1_000_000), ops(*rate)]);
    }
    print!("{}", t.render());
    let before = slow
        .iter()
        .filter(|&&(at, _)| at < fault_at)
        .map(|&(_, r)| r)
        .fold(0.0f64, f64::max);
    let after = slow
        .iter()
        .rev()
        .take(10)
        .map(|&(_, r)| r)
        .fold(0.0f64, f64::max);
    println!(
        "\nbefore: {} op/s — after the coordinator slows: {} op/s (no recovery: blocking protocol)",
        ops(before),
        ops(after)
    );
}
