//! §3 measurements: transmission delay, propagation delay and their
//! ratio, many-core (measured on this machine over qc-channel) vs LAN
//! (simulated profile constants; no LAN testbed available).
//!
//! Paper values: many-core trans 0.5 µs, prop 0.55 µs (ratio ≈ 1);
//! LAN trans 2 µs, prop 135 µs (ratio ≈ 0.015).

use consensus_bench::netmeas;
use consensus_bench::table::Table;
use manycore_sim::Profile;

fn main() {
    let m = netmeas::measure(400_000);
    let lan = Profile::lan(2);
    let mut t = Table::new(&["setting", "trans (ns)", "prop (ns)", "trans/prop"]);
    t.row(&[
        "many-core (measured)".to_string(),
        format!("{:.0}", m.trans_ns),
        format!("{:.0}", m.prop_ns),
        format!("{:.3}", m.ratio()),
    ]);
    t.row(&[
        "many-core (paper)".to_string(),
        "500".to_string(),
        "550".to_string(),
        "0.909".to_string(),
    ]);
    t.row(&[
        "LAN (simulated profile)".to_string(),
        format!("{}", lan.tx),
        format!("{}", lan.prop_remote),
        format!("{:.3}", lan.trans_prop_ratio()),
    ]);
    t.row(&[
        "LAN (paper)".to_string(),
        "2000".to_string(),
        "135000".to_string(),
        "0.015".to_string(),
    ]);
    println!(
        "§3 — network characteristics (single-slot cycle measured: {:.0} ns)\n",
        m.single_slot_cycle_ns
    );
    print!("{}", t.render());
    println!("\npaper shape: the many-core ratio is ~2 orders of magnitude larger than the LAN's.");
}
