//! §8 ablation: Mencius-style multi-leader consensus vs Multi-Paxos and
//! 1Paxos.
//!
//! The paper argues: "Mencius uses proposer replication to enhance the
//! scalability" but "each leader still has to communicate with all
//! acceptors to make a proposal", and under unbalanced load "the
//! under-loaded leaders also have to skip their share of the instance
//! space, which would not help the load balancing objective" (§8).
//!
//! Three comparisons on the 48-core profile, 3 replicas:
//! 1. balanced clients (spread over the leaders) — Mencius's best case;
//! 2. skewed clients (all at Core 0, the paper's standard setup) —
//!    Mencius pays skip messages;
//! 3. 1Paxos and Multi-Paxos under the same loads.

use consensus_bench::table::{ops, Table};
use manycore_sim::{Profile, SimBuilder};
use onepaxos::mencius::MenciusNode;
use onepaxos::multipaxos::MultiPaxosNode;
use onepaxos::onepaxos::OnePaxosNode;
use onepaxos::{ClusterConfig, NodeId};

const DUR: u64 = 200_000_000;
const WARM: u64 = 25_000_000;

fn cfg(m: &[NodeId], me: NodeId) -> ClusterConfig {
    ClusterConfig::new(m.to_vec(), me)
}

fn main() {
    println!("§8 ablation — multi-leader (Mencius) vs single-leader, 3 replicas\n");
    let mut t = Table::new(&[
        "clients",
        "load",
        "Mencius op/s",
        "Multi-Paxos op/s",
        "1Paxos op/s",
    ]);
    for clients in [3usize, 9, 18, 30] {
        for spread in [true, false] {
            let mencius =
                SimBuilder::new(Profile::opteron48(), |m, me| MenciusNode::new(cfg(m, me)))
                    .clients(clients)
                    .spread_clients(spread)
                    .duration(DUR)
                    .warmup(WARM)
                    .run()
                    .throughput;
            let multi = SimBuilder::new(Profile::opteron48(), |m, me| {
                MultiPaxosNode::new(cfg(m, me))
            })
            .clients(clients)
            .spread_clients(spread)
            .duration(DUR)
            .warmup(WARM)
            .run()
            .throughput;
            let one = SimBuilder::new(Profile::opteron48(), |m, me| OnePaxosNode::new(cfg(m, me)))
                .clients(clients)
                .spread_clients(spread)
                .duration(DUR)
                .warmup(WARM)
                .run()
                .throughput;
            t.row(&[
                clients.to_string(),
                if spread { "balanced" } else { "skewed" }.to_string(),
                ops(mencius),
                ops(multi),
                ops(one),
            ]);
        }
    }
    print!("{}", t.render());
    println!("\nexpected shape: balanced Mencius beats Multi-Paxos (leader work spread over");
    println!("three cores); skewed Mencius loses that edge and pays skip traffic; 1Paxos");
    println!("needs no balanced load at all — and §8 notes Mencius could adopt the 1Paxos");
    println!("single-acceptor insight on top.");
}
