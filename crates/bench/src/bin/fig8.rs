//! Fig 8: "The latency vs throughput w.r.t the number of clients in a
//! 48-core machine" — all three protocols, clients 1…45.
//!
//! Paper shape: 1Paxos throughput doubles from 1 to ~13 clients and tops
//! out highest; Multi-Paxos saturates at ≈52% of 1Paxos, 2PC at ≈48%;
//! past saturation latency rises steeply at flat throughput.

use consensus_bench::experiments::{fig8, Proto};
use consensus_bench::table::{ops, us, Table};

fn main() {
    // `--smoke`: a three-point sweep on a short run, for the CI
    // bench-smoke job (same code path, minutes → seconds).
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (clients, duration): (&[usize], u64) = if smoke {
        (&[1, 5, 13], 80_000_000)
    } else {
        (&[1, 2, 3, 5, 7, 9, 13, 17, 21, 29, 37, 45], 200_000_000)
    };
    let clients = clients.to_vec();
    println!(
        "Fig 8 — latency vs throughput (3 replicas, 48-core profile){}\n",
        if smoke { " [smoke]" } else { "" }
    );
    let mut series = Vec::new();
    for p in Proto::PAPER_SET {
        series.push((p, fig8(p, &clients, duration)));
    }
    let mut t = Table::new(&[
        "clients",
        "1Paxos op/s",
        "1Paxos µs",
        "Multi-Paxos op/s",
        "Multi-Paxos µs",
        "2PC op/s",
        "2PC µs",
    ]);
    for (i, &c) in clients.iter().enumerate() {
        let row: Vec<String> = std::iter::once(c.to_string())
            .chain(
                series
                    .iter()
                    .flat_map(|(_, pts)| [ops(pts[i].throughput), us(pts[i].latency_us)]),
            )
            .collect();
        t.row(&row);
    }
    print!("{}", t.render());
    let max = |p: usize| {
        series[p]
            .1
            .iter()
            .map(|pt| pt.throughput)
            .fold(0.0f64, f64::max)
    };
    let (m1, mm, m2) = (max(0), max(1), max(2));
    println!(
        "\nsaturated: 1Paxos {} op/s, Multi-Paxos {} ({:.0}%, paper 52%), 2PC {} ({:.0}%, paper 48%)",
        ops(m1),
        ops(mm),
        100.0 * mm / m1,
        ops(m2),
        100.0 * m2 / m1
    );
}
