//! §8 remark: "we conducted experiments of 1Paxos over an IP network and
//! observed a factor of 2.88 improvement over Multi-Paxos."
//!
//! Reproduced on the simulated LAN profile with saturating client load.

use consensus_bench::experiments::exp_ip;
use consensus_bench::table::{ops, Table};

fn main() {
    println!("§8 — 1Paxos vs Multi-Paxos over an IP network (LAN profile)\n");
    let mut t = Table::new(&[
        "clients",
        "1Paxos op/s",
        "Multi-Paxos op/s",
        "ratio",
        "paper",
    ]);
    for clients in [20usize, 50, 100] {
        let (one, multi) = exp_ip(clients, 3_000_000_000);
        t.row(&[
            clients.to_string(),
            ops(one),
            ops(multi),
            format!("{:.2}x", one / multi),
            "2.88x".to_string(),
        ]);
    }
    print!("{}", t.render());
    println!("\npaper shape: 1Paxos clearly outperforms Multi-Paxos on IP as well.");
}
