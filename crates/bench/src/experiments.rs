//! Shared experiment plumbing: protocol selection, run configuration and
//! the per-figure data generators.

use manycore_sim::{Fault, Profile, RunReport, SimBuilder, Workload};
use onepaxos::basic_paxos::BasicPaxosNode;
use onepaxos::multipaxos::MultiPaxosNode;
use onepaxos::onepaxos::OnePaxosNode;
use onepaxos::twopc::TwoPcNode;
use onepaxos::{AdaptiveBatch, BatchConfig, ClusterConfig, Nanos, NodeId};

/// The protocols under evaluation (§7).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Proto {
    /// The paper's contribution.
    OnePaxos,
    /// "Arguably the most efficient consensus protocol to date" (§7).
    MultiPaxos,
    /// The blocking Barrelfish-style baseline (§2.2).
    TwoPc,
    /// Original two-phase-per-command Paxos (§2.3), for ablations.
    BasicPaxos,
}

impl Proto {
    /// All three protocols the paper's figures compare.
    pub const PAPER_SET: [Proto; 3] = [Proto::OnePaxos, Proto::MultiPaxos, Proto::TwoPc];

    /// Display name matching the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            Proto::OnePaxos => "1Paxos",
            Proto::MultiPaxos => "Multi-Paxos",
            Proto::TwoPc => "2PC",
            Proto::BasicPaxos => "Basic-Paxos",
        }
    }
}

/// Declarative run configuration translated onto [`SimBuilder`].
#[derive(Clone, Debug)]
pub struct RunCfg {
    /// Machine/network profile.
    pub profile: Profile,
    /// Replica count (ignored in joint mode).
    pub replicas: usize,
    /// Client count (ignored in joint mode).
    pub clients: usize,
    /// Joint deployment size, if any (§7.4).
    pub joint: Option<usize>,
    /// Operation mix.
    pub workload: Workload,
    /// Client think time.
    pub think: Nanos,
    /// Client re-targeting patience.
    pub client_timeout: Nanos,
    /// Requests per client (closed loop), unless a duration is given.
    pub requests: u64,
    /// Fixed virtual duration, overriding the request budget.
    pub duration: Option<Nanos>,
    /// Warm-up excluded from measurements.
    pub warmup: Nanos,
    /// Timeline bucket width.
    pub bucket: Nanos,
    /// Core slowdowns to inject.
    pub faults: Vec<Fault>,
    /// RNG seed.
    pub seed: u64,
    /// Engine-level command batching, if any (amortises per-message CPU
    /// cost, §3; see `onepaxos::engine`'s module docs).
    pub batch: Option<BatchConfig>,
    /// Number of key-hash-routed consensus groups (1 = unsharded; see
    /// `onepaxos::shard`'s module docs). Non-joint deployments only.
    pub shards: u16,
    /// Explicit process→core placement (replica-shard processes first,
    /// then clients); `None` = identity. Lets a sweep offer more
    /// closed-loop clients than the profile has spare cores by
    /// co-locating clients.
    pub placement: Option<Vec<usize>>,
    /// Distribute client sessions round-robin over the replicas instead
    /// of pinning every session to replica 0. Followers batch their
    /// clients' commands and forward one proposal per flush, so the
    /// per-command session cost (rx, handle, reply marshalling) spreads
    /// across replica cores while ordering stays at the leader.
    pub spread_clients: bool,
}

impl RunCfg {
    /// A 3-replica deployment on the 48-core profile — the paper's
    /// standard setup (§7.1).
    pub fn standard48() -> Self {
        RunCfg {
            profile: Profile::opteron48(),
            replicas: 3,
            clients: 1,
            joint: None,
            workload: Workload::Noop,
            think: 0,
            client_timeout: 1_000_000,
            requests: 100,
            duration: None,
            warmup: 0,
            bucket: 10_000_000,
            faults: Vec::new(),
            seed: 0xC0FFEE,
            batch: None,
            shards: 1,
            placement: None,
            spread_clients: false,
        }
    }

    /// Throughput-mode variant: fixed duration with warm-up.
    pub fn throughput48(clients: usize, duration: Nanos) -> Self {
        RunCfg {
            clients,
            duration: Some(duration),
            warmup: duration / 8,
            ..Self::standard48()
        }
    }
}

fn apply<P, F>(b: SimBuilder<P, F>, cfg: &RunCfg) -> SimBuilder<P, F>
where
    P: onepaxos::Protocol,
    F: FnMut(&[NodeId], NodeId) -> P,
{
    let mut b = b
        .workload(cfg.workload)
        .think(cfg.think)
        .client_timeout(cfg.client_timeout)
        .requests_per_client(cfg.requests)
        .warmup(cfg.warmup)
        .timeline_bucket(cfg.bucket)
        .seed(cfg.seed);
    b = match cfg.joint {
        Some(n) => b.joint(n),
        None => b.replicas(cfg.replicas).clients(cfg.clients),
    };
    if let Some(d) = cfg.duration {
        b = b.duration(d);
    }
    if let Some(batch) = cfg.batch {
        b = b.batching(batch);
    }
    if cfg.shards > 1 {
        b = b.shards(cfg.shards);
    }
    if let Some(p) = cfg.placement.clone() {
        b = b.placement(p);
    }
    if cfg.spread_clients {
        b = b.spread_clients(true);
    }
    for f in &cfg.faults {
        b = b.fault(*f);
    }
    b
}

/// Runs `proto` under `cfg` and returns the report.
pub fn run(proto: Proto, cfg: &RunCfg) -> RunReport {
    let mk_cfg = |m: &[NodeId], me: NodeId| ClusterConfig::new(m.to_vec(), me);
    let profile = cfg.profile.clone();
    match proto {
        Proto::OnePaxos => apply(
            SimBuilder::new(profile, |m, me| OnePaxosNode::new(mk_cfg(m, me))),
            cfg,
        )
        .run(),
        Proto::MultiPaxos => apply(
            SimBuilder::new(profile, |m, me| MultiPaxosNode::new(mk_cfg(m, me))),
            cfg,
        )
        .run(),
        Proto::TwoPc => apply(
            SimBuilder::new(profile, |m, me| TwoPcNode::new(mk_cfg(m, me))),
            cfg,
        )
        .run(),
        Proto::BasicPaxos => apply(
            SimBuilder::new(profile, |m, me| BasicPaxosNode::new(mk_cfg(m, me))),
            cfg,
        )
        .run(),
    }
}

/// One point of a scalability series.
#[derive(Clone, Copy, Debug)]
pub struct ScalePoint {
    /// Number of clients (or nodes, in joint mode).
    pub n: usize,
    /// Throughput, ops/sec.
    pub throughput: f64,
    /// Mean commit latency, µs.
    pub latency_us: f64,
}

/// Fig 2: Multi-Paxos throughput vs number of clients, many-core vs LAN.
pub fn fig2(clients: &[usize], duration: Nanos) -> Vec<(usize, f64, f64)> {
    clients
        .iter()
        .map(|&c| {
            let mc = run(
                Proto::MultiPaxos,
                &RunCfg {
                    clients: c,
                    duration: Some(duration),
                    warmup: duration / 8,
                    ..RunCfg::standard48()
                },
            )
            .throughput;
            let lan = run(
                Proto::MultiPaxos,
                &RunCfg {
                    profile: Profile::lan(3 + c),
                    clients: c,
                    duration: Some(duration.max(2_000_000_000)),
                    warmup: duration / 8,
                    // LAN latencies are milliseconds; client patience must
                    // scale with them or retries storm the leader.
                    client_timeout: 100_000_000,
                    ..RunCfg::standard48()
                },
            )
            .throughput;
            (c, mc, lan)
        })
        .collect()
}

/// §7.2 latency table: single-client commit latency and throughput.
pub fn tab_latency(requests: u64) -> Vec<(Proto, f64, f64)> {
    Proto::PAPER_SET
        .iter()
        .map(|&p| {
            let r = run(
                p,
                &RunCfg {
                    requests,
                    ..RunCfg::standard48()
                },
            );
            (p, r.mean_latency_us(), r.throughput)
        })
        .collect()
}

/// Fig 8: latency vs throughput as the client count grows (1–45).
pub fn fig8(proto: Proto, clients: &[usize], duration: Nanos) -> Vec<ScalePoint> {
    clients
        .iter()
        .map(|&c| {
            let r = run(proto, &RunCfg::throughput48(c, duration));
            ScalePoint {
                n: c,
                throughput: r.throughput,
                latency_us: r.mean_latency_us(),
            }
        })
        .collect()
}

/// Fig 9: joint deployments — throughput vs number of replicas, 2 ms
/// think time.
pub fn fig9(proto: Proto, nodes: &[usize], duration: Nanos) -> Vec<ScalePoint> {
    nodes
        .iter()
        .map(|&n| {
            let r = run(
                proto,
                &RunCfg {
                    joint: Some(n),
                    think: 2_000_000,
                    duration: Some(duration),
                    warmup: duration / 8,
                    ..RunCfg::standard48()
                },
            );
            ScalePoint {
                n,
                throughput: r.throughput,
                latency_us: r.mean_latency_us(),
            }
        })
        .collect()
}

/// Fig 10: read-workload bars. Returns (label, nodes, throughput).
pub fn fig10(duration: Nanos) -> Vec<(String, usize, f64)> {
    let mut out = Vec::new();
    for &n in &[3usize, 5] {
        let one = run(
            Proto::OnePaxos,
            &RunCfg {
                joint: Some(n),
                duration: Some(duration),
                warmup: duration / 8,
                ..RunCfg::standard48()
            },
        );
        out.push(("1Paxos - 0% read".to_string(), n, one.throughput));
        for read_pct in [0u8, 10, 75] {
            let r = run(
                Proto::TwoPc,
                &RunCfg {
                    joint: Some(n),
                    workload: Workload::ReadMix {
                        read_pct,
                        keys: 128,
                        hot_pct: 0,
                    },
                    duration: Some(duration),
                    warmup: duration / 8,
                    ..RunCfg::standard48()
                },
            );
            out.push((format!("2PC-Joint - {read_pct}% read"), n, r.throughput));
        }
    }
    out
}

/// Fig 11 / §2.2: throughput timeline with a core going slow at
/// `fault_at`. Returns op/s per 10 ms bucket.
///
/// Mirrors the paper's Fig 11 regime: the workload is *unsaturated*
/// (clients pace themselves, ≈ hundreds of proposals per second) so the
/// pre- and post-failure levels are equal, and failure detection operates
/// on tens-of-milliseconds timeouts so the leader change spans visible
/// 10 ms buckets. The slowdown factor models quantum starvation: with 8
/// CPU-hogs on the victim core, each message waits for the victim's next
/// scheduling quantum, so effective processing latency grows by orders of
/// magnitude (cf. §1: context switches take 10–20 µs "and can take much
/// longer").
pub fn slow_core_timeline(proto: Proto, faults: &[Fault], duration: Nanos) -> Vec<(Nanos, f64)> {
    let think: Nanos = 2_000_000;
    let client_timeout: Nanos = 40_000_000;
    let profile = Profile::opteron8;
    let mk_cfg = |m: &[NodeId], me: NodeId| ClusterConfig::new(m.to_vec(), me);
    let one_timing = onepaxos::onepaxos::Timing {
        tick: 1_000_000,
        io_timeout: 40_000_000,
        suspect_after: 80_000_000,
    };
    let mp_timing = onepaxos::multipaxos::Timing {
        tick: 1_000_000,
        suspect_after: 80_000_000,
    };
    macro_rules! go {
        ($factory:expr) => {{
            let mut b = SimBuilder::new(profile(), $factory)
                .replicas(3)
                .clients(5)
                .think(think)
                .client_timeout(client_timeout)
                .duration(duration)
                .timeline_bucket(10_000_000);
            for f in faults {
                b = b.fault(*f);
            }
            b.run().timeline.rates().collect()
        }};
    }
    match proto {
        Proto::OnePaxos => {
            go!(|m: &[NodeId], me| OnePaxosNode::with_timing(mk_cfg(m, me), one_timing))
        }
        Proto::MultiPaxos => {
            go!(|m: &[NodeId], me| MultiPaxosNode::with_timing(mk_cfg(m, me), mp_timing))
        }
        Proto::TwoPc => go!(|m: &[NodeId], me| TwoPcNode::new(mk_cfg(m, me))),
        Proto::BasicPaxos => go!(|m: &[NodeId], me| BasicPaxosNode::new(mk_cfg(m, me))),
    }
}

/// §8 remark: 1Paxos over an IP network vs Multi-Paxos (paper: ×2.88).
pub fn exp_ip(clients: usize, duration: Nanos) -> (f64, f64) {
    let mk = |p: Proto| {
        run(
            p,
            &RunCfg {
                profile: Profile::lan(3 + clients),
                clients,
                duration: Some(duration),
                warmup: duration / 8,
                // LAN latencies are milliseconds; client patience must
                // scale with them or retries storm the leader.
                client_timeout: 100_000_000,
                ..RunCfg::standard48()
            },
        )
        .throughput
    };
    (mk(Proto::OnePaxos), mk(Proto::MultiPaxos))
}

/// One point of the batch-size sweep.
#[derive(Clone, Copy, Debug)]
pub struct BatchPoint {
    /// Batch-size knob (`max_commands`); 1 = batching off.
    pub max_commands: usize,
    /// Whether engine batching was enabled for this point.
    pub batched: bool,
    /// Throughput, ops/sec.
    pub throughput: f64,
    /// Mean commit latency, µs.
    pub latency_us: f64,
    /// Inter-replica messages over the whole run.
    pub server_messages: u64,
    /// Completions inside the measurement window.
    pub completed: u64,
}

/// Batch-size sweep on the saturated sim harness: `max_commands = 1`
/// runs with batching off (the baseline), every other size batches with
/// `max_delay` as the deadline. The §3 expectation: throughput grows
/// with the batch size as inter-replica messages per command shrink,
/// flattening once the per-command apply cost and the per-reply
/// transmissions dominate; single-digit microseconds of deadline keep
/// the latency cost bounded.
pub fn exp_batching(
    proto: Proto,
    sizes: &[usize],
    clients: usize,
    duration: Nanos,
    max_delay: Nanos,
) -> Vec<BatchPoint> {
    sizes
        .iter()
        .map(|&s| {
            let batch = (s > 1).then(|| BatchConfig::new(s, max_delay));
            let r = run(
                proto,
                &RunCfg {
                    batch,
                    ..RunCfg::throughput48(clients, duration)
                },
            );
            BatchPoint {
                max_commands: s.max(1),
                batched: batch.is_some(),
                throughput: r.throughput,
                latency_us: r.mean_latency_us(),
                server_messages: r.server_messages,
                completed: r.completed,
            }
        })
        .collect()
}

/// One point of the shard-count sweep.
#[derive(Clone, Copy, Debug)]
pub struct ShardPoint {
    /// Number of key-hash-routed consensus groups (1 = unsharded).
    pub shards: u16,
    /// Throughput, ops/sec.
    pub throughput: f64,
    /// Mean commit latency, µs.
    pub latency_us: f64,
    /// Inter-replica messages over the whole run.
    pub server_messages: u64,
    /// Completions inside the measurement window.
    pub completed: u64,
}

/// Shard-count sweep on the saturated sim harness, batching enabled on
/// every point (the acceptance configuration: sharding must multiply
/// *batched* throughput, not merely recover what batching already
/// bought). The workload is keyed (`Put`s over a wide key space) so
/// routing exercises the real key-hash path; every `(replica, shard)`
/// process runs on its own core, so S groups put S leader cores to work
/// — the paper's "consensus scales with cores" claim in its sharpest
/// form.
pub fn exp_sharding(
    proto: Proto,
    shard_counts: &[u16],
    clients: usize,
    duration: Nanos,
    batch: BatchConfig,
) -> Vec<ShardPoint> {
    shard_counts
        .iter()
        .map(|&s| {
            let r = run(
                proto,
                &RunCfg {
                    shards: s,
                    batch: Some(batch),
                    workload: Workload::ReadMix {
                        read_pct: 0,
                        keys: 4096,
                        hot_pct: 0,
                    },
                    ..RunCfg::throughput48(clients, duration)
                },
            );
            ShardPoint {
                shards: s,
                throughput: r.throughput,
                latency_us: r.mean_latency_us(),
                server_messages: r.server_messages,
                completed: r.completed,
            }
        })
        .collect()
}

/// One point of the adaptive-vs-static batch-depth sweep.
#[derive(Clone, Copy, Debug)]
pub struct AdaptivePoint {
    /// Offered load: closed-loop clients.
    pub clients: usize,
    /// Key-hash-routed consensus groups (1 = unsharded).
    pub shards: u16,
    /// Whether the engine drove the depth adaptively.
    pub adaptive: bool,
    /// The static flush depth (1 = batching off), or the adaptive cap.
    pub depth: usize,
    /// Throughput, ops/sec.
    pub throughput: f64,
    /// Mean commit latency, µs.
    pub latency_us: f64,
    /// Inter-replica messages over the whole run.
    pub server_messages: u64,
    /// Completions inside the measurement window.
    pub completed: u64,
    /// Deepest learned flush depth across the replicas' controllers at
    /// the end of the run (static points report the knob itself).
    pub final_depth: usize,
    /// Mean commands per flush across every engine of the run.
    pub mean_fill: f64,
}

/// Co-locates clients when a load level asks for more processes than the
/// profile has cores: replica-shard processes keep a core each (they are
/// the measured hot path), clients round-robin over the remainder.
/// Returns `None` when the identity placement already fits.
fn packed_placement(cores: usize, replica_procs: usize, clients: usize) -> Option<Vec<usize>> {
    if replica_procs + clients <= cores {
        return None;
    }
    let client_cores = cores - replica_procs;
    assert!(client_cores > 0, "no cores left for clients");
    Some(
        (0..replica_procs)
            .chain((0..clients).map(|j| replica_procs + j % client_cores))
            .collect(),
    )
}

/// Adaptive-vs-static batch-depth sweep on the 48-core sim harness: for
/// each offered load (client count) and shard count, run every static
/// depth in `statics` (1 = batching off) plus one adaptive point bounded
/// by `cap`. The static points re-measure the load-dependence of the
/// optimum (the reason a static knob is wrong at every load but one);
/// the adaptive point is the cure under test — it must land within a
/// few percent of whichever static depth happens to win at that load.
/// The workload is keyed so sharded points exercise real routing.
pub fn exp_adaptive(
    proto: Proto,
    loads: &[usize],
    shard_counts: &[u16],
    statics: &[usize],
    cap: usize,
    duration: Nanos,
    max_delay: Nanos,
) -> Vec<AdaptivePoint> {
    let mut out = Vec::new();
    for &shards in shard_counts {
        for &clients in loads {
            let mut base = RunCfg {
                shards,
                workload: Workload::ReadMix {
                    read_pct: 0,
                    keys: 4096,
                    hot_pct: 0,
                },
                ..RunCfg::throughput48(clients, duration)
            };
            base.placement =
                packed_placement(base.profile.cores, base.replicas * shards as usize, clients);
            let point = |batch: Option<BatchConfig>, depth: usize, adaptive: bool| {
                let r = run(
                    proto,
                    &RunCfg {
                        batch,
                        ..base.clone()
                    },
                );
                let stats = r.batch_stats();
                AdaptivePoint {
                    clients,
                    shards,
                    adaptive,
                    depth,
                    throughput: r.throughput,
                    latency_us: r.mean_latency_us(),
                    server_messages: r.server_messages,
                    completed: r.completed,
                    final_depth: if adaptive { stats.depth } else { depth },
                    mean_fill: stats.mean_fill(),
                }
            };
            for &s in statics {
                let batch = (s > 1).then(|| BatchConfig::new(s, max_delay));
                out.push(point(batch, s.max(1), false));
            }
            out.push(point(
                Some(BatchConfig::adaptive(AdaptiveBatch::new(cap, max_delay))),
                cap,
                true,
            ));
        }
    }
    out
}

/// One point of the cross-shard-transaction sweep.
#[derive(Clone, Copy, Debug)]
pub struct TxnPoint {
    /// Distinct shard groups each transaction touches (0 for the
    /// plain-put baseline).
    pub fanout: u16,
    /// Whether this point ran coordinator-driven transactions.
    pub txn: bool,
    /// Committed-transaction (or put) throughput, ops/sec.
    pub throughput: f64,
    /// Mean commit latency, µs.
    pub latency_us: f64,
    /// Median commit latency, µs.
    pub p50_us: f64,
    /// 99th-percentile commit latency, µs.
    pub p99_us: f64,
    /// 99.9th-percentile commit latency, µs.
    pub p999_us: f64,
    /// Inter-replica messages over the whole run.
    pub server_messages: u64,
    /// Completions inside the measurement window.
    pub completed: u64,
    /// Transactions aborted by prepare-phase lock conflicts.
    pub aborted: u64,
    /// Aborts per committed transaction (the rate the fan-out cliff
    /// shows up in before throughput does).
    pub abort_rate: f64,
    /// Lock-wait re-probes issued by the coordinators (conflict
    /// retries, not message-loss retries).
    pub retries: u64,
}

impl TxnPoint {
    fn from_report(fanout: u16, txn: bool, mut r: manycore_sim::RunReport) -> TxnPoint {
        TxnPoint {
            fanout,
            txn,
            throughput: r.throughput,
            latency_us: r.mean_latency_us(),
            p50_us: r.p50_latency_us(),
            p99_us: r.p99_latency_us(),
            p999_us: r.p999_latency_us(),
            server_messages: r.server_messages,
            completed: r.completed,
            aborted: r.txn_aborts,
            abort_rate: if r.completed == 0 {
                r.txn_aborts as f64
            } else {
                r.txn_aborts as f64 / r.completed as f64
            },
            retries: r.txn_retries,
        }
    }
}

/// Committed-transaction throughput vs cross-shard fan-out on the
/// saturated sharded sim harness, batching enabled on every point. The
/// baseline is the same deployment running plain batched puts; then the
/// `TxnMix` workload drives fan-outs of 1 (the `MultiPut` short-circuit,
/// which must cost ≈ a put), 2 and 4 — each committed fan-out-F
/// transaction paying F prepare + F outcome agreements across its
/// groups, so throughput is expected to fall roughly as 1/2F while
/// remaining strictly live.
pub fn exp_txn(
    proto: Proto,
    fanouts: &[u16],
    shards: u16,
    clients: usize,
    duration: Nanos,
    batch: BatchConfig,
    hot_pct: u8,
) -> Vec<TxnPoint> {
    // Client sessions are spread round-robin over the replicas (for
    // every point, baseline included, so the comparison stays
    // apples-to-apples). A fan-out-F transaction pushes 2F commands
    // through the shard leaders where a plain put pushes one; with all
    // sessions pinned to the leaders, the extra per-command session cost
    // (rx, handle, reply marshalling) saturates the leader cores at
    // fan-out 2 and the closed loop converts the queueing into latency.
    // Spread sessions ride the follower-forwarding path — followers
    // batch their clients' commands and forward one proposal per flush —
    // so the session cost lands on follower cores and the leaders keep
    // ordering.
    let base = |workload: Workload| RunCfg {
        shards,
        batch: Some(batch),
        workload,
        spread_clients: true,
        ..RunCfg::throughput48(clients, duration)
    };
    let mut out = Vec::with_capacity(fanouts.len() + 1);
    let baseline = run(
        proto,
        &base(Workload::ReadMix {
            read_pct: 0,
            keys: 4096,
            hot_pct,
        }),
    );
    out.push(TxnPoint::from_report(0, false, baseline));
    for &fanout in fanouts {
        let r = run(
            proto,
            &base(Workload::TxnMix {
                fanout,
                keys: 4096,
                hot_pct,
            }),
        );
        out.push(TxnPoint::from_report(fanout, true, r));
    }
    out
}

/// §5.2/§5.4: acceptor switch and double-failure liveness timeline for
/// 1Paxos. Returns (timeline, label) pairs.
pub fn exp_accswitch(duration: Nanos) -> Vec<(&'static str, Vec<(Nanos, f64)>)> {
    let third = duration / 3;
    vec![
        (
            "slow acceptor (switch to backup)",
            slow_core_timeline(
                Proto::OnePaxos,
                &[Fault {
                    at: third,
                    core: 1,
                    slowdown: 5000.0,
                }],
                duration,
            ),
        ),
        (
            "slow leader+acceptor (blocked until the acceptor recovers)",
            slow_core_timeline(
                Proto::OnePaxos,
                &[
                    Fault {
                        at: third,
                        core: 0,
                        slowdown: 5000.0,
                    },
                    Fault {
                        at: third,
                        core: 1,
                        slowdown: 5000.0,
                    },
                    // The acceptor recovers later; the leader stays slow.
                    Fault {
                        at: 2 * third,
                        core: 1,
                        slowdown: 1.0,
                    },
                ],
                duration,
            ),
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_dispatches_all_protocols() {
        for p in [
            Proto::OnePaxos,
            Proto::MultiPaxos,
            Proto::TwoPc,
            Proto::BasicPaxos,
        ] {
            let r = run(
                p,
                &RunCfg {
                    requests: 20,
                    ..RunCfg::standard48()
                },
            );
            assert_eq!(r.completed, 20, "{p:?}");
        }
    }

    #[test]
    fn exp_batching_deep_batches_beat_unbatched() {
        let pts = exp_batching(Proto::OnePaxos, &[1, 8], 16, 120_000_000, 20_000);
        assert_eq!(pts.len(), 2);
        assert!(!pts[0].batched && pts[1].batched);
        assert!(
            pts[1].throughput > pts[0].throughput,
            "batch=8 {:.0} op/s must beat unbatched {:.0} op/s",
            pts[1].throughput,
            pts[0].throughput
        );
        assert!(pts[1].server_messages < pts[0].server_messages);
    }

    #[test]
    fn exp_sharding_four_groups_beat_one() {
        let pts = exp_sharding(
            Proto::OnePaxos,
            &[1, 4],
            16,
            120_000_000,
            BatchConfig::new(8, 20_000),
        );
        assert_eq!(pts.len(), 2);
        assert!(
            pts[1].throughput > pts[0].throughput,
            "4 shards {:.0} op/s must beat 1 shard {:.0} op/s",
            pts[1].throughput,
            pts[0].throughput
        );
    }

    #[test]
    fn exp_adaptive_learns_a_depth_and_beats_unbatched() {
        let pts = exp_adaptive(
            Proto::OnePaxos,
            &[16],
            &[1],
            &[1, 8],
            32,
            120_000_000,
            20_000,
        );
        assert_eq!(pts.len(), 3, "two statics plus the adaptive point");
        let adaptive = pts.iter().find(|p| p.adaptive).expect("adaptive point");
        let unbatched = pts
            .iter()
            .find(|p| !p.adaptive && p.depth == 1)
            .expect("unbatched baseline");
        assert!(
            adaptive.throughput > unbatched.throughput,
            "adaptive {:.0} op/s must beat unbatched {:.0} op/s",
            adaptive.throughput,
            unbatched.throughput
        );
        assert!(adaptive.final_depth > 1, "controller never grew");
        assert!(adaptive.mean_fill > 1.0);
    }

    #[test]
    fn exp_txn_single_shard_rides_the_batch_path_and_fanout_two_progresses() {
        let pts = exp_txn(
            Proto::OnePaxos,
            &[1, 2],
            4,
            16,
            120_000_000,
            BatchConfig::new(8, 20_000),
            0,
        );
        assert_eq!(pts.len(), 3, "baseline plus two fan-outs");
        let baseline = &pts[0];
        let f1 = &pts[1];
        let f2 = &pts[2];
        assert!(!baseline.txn && f1.txn && f2.txn);
        // Fan-out 1 short-circuits to MultiPut: one agreement per txn,
        // same shape as a put — within 10% of the plain-put baseline.
        assert!(
            f1.throughput >= 0.9 * baseline.throughput,
            "single-shard txns {:.0} op/s vs plain puts {:.0} op/s",
            f1.throughput,
            baseline.throughput
        );
        // Cross-shard txns pay their 2PC legs but stay live — and with
        // pipelined outcomes they must clear half the plain-put rate.
        assert!(f2.completed > 0, "fan-out-2 made no progress");
        assert!(
            f2.throughput >= 0.5 * baseline.throughput,
            "fan-out-2 txns {:.0} op/s vs plain puts {:.0} op/s — the cliff is back",
            f2.throughput,
            baseline.throughput
        );
        // The latency histogram is populated and ordered.
        assert!(f2.p50_us > 0.0 && f2.p99_us >= f2.p50_us && f2.p999_us >= f2.p99_us);
    }

    #[test]
    fn packed_placement_only_kicks_in_past_the_core_count() {
        assert_eq!(packed_placement(48, 3, 45), None);
        let p = packed_placement(48, 3, 48).expect("51 processes on 48 cores");
        assert_eq!(p.len(), 51);
        assert_eq!(&p[..3], &[0, 1, 2], "replicas keep their own cores");
        assert!(p[3..].iter().all(|&c| (3..48).contains(&c)));
        // First spare core hosts the first and the 46th client.
        assert_eq!(p[3], 3);
        assert_eq!(p[3 + 45], 3);
    }

    #[test]
    fn tab_latency_orders_like_the_paper() {
        let t = tab_latency(200);
        assert_eq!(t[0].0, Proto::OnePaxos);
        assert!(t[0].1 < t[1].1 && t[1].1 < t[2].1);
    }

    #[test]
    fn fig2_lan_scales_further_than_multicore() {
        let rows = fig2(&[1, 3, 10], 100_000_000);
        // Many-core Multi-Paxos stops improving after ~3 clients…
        let mc_gain = rows[2].1 / rows[1].1;
        assert!(mc_gain < 1.3, "many-core gain 3→10 clients: {mc_gain}");
        // …while the LAN keeps gaining.
        let lan_gain = rows[2].2 / rows[1].2;
        assert!(lan_gain > 1.5, "LAN gain 3→10 clients: {lan_gain}");
    }

    #[test]
    fn fig9_joint_baselines_peak_and_decline_while_onepaxos_grows() {
        // The paper's most distinctive figure, as a shape assertion at
        // reduced scale: past ~20 nodes Multi-Paxos-Joint declines while
        // 1Paxos-Joint keeps growing.
        let nodes = [10usize, 20, 40];
        let one = fig9(Proto::OnePaxos, &nodes, 150_000_000);
        let multi = fig9(Proto::MultiPaxos, &nodes, 150_000_000);
        // 1Paxos-Joint grows monotonically over the sweep.
        assert!(one[2].throughput > one[1].throughput);
        assert!(one[1].throughput > one[0].throughput);
        // Multi-Paxos-Joint declines from its ~20-node peak.
        assert!(
            multi[2].throughput < multi[1].throughput,
            "Multi-Paxos-Joint must decline past its peak: {} vs {}",
            multi[2].throughput,
            multi[1].throughput
        );
        // And 1Paxos ends far ahead (paper: ~4x at 45+ nodes).
        assert!(one[2].throughput > 2.0 * multi[2].throughput);
    }

    #[test]
    fn fig10_shape_reduced() {
        let rows = fig10(100_000_000);
        let find = |label: &str, n: usize| {
            rows.iter()
                .find(|(l, nn, _)| l == label && *nn == n)
                .map(|(_, _, tp)| *tp)
                .expect("series present")
        };
        // 75% reads close the gap at 3 clients…
        let one3 = find("1Paxos - 0% read", 3);
        let two3_75 = find("2PC-Joint - 75% read", 3);
        assert!(two3_75 > 0.85 * one3, "{two3_75} vs {one3}");
        // …but not at 5 clients.
        let one5 = find("1Paxos - 0% read", 5);
        let two5_75 = find("2PC-Joint - 75% read", 5);
        assert!(two5_75 < 0.9 * one5, "{two5_75} vs {one5}");
        // And pure writes leave 2PC-Joint far behind everywhere.
        assert!(find("2PC-Joint - 0% read", 3) < 0.5 * one3);
    }
}
