//! Real (non-simulated) measurement of the §3 network characteristics of
//! this machine, using the qc-channel substrate.
//!
//! "We use a sender process assigned to core 0 repeatedly issuing
//! messages to an unbounded queue. The average duration needed to send a
//! message approximates the transmission delay. [...] we again use a
//! sender and a receiving process, this time using a queue that can only
//! hold a single message. [...] latency ≈ 2·trans + 2·prop" (§3).

use std::time::Instant;

use qc_channel::spsc;

/// Results of the §3 measurements on the current machine, in nanoseconds.
#[derive(Clone, Copy, Debug)]
pub struct NetCharacteristics {
    /// Average cost to place one message on an (effectively) unbounded
    /// queue — the transmission delay.
    pub trans_ns: f64,
    /// Single-slot ping round latency (≈ 2·trans + 2·prop).
    pub single_slot_cycle_ns: f64,
    /// Propagation delay derived via the paper's formula.
    pub prop_ns: f64,
}

impl NetCharacteristics {
    /// The trans/prop ratio — ≈ 1 inside a machine (§3).
    pub fn ratio(&self) -> f64 {
        self.trans_ns / self.prop_ns.max(1.0)
    }
}

/// Measures the transmission delay: `n` sends into a queue large enough
/// to never fill (the paper's unbounded queue).
pub fn measure_transmission(n: usize) -> f64 {
    let (tx, rx) = spsc::channel::<u64>(n + 1);
    let start = Instant::now();
    for i in 0..n {
        tx.try_send(i as u64).expect("queue sized for n sends");
    }
    let elapsed = start.elapsed().as_nanos() as f64;
    drop(rx);
    elapsed / n as f64
}

/// Measures the single-slot cycle: sender spins until the receiver (on
/// another thread/core) drains each message, so every send observes a
/// full transmit + propagate + drain + head-pointer-return cycle.
pub fn measure_single_slot_cycle(n: usize) -> f64 {
    let (tx, rx) = spsc::channel::<u64>(1);
    let consumer = std::thread::spawn(move || {
        let mut got = 0usize;
        while got < n {
            if rx.try_recv().is_some() {
                got += 1;
            } else {
                std::hint::spin_loop();
            }
        }
    });
    let start = Instant::now();
    for i in 0..n {
        tx.send_spin(i as u64);
    }
    let elapsed = start.elapsed().as_nanos() as f64;
    consumer.join().expect("consumer thread");
    elapsed / n as f64
}

/// Runs both §3 experiments and derives the propagation delay with the
/// paper's formula `latency ≈ 2·trans + 2·prop`.
pub fn measure(n: usize) -> NetCharacteristics {
    // Warm-up pass to fault in pages and spin the consumer core up.
    let _ = measure_transmission(n / 4);
    let _ = measure_single_slot_cycle(n / 4);
    let trans_ns = measure_transmission(n);
    let single_slot_cycle_ns = measure_single_slot_cycle(n);
    let prop_ns = ((single_slot_cycle_ns - 2.0 * trans_ns) / 2.0).max(0.0);
    NetCharacteristics {
        trans_ns,
        single_slot_cycle_ns,
        prop_ns,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transmission_is_submicrosecond() {
        let t = measure_transmission(100_000);
        assert!(t > 0.0);
        // Even slow shared machines place a message in well under 5 µs.
        assert!(t < 5_000.0, "transmission {t} ns");
    }

    #[test]
    fn cycle_exceeds_two_transmissions() {
        let c = measure(50_000);
        assert!(
            c.single_slot_cycle_ns >= 2.0 * c.trans_ns * 0.5,
            "cycle {} vs trans {}",
            c.single_slot_cycle_ns,
            c.trans_ns
        );
        assert!(c.prop_ns >= 0.0);
    }
}
