//! Experiment harness regenerating every table and figure of *"Consensus
//! Inside"* (MIDDLEWARE 2014).
//!
//! Each `fig*`/`tab*`/`sec*`/`exp*` module computes the data behind one
//! paper artifact; the binaries under `src/bin/` print them as aligned
//! tables next to the paper's reference values, and the criterion benches
//! under `benches/` exercise the same paths. See `DESIGN.md` §3 for the
//! experiment index and `EXPERIMENTS.md` for recorded paper-vs-measured
//! results.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![deny(unsafe_code)]

pub mod experiments;
pub mod netmeas;
pub mod report;
pub mod table;

pub use experiments::{Proto, RunCfg};
