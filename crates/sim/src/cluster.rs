//! Discrete-event simulation of agreement protocols on a many-core
//! machine.
//!
//! The model implements the paper's §3 network view of a many-core:
//!
//! * every process (replica-shard or client) is pinned to one core;
//! * each core serves a FIFO queue of work items; while it serves one, it
//!   is busy — saturation emerges from per-message CPU costs rather than
//!   from link bandwidth;
//! * *transmitting* a message costs the sender CPU time (`tx`) and the
//!   receiver CPU time (`rx`); *propagation* adds latency but consumes no
//!   CPU — the defining many-core trade-off (trans/prop ≈ 1, §3);
//! * propagation is non-uniform: cores sharing a socket/LLC communicate
//!   faster than cores across the interconnect (Fig 1);
//! * a *slow core* (the paper's fault model) has all its processing times
//!   multiplied by a factor, modelling CPU-hogging neighbours (§2.2,
//!   §7.6).
//!
//! Clients follow the paper's closed loop: "a client sends a request to
//! Core 0, waits for the commit ACK, and then sends another" (§7.1), with
//! timeout-driven re-targeting to other replicas ("once the clients
//! detect the slow leader, they send their requests to other nodes",
//! §7.6).
//!
//! Each replica is a [`ShardedEngine`]: S independent consensus groups
//! with key-hash routing (1 unless [`SimBuilder::shards`] raises it).
//! Every `(replica, shard)` pair is its own simulated *process*, and
//! [`SimBuilder::placement`] maps processes to physical cores — several
//! processes placed on one core **serialize** on it (sharding buys
//! nothing), while the default identity placement spreads them so
//! throughput scales with the cores hosting shard leaders. The engines
//! own protocol dispatch, timers, commits and the applied KV replicas,
//! while this module only prices the resulting [`EngineEffect`]s in CPU
//! time and moves them between cores.

use std::cmp::Ordering as CmpOrdering;
use std::collections::{BTreeMap, BinaryHeap, VecDeque};

use onepaxos::engine::{
    BatchConfig, EngineConfig, EngineEffect, EngineEvent, EngineStats, ReplicaEngine,
};
use onepaxos::kv::KvStore;
use onepaxos::rsm::ApplierSnapshot;
use onepaxos::shard::{ShardId, ShardRouter, ShardedEngine};
use onepaxos::txn::{Fragment, TxnCoordinator, TxnOutcome, TxnStep};
use onepaxos::{Command, Instance, Nanos, NodeId, Op, Protocol};

use crate::metrics::{LatencyStats, Timeline};
use crate::profile::Profile;
use crate::rng::SimRng;

/// The untagged effect stream of one simulated shard engine.
type Effects<P> = Vec<EngineEffect<<P as Protocol>::Msg, Option<u64>>>;

/// Client operation mix.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Workload {
    /// Commands with no payload, as in the paper's main experiments
    /// ("there is no payload added to the requests", §7.1). Keyless:
    /// sharded deployments route them by client id.
    Noop,
    /// `read_pct` percent `Get`s, the rest `Put`s, over `keys` keys
    /// (Fig 10). Reads are ordered through consensus.
    ReadMix {
        /// Percentage of reads (0–100).
        read_pct: u8,
        /// Key-space size.
        keys: u64,
        /// Contention knob: percentage of operations (0–100) whose key
        /// is drawn from the [`HOT_SET`]-sized hot set at the bottom of
        /// the key space instead of uniformly — the YCSB-style hotspot
        /// approximation of a zipfian access pattern. 0 is uniform.
        hot_pct: u8,
    },
    /// Like [`Workload::ReadMix`], but reads are issued as *relaxed*
    /// reads (§7.5): the client asks the target replica for its local
    /// copy, which answers without agreement traffic when the protocol
    /// allows it (2PC outside its lock window) and degrades to an
    /// ordered read through consensus otherwise (the Paxos family). This
    /// is the sim-side `get_relaxed`, so Fig-10-style experiments can
    /// run sharded and in replica (non-joint) mode.
    RelaxedMix {
        /// Percentage of relaxed reads (0–100).
        read_pct: u8,
        /// Key-space size.
        keys: u64,
    },
    /// Cross-shard atomic transactions (see `onepaxos::txn`): every
    /// client operation is a multi-key write set touching exactly
    /// `fanout` distinct shard groups (clamped to the deployment's shard
    /// count), one key per group, driven by a client-side 2PC
    /// coordinator. A fan-out of 1 short-circuits to a single
    /// `Op::MultiPut` agreement; higher fan-outs run PREPARE → outcome
    /// across the groups, each leg costing the client
    /// [`Profile::txn_leg`] on top of transmission. Committed
    /// transactions count as completions; conflict-aborted ones are
    /// counted in `RunReport::txn_aborts` and the client moves on to a
    /// fresh write set. Non-joint deployments only.
    TxnMix {
        /// Distinct shard groups each transaction touches.
        fanout: u16,
        /// Key-space size (must comfortably exceed the shard count).
        keys: u64,
        /// Contention knob: percentage of per-shard key draws (0–100)
        /// taken from the hot end of the key space (see
        /// [`Workload::ReadMix::hot_pct`]). Raising it makes write sets
        /// collide, exercising the lock-wait queues and the
        /// conflict-aware scheduler. 0 is uniform.
        hot_pct: u8,
    },
}

/// Size of the hot set the `hot_pct` knobs draw from: small enough that
/// hot draws genuinely collide, large enough that a hot transaction is
/// not a single global lock.
pub const HOT_SET: u64 = 8;

/// Samples a key: uniform over `keys`, except `hot_pct` percent of
/// draws come from the first [`HOT_SET`] keys.
fn sample_key(keys: u64, hot_pct: u8, rng: &mut SimRng) -> u64 {
    if hot_pct > 0 && (rng.below(100) as u8) < hot_pct {
        rng.below(HOT_SET.min(keys))
    } else {
        rng.below(keys)
    }
}

impl Workload {
    fn generate(&self, rng: &mut SimRng) -> Op {
        match *self {
            Workload::Noop => Op::Noop,
            Workload::TxnMix { .. } => {
                unreachable!("TxnMix is driven by the client-side coordinator, not per-op")
            }
            Workload::ReadMix {
                read_pct,
                keys,
                hot_pct,
            } => {
                if (rng.below(100) as u8) < read_pct {
                    Op::Get {
                        key: sample_key(keys, hot_pct, rng),
                    }
                } else {
                    Op::Put {
                        key: sample_key(keys, hot_pct, rng),
                        value: rng.below(1_000_000),
                    }
                }
            }
            Workload::RelaxedMix { read_pct, keys } => {
                if (rng.below(100) as u8) < read_pct {
                    Op::Get {
                        key: rng.below(keys),
                    }
                } else {
                    Op::Put {
                        key: rng.below(keys),
                        value: rng.below(1_000_000),
                    }
                }
            }
        }
    }

    /// Whether reads of this workload bypass consensus when possible.
    fn relaxed_reads(&self) -> bool {
        matches!(self, Workload::RelaxedMix { .. })
    }

    /// Whether this workload issues coordinator-driven transactions.
    fn is_txn(&self) -> bool {
        matches!(self, Workload::TxnMix { .. })
    }
}

/// A scheduled change of a core's speed (the §2.2/§7.6 CPU-hog injection).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Fault {
    /// When the change takes effect.
    pub at: Nanos,
    /// The affected physical core (every process placed on it slows).
    pub core: usize,
    /// Processing-time multiplier from then on (1.0 = full speed; the
    /// paper's "8 CPU-intensive processes" give the victim ≈ 1/9 of the
    /// cycles, i.e. a multiplier of 9.0).
    pub slowdown: f64,
}

/// Everything measured during one run.
#[derive(Debug)]
pub struct RunReport {
    /// Completed client requests inside the measurement window.
    pub completed: u64,
    /// Virtual measurement duration (total minus warm-up).
    pub duration: Nanos,
    /// Commit throughput in the window, ops/sec.
    pub throughput: f64,
    /// Commit latency distribution in the window.
    pub latency: LatencyStats,
    /// Completions per time bucket over the whole run (including
    /// warm-up), for Fig 11-style plots.
    pub timeline: Timeline,
    /// Total inter-core protocol messages (replica↔replica only).
    pub server_messages: u64,
    /// Total inter-core messages including client requests and replies.
    pub total_messages: u64,
    /// Per-physical-core busy fraction over the whole run (indexed by
    /// core; cores hosting no process stay at 0).
    pub utilization: Vec<f64>,
    /// Virtual time when the run stopped.
    pub ended_at: Nanos,
    /// KV digests per replica at the end, folded across shard groups
    /// (equal once logs drain).
    pub replica_digests: Vec<u64>,
    /// Final batching counters per `(replica, shard)` process in
    /// replica-major order (all zeros except `depth` when batching is
    /// off). Under adaptive batching, `depth` is the depth each
    /// controller had learned when the run stopped.
    pub engine_stats: Vec<EngineStats>,
    /// Transactions aborted by prepare-phase lock conflicts
    /// (`Workload::TxnMix` only; the client retries with a fresh write
    /// set, so aborts never count as completions).
    pub txn_aborts: u64,
    /// Lock-wait re-probes issued by the client coordinators
    /// (`Workload::TxnMix` only): each is a deferred re-ask of a
    /// prepare that parked in a shard's lock-wait queue — retries in
    /// the conflict sense, not the message-loss sense.
    pub txn_retries: u64,
    /// Agreed truncations observed by the maintenance loop, summed over
    /// replica-shard processes (each replica counts its own log-base
    /// advances, so one agreed truncation of a 3-replica group counts up
    /// to 3 here). Zero unless [`SimBuilder::truncate_every`] is set.
    pub truncations: u64,
    /// State snapshots installed by lagging replicas during
    /// snapshot-install catch-up. Zero unless
    /// [`SimBuilder::truncate_every`] is set.
    pub snapshots_installed: u64,
}

impl RunReport {
    /// Mean latency in microseconds (convenience for tables).
    pub fn mean_latency_us(&self) -> f64 {
        self.latency.mean() as f64 / 1_000.0
    }

    /// Median latency in microseconds.
    pub fn p50_latency_us(&mut self) -> f64 {
        self.latency.p50() as f64 / 1_000.0
    }

    /// 99th-percentile latency in microseconds.
    pub fn p99_latency_us(&mut self) -> f64 {
        self.latency.p99() as f64 / 1_000.0
    }

    /// 99.9th-percentile latency in microseconds (`&mut` because the
    /// percentile queries sort the samples lazily).
    pub fn p999_latency_us(&mut self) -> f64 {
        self.latency.p999() as f64 / 1_000.0
    }

    /// Batching counters folded over every replica-shard process
    /// (counters add, `depth` reports the deepest controller).
    pub fn batch_stats(&self) -> EngineStats {
        let mut total = EngineStats::default();
        for s in &self.engine_stats {
            total.absorb(s);
        }
        total
    }
}

enum WorkItem<M> {
    /// Protocol message from a peer replica of the same shard group (the
    /// group is implied by the receiving process).
    Peer { from: NodeId, msg: M },
    /// A client request arriving at a replica-shard process.
    ClientReq { client: NodeId, req_id: u64, op: Op },
    /// A commit acknowledgement arriving back at the client. `value` is
    /// the state-machine output the reply carried (for a transaction
    /// prepare, the shard's vote), `None` when it was not yet applied at
    /// emission.
    Reply { req_id: u64, value: Option<u64> },
    /// A relaxed read (§7.5) arriving at a replica-shard process: served
    /// from the local copy when the protocol allows it, without touching
    /// the log; degraded to an ordered read otherwise.
    RelaxedRead {
        client: NodeId,
        req_id: u64,
        key: u64,
    },
    /// A relaxed read caught inside a 2PC lock window, re-polling the
    /// replica's local copy until the window closes.
    RelaxedPoll {
        client: NodeId,
        req_id: u64,
        key: u64,
    },
    /// Wake the process's engine to fire due timers. `due` is the
    /// deadline this check was scheduled for: a check that no longer
    /// matches the process's pending wake (it was superseded by an
    /// earlier one) is stale and must do nothing — in particular it must
    /// not reschedule, or superseded checks would duplicate forever.
    TimerCheck { due: Nanos },
    /// Client-loop: issue the next request.
    SendNext,
    /// Client-loop: outstanding-request timeout check.
    RetryCheck { req_id: u64, epoch: u64 },
    /// Client-loop: a lock-wait re-probe whose transmission the
    /// conflict-aware scheduler held back one flush window (so the
    /// current lock holder can finish before the shard is re-asked).
    /// Unlike [`WorkItem::RetryCheck`] this does not rotate the target
    /// replica: the fragment is not lost, just parked.
    TxnDeferred { req_id: u64, epoch: u64 },
    /// Joint-mode local read waiting for the replica's 2PC lock window to
    /// close (§7.5): polls until the copy is readable again.
    LocalReadWait { req_id: u64, key: u64 },
    /// Periodic bounded-memory maintenance tick on a replica-shard
    /// process — scheduled only when [`SimBuilder::truncate_every`] is
    /// set, so default runs replay byte-identically. The shard's leader
    /// proposes an agreed [`Op::Truncate`] once enough commands sit
    /// applied above the log base, and a replica that has fallen behind
    /// the group asks a peer for a state snapshot.
    MaintCheck,
    /// A snapshot request arriving at a donor replica-shard process:
    /// `for_proc` is the lagging requester, `have` its applied
    /// watermark. The donor serializes and transmits its snapshot
    /// (`snapshot + marshal + tx` of CPU) only when strictly newer.
    SnapshotServe { for_proc: usize, have: Instance },
    /// A state snapshot arriving at a lagging replica-shard process;
    /// installing costs `rx + snapshot` of CPU.
    SnapshotInstall { snap: ApplierSnapshot<KvStore> },
}

enum Event<M> {
    Work {
        proc: usize,
        item: WorkItem<M>,
    },
    CoreRun {
        core: usize,
    },
    SetSpeed {
        core: usize,
        slowdown: f64,
    },
    /// Crash-restart of a whole replica slot with amnesia: its engines
    /// are swapped for fresh ones (`idx` names the pre-built spare).
    /// Messages already in flight or queued still arrive afterwards —
    /// what is lost is *state*, exactly the runtime's `restart_replica`.
    ResetReplica {
        replica: usize,
        idx: usize,
    },
    Stop,
}

/// Poll interval while a local/relaxed read waits out a lock window.
const LOCAL_READ_POLL: Nanos = 2_000;

/// Interval between [`WorkItem::MaintCheck`] ticks — the sim analogue of
/// the runtime's coarse maintenance clock. Coarse on purpose: truncation
/// and catch-up are background work and must not dominate the priced CPU.
const MAINT_TICK: Nanos = 500_000;

/// Client id under which the maintenance loop proposes agreed
/// truncations. No process owns it, so the commit's reply is dropped at
/// the effect layer — the sim equivalent of the runtime transports
/// dropping self-addressed truncation replies. `req_id` = proposed
/// watermark keeps ids monotone for the applier's session dedup.
const TRUNC_CLIENT: NodeId = NodeId(0x7F00);

/// How long the conflict-aware scheduler holds back work aimed at a
/// contended key: one typical batch-flush window, long enough for the
/// current lock holder's outcome to commit and release the lock.
const DEFER_WINDOW: Nanos = 20_000;

/// Heap entry ordered by (time, seq) only.
struct Scheduled<M> {
    at: Nanos,
    seq: u64,
    ev: Event<M>,
}

impl<M> PartialEq for Scheduled<M> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<M> Eq for Scheduled<M> {}
impl<M> PartialOrd for Scheduled<M> {
    fn partial_cmp(&self, other: &Self) -> Option<CmpOrdering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Scheduled<M> {
    fn cmp(&self, other: &Self) -> CmpOrdering {
        // Reversed: BinaryHeap is a max-heap, we want earliest first.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// One physical core: a FIFO of work items from every process placed on
/// it. Processes sharing a core serialize here — that is the whole
/// placement model.
struct CoreState<M> {
    queue: VecDeque<(usize, WorkItem<M>)>,
    free_at: Nanos,
    running: bool,
    slowdown: f64,
    busy: Nanos,
}

struct ClientState {
    node: NodeId,
    /// The client's process index.
    proc: usize,
    next_req: u64,
    /// The in-flight request: id, send time, and the operation itself
    /// (retries resend the *same* operation, so a re-targeted request
    /// cannot commit under two different payloads or shard routes).
    outstanding: Option<(u64, Nanos, Op)>,
    /// Bumped when the target changes; stale retry checks are dropped.
    epoch: u64,
    target_idx: usize,
    completed: u64,
    rng: SimRng,
    /// Client-side 2PC coordinator ([`Workload::TxnMix`] only): owns
    /// the transaction ids, fragment request ids and vote collection;
    /// this loop owns transport and retries.
    coord: TxnCoordinator,
    /// When the in-flight transaction began (latency measurement).
    txn_started: Option<Nanos>,
    /// A generated write set held back one flush window by the
    /// conflict-aware scheduler because it touched a recently-contended
    /// key; the next `SendNext` submits it unconditionally.
    pending_writes: Option<Vec<(u64, u64)>>,
}

/// Builder-configured simulation of one protocol deployment.
///
/// # Examples
///
/// ```
/// use manycore_sim::{Profile, SimBuilder};
/// use onepaxos::twopc::TwoPcNode;
/// use onepaxos::ClusterConfig;
///
/// let report = SimBuilder::new(Profile::opteron48(), |m, me| {
///     TwoPcNode::new(ClusterConfig::new(m.to_vec(), me))
/// })
/// .replicas(3)
/// .clients(1)
/// .requests_per_client(50)
/// .run();
/// assert_eq!(report.completed, 50);
/// assert!(report.throughput > 0.0);
/// ```
pub struct SimBuilder<P, F> {
    profile: Profile,
    replicas: usize,
    clients: usize,
    shards: u16,
    joint: bool,
    factory: F,
    workload: Workload,
    think: Nanos,
    client_timeout: Nanos,
    requests_per_client: u64,
    duration: Option<Nanos>,
    warmup: Nanos,
    timeline_bucket: Nanos,
    faults: Vec<Fault>,
    resets: Vec<(Nanos, usize)>,
    seed: u64,
    spread_clients: bool,
    placement: Option<Vec<usize>>,
    batching: Option<BatchConfig>,
    truncate_every: Option<u64>,
    _marker: std::marker::PhantomData<fn() -> P>,
}

impl<P, F> std::fmt::Debug for SimBuilder<P, F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimBuilder")
            .field("profile", &self.profile.name)
            .field("replicas", &self.replicas)
            .field("clients", &self.clients)
            .field("shards", &self.shards)
            .field("joint", &self.joint)
            .finish_non_exhaustive()
    }
}

impl<P, F> SimBuilder<P, F>
where
    P: Protocol,
    F: FnMut(&[NodeId], NodeId) -> P,
{
    /// Starts a builder on `profile`, with protocol instances built by
    /// `factory(members, me)`.
    pub fn new(profile: Profile, factory: F) -> Self {
        SimBuilder {
            profile,
            replicas: 3,
            clients: 1,
            shards: 1,
            joint: false,
            factory,
            workload: Workload::Noop,
            think: 0,
            client_timeout: 1_000_000,
            requests_per_client: 100,
            duration: None,
            warmup: 0,
            timeline_bucket: 10_000_000,
            faults: Vec::new(),
            resets: Vec::new(),
            seed: 0xC0FFEE,
            spread_clients: false,
            placement: None,
            batching: None,
            truncate_every: None,
            _marker: std::marker::PhantomData,
        }
    }

    /// Applies a shared [`EngineConfig`] — the same shard-count/batching
    /// shape accepted by `TestNet::builder` and `ClusterBuilder`, so one
    /// config value can describe a deployment across all three harnesses.
    pub fn config(mut self, cfg: EngineConfig) -> Self {
        self.shards = cfg.shards;
        self.batching = cfg.batching;
        self
    }

    /// Enables engine-level command batching on every replica: requests
    /// coalesce into one agreement per batch, amortising the per-message
    /// tx/rx CPU cost (§3). A committed batch pays the profile's `apply`
    /// cost per extra constituent command. Each shard group batches
    /// independently — and, under [`BatchConfig::Adaptive`], learns its
    /// own flush depth from its own load (final controller state lands
    /// in [`RunReport::engine_stats`]). Default off.
    pub fn batching(mut self, cfg: BatchConfig) -> Self {
        self.batching = Some(cfg);
        self
    }

    /// Number of replica slots per shard group (cores 0..r·s). Default 3,
    /// as in all the paper's replica-mode experiments.
    pub fn replicas(mut self, r: usize) -> Self {
        self.replicas = r;
        self
    }

    /// Number of independent consensus groups with key-hash routing
    /// (default 1). Every `(replica, shard)` pair becomes its own
    /// process; with the default identity placement each runs on its own
    /// core, so agreement throughput multiplies with the shard count —
    /// co-locate them via [`Self::placement`] to model fewer cores.
    /// Requires non-joint mode.
    pub fn shards(mut self, s: u16) -> Self {
        self.shards = s;
        self
    }

    /// Number of client processes. Default 1.
    pub fn clients(mut self, c: usize) -> Self {
        self.clients = c;
        self
    }

    /// Joint deployment (§7.4): every client is also a replica, all on
    /// `n` cores; commands are forwarded to the leader on core 0.
    pub fn joint(mut self, n: usize) -> Self {
        self.joint = true;
        self.replicas = n;
        self.clients = n;
        self
    }

    /// Client operation mix. Default [`Workload::Noop`].
    pub fn workload(mut self, w: Workload) -> Self {
        self.workload = w;
        self
    }

    /// Client think time between a reply and the next request (Fig 9 uses
    /// 2 ms). Default 0.
    pub fn think(mut self, t: Nanos) -> Self {
        self.think = t;
        self
    }

    /// Client patience before re-sending to another replica. Default 1 ms.
    pub fn client_timeout(mut self, t: Nanos) -> Self {
        self.client_timeout = t;
        self
    }

    /// Closed-loop request budget per client (the paper uses 100).
    /// Ignored when a duration is set.
    pub fn requests_per_client(mut self, n: u64) -> Self {
        self.requests_per_client = n;
        self
    }

    /// Run for a fixed virtual duration instead of a request budget.
    pub fn duration(mut self, d: Nanos) -> Self {
        self.duration = Some(d);
        self
    }

    /// Exclude completions before `w` from throughput/latency.
    pub fn warmup(mut self, w: Nanos) -> Self {
        self.warmup = w;
        self
    }

    /// Timeline bucket width (default 10 ms, as in Fig 11).
    pub fn timeline_bucket(mut self, w: Nanos) -> Self {
        self.timeline_bucket = w;
        self
    }

    /// Schedules a core slowdown.
    pub fn fault(mut self, f: Fault) -> Self {
        self.faults.push(f);
        self
    }

    /// Schedules a crash-restart of replica slot `replica` at virtual
    /// time `at`: every shard engine of the slot is replaced by a fresh
    /// one (protocol state, applied log and KV copy all lost), after
    /// which the slot rejoins the group from nothing. Messages in flight
    /// toward it still arrive. Once agreed truncation
    /// ([`Self::truncate_every`]) has dropped the committed prefix, the
    /// restarted slot can only recover through the snapshot-install
    /// catch-up path, priced by the profile's `snapshot` cost. Like the
    /// runtime's `restart_replica`, only restart slots whose protocol
    /// tolerates acceptor amnesia (e.g. a 1Paxos backup).
    pub fn reset_replica(mut self, at: Nanos, replica: usize) -> Self {
        self.resets.push((at, replica));
        self
    }

    /// Enables periodic agreed log truncation (and with it the
    /// snapshot-install catch-up path): each shard's leader orders an
    /// `Op::Truncate` through the group's own log whenever `every` or
    /// more commands sit applied above the log base, so replica memory
    /// stays bounded over duration-mode runs. A replica that falls an
    /// `every` behind the group (or sits on a persistent apply gap)
    /// fetches a peer snapshot, priced by the profile's `snapshot` cost
    /// on both sides of the transfer. Default off — and when off, no
    /// maintenance event is ever scheduled, so existing seeded runs
    /// replay unchanged.
    pub fn truncate_every(mut self, every: u64) -> Self {
        self.truncate_every = Some(every.max(1));
        self
    }

    /// RNG seed (jitter and workload); same seed → same run.
    pub fn seed(mut self, s: u64) -> Self {
        self.seed = s;
        self
    }

    /// Spread clients' initial targets round-robin over the replicas
    /// instead of all aiming at Core 0 — required by multi-leader
    /// protocols such as Mencius (§8). Default off (the paper's clients
    /// "send a request to Core 0", §7.1).
    pub fn spread_clients(mut self, spread: bool) -> Self {
        self.spread_clients = spread;
        self
    }

    /// Pins process `i` to physical core `placement[i]`, controlling
    /// which processes share a socket/LLC (Fig 1's non-uniform latency)
    /// — and which share a *core*: processes placed on the same core
    /// serialize on its FIFO, which is how co-located shards are
    /// modelled. Defaults to the identity placement (every process its
    /// own core).
    ///
    /// Process order: replica-shard processes first (replica-major:
    /// replica 0's shards, then replica 1's, …), then clients. The
    /// vector must have one entry per process, all within the profile's
    /// core count.
    pub fn placement(mut self, placement: Vec<usize>) -> Self {
        self.placement = Some(placement);
        self
    }

    /// Runs the simulation to completion and reports.
    ///
    /// # Panics
    ///
    /// Panics if the deployment does not fit the profile's core count, if
    /// sharding is combined with joint mode, or if a protocol violates
    /// commit consistency (the safety oracle).
    pub fn run(mut self) -> RunReport {
        let shards = self.shards as usize;
        assert!(shards >= 1, "need at least one shard");
        assert!(
            !(self.joint && shards > 1),
            "sharding is not supported in joint mode"
        );
        assert!(
            !(self.joint && self.workload.is_txn()),
            "transactions require replica mode (clients coordinate over shard groups)"
        );
        let n_replica_procs = self.replicas * shards;
        let total_procs = if self.joint {
            self.replicas
        } else {
            n_replica_procs + self.clients
        };
        assert!(self.replicas >= 1, "need at least one replica");

        let members: Vec<NodeId> = (0..self.replicas as u16).map(NodeId).collect();
        let batching = self.batching;
        let shard_count = self.shards;
        let factory = &mut self.factory;
        let engines: Vec<ShardedEngine<P, KvStore>> = members
            .iter()
            // History off: the sim asserts safety through its own global
            // oracle, and long duration-mode runs must not accumulate
            // per-replica commit/reply logs.
            .map(|&me| {
                let mut e = ShardedEngine::new(shard_count, |shard| {
                    ReplicaEngine::new(factory(&members, me), KvStore::new())
                        .with_history(false)
                        .with_shard(shard)
                });
                e.set_batching(batching);
                e
            })
            .collect();
        // One pre-built fresh engine per scheduled reset, constructed up
        // front because the factory is consumed before the sim runs.
        let spare_engines: Vec<Option<ShardedEngine<P, KvStore>>> = self
            .resets
            .iter()
            .map(|&(_, r)| {
                assert!(r < self.replicas, "reset of nonexistent replica {r}");
                let me = members[r];
                let mut e = ShardedEngine::new(shard_count, |shard| {
                    ReplicaEngine::new(factory(&members, me), KvStore::new())
                        .with_history(false)
                        .with_shard(shard)
                });
                e.set_batching(batching);
                Some(e)
            })
            .collect();
        let n_replicas = self.replicas;
        let clients = (0..self.clients)
            .map(|j| {
                let proc = if self.joint { j } else { n_replica_procs + j };
                let node = NodeId(proc as u16);
                ClientState {
                    node,
                    proc,
                    next_req: 1,
                    outstanding: None,
                    epoch: 0,
                    target_idx: if self.spread_clients {
                        j % n_replicas
                    } else {
                        0
                    },
                    completed: 0,
                    rng: SimRng::seed_from_u64(self.seed ^ (0x9E37_79B9 + j as u64)),
                    coord: TxnCoordinator::new(node, ShardRouter::new(shard_count)),
                    txn_started: None,
                    pending_writes: None,
                }
            })
            .collect();
        let placement = match self.placement.take() {
            Some(p) => {
                assert_eq!(p.len(), total_procs, "placement must cover every process");
                assert!(
                    p.iter().all(|&c| c < self.profile.cores),
                    "placement exceeds the profile's cores"
                );
                p
            }
            None => {
                assert!(
                    total_procs <= self.profile.cores,
                    "{total_procs} processes exceed {} cores of profile {} \
                     (co-locate them with an explicit placement)",
                    self.profile.cores,
                    self.profile.name
                );
                (0..total_procs).collect()
            }
        };

        let local_reads_possible = engines[0].supports_local_reads();
        let n_cores = self.profile.cores;
        let mut sim = ClusterSim {
            profile: self.profile,
            joint: self.joint,
            local_reads_possible,
            placement,
            shards,
            router: ShardRouter::new(shard_count),
            members,
            engines,
            chosen: BTreeMap::new(),
            cores: (0..n_cores)
                .map(|_| CoreState {
                    queue: VecDeque::new(),
                    free_at: 0,
                    running: false,
                    slowdown: 1.0,
                    busy: 0,
                })
                .collect(),
            clients,
            heap: BinaryHeap::new(),
            seq: 0,
            now: 0,
            timer_wake: vec![None; n_replica_procs],
            link_last: BTreeMap::new(),
            rng: SimRng::seed_from_u64(self.seed),
            workload: self.workload,
            think: self.think,
            client_timeout: self.client_timeout,
            requests_per_client: if self.duration.is_some() {
                u64::MAX
            } else {
                self.requests_per_client
            },
            warmup: self.warmup,
            latency: LatencyStats::new(),
            timeline: Timeline::new(self.timeline_bucket),
            completed_in_window: 0,
            server_messages: 0,
            total_messages: 0,
            txn_aborts: 0,
            txn_retries: 0,
            truncate_every: self.truncate_every,
            gap_seen: vec![false; n_replica_procs],
            last_base: vec![0; n_replica_procs],
            truncations: 0,
            snapshots_installed: 0,
            spare_engines,
            reset_epochs: vec![0; n_replicas],
            stopped: false,
            scratch: Vec::new(),
        };

        // Protocol bootstrap, every shard group of every replica.
        for r in 0..sim.engines.len() {
            for s in 0..shards {
                let p = r * shards + s;
                let mut effects = std::mem::take(&mut sim.scratch);
                sim.engines[r].shard_mut(ShardId(s as u16)).handle(
                    EngineEvent::Start,
                    0,
                    &mut effects,
                );
                sim.apply_effects(p, 0, 0, &mut effects);
                sim.scratch = effects;
            }
        }
        // Clients start their closed loops at t=0.
        for j in 0..sim.clients.len() {
            let proc = sim.clients[j].proc;
            sim.push_work(0, proc, WorkItem::SendNext);
        }
        // Maintenance ticks only exist when truncation is enabled, so
        // default runs keep their exact event schedule (seed-stable).
        if sim.truncate_every.is_some() {
            for proc in 0..sim.n_replica_procs() {
                sim.push_work(MAINT_TICK, proc, WorkItem::MaintCheck);
            }
        }
        for f in &self.faults {
            sim.push(
                f.at,
                Event::SetSpeed {
                    core: f.core,
                    slowdown: f.slowdown,
                },
            );
        }
        for (idx, &(at, replica)) in self.resets.iter().enumerate() {
            sim.push(at, Event::ResetReplica { replica, idx });
        }
        if let Some(d) = self.duration {
            sim.push(d, Event::Stop);
        }
        sim.run_loop();
        sim.into_report(self.warmup)
    }
}

struct ClusterSim<P: Protocol> {
    profile: Profile,
    joint: bool,
    /// Whether the deployed protocol ever serves reads locally (2PC).
    local_reads_possible: bool,
    /// Process index → physical core (Fig 1 topology + serialization).
    placement: Vec<usize>,
    /// Shard groups per replica.
    shards: usize,
    /// Key-hash routing shared by clients and oracles.
    router: ShardRouter,
    members: Vec<NodeId>,
    /// One sharded engine per replica slot (protocol + timers + commits
    /// + KV, per shard group).
    engines: Vec<ShardedEngine<P, KvStore>>,
    /// Global safety oracle: (shard, instance) → first command seen
    /// committed (instances of different groups are unrelated logs).
    chosen: BTreeMap<(u16, Instance), Command>,
    /// Physical cores; processes sharing one serialize on its queue.
    cores: Vec<CoreState<P::Msg>>,
    clients: Vec<ClientState>,
    heap: BinaryHeap<Scheduled<P::Msg>>,
    seq: u64,
    now: Nanos,
    /// Earliest pending TimerCheck per replica-shard process, to avoid
    /// wake-up storms.
    timer_wake: Vec<Option<Nanos>>,
    /// FIFO enforcement: last arrival time per directed process pair.
    link_last: BTreeMap<(usize, usize), Nanos>,
    rng: SimRng,
    workload: Workload,
    think: Nanos,
    client_timeout: Nanos,
    requests_per_client: u64,
    warmup: Nanos,
    latency: LatencyStats,
    timeline: Timeline,
    completed_in_window: u64,
    server_messages: u64,
    total_messages: u64,
    /// Transactions aborted by prepare-phase lock conflicts (TxnMix).
    txn_aborts: u64,
    /// Lock-wait re-probes deferred by the conflict-aware scheduler.
    txn_retries: u64,
    /// Truncation threshold; `None` disables all maintenance events.
    truncate_every: Option<u64>,
    /// Per-replica-shard process: whether the previous MaintCheck already
    /// saw it lagging — a snapshot is requested only on the second
    /// consecutive sighting (the runtime's gap-patience, in tick units).
    gap_seen: Vec<bool>,
    /// Per-replica-shard process: last observed log base, to count
    /// truncations as base advances.
    last_base: Vec<Instance>,
    /// Log-base advances observed across replica-shard processes.
    truncations: u64,
    /// Peer snapshots installed by lagging replicas.
    snapshots_installed: u64,
    /// Fresh engines awaiting their scheduled [`Event::ResetReplica`].
    spare_engines: Vec<Option<ShardedEngine<P, KvStore>>>,
    /// Times each replica slot has been reset (spaces the batch-sequence
    /// id ranges of successive incarnations apart, as `TestNet` does).
    reset_epochs: Vec<u64>,
    stopped: bool,
    /// Reusable effect buffer.
    scratch: Effects<P>,
}

impl<P: Protocol> ClusterSim<P> {
    fn push(&mut self, at: Nanos, ev: Event<P::Msg>) {
        self.seq += 1;
        self.heap.push(Scheduled {
            at,
            seq: self.seq,
            ev,
        });
    }

    /// Enqueues a work item at a process, waking its core if idle.
    fn push_work(&mut self, at: Nanos, proc: usize, item: WorkItem<P::Msg>) {
        self.push(at, Event::Work { proc, item });
    }

    /// Number of replica-shard processes (they occupy the low indices).
    fn n_replica_procs(&self) -> usize {
        self.engines.len() * self.shards
    }

    /// The (replica slot, shard) a replica process hosts.
    fn replica_of(&self, proc: usize) -> (usize, ShardId) {
        debug_assert!(self.is_replica_proc(proc));
        (proc / self.shards, ShardId((proc % self.shards) as u16))
    }

    /// The process hosting shard `s` of replica slot `r`.
    fn proc_of(&self, r: usize, s: ShardId) -> usize {
        r * self.shards + s.index()
    }

    /// Index of the client living on `proc`, if any.
    fn client_on(&self, proc: usize) -> Option<usize> {
        if self.joint {
            Some(proc).filter(|&p| p < self.clients.len())
        } else {
            proc.checked_sub(self.n_replica_procs())
                .filter(|&j| j < self.clients.len())
        }
    }

    fn is_replica_proc(&self, proc: usize) -> bool {
        proc < self.n_replica_procs()
    }

    /// The current processing-time multiplier of the core hosting `proc`.
    fn slowdown_of(&self, proc: usize) -> f64 {
        self.cores[self.placement[proc]].slowdown
    }

    fn jitter(&mut self) -> Nanos {
        if self.profile.jitter == 0 {
            0
        } else {
            self.rng.below(self.profile.jitter + 1)
        }
    }

    /// Schedules a message arrival over the interconnect with FIFO
    /// preservation per directed link.
    fn deliver(
        &mut self,
        from_proc: usize,
        to_proc: usize,
        send_done: Nanos,
        item: WorkItem<P::Msg>,
    ) {
        let prop = self
            .profile
            .prop(self.placement[from_proc], self.placement[to_proc]);
        let jitter = self.jitter();
        let mut at = send_done + prop + jitter;
        let last = self.link_last.entry((from_proc, to_proc)).or_insert(0);
        if at < *last {
            at = *last;
        }
        *last = at;
        self.push_work(at, to_proc, item);
    }

    /// Crash-restarts replica slot `r` with amnesia: swaps in the
    /// pre-built fresh engine, spaces its batch-sequence range away from
    /// the dead incarnation's, and re-runs the protocol bootstrap. Work
    /// already queued or in flight toward the slot's processes still
    /// arrives — the fresh engine sees it as a new replica would: decided
    /// instances above the truncated prefix defer behind the gap until a
    /// peer snapshot fills it.
    fn reset_replica(&mut self, r: usize, idx: usize, at: Nanos) {
        let fresh = self.spare_engines[idx].take().expect("one spare per reset");
        self.engines[r] = fresh;
        self.reset_epochs[r] += 1;
        self.engines[r]
            .set_batch_seq_floor(self.reset_epochs[r] * ReplicaEngine::<P, KvStore>::BATCH_EPOCH);
        for s in 0..self.shards {
            let shard = ShardId(s as u16);
            let proc = self.proc_of(r, shard);
            self.timer_wake[proc] = None;
            self.gap_seen[proc] = false;
            self.last_base[proc] = 0;
            let mut effects = std::mem::take(&mut self.scratch);
            self.engines[r]
                .shard_mut(shard)
                .handle(EngineEvent::Start, at, &mut effects);
            self.apply_effects(proc, at, 0, &mut effects);
            self.scratch = effects;
        }
    }

    /// Schedules a TimerCheck for a replica-shard engine's earliest
    /// deadline, unless an earlier check is already pending.
    fn schedule_timer_check(&mut self, proc: usize) {
        let (r, s) = self.replica_of(proc);
        let Some(deadline) = self.engines[r].shard(s).next_deadline() else {
            return;
        };
        if self.timer_wake[proc].is_none_or(|w| deadline < w) {
            self.timer_wake[proc] = Some(deadline);
            self.push_work(deadline, proc, WorkItem::TimerCheck { due: deadline });
        }
    }

    /// Prices a shard engine's effects; `base` is the CPU time already
    /// consumed by the handler (rx + handle) scaled by the core's
    /// slowdown, relative to `start`. Returns total service time.
    ///
    /// Outbound messages are marshalled and transmitted serially within
    /// the handler (each costing `marshal + tx` of CPU), and all become
    /// visible to their receivers when the handler finishes — receivers
    /// cannot observe half-written cache lines mid-handler. This is what
    /// makes additional broadcast traffic cost latency, the §7.2 "message
    /// copy operations" effect.
    fn apply_effects(
        &mut self,
        proc: usize,
        start: Nanos,
        base: Nanos,
        effects: &mut Effects<P>,
    ) -> Nanos {
        let (r, shard) = self.replica_of(proc);
        let slowdown = self.slowdown_of(proc);
        let out_cost = ((self.profile.tx + self.profile.marshal) as f64 * slowdown) as Nanos;
        let mut service = base;
        let mut outbound: Vec<(usize, WorkItem<P::Msg>)> = Vec::new();
        let mut local: Vec<WorkItem<P::Msg>> = Vec::new();
        for effect in effects.drain(..) {
            match effect {
                EngineEffect::SendTo { to, msg } => {
                    // Peer messages stay within the shard group: the
                    // destination is the same shard's engine at replica
                    // slot `to`.
                    let to_proc = self.proc_of(to.index(), shard);
                    let item = WorkItem::Peer {
                        from: self.members[r],
                        msg,
                    };
                    if to_proc == proc {
                        // Collapsed roles on one process: local hand-off,
                        // no transmission cost (§2.3 footnote 5).
                        local.push(item);
                    } else {
                        service += out_cost;
                        self.server_messages += u64::from(self.is_replica_proc(to_proc));
                        self.total_messages += 1;
                        outbound.push((to_proc, item));
                    }
                }
                EngineEffect::ReplyTo {
                    client,
                    req_id,
                    value,
                    ..
                } => {
                    if client == TRUNC_CLIENT {
                        // Maintenance-proposed truncation: nobody waits
                        // for this reply (the runtime's transports drop
                        // it the same way).
                        continue;
                    }
                    let to_proc = client.index();
                    let value = value.flatten();
                    if to_proc == proc {
                        local.push(WorkItem::Reply { req_id, value });
                    } else {
                        service += out_cost;
                        self.total_messages += 1;
                        outbound.push((to_proc, WorkItem::Reply { req_id, value }));
                    }
                }
                EngineEffect::Committed { instance, cmd } => {
                    // Applying a batch costs CPU per constituent command
                    // beyond the first (the message-level rx/handle cost
                    // already covered one), matching the §3 model: one
                    // tx/rx per agreement, per-command apply cost.
                    service += ((self.profile.apply * (cmd.command_count() as Nanos - 1)) as f64
                        * slowdown) as Nanos;
                    // Safety oracle: all replicas of a shard group must
                    // agree per instance. (The engine already recorded
                    // and applied the commit.)
                    let prior = self
                        .chosen
                        .entry((shard.0, instance))
                        .or_insert_with(|| cmd.clone());
                    assert_eq!(
                        *prior, cmd,
                        "consistency violation at shard {shard} instance {instance}"
                    );
                }
            }
        }
        let done = start + service;
        for (to_proc, item) in outbound {
            self.deliver(proc, to_proc, done, item);
        }
        for item in local {
            self.push_work(done, proc, item);
        }
        self.schedule_timer_check(proc);
        service
    }

    /// Runs one engine event on a replica-shard process and prices the
    /// fallout.
    fn engine_step(
        &mut self,
        proc: usize,
        event: EngineEvent<P::Msg>,
        start: Nanos,
        base: Nanos,
    ) -> Nanos {
        let (r, s) = self.replica_of(proc);
        let mut effects = std::mem::take(&mut self.scratch);
        self.engines[r]
            .shard_mut(s)
            .handle(event, start, &mut effects);
        let service = self.apply_effects(proc, start, base, &mut effects);
        self.scratch = effects;
        service
    }

    /// Picks a transaction write set touching exactly `fanout` distinct
    /// shard groups (clamped to the deployment), one key per group —
    /// the cross-shard fan-out knob of [`Workload::TxnMix`].
    fn gen_txn_writes(&mut self, j: usize) -> Vec<(u64, u64)> {
        let Workload::TxnMix {
            fanout,
            keys,
            hot_pct,
        } = self.workload
        else {
            unreachable!("txn write sets only exist under TxnMix");
        };
        let shards = self.shards as u16;
        let router = self.router;
        let f = fanout.clamp(1, shards);
        let c = &mut self.clients[j];
        let first_shard = c.rng.below(u64::from(shards)) as u16;
        let mut writes = Vec::with_capacity(f as usize);
        for i in 0..f {
            let target = ShardId((first_shard + i) % shards);
            // The scan maps the sampled base to the next key owned by
            // the target shard — so hot draws (low bases) land on each
            // shard's lowest keys and genuinely collide across clients.
            let base = sample_key(keys, hot_pct, &mut c.rng);
            let key = (0..keys)
                .map(|d| (base + d) % keys)
                .find(|&k| router.route_key(k) == target)
                .expect("key space too small to cover every shard");
            writes.push((key, c.rng.below(1_000_000)));
        }
        writes
    }

    /// Transmits transaction fragments to their shards' current target
    /// replica, charging the client `marshal + tx + txn_leg` of CPU per
    /// leg and arming a per-fragment retry check. Returns the client
    /// service time, cumulative over the legs.
    fn transmit_fragments(&mut self, j: usize, frags: &[Fragment], start: Nanos) -> Nanos {
        let proc = self.clients[j].proc;
        let slowdown = self.slowdown_of(proc);
        let leg_cost = ((self.profile.tx + self.profile.marshal + self.profile.txn_leg) as f64
            * slowdown) as Nanos;
        let target_slot = self.clients[j].target_idx % self.engines.len();
        let client_node = self.clients[j].node;
        let mut service = 0;
        for f in frags {
            service += leg_cost;
            let send_done = start + service;
            self.total_messages += 1;
            self.deliver(
                proc,
                self.proc_of(target_slot, f.shard),
                send_done,
                WorkItem::ClientReq {
                    client: client_node,
                    req_id: f.req_id,
                    op: f.op.clone(),
                },
            );
            let epoch = self.clients[j].epoch;
            self.push_work(
                send_done + self.client_timeout,
                proc,
                WorkItem::RetryCheck {
                    req_id: f.req_id,
                    epoch,
                },
            );
        }
        service
    }

    /// Feeds a reply to the client's transaction coordinator and prices
    /// the fallout: outcome legs out, or completion of the closed loop.
    fn client_txn_reply(
        &mut self,
        j: usize,
        req_id: u64,
        value: Option<u64>,
        start: Nanos,
        base: Nanos,
    ) -> Nanos {
        let budget = self.requests_per_client;
        let think = self.think;
        let step = self.clients[j].coord.on_reply(req_id, value);
        // Conflict-aware defer: a Wait/Busy vote queued a fresh-id
        // re-probe — hold its transmission back one flush window so the
        // lock holder can finish, instead of hammering the shard.
        let deferred = self.clients[j].coord.take_deferred();
        if !deferred.is_empty() {
            self.txn_retries += deferred.len() as u64;
            let (proc, epoch) = (self.clients[j].proc, self.clients[j].epoch);
            for f in deferred {
                self.push_work(
                    start + base + DEFER_WINDOW,
                    proc,
                    WorkItem::TxnDeferred {
                        req_id: f.req_id,
                        epoch,
                    },
                );
            }
        }
        match step {
            TxnStep::Pending => base,
            TxnStep::Submit(frags) => base + self.transmit_fragments(j, &frags, start + base),
            TxnStep::Decided { outcome, submit } => {
                // Presumed durability: the recorded votes force this
                // outcome whether or not the coordinator survives to
                // deliver it, so the client observes completion NOW and
                // the outcome legs drain in the background — phase 2 of
                // this transaction overlaps phase 1 of the next.
                let done = start + base;
                let c = &mut self.clients[j];
                c.epoch += 1;
                let started = c.txn_started.take().unwrap_or(done);
                match outcome {
                    TxnOutcome::Committed => {
                        c.completed += 1;
                        self.timeline.record(done);
                        if done >= self.warmup {
                            self.latency.record(done.saturating_sub(started));
                            self.completed_in_window += 1;
                        }
                    }
                    TxnOutcome::Aborted => {
                        // A prepare-phase lock conflict: the transaction
                        // applied nowhere. The closed loop moves on to a
                        // fresh write set (counting it would inflate
                        // committed-txn throughput).
                        self.txn_aborts += 1;
                    }
                }
                let service = self.transmit_fragments(j, &submit, done);
                let (completed, proc) = (self.clients[j].completed, self.clients[j].proc);
                if completed < budget {
                    self.push_work(done + service + think, proc, WorkItem::SendNext);
                }
                base + service
            }
            // Recovery coordinators finish through Done; the live loop
            // above always decides early, so drain acknowledgements
            // arrive as Pending.
            TxnStep::Done(outcome) => {
                let done = start + base;
                let c = &mut self.clients[j];
                c.epoch += 1;
                let started = c.txn_started.take().unwrap_or(done);
                match outcome {
                    TxnOutcome::Committed => {
                        c.completed += 1;
                        self.timeline.record(done);
                        if done >= self.warmup {
                            self.latency.record(done.saturating_sub(started));
                            self.completed_in_window += 1;
                        }
                    }
                    TxnOutcome::Aborted => {
                        self.txn_aborts += 1;
                    }
                }
                let (completed, proc) = (self.clients[j].completed, self.clients[j].proc);
                if completed < budget {
                    self.push_work(done + think, proc, WorkItem::SendNext);
                }
                base
            }
        }
    }

    /// Client issues its next request (or finishes).
    fn client_send_next(&mut self, j: usize, start: Nanos) -> Nanos {
        let budget = self.requests_per_client;
        let think = self.think;
        if self.workload.is_txn() {
            if self.clients[j].completed >= budget || self.clients[j].coord.in_flight() {
                return 0;
            }
            let writes = if let Some(w) = self.clients[j].pending_writes.take() {
                // A write set the scheduler already held back once goes
                // out unconditionally — one window of politeness, not a
                // livelock.
                w
            } else {
                let w = self.gen_txn_writes(j);
                if self.clients[j].coord.is_hot(&w) {
                    // Conflict-aware scheduling: this write set touches
                    // a key that recently drew a conflict vote. Submit
                    // it one flush window later so the current holder
                    // can finish, instead of parking behind it (or
                    // dying young) at the shard.
                    let c = &mut self.clients[j];
                    c.pending_writes = Some(w);
                    let proc = c.proc;
                    self.push_work(start + DEFER_WINDOW, proc, WorkItem::SendNext);
                    return 0;
                }
                w
            };
            let c = &mut self.clients[j];
            c.txn_started = Some(start);
            let frags = c.coord.begin(&writes);
            return self.transmit_fragments(j, &frags, start);
        }
        let c = &mut self.clients[j];
        if c.completed >= budget || c.outstanding.is_some() {
            return 0;
        }
        let req_id = c.next_req;
        c.next_req += 1;
        let op = self.workload.generate(&mut c.rng);
        c.outstanding = Some((req_id, start, op.clone()));
        let client_node = c.node;
        let proc = c.proc;
        let epoch = c.epoch;

        if self.joint {
            // Joint deployment: hand the command to the co-located
            // replica. Reads are served from the engine's local copy when
            // the protocol allows it — immediately if unlocked, otherwise
            // after polling until the 2PC lock window closes (§7.5).
            // Protocols whose reads must be ordered (the Paxos family)
            // never allow it and fall through to consensus.
            if let Op::Get { key } = op {
                if self.engines[proc].can_read_locally(key) {
                    let service = (self.profile.handle as f64 * self.slowdown_of(proc)) as Nanos;
                    let done = start + service;
                    self.client_complete(j, req_id, done);
                    let c = &mut self.clients[j];
                    if c.completed < budget {
                        self.push_work(done + think, proc, WorkItem::SendNext);
                    }
                    return service;
                } else if self.local_reads_possible {
                    let service =
                        (self.profile.timer_cost as f64 * self.slowdown_of(proc)) as Nanos;
                    let done = start + service;
                    self.push_work(
                        done + LOCAL_READ_POLL,
                        proc,
                        WorkItem::LocalReadWait { req_id, key },
                    );
                    return service;
                }
            }
            let base = (self.profile.handle as f64 * self.slowdown_of(proc)) as Nanos;
            // No client timeout in joint mode: the local node handles
            // leader failover itself.
            self.engine_step(
                proc,
                EngineEvent::ClientRequest {
                    client: client_node,
                    req_id,
                    op,
                },
                start,
                base,
            )
        } else {
            // Send the request to the current target replica of the
            // shard group owning the operation.
            self.client_transmit(j, req_id, op, start, epoch)
        }
    }

    /// Transmits (or re-transmits) a client request to its routed target
    /// and arms the retry check. Returns the client-side service time.
    fn client_transmit(
        &mut self,
        j: usize,
        req_id: u64,
        op: Op,
        start: Nanos,
        epoch: u64,
    ) -> Nanos {
        let proc = self.clients[j].proc;
        let client_node = self.clients[j].node;
        let slowdown = self.slowdown_of(proc);
        let service = ((self.profile.tx + self.profile.marshal) as f64 * slowdown) as Nanos;
        let shard = self.router.route(client_node, &op);
        let target_slot = self.clients[j].target_idx % self.engines.len();
        let target_proc = self.proc_of(target_slot, shard);
        let send_done = start + service;
        self.total_messages += 1;
        // Relaxed-read workloads issue their Gets as local-copy reads
        // (the sim-side `get_relaxed`); everything else is an ordinary
        // replicated request.
        let item = match op {
            Op::Get { key } if self.workload.relaxed_reads() => WorkItem::RelaxedRead {
                client: client_node,
                req_id,
                key,
            },
            op => WorkItem::ClientReq {
                client: client_node,
                req_id,
                op,
            },
        };
        self.deliver(proc, target_proc, send_done, item);
        let at = start + service + self.client_timeout;
        self.push_work(at, proc, WorkItem::RetryCheck { req_id, epoch });
        service
    }

    /// Marks the client's outstanding request completed; returns `false`
    /// for stale/duplicate replies (a retried request answered by more
    /// than one node).
    fn client_complete(&mut self, j: usize, req_id: u64, at: Nanos) -> bool {
        let c = &mut self.clients[j];
        let Some((out_req, sent_at)) = c.outstanding.as_ref().map(|(r, t, _)| (*r, *t)) else {
            return false;
        };
        if out_req != req_id {
            return false; // stale reply for an older (retried) request
        }
        c.outstanding = None;
        c.completed += 1;
        c.epoch += 1;
        self.timeline.record(at);
        if at >= self.warmup {
            self.latency.record(at.saturating_sub(sent_at));
            self.completed_in_window += 1;
        }
        true
    }

    fn run_loop(&mut self) {
        while let Some(Scheduled { at, ev, .. }) = self.heap.pop() {
            debug_assert!(at >= self.now, "time went backwards");
            self.now = at;
            if self.stopped {
                break;
            }
            match ev {
                Event::Work { proc, item } => {
                    let core = self.placement[proc];
                    self.cores[core].queue.push_back((proc, item));
                    if !self.cores[core].running {
                        self.cores[core].running = true;
                        let when = self.cores[core].free_at.max(at);
                        self.push(when, Event::CoreRun { core });
                    }
                }
                Event::CoreRun { core } => {
                    let Some((proc, item)) = self.cores[core].queue.pop_front() else {
                        self.cores[core].running = false;
                        continue;
                    };
                    let service = self.execute(proc, item, at);
                    let c = &mut self.cores[core];
                    c.free_at = at + service;
                    c.busy += service;
                    if c.queue.is_empty() {
                        c.running = false;
                    } else {
                        let when = c.free_at;
                        self.push(when, Event::CoreRun { core });
                    }
                }
                Event::SetSpeed { core, slowdown } => {
                    self.cores[core].slowdown = slowdown;
                }
                Event::ResetReplica { replica, idx } => {
                    self.reset_replica(replica, idx, at);
                }
                Event::Stop => {
                    self.stopped = true;
                    break;
                }
            }
            // Request-budget termination: stop once every client is done.
            if self.requests_per_client != u64::MAX
                && self
                    .clients
                    .iter()
                    .all(|c| c.completed >= self.requests_per_client)
            {
                break;
            }
        }
    }

    /// Processes one work item of `proc` at time `start`; returns the
    /// service time (already scaled by the hosting core's slowdown).
    fn execute(&mut self, proc: usize, item: WorkItem<P::Msg>, start: Nanos) -> Nanos {
        let slowdown = self.slowdown_of(proc);
        let scaled = |ns: Nanos| (ns as f64 * slowdown) as Nanos;
        match item {
            WorkItem::Peer { from, msg } => {
                debug_assert!(self.is_replica_proc(proc));
                let base = scaled(self.profile.rx + self.profile.handle);
                self.engine_step(proc, EngineEvent::Message { from, msg }, start, base)
            }
            WorkItem::ClientReq { client, req_id, op } => {
                debug_assert!(self.is_replica_proc(proc));
                let base = scaled(self.profile.rx + self.profile.handle);
                self.engine_step(
                    proc,
                    EngineEvent::ClientRequest { client, req_id, op },
                    start,
                    base,
                )
            }
            WorkItem::RelaxedRead {
                client,
                req_id,
                key,
            } => {
                debug_assert!(self.is_replica_proc(proc));
                let base = scaled(self.profile.rx + self.profile.handle);
                self.relaxed_read_step(proc, client, req_id, key, start, base, true)
            }
            WorkItem::RelaxedPoll {
                client,
                req_id,
                key,
            } => {
                let base = scaled(self.profile.timer_cost);
                self.relaxed_read_step(proc, client, req_id, key, start, base, false)
            }
            WorkItem::TimerCheck { due } => {
                debug_assert!(self.is_replica_proc(proc));
                if self.timer_wake[proc] != Some(due) {
                    // Superseded by an earlier check: that one owns the
                    // wake and will reschedule; doing anything here would
                    // spawn a perpetually duplicated check stream.
                    return 0;
                }
                self.timer_wake[proc] = None;
                let (r, s) = self.replica_of(proc);
                let mut effects = std::mem::take(&mut self.scratch);
                let fired = self.engines[r].shard_mut(s).fire_due(start, &mut effects);
                // Each fired timer costs one timer service; a check whose
                // timer was cancelled or re-armed later costs nothing.
                let base = scaled(self.profile.timer_cost) * fired as Nanos;
                let service = self.apply_effects(proc, start, base, &mut effects);
                self.scratch = effects;
                service
            }
            WorkItem::Reply { req_id, value } => {
                let service = scaled(self.profile.rx);
                if let Some(j) = self.client_on(proc) {
                    // Transaction fragments are resolved by the client's
                    // coordinator (which ignores replies it does not
                    // own, so plain and txn traffic cannot cross wires).
                    if self.workload.is_txn() {
                        return self.client_txn_reply(j, req_id, value, start, service);
                    }
                    let done = start + service;
                    // Only a reply that completes the outstanding request
                    // continues the closed loop; duplicates (a retried
                    // request answered by several nodes) must not fork it.
                    if self.client_complete(j, req_id, done)
                        && self.clients[j].completed < self.requests_per_client
                    {
                        let think = self.think;
                        self.push_work(done + think, proc, WorkItem::SendNext);
                    }
                }
                service
            }
            WorkItem::SendNext => {
                if let Some(j) = self.client_on(proc) {
                    self.client_send_next(j, start)
                } else {
                    0
                }
            }
            WorkItem::LocalReadWait { req_id, key } => {
                let Some(j) = self.client_on(proc) else {
                    return 0;
                };
                if self.clients[j].outstanding.as_ref().map(|&(r, _, _)| r) != Some(req_id) {
                    return 0;
                }
                if self.engines[proc].can_read_locally(key) {
                    let service = scaled(self.profile.handle);
                    let done = start + service;
                    if self.client_complete(j, req_id, done)
                        && self.clients[j].completed < self.requests_per_client
                    {
                        let think = self.think;
                        self.push_work(done + think, proc, WorkItem::SendNext);
                    }
                    service
                } else {
                    let service = scaled(self.profile.timer_cost);
                    self.push_work(
                        start + service + LOCAL_READ_POLL,
                        proc,
                        WorkItem::LocalReadWait { req_id, key },
                    );
                    service
                }
            }
            WorkItem::TxnDeferred { req_id, epoch } => {
                let Some(j) = self.client_on(proc) else {
                    return 0;
                };
                if self.clients[j].epoch != epoch {
                    return 0; // the transaction decided meanwhile
                }
                let Some(frag) = self.clients[j].coord.fragment(req_id) else {
                    return 0; // answered meanwhile
                };
                self.transmit_fragments(j, &[frag], start)
            }
            WorkItem::RetryCheck { req_id, epoch } => {
                let Some(j) = self.client_on(proc) else {
                    return 0;
                };
                if self.workload.is_txn() {
                    // Per-fragment retry: only a still-unanswered
                    // fragment of the *current* transaction re-sends
                    // (epoch filters checks armed for finished ones).
                    if self.clients[j].epoch != epoch {
                        return 0;
                    }
                    let Some(frag) = self.clients[j].coord.fragment(req_id) else {
                        return 0; // answered meanwhile
                    };
                    let n_replicas = self.engines.len();
                    let c = &mut self.clients[j];
                    c.target_idx = (c.target_idx + 1) % n_replicas;
                    return self.transmit_fragments(j, &[frag], start);
                }
                let c = &self.clients[j];
                if c.epoch != epoch || c.outstanding.as_ref().map(|&(r, _, _)| r) != Some(req_id) {
                    return 0; // answered meanwhile
                }
                // "Once the clients detect the slow leader, they send
                // their requests to other nodes" (§7.6): round-robin to
                // the next replica slot, same request id, same operation
                // (so the retry routes to the same shard group).
                let n_replicas = self.engines.len();
                let c = &mut self.clients[j];
                c.target_idx = (c.target_idx + 1) % n_replicas;
                let op = c
                    .outstanding
                    .as_ref()
                    .map(|(_, _, op)| op.clone())
                    .expect("checked");
                self.client_transmit(j, req_id, op, start, epoch)
            }
            WorkItem::MaintCheck => {
                debug_assert!(self.is_replica_proc(proc));
                let Some(every) = self.truncate_every else {
                    return 0;
                };
                // Re-arm first: maintenance outlives any one tick.
                self.push_work(start + MAINT_TICK, proc, WorkItem::MaintCheck);
                let (r, s) = self.replica_of(proc);
                let (backlog, next, base) = {
                    let a = self.engines[r].shard(s).applier();
                    (
                        a.gap_backlog(),
                        a.applied_up_to().map_or(0, |i| i + 1),
                        a.log_base(),
                    )
                };
                let mut service = scaled(self.profile.timer_cost);
                if base > self.last_base[proc] {
                    self.truncations += 1;
                    self.last_base[proc] = base;
                }
                // Catch-up trigger: a persistent apply gap, or trailing
                // the group by a full truncation threshold (a slow core
                // whose queue backed up). Two consecutive sightings
                // before asking — the runtime's gap-patience in tick
                // units — and the donor is the group's most advanced
                // peer (the sim is omniscient where the runtime
                // round-robins).
                let (donor, group_max) = (0..self.engines.len())
                    .filter(|&rr| rr != r)
                    .map(|rr| {
                        let a = self.engines[rr].shard(s).applier();
                        (rr, a.applied_up_to().map_or(0, |i| i + 1))
                    })
                    .max_by_key(|&(_, n)| n)
                    .map_or((r, next), |(rr, n)| (rr, n));
                let lagging = backlog > 0 || next + every < group_max;
                if lagging && donor != r {
                    if self.gap_seen[proc] {
                        // Pace retries: one request every other tick.
                        self.gap_seen[proc] = false;
                        service +=
                            ((self.profile.tx + self.profile.marshal) as f64 * slowdown) as Nanos;
                        self.server_messages += 1;
                        self.total_messages += 1;
                        let donor_proc = self.proc_of(donor, s);
                        self.deliver(
                            proc,
                            donor_proc,
                            start + service,
                            WorkItem::SnapshotServe {
                                for_proc: proc,
                                have: next,
                            },
                        );
                    } else {
                        self.gap_seen[proc] = true;
                    }
                } else {
                    self.gap_seen[proc] = false;
                }
                // Leader-driven agreed truncation at the applied
                // watermark, ordered through the group's own log like
                // any client command.
                if self.engines[r].shard(s).node().is_leader() && next.saturating_sub(base) >= every
                {
                    service += self.engine_step(
                        proc,
                        EngineEvent::ClientRequest {
                            client: TRUNC_CLIENT,
                            req_id: next,
                            op: Op::Truncate { watermark: next },
                        },
                        start,
                        scaled(self.profile.handle),
                    );
                }
                service
            }
            WorkItem::SnapshotServe { for_proc, have } => {
                debug_assert!(self.is_replica_proc(proc));
                let (r, s) = self.replica_of(proc);
                let base = scaled(self.profile.rx);
                let snap = self.engines[r].snapshot_shard(s);
                if snap.watermark <= have {
                    return base; // nothing newer to offer
                }
                let service =
                    base + scaled(self.profile.snapshot + self.profile.marshal + self.profile.tx);
                self.server_messages += 1;
                self.total_messages += 1;
                self.deliver(
                    proc,
                    for_proc,
                    start + service,
                    WorkItem::SnapshotInstall { snap },
                );
                service
            }
            WorkItem::SnapshotInstall { snap } => {
                debug_assert!(self.is_replica_proc(proc));
                let (r, s) = self.replica_of(proc);
                let service = scaled(self.profile.rx + self.profile.snapshot);
                if self.engines[r].install_shard_snapshot(s, snap) {
                    self.snapshots_installed += 1;
                    self.gap_seen[proc] = false;
                }
                service
            }
        }
    }

    /// Serves (or defers) a relaxed read at a replica-shard process.
    /// `first` marks the initial arrival (which may degrade to consensus
    /// on ordered-reads protocols); re-polls only ever wait or answer.
    #[allow(clippy::too_many_arguments)]
    fn relaxed_read_step(
        &mut self,
        proc: usize,
        client: NodeId,
        req_id: u64,
        key: u64,
        start: Nanos,
        base: Nanos,
        first: bool,
    ) -> Nanos {
        let (r, s) = self.replica_of(proc);
        debug_assert_eq!(self.router.route_key(key), s, "relaxed read mis-routed");
        let slowdown = self.slowdown_of(proc);
        if let Some(value) = self.engines[r].shard(s).local_read(key) {
            // Served from the local copy: one reply message, no agreement
            // traffic at all — the whole point of §7.5.
            let out_cost = ((self.profile.tx + self.profile.marshal) as f64 * slowdown) as Nanos;
            let service = base + out_cost;
            self.total_messages += 1;
            self.deliver(
                proc,
                client.index(),
                start + service,
                WorkItem::Reply { req_id, value },
            );
            service
        } else if self.local_reads_possible {
            // Inside the lock window: wait it out on the replica, like
            // the runtime's pending-read backlog.
            self.push_work(
                start + base + LOCAL_READ_POLL,
                proc,
                WorkItem::RelaxedPoll {
                    client,
                    req_id,
                    key,
                },
            );
            base
        } else if first {
            // Ordered-reads protocol: degrade to a linearized read
            // through consensus (same as the runtime's ReadRelaxed path).
            self.engine_step(
                proc,
                EngineEvent::ClientRequest {
                    client,
                    req_id,
                    op: Op::Get { key },
                },
                start,
                base,
            )
        } else {
            base
        }
    }

    fn into_report(mut self, warmup: Nanos) -> RunReport {
        let ended_at = self.now;
        let duration = ended_at.saturating_sub(warmup).max(1);
        let throughput = self.completed_in_window as f64 * 1e9 / duration as f64;
        let utilization = self
            .cores
            .iter()
            .map(|c| c.busy as f64 / ended_at.max(1) as f64)
            .collect();
        let replica_digests = self.engines.iter().map(ShardedEngine::kv_digest).collect();
        let engine_stats = self
            .engines
            .iter()
            .flat_map(|e| e.iter().map(|(s, _)| e.stats(s)).collect::<Vec<_>>())
            .collect();
        RunReport {
            completed: self.completed_in_window,
            duration,
            throughput,
            latency: std::mem::take(&mut self.latency),
            timeline: self.timeline,
            server_messages: self.server_messages,
            total_messages: self.total_messages,
            utilization,
            ended_at,
            replica_digests,
            engine_stats,
            txn_aborts: self.txn_aborts,
            txn_retries: self.txn_retries,
            truncations: self.truncations,
            snapshots_installed: self.snapshots_installed,
        }
    }
}
#[cfg(test)]
mod tests {
    use super::*;
    use onepaxos::multipaxos::MultiPaxosNode;
    use onepaxos::onepaxos::OnePaxosNode;
    use onepaxos::twopc::TwoPcNode;
    use onepaxos::ClusterConfig;

    fn cfg(m: &[NodeId], me: NodeId) -> ClusterConfig {
        ClusterConfig::new(m.to_vec(), me)
    }

    #[test]
    fn twopc_single_client_completes_budget() {
        let r = SimBuilder::new(Profile::opteron48(), |m, me| TwoPcNode::new(cfg(m, me)))
            .clients(1)
            .requests_per_client(100)
            .run();
        assert_eq!(r.completed, 100);
        assert!(r.mean_latency_us() > 5.0 && r.mean_latency_us() < 100.0);
    }

    #[test]
    fn onepaxos_single_client_latency_is_lowest() {
        // §7.2 ordering: 1Paxos < Multi-Paxos < 2PC.
        let l1 = SimBuilder::new(Profile::opteron48(), |m, me| OnePaxosNode::new(cfg(m, me)))
            .requests_per_client(200)
            .run()
            .mean_latency_us();
        let lm = SimBuilder::new(Profile::opteron48(), |m, me| {
            MultiPaxosNode::new(cfg(m, me))
        })
        .requests_per_client(200)
        .run()
        .mean_latency_us();
        let l2 = SimBuilder::new(Profile::opteron48(), |m, me| TwoPcNode::new(cfg(m, me)))
            .requests_per_client(200)
            .run()
            .mean_latency_us();
        assert!(l1 < lm, "1Paxos {l1} vs Multi-Paxos {lm}");
        assert!(lm < l2, "Multi-Paxos {lm} vs 2PC {l2}");
    }

    #[test]
    fn onepaxos_outscales_multipaxos_with_many_clients() {
        let t1 = SimBuilder::new(Profile::opteron48(), |m, me| OnePaxosNode::new(cfg(m, me)))
            .clients(12)
            .duration(200_000_000)
            .warmup(20_000_000)
            .run()
            .throughput;
        let tm = SimBuilder::new(Profile::opteron48(), |m, me| {
            MultiPaxosNode::new(cfg(m, me))
        })
        .clients(12)
        .duration(200_000_000)
        .warmup(20_000_000)
        .run()
        .throughput;
        assert!(
            t1 > 1.5 * tm,
            "1Paxos {t1:.0} op/s should beat Multi-Paxos {tm:.0} op/s clearly"
        );
    }

    #[test]
    fn batching_raises_saturated_throughput_and_stays_consistent() {
        // The §3 claim, closed end-to-end: coalescing commands per
        // agreement amortises the per-message tx/rx CPU cost, so a
        // saturated deployment commits strictly more per second. The
        // run's safety oracle and replica digests keep checking.
        let run = |batch: Option<BatchConfig>| {
            let mut b =
                SimBuilder::new(Profile::opteron48(), |m, me| OnePaxosNode::new(cfg(m, me)))
                    .clients(16)
                    .duration(150_000_000)
                    .warmup(20_000_000);
            if let Some(c) = batch {
                b = b.batching(c);
            }
            b.run()
        };
        let plain = run(None);
        let batched = run(Some(BatchConfig::new(8, 20_000)));
        assert!(
            batched.throughput > plain.throughput,
            "batched {:.0} op/s must beat unbatched {:.0} op/s",
            batched.throughput,
            plain.throughput
        );
        // Fewer inter-replica messages carried more commits.
        assert!(
            batched.server_messages < plain.server_messages,
            "batched {} server messages vs unbatched {}",
            batched.server_messages,
            plain.server_messages
        );
    }

    #[test]
    fn adaptive_batching_learns_a_depth_and_beats_unbatched_at_saturation() {
        use onepaxos::engine::AdaptiveBatch;
        // The tentpole end-to-end: a saturated deployment with *no*
        // depth knob set must discover one good enough to beat the
        // unbatched baseline, with the safety oracle checking throughout.
        let run = |batch: Option<BatchConfig>| {
            let mut b =
                SimBuilder::new(Profile::opteron48(), |m, me| OnePaxosNode::new(cfg(m, me)))
                    .clients(16)
                    .duration(150_000_000)
                    .warmup(20_000_000);
            if let Some(c) = batch {
                b = b.batching(c);
            }
            b.run()
        };
        let plain = run(None);
        let adaptive = run(Some(BatchConfig::adaptive(AdaptiveBatch::new(32, 20_000))));
        assert!(
            adaptive.throughput > plain.throughput,
            "adaptive {:.0} op/s must beat unbatched {:.0} op/s",
            adaptive.throughput,
            plain.throughput
        );
        // The leader process (replica 0, shard 0) did the learning.
        let leader = adaptive.engine_stats[0];
        assert!(leader.depth > 1, "controller never grew: {leader:?}");
        assert!(leader.grows > 0 && leader.flushes > 0);
        assert!(leader.depth <= 32, "depth escaped the cap");
    }

    #[test]
    fn adaptive_batching_stays_shallow_for_a_single_closed_loop_client() {
        use onepaxos::engine::AdaptiveBatch;
        // One client can never justify a deep batch: the controller must
        // hover at the bottom of its range and keep latency flat instead
        // of making every request wait out the deadline at a high depth.
        let r = SimBuilder::new(Profile::opteron48(), |m, me| OnePaxosNode::new(cfg(m, me)))
            .clients(1)
            .requests_per_client(50)
            .batching(BatchConfig::adaptive(AdaptiveBatch::new(32, 20_000)))
            .run();
        assert_eq!(r.completed, 50);
        assert!(r.mean_latency_us() < 100.0, "got {}", r.mean_latency_us());
        let leader = r.engine_stats[0];
        assert!(
            leader.depth <= 2,
            "one client grew depth to {}",
            leader.depth
        );
    }

    #[test]
    fn batching_deadline_flushes_an_unsaturated_trickle() {
        // A single closed-loop client can never fill an 8-deep batch, so
        // every command must ride a deadline (or singleton) flush: if the
        // scheduler ever slept past the batch deadline, this would stall.
        let r = SimBuilder::new(Profile::opteron48(), |m, me| OnePaxosNode::new(cfg(m, me)))
            .clients(1)
            .requests_per_client(50)
            .batching(BatchConfig::new(8, 20_000))
            .run();
        assert_eq!(r.completed, 50);
        // Latency gains the flush delay at most.
        assert!(r.mean_latency_us() < 100.0, "got {}", r.mean_latency_us());
    }

    #[test]
    fn deterministic_given_seed() {
        let run = || {
            SimBuilder::new(Profile::opteron48(), |m, me| OnePaxosNode::new(cfg(m, me)))
                .clients(4)
                .requests_per_client(50)
                .seed(42)
                .run()
        };
        let (a, b) = (run(), run());
        assert_eq!(a.completed, b.completed);
        assert_eq!(a.ended_at, b.ended_at);
        assert_eq!(a.total_messages, b.total_messages);
    }

    #[test]
    fn slow_coordinator_stalls_twopc() {
        // §2.2: "after Core 0 becomes slow, only a few requests can commit
        // and the throughput drops to zero."
        let r = SimBuilder::new(Profile::opteron8(), |m, me| TwoPcNode::new(cfg(m, me)))
            .clients(5)
            .duration(400_000_000)
            .fault(Fault {
                at: 100_000_000,
                core: 0,
                slowdown: 400.0,
            })
            .run();
        let rates: Vec<f64> = r.timeline.rates().map(|(_, v)| v).collect();
        let before = rates[..8].iter().copied().fold(0.0, f64::max);
        let after = rates[15..].iter().copied().fold(0.0, f64::max);
        assert!(before > 10_000.0, "healthy 2PC should commit, got {before}");
        assert!(
            after < before / 20.0,
            "slow coordinator must collapse 2PC throughput: {after} vs {before}"
        );
    }

    #[test]
    fn slow_leader_onepaxos_recovers() {
        // Fig 11: throughput drops during the leader change, then
        // recovers.
        let r = SimBuilder::new(Profile::opteron8(), |m, me| OnePaxosNode::new(cfg(m, me)))
            .clients(5)
            .duration(600_000_000)
            .fault(Fault {
                at: 200_000_000,
                core: 0,
                slowdown: 400.0,
            })
            .run();
        let rates: Vec<f64> = r.timeline.rates().map(|(_, v)| v).collect();
        let before = rates[5..18].iter().copied().fold(0.0, f64::max);
        let tail = &rates[rates.len() - 10..];
        let after = tail.iter().copied().fold(0.0, f64::max);
        assert!(before > 10_000.0, "healthy throughput, got {before}");
        assert!(
            after > before * 0.5,
            "1Paxos must recover after leader switch: {after} vs {before}"
        );
    }

    #[test]
    fn joint_mode_runs_all_protocols() {
        let r = SimBuilder::new(Profile::opteron48(), |m, me| OnePaxosNode::new(cfg(m, me)))
            .joint(8)
            .think(2_000_000)
            .duration(100_000_000)
            .run();
        assert!(r.completed > 0);
        let r2 = SimBuilder::new(Profile::opteron48(), |m, me| TwoPcNode::new(cfg(m, me)))
            .joint(8)
            .think(2_000_000)
            .duration(100_000_000)
            .run();
        assert!(r2.completed > 0);
    }

    #[test]
    fn twopc_joint_serves_reads_locally() {
        let mixed = SimBuilder::new(Profile::opteron48(), |m, me| TwoPcNode::new(cfg(m, me)))
            .joint(5)
            .workload(Workload::ReadMix {
                read_pct: 75,
                keys: 64,
                hot_pct: 0,
            })
            .duration(100_000_000)
            .run();
        let writes = SimBuilder::new(Profile::opteron48(), |m, me| TwoPcNode::new(cfg(m, me)))
            .joint(5)
            .workload(Workload::Noop)
            .duration(100_000_000)
            .run();
        assert!(
            mixed.throughput > 1.5 * writes.throughput,
            "75% local reads must outpace pure writes: {} vs {}",
            mixed.throughput,
            writes.throughput
        );
    }

    #[test]
    fn report_replicas_stay_consistent() {
        let r = SimBuilder::new(Profile::opteron48(), |m, me| OnePaxosNode::new(cfg(m, me)))
            .clients(6)
            .workload(Workload::ReadMix {
                read_pct: 20,
                keys: 32,
                hot_pct: 0,
            })
            .requests_per_client(100)
            .run();
        // All replicas that fully drained agree (oracle also asserts per
        // commit); digests of the first two replicas must match since
        // both saw every learn.
        assert!(r.completed >= 595, "got {}", r.completed);
    }

    #[test]
    fn sharding_multiplies_saturated_throughput() {
        // The tentpole claim end-to-end: four shard groups on their own
        // cores commit far more per second than one, same protocol code,
        // same clients, per-commit consistency checked throughout.
        let run = |shards: u16| {
            SimBuilder::new(Profile::opteron48(), |m, me| OnePaxosNode::new(cfg(m, me)))
                .clients(16)
                .shards(shards)
                .workload(Workload::ReadMix {
                    read_pct: 0,
                    keys: 1024,
                    hot_pct: 0,
                })
                .duration(120_000_000)
                .warmup(20_000_000)
                .run()
        };
        let s1 = run(1);
        let s4 = run(4);
        assert!(
            s4.throughput > 1.8 * s1.throughput,
            "4 shards {:.0} op/s must far outscale 1 shard {:.0} op/s",
            s4.throughput,
            s1.throughput
        );
    }

    #[test]
    fn sharded_runs_complete_budgets_and_stay_deterministic() {
        let run = || {
            SimBuilder::new(Profile::opteron48(), |m, me| OnePaxosNode::new(cfg(m, me)))
                .clients(4)
                .shards(3)
                .workload(Workload::ReadMix {
                    read_pct: 25,
                    keys: 64,
                    hot_pct: 0,
                })
                .requests_per_client(50)
                .seed(7)
                .run()
        };
        let (a, b) = (run(), run());
        assert_eq!(a.completed, 200);
        assert_eq!(a.ended_at, b.ended_at);
        assert_eq!(a.total_messages, b.total_messages);
        assert_eq!(a.replica_digests, b.replica_digests);
    }

    #[test]
    fn sharding_composes_with_batching() {
        // The acceptance-criteria configuration in miniature: batching on
        // both sides, sharded still well ahead.
        let run = |shards: u16| {
            SimBuilder::new(Profile::opteron48(), |m, me| OnePaxosNode::new(cfg(m, me)))
                .clients(16)
                .shards(shards)
                .batching(BatchConfig::new(8, 20_000))
                .workload(Workload::ReadMix {
                    read_pct: 0,
                    keys: 1024,
                    hot_pct: 0,
                })
                .duration(120_000_000)
                .warmup(20_000_000)
                .run()
        };
        let s1 = run(1);
        let s4 = run(4);
        assert!(
            s4.throughput > 1.5 * s1.throughput,
            "sharded+batched {:.0} op/s vs batched {:.0} op/s",
            s4.throughput,
            s1.throughput
        );
    }

    #[test]
    fn relaxed_mix_bypasses_agreements_for_twopc_replica_mode() {
        // The sim-side get_relaxed: in replica (non-joint) mode, 2PC
        // serves relaxed reads from the target replica's local copy —
        // fewer server messages per completed op than ordering every
        // read, and more completions.
        let run = |w: Workload| {
            SimBuilder::new(Profile::opteron48(), |m, me| TwoPcNode::new(cfg(m, me)))
                .clients(8)
                .workload(w)
                .duration(100_000_000)
                .warmup(15_000_000)
                .run()
        };
        let ordered = run(Workload::ReadMix {
            read_pct: 75,
            keys: 64,
            hot_pct: 0,
        });
        let relaxed = run(Workload::RelaxedMix {
            read_pct: 75,
            keys: 64,
        });
        let per_op_ordered = ordered.server_messages as f64 / ordered.completed.max(1) as f64;
        let per_op_relaxed = relaxed.server_messages as f64 / relaxed.completed.max(1) as f64;
        assert!(
            per_op_relaxed < 0.5 * per_op_ordered,
            "relaxed reads must skip agreement traffic: {per_op_relaxed:.2} vs {per_op_ordered:.2}"
        );
        assert!(
            relaxed.throughput > ordered.throughput,
            "relaxed {:.0} op/s vs ordered {:.0} op/s",
            relaxed.throughput,
            ordered.throughput
        );
    }

    #[test]
    fn txn_mix_single_shard_short_circuits_and_completes_the_budget() {
        // Fan-out 1: every transaction is one MultiPut agreement — no
        // lock windows, no second phase, and the closed loop completes
        // its budget like a plain-put run.
        let r = SimBuilder::new(Profile::opteron48(), |m, me| OnePaxosNode::new(cfg(m, me)))
            .clients(4)
            .shards(2)
            .workload(Workload::TxnMix {
                fanout: 1,
                keys: 256,
                hot_pct: 0,
            })
            .requests_per_client(25)
            .run();
        assert_eq!(r.completed, 100);
        assert_eq!(r.txn_aborts, 0, "single-shard txns cannot conflict");
    }

    #[test]
    fn txn_mix_cross_shard_commits_make_progress_and_stay_consistent() {
        // Fan-out 2 over four groups: every commit is a full
        // PREPARE → COMMIT round across two Paxos groups, with the
        // per-commit safety oracle checking throughout.
        let r = SimBuilder::new(Profile::opteron48(), |m, me| OnePaxosNode::new(cfg(m, me)))
            .clients(4)
            .shards(4)
            .workload(Workload::TxnMix {
                fanout: 2,
                keys: 1024,
                hot_pct: 0,
            })
            .requests_per_client(20)
            .run();
        assert_eq!(r.completed, 80, "every client's budget must commit");
        // Committed transactions did real cross-group work: strictly
        // more server messages than the same budget of single-shard
        // puts would need is implied by the 2PC legs; just assert some
        // agreement traffic happened on multiple fronts.
        assert!(r.server_messages > 0);
    }

    #[test]
    fn txn_mix_is_deterministic_given_a_seed() {
        let run = || {
            SimBuilder::new(Profile::opteron48(), |m, me| TwoPcNode::new(cfg(m, me)))
                .clients(3)
                .shards(3)
                .workload(Workload::TxnMix {
                    fanout: 2,
                    keys: 512,
                    hot_pct: 0,
                })
                .requests_per_client(15)
                .seed(11)
                .run()
        };
        let (a, b) = (run(), run());
        assert_eq!(a.completed, b.completed);
        assert_eq!(a.ended_at, b.ended_at);
        assert_eq!(a.total_messages, b.total_messages);
        assert_eq!(a.txn_aborts, b.txn_aborts);
        assert_eq!(a.replica_digests, b.replica_digests);
    }

    #[test]
    fn relaxed_mix_degrades_to_consensus_for_ordered_protocols() {
        // 1Paxos without the relaxed-reads opt-in orders every read: the
        // RelaxedMix workload still completes (reads come back through
        // consensus) and replicas stay consistent.
        let r = SimBuilder::new(Profile::opteron48(), |m, me| OnePaxosNode::new(cfg(m, me)))
            .clients(4)
            .shards(2)
            .workload(Workload::RelaxedMix {
                read_pct: 50,
                keys: 32,
            })
            .requests_per_client(50)
            .run();
        assert_eq!(r.completed, 200);
    }

    #[test]
    fn agreed_truncation_bounds_the_applied_log() {
        // The unbounded-memory bug, measured: without truncation every
        // replica's applied log grows with the commit count; with
        // periodic agreed truncation it stays near the threshold, at the
        // same completed work, with the safety oracle checking every
        // commit throughout.
        let run = |every: Option<u64>| {
            let mut b =
                SimBuilder::new(Profile::opteron48(), |m, me| OnePaxosNode::new(cfg(m, me)))
                    .clients(4)
                    .requests_per_client(2_000);
            if let Some(e) = every {
                b = b.truncate_every(e);
            }
            b.run()
        };
        let unbounded = run(None);
        let bounded = run(Some(500));
        assert_eq!(unbounded.completed, 8_000);
        assert_eq!(bounded.completed, 8_000);
        assert!(bounded.truncations > 0, "no truncation ever committed");
        let max_log = |r: &RunReport| r.engine_stats.iter().map(|s| s.applied_log_len).max();
        let grown = max_log(&unbounded).unwrap();
        let flat = max_log(&bounded).unwrap();
        assert!(grown >= 8_000, "untruncated log must hold every commit");
        // Between truncations the log regrows toward the threshold plus
        // whatever is in flight; well under the total committed work.
        assert!(
            flat < 2_000,
            "truncated log should stay near the 500 threshold, got {flat}"
        );
    }

    #[test]
    fn truncation_maintenance_is_deterministic_given_a_seed() {
        let run = || {
            SimBuilder::new(Profile::opteron48(), |m, me| OnePaxosNode::new(cfg(m, me)))
                .clients(4)
                .requests_per_client(500)
                .truncate_every(100)
                .seed(7)
                .run()
        };
        let (a, b) = (run(), run());
        assert_eq!(a.ended_at, b.ended_at);
        assert_eq!(a.total_messages, b.total_messages);
        assert_eq!(a.truncations, b.truncations);
        assert_eq!(a.replica_digests, b.replica_digests);
    }

    #[test]
    fn restarted_replica_catches_up_by_snapshot_install() {
        // A backup crash-restarts with amnesia after agreed truncation
        // has dropped the committed prefix: replay can never fill the
        // hole below its gap (nobody retransmits truncated instances),
        // so the maintenance loop must fetch a peer snapshot — priced by
        // the profile's `snapshot` cost — install it, and consume the
        // live log from the watermark, with the safety oracle checking
        // every re-learned commit.
        let r = SimBuilder::new(Profile::opteron8(), |m, me| OnePaxosNode::new(cfg(m, me)))
            .clients(5)
            .duration(300_000_000)
            .truncate_every(300)
            .reset_replica(100_000_000, 2)
            .run();
        assert!(r.completed > 0);
        assert!(r.truncations > 0, "leader never truncated");
        assert!(
            r.snapshots_installed > 0,
            "restarted replica never installed a snapshot"
        );
    }
}
