//! Deterministic pseudo-random numbers for the simulator.
//!
//! The simulator only needs reproducible jitter and workload sampling —
//! not cryptographic quality — and the build environment cannot fetch the
//! `rand` crate, so this is a self-contained splitmix64 generator. Same
//! seed, same run: the determinism tests depend on it.

/// A splitmix64 generator (Steele, Lea & Flood; the seed sequencer of the
/// xoshiro family). 2⁶⁴ period, passes BigCrush when used as a stream.
#[derive(Clone, Debug)]
pub struct SimRng(u64);

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        // Avoid the all-zero fixed point of a raw xor-shift by running the
        // seed through one splitmix round offset.
        SimRng(seed.wrapping_add(0x9E37_79B9_7F4A_7C15))
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..n`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `n` is zero.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0, "SimRng::below(0)");
        // Modulo bias is ≤ n/2⁶⁴ here — irrelevant for jitter/workloads.
        self.next_u64() % n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed_from_u64(42);
        let mut b = SimRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::seed_from_u64(1);
        let mut b = SimRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn below_is_in_range_and_covers() {
        let mut r = SimRng::seed_from_u64(7);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            let v = r.below(10) as usize;
            assert!(v < 10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit: {seen:?}");
    }
}
