//! Measurement plumbing: latency distributions, throughput timelines,
//! per-core utilization.

use onepaxos::{Nanos, NANOS_PER_SEC};

/// A latency sample collection with percentile queries.
#[derive(Clone, Debug, Default)]
pub struct LatencyStats {
    samples: Vec<Nanos>,
    sorted: bool,
}

impl LatencyStats {
    /// Creates an empty collection.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one latency sample.
    pub fn record(&mut self, v: Nanos) {
        self.samples.push(v);
        self.sorted = false;
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Arithmetic mean, or 0 if empty.
    pub fn mean(&self) -> Nanos {
        if self.samples.is_empty() {
            return 0;
        }
        let sum: u128 = self.samples.iter().map(|&v| v as u128).sum();
        (sum / self.samples.len() as u128) as Nanos
    }

    fn sorted_samples(&mut self) -> &[Nanos] {
        if !self.sorted {
            self.samples.sort_unstable();
            self.sorted = true;
        }
        &self.samples
    }

    /// The `q`-quantile (0.0 ≤ q ≤ 1.0), or 0 if empty.
    pub fn quantile(&mut self, q: f64) -> Nanos {
        let s = self.sorted_samples();
        if s.is_empty() {
            return 0;
        }
        let idx = ((s.len() - 1) as f64 * q).round() as usize;
        s[idx]
    }

    /// Median latency.
    pub fn p50(&mut self) -> Nanos {
        self.quantile(0.50)
    }

    /// 99th percentile latency.
    pub fn p99(&mut self) -> Nanos {
        self.quantile(0.99)
    }

    /// 99.9th percentile latency (the tail the lock-wait queues and
    /// retry backoffs show up in first).
    pub fn p999(&mut self) -> Nanos {
        self.quantile(0.999)
    }
}

/// Commit counts per fixed-width time bucket (Fig 11 plots throughput in
/// 10 ms buckets).
#[derive(Clone, Debug)]
pub struct Timeline {
    bucket_width: Nanos,
    buckets: Vec<u64>,
}

impl Timeline {
    /// Creates a timeline with the given bucket width.
    ///
    /// # Panics
    ///
    /// Panics if `bucket_width` is zero.
    pub fn new(bucket_width: Nanos) -> Self {
        assert!(bucket_width > 0, "bucket width must be positive");
        Timeline {
            bucket_width,
            buckets: Vec::new(),
        }
    }

    /// Records one completion at time `t`.
    pub fn record(&mut self, t: Nanos) {
        let idx = (t / self.bucket_width) as usize;
        if idx >= self.buckets.len() {
            self.buckets.resize(idx + 1, 0);
        }
        self.buckets[idx] += 1;
    }

    /// The bucket width.
    pub fn bucket_width(&self) -> Nanos {
        self.bucket_width
    }

    /// Counts per bucket, from time zero.
    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }

    /// Iterator of (bucket start time, ops/sec within the bucket).
    pub fn rates(&self) -> impl Iterator<Item = (Nanos, f64)> + '_ {
        let w = self.bucket_width;
        self.buckets
            .iter()
            .enumerate()
            .map(move |(i, &c)| (i as Nanos * w, c as f64 * (NANOS_PER_SEC as f64 / w as f64)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_stats_basics() {
        let mut s = LatencyStats::new();
        for v in [10, 20, 30, 40, 50] {
            s.record(v);
        }
        assert_eq!(s.mean(), 30);
        assert_eq!(s.p50(), 30);
        assert_eq!(s.quantile(1.0), 50);
        assert_eq!(s.quantile(0.0), 10);
        assert_eq!(s.len(), 5);
    }

    #[test]
    fn empty_stats_are_zero() {
        let mut s = LatencyStats::new();
        assert_eq!(s.mean(), 0);
        assert_eq!(s.p99(), 0);
        assert!(s.is_empty());
    }

    #[test]
    fn timeline_buckets_and_rates() {
        let mut t = Timeline::new(10_000_000); // 10 ms, as in Fig 11
        t.record(5_000_000);
        t.record(9_999_999);
        t.record(25_000_000);
        assert_eq!(t.buckets(), &[2, 0, 1]);
        let rates: Vec<(Nanos, f64)> = t.rates().collect();
        assert_eq!(rates[0], (0, 200.0)); // 2 ops / 10 ms = 200 op/s
        assert_eq!(rates[2].1, 100.0);
    }

    #[test]
    #[should_panic(expected = "bucket width")]
    fn zero_bucket_width_rejected() {
        let _ = Timeline::new(0);
    }
}
