//! Deterministic discrete-event simulator of a many-core machine viewed
//! as a network — the experimental substrate for the *"Consensus Inside"*
//! (MIDDLEWARE 2014) reproduction.
//!
//! The paper evaluates its protocols on 48-core and 8-core AMD Opteron
//! machines. This crate substitutes those machines with a calibrated
//! simulation that models exactly the mechanism the paper identifies as
//! decisive (§3): **message transmission consumes sender/receiver CPU
//! cycles** (≈ 0.5 µs each), while propagation merely adds latency
//! (≈ 0.55 µs within the machine, 135 µs on a LAN). Protocol scalability
//! is then governed by per-commit message counts — which is why 1Paxos's
//! single active acceptor wins, and exactly what the experiments in the
//! bench crate regenerate.
//!
//! * [`Profile`] — cost models and topologies (48-core, 8-core, LAN).
//! * [`SimBuilder`] — deploys any [`onepaxos::Protocol`] over simulated
//!   cores with closed-loop clients, fault injection and metrics.
//! * [`metrics`] — latency stats and throughput timelines.
//!
//! # Example
//!
//! ```
//! use manycore_sim::{Profile, SimBuilder};
//! use onepaxos::onepaxos::OnePaxosNode;
//! use onepaxos::ClusterConfig;
//!
//! let report = SimBuilder::new(Profile::opteron48(), |members, me| {
//!     OnePaxosNode::new(ClusterConfig::new(members.to_vec(), me))
//! })
//! .replicas(3)
//! .clients(1)
//! .requests_per_client(100)
//! .run();
//! assert_eq!(report.completed, 100);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![deny(unsafe_code)]

mod cluster;
pub mod metrics;
mod profile;
pub mod rng;

pub use cluster::{Fault, RunReport, SimBuilder, Workload};
pub use metrics::{LatencyStats, Timeline};
pub use profile::Profile;
pub use rng::SimRng;
