//! Network profiles: the many-core machines of §7.1 and the LAN of §3.
//!
//! The paper's central measurement (§3): inside a many-core the
//! *transmission* delay (0.5 µs — CPU time to place a message on the
//! medium) and the *propagation* delay (0.55 µs) are of the same order
//! (ratio ≈ 1), whereas on a LAN they are 2 µs vs 135 µs (ratio ≈ 0.015).
//! Message transmission therefore consumes the scarce resource (core
//! cycles), which is what the simulator charges to the sending and
//! receiving cores.

use onepaxos::Nanos;

/// Cost model and topology of one simulated machine/network.
#[derive(Clone, Debug, PartialEq)]
pub struct Profile {
    /// Human-readable name (used in reports).
    pub name: &'static str,
    /// Total number of cores (= maximum number of processes).
    pub cores: usize,
    /// Cores per socket; cores on the same socket share the LLC and get
    /// [`prop_local`](Self::prop_local) latency (Fig 1).
    pub cores_per_socket: usize,
    /// CPU time to transmit one message (charged to the sender core).
    pub tx: Nanos,
    /// CPU time to marshal one outbound message before transmitting it
    /// (the paper's "message copy operations", §7.2); also charged to the
    /// sender core.
    pub marshal: Nanos,
    /// CPU time to receive one message (charged to the receiver core).
    pub rx: Nanos,
    /// CPU time of protocol processing per handled event.
    pub handle: Nanos,
    /// CPU time to apply one decided command to the state machine beyond
    /// the first of an agreement. A plain command's apply cost is folded
    /// into [`handle`](Self::handle); a batched agreement (one message,
    /// many commands) additionally pays `apply` per extra command — the
    /// per-command floor that batching cannot amortise away.
    pub apply: Nanos,
    /// Propagation delay between cores on the same socket.
    pub prop_local: Nanos,
    /// Propagation delay between cores on different sockets.
    pub prop_remote: Nanos,
    /// CPU time to service a timer event.
    pub timer_cost: Nanos,
    /// CPU time a transaction coordinator (client) spends per 2PC leg it
    /// sends — assembling the fragment, tracking the vote — on top of
    /// the ordinary `marshal + tx` transmission cost. Charged once per
    /// prepare and once per commit/abort fragment, so a fan-out-F
    /// transaction pays `2·F·txn_leg` of client CPU (see
    /// `Workload::TxnMix`).
    pub txn_leg: Nanos,
    /// CPU time to serialize (donor side) or install (receiver side) one
    /// state snapshot during snapshot-install catch-up, on top of the
    /// ordinary per-message costs of the transfer. Snapshots move whole
    /// state machines, not single commands, so their CPU cost sits well
    /// above `marshal`.
    pub snapshot: Nanos,
    /// Maximum uniform jitter added to propagation delays.
    pub jitter: Nanos,
}

impl Profile {
    /// The paper's main testbed: eight 6-core AMD Opteron processors,
    /// 48 cores total (§7.1). Costs calibrated from the §3 measurements:
    /// 0.5 µs transmission, ~0.55 µs propagation, with ~1.4 µs of protocol
    /// handling per message event.
    pub fn opteron48() -> Self {
        Profile {
            name: "opteron-48",
            cores: 48,
            cores_per_socket: 6,
            tx: 500,
            marshal: 500,
            rx: 500,
            handle: 1_400,
            apply: 150,
            prop_local: 400,
            prop_remote: 650,
            timer_cost: 100,
            txn_leg: 300,
            snapshot: 5_000,
            jitter: 60,
        }
    }

    /// The §2.2/§7.6 slow-core testbed: four 2-core AMD Opteron
    /// processors, 8 cores total.
    pub fn opteron8() -> Self {
        Profile {
            cores: 8,
            cores_per_socket: 2,
            name: "opteron-8",
            ..Self::opteron48()
        }
    }

    /// The §3 LAN: 2 µs transmission, 135 µs propagation (ratio 0.015).
    /// `nodes` machines, each its own "socket".
    pub fn lan(nodes: usize) -> Self {
        Profile {
            name: "lan",
            cores: nodes,
            cores_per_socket: 1,
            tx: 2_000,
            marshal: 500,
            rx: 2_000,
            handle: 1_400,
            apply: 150,
            prop_local: 135_000,
            prop_remote: 135_000,
            timer_cost: 100,
            txn_leg: 300,
            snapshot: 5_000,
            jitter: 4_000,
        }
    }

    /// This repository's own measurement box: one core timesharing every
    /// process, replicas and clients connected by loopback TCP sockets
    /// (`exp_wire`'s `tcp` row). Constants are derived from the measured
    /// deltas in `BENCH_wire.json` (4 clients × 3 s, 3 replicas):
    ///
    /// - mem transport ≈ 133 k op/s → ≈ 7.5 µs of CPU per committed op;
    ///   tcp ≈ 51 k op/s → ≈ 19.6 µs. The ≈ 12 µs delta spread over the
    ///   6 messages of a replicated put is ≈ 2 µs of socket cost per
    ///   message, split evenly between the writing and the reading side:
    ///   `tx = rx = 950` on top of the shared `marshal` cost.
    /// - Loopback propagation is sub-microsecond (the kernel hands the
    ///   skb straight back), so `prop ≈ 500 ns`: transmission dominates
    ///   propagation just as on the paper's many-core, not its LAN.
    ///
    /// Deployments under this profile must pin every process to core 0
    /// (`placement(vec![0; procs])`): the box has a single core, and the
    /// serialization of all replicas and clients on its run queue is
    /// exactly what the profile models.
    pub fn loopback_tcp() -> Self {
        Profile {
            name: "loopback-tcp",
            cores: 1,
            cores_per_socket: 1,
            tx: 950,
            marshal: 500,
            rx: 950,
            handle: 1_400,
            apply: 150,
            prop_local: 500,
            prop_remote: 500,
            timer_cost: 100,
            txn_leg: 300,
            snapshot: 5_000,
            jitter: 60,
        }
    }

    /// The socket a core lives on.
    pub fn socket_of(&self, core: usize) -> usize {
        core / self.cores_per_socket
    }

    /// Propagation delay between two cores, before jitter: local within a
    /// socket, remote across the interconnect (Fig 1); zero to self.
    pub fn prop(&self, from: usize, to: usize) -> Nanos {
        if from == to {
            0
        } else if self.socket_of(from) == self.socket_of(to) {
            self.prop_local
        } else {
            self.prop_remote
        }
    }

    /// The transmission/propagation ratio of this profile — ≈ 1 on a
    /// many-core, ≈ 0.015 on a LAN (§3).
    pub fn trans_prop_ratio(&self) -> f64 {
        self.tx as f64 / self.prop_remote as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn socket_layout_matches_paper() {
        let p = Profile::opteron48();
        assert_eq!(p.cores, 48);
        assert_eq!(p.socket_of(0), 0);
        assert_eq!(p.socket_of(5), 0);
        assert_eq!(p.socket_of(6), 1);
        assert_eq!(p.socket_of(47), 7);
    }

    #[test]
    fn propagation_is_nonuniform() {
        let p = Profile::opteron48();
        assert_eq!(p.prop(0, 0), 0);
        assert!(p.prop(0, 1) < p.prop(0, 6)); // same socket vs cross socket
    }

    #[test]
    fn ratio_separates_manycore_from_lan() {
        // §3: "the ratio between the transmission delay and the
        // propagation delay is much larger in the case of a many-core".
        let mc = Profile::opteron48().trans_prop_ratio();
        let lan = Profile::lan(3).trans_prop_ratio();
        assert!(mc > 0.5, "many-core ratio ≈ 1, got {mc}");
        assert!(lan < 0.05, "LAN ratio ≈ 0.015, got {lan}");
        assert!(mc / lan > 40.0, "at least two orders of magnitude apart");
    }

    #[test]
    fn loopback_tcp_is_manycore_like() {
        // Loopback sockets cost CPU, not wire time: the trans/prop ratio
        // sits on the many-core side of the paper's §3 divide, far from
        // the LAN's 0.015.
        let p = Profile::loopback_tcp();
        assert_eq!(p.cores, 1, "models a single timeshared core");
        assert!(p.trans_prop_ratio() > 1.0, "got {}", p.trans_prop_ratio());
        // Socket cost per message (tx + rx) exceeds the shared-memory
        // handling cost — the measured reason the tcp row trails mem.
        assert!(p.tx + p.rx > Profile::opteron48().tx + Profile::opteron48().rx);
    }

    #[test]
    fn lan_profile_has_uniform_latency() {
        let p = Profile::lan(5);
        assert_eq!(p.prop(0, 1), p.prop(0, 4));
    }
}
