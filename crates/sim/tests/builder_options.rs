//! Tests for the deployment options: client spreading (multi-leader
//! protocols) and physical core placement (Fig 1 non-uniform latency).

use manycore_sim::{Profile, SimBuilder};
use onepaxos::mencius::MenciusNode;
use onepaxos::onepaxos::OnePaxosNode;
use onepaxos::{ClusterConfig, NodeId};

fn cfg(m: &[NodeId], me: NodeId) -> ClusterConfig {
    ClusterConfig::new(m.to_vec(), me)
}

#[test]
fn spread_clients_unlocks_mencius_scaling() {
    let skewed = SimBuilder::new(Profile::opteron48(), |m, me| MenciusNode::new(cfg(m, me)))
        .clients(9)
        .duration(100_000_000)
        .warmup(15_000_000)
        .run()
        .throughput;
    let spread = SimBuilder::new(Profile::opteron48(), |m, me| MenciusNode::new(cfg(m, me)))
        .clients(9)
        .spread_clients(true)
        .duration(100_000_000)
        .warmup(15_000_000)
        .run()
        .throughput;
    assert!(
        spread > 2.0 * skewed,
        "balanced Mencius must far outpace skewed: {spread:.0} vs {skewed:.0}"
    );
}

#[test]
fn placement_changes_latency_not_saturation() {
    // Fig 1: same-LLC communication is faster; §3: throughput is bound by
    // transmission CPU, which placement does not change.
    let lat = |placement: Vec<usize>| {
        SimBuilder::new(Profile::opteron48(), |m, me| OnePaxosNode::new(cfg(m, me)))
            .replicas(3)
            .clients(1)
            .placement(placement)
            .requests_per_client(500)
            .run()
            .mean_latency_us()
    };
    let same_socket = lat(vec![0, 1, 2, 3]);
    let cross_socket = lat(vec![0, 6, 12, 18]);
    assert!(
        cross_socket > same_socket + 0.5,
        "cross-socket propagation must show: {cross_socket} vs {same_socket}"
    );
}

#[test]
#[should_panic(expected = "placement must cover every process")]
fn placement_must_cover_all_processes() {
    let _ = SimBuilder::new(Profile::opteron48(), |m, me| OnePaxosNode::new(cfg(m, me)))
        .replicas(3)
        .clients(2)
        .placement(vec![0, 1, 2]) // 5 processes, 3 entries
        .run();
}

#[test]
fn colocated_shards_serialize_while_spread_shards_scale() {
    // Placement may map several processes to one physical core: they
    // share its FIFO and serialize. Four shard groups squeezed onto the
    // three replica cores buy (almost) nothing; the same four groups
    // spread over twelve cores multiply throughput.
    let run = |placement: Vec<usize>| {
        SimBuilder::new(Profile::opteron48(), |m, me| OnePaxosNode::new(cfg(m, me)))
            .replicas(3)
            .shards(4)
            .clients(12)
            .workload(manycore_sim::Workload::ReadMix {
                read_pct: 0,
                keys: 1024,
                hot_pct: 0,
            })
            .placement(placement)
            .duration(100_000_000)
            .warmup(15_000_000)
            .run()
            .throughput
    };
    // Replica-major process order: replica r's four shards, then clients.
    let colocated: Vec<usize> = (0..12).map(|p| p / 4).chain(12..24).collect();
    let spread: Vec<usize> = (0..24).collect();
    let (tied, scaled) = (run(colocated), run(spread));
    assert!(
        scaled > 1.5 * tied,
        "spread shards must outscale colocated ones: {scaled:.0} vs {tied:.0}"
    );
}

#[test]
fn relaxed_reads_outscale_linearized_reads() {
    use manycore_sim::Workload;
    let run = |relaxed: bool| {
        SimBuilder::new(Profile::opteron48(), move |m: &[NodeId], me| {
            let n = OnePaxosNode::new(cfg(m, me));
            if relaxed {
                n.with_relaxed_reads()
            } else {
                n
            }
        })
        .joint(5)
        .workload(Workload::ReadMix {
            read_pct: 90,
            keys: 64,
            hot_pct: 0,
        })
        .duration(100_000_000)
        .warmup(15_000_000)
        .run()
        .throughput
    };
    let (lin, rel) = (run(false), run(true));
    assert!(
        rel > 3.0 * lin,
        "90% relaxed reads must dominate: {rel:.0} vs {lin:.0}"
    );
}

#[test]
fn leader_core_saturates_first() {
    // §7.3: "the processing power of the replicas is the bottleneck for
    // scalability" — at saturation the leader core is the busiest and
    // close to fully utilized.
    let r = SimBuilder::new(Profile::opteron48(), |m, me| OnePaxosNode::new(cfg(m, me)))
        .replicas(3)
        .clients(20)
        .duration(100_000_000)
        .warmup(10_000_000)
        .run();
    let leader = r.utilization[0];
    assert!(leader > 0.9, "saturated leader utilization: {leader}");
    // The acceptor works less than the leader; the backup only plays the
    // learner role (one inbound learn per commit), well below both.
    assert!(r.utilization[1] < leader);
    assert!(
        r.utilization[2] < r.utilization[1],
        "backup {} vs acceptor {}",
        r.utilization[2],
        r.utilization[1]
    );
    assert!(
        r.utilization[2] < 0.5,
        "backup acceptor: {}",
        r.utilization[2]
    );
}

#[test]
fn unsaturated_clients_are_latency_bound() {
    // One client: throughput == 1/latency (closed loop identity).
    let r = SimBuilder::new(Profile::opteron48(), |m, me| OnePaxosNode::new(cfg(m, me)))
        .replicas(3)
        .clients(1)
        .requests_per_client(1_000)
        .run();
    let implied = 1e9 / (r.latency.mean() as f64);
    let ratio = r.throughput / implied;
    assert!(
        (0.9..1.1).contains(&ratio),
        "closed-loop identity violated: {ratio}"
    );
}
