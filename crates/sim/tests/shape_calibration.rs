//! Shape calibration against the paper's §7 numbers. The simulator is not
//! expected to match absolute values (different machine, different era) —
//! these tests pin the *orderings* and the headline *ratios* instead.

use manycore_sim::{Profile, SimBuilder};
use onepaxos::multipaxos::MultiPaxosNode;
use onepaxos::onepaxos::OnePaxosNode;
use onepaxos::twopc::TwoPcNode;
use onepaxos::{ClusterConfig, NodeId};

fn cfg(m: &[NodeId], me: NodeId) -> ClusterConfig {
    ClusterConfig::new(m.to_vec(), me)
}

#[test]
fn latency_table_shape_matches_sec7_2() {
    // §7.2: 1Paxos 16.0 µs < Multi-Paxos 19.6 µs < 2PC 21.4 µs.
    let one = SimBuilder::new(Profile::opteron48(), |m, me| OnePaxosNode::new(cfg(m, me)))
        .requests_per_client(500)
        .run()
        .mean_latency_us();
    let multi = SimBuilder::new(Profile::opteron48(), |m, me| {
        MultiPaxosNode::new(cfg(m, me))
    })
    .requests_per_client(500)
    .run()
    .mean_latency_us();
    let two = SimBuilder::new(Profile::opteron48(), |m, me| TwoPcNode::new(cfg(m, me)))
        .requests_per_client(500)
        .run()
        .mean_latency_us();
    eprintln!(
        "latency us — 1Paxos {one:.1} (paper 16.0), Multi-Paxos {multi:.1} (19.6), 2PC {two:.1} (21.4)"
    );
    assert!(
        one < multi && multi < two,
        "{one} < {multi} < {two} violated"
    );
    // Within a factor of ~2 of the paper's absolutes.
    assert!((8.0..32.0).contains(&one));
    assert!((10.0..40.0).contains(&multi));
    assert!((11.0..45.0).contains(&two));
    // The 1Paxos advantage over Multi-Paxos is a visible gap, not noise.
    assert!(multi - one > 1.0);
}

#[test]
fn saturation_ratios_match_fig8() {
    // Fig 8: at saturation Multi-Paxos reaches ≈52% of 1Paxos and 2PC
    // stays below both; 1Paxos keeps scaling well past one client.
    let one = |c: usize| {
        SimBuilder::new(Profile::opteron48(), |m, me| OnePaxosNode::new(cfg(m, me)))
            .clients(c)
            .duration(150_000_000)
            .warmup(20_000_000)
            .run()
            .throughput
    };
    let multi = |c: usize| {
        SimBuilder::new(Profile::opteron48(), |m, me| {
            MultiPaxosNode::new(cfg(m, me))
        })
        .clients(c)
        .duration(150_000_000)
        .warmup(20_000_000)
        .run()
        .throughput
    };
    let two = |c: usize| {
        SimBuilder::new(Profile::opteron48(), |m, me| TwoPcNode::new(cfg(m, me)))
            .clients(c)
            .duration(150_000_000)
            .warmup(20_000_000)
            .run()
            .throughput
    };
    let (t1_max, tm_max, t2_max) = (one(20), multi(20), two(20));
    eprintln!(
        "saturated op/s — 1Paxos {t1_max:.0}, Multi-Paxos {tm_max:.0} ({:.0}%), 2PC {t2_max:.0} ({:.0}%)",
        100.0 * tm_max / t1_max,
        100.0 * t2_max / t1_max
    );
    // Multi-Paxos lands near the paper's 52%.
    let mp_ratio = tm_max / t1_max;
    assert!(
        (0.35..0.70).contains(&mp_ratio),
        "Multi-Paxos ratio {mp_ratio:.2} out of range"
    );
    // 2PC is the slowest at saturation.
    assert!(t2_max < tm_max);
    // 1Paxos keeps scaling past one client (paper: 2x by 13 clients).
    let t1_single = one(1);
    assert!(
        t1_max > 1.8 * t1_single,
        "1Paxos should roughly double from 1 client: {t1_single:.0} → {t1_max:.0}"
    );
}

#[test]
fn lan_profile_reverses_the_design_pressure() {
    // §3/§8: on a LAN, propagation dominates; Multi-Paxos's extra
    // messages matter less for a single client's latency (round trips
    // dominate), yet 1Paxos still wins on server-side load.
    let one = SimBuilder::new(Profile::lan(4), |m, me| OnePaxosNode::new(cfg(m, me)))
        .requests_per_client(100)
        .run();
    let multi = SimBuilder::new(Profile::lan(4), |m, me| MultiPaxosNode::new(cfg(m, me)))
        .requests_per_client(100)
        .run();
    // Latencies within ~15% of each other on the LAN (propagation-bound),
    // unlike the clear gap inside the machine.
    let (l1, lm) = (one.mean_latency_us(), multi.mean_latency_us());
    eprintln!("LAN latency us — 1Paxos {l1:.0}, Multi-Paxos {lm:.0}");
    assert!((lm - l1).abs() / lm < 0.15, "LAN latencies should be close");
    // But Multi-Paxos still burns more server CPU per commit.
    assert!(multi.server_messages > one.server_messages);
}
