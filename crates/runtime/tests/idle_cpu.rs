//! An idle `recv_deadline` must not burn its core.
//!
//! The original socket wait loop spun `flush()` + poll with no backoff,
//! pinning a CPU at 100% while waiting for traffic that wasn't coming.
//! The wait now spins only a bounded budget of yields and then backs
//! off into escalating sleeps, so a replica or client parked on a quiet
//! connection consumes a small fraction of the wall time it waits.
//!
//! The measurement uses `/proc/self/schedstat` (on-CPU nanoseconds as
//! scheduled, the first field), which charges exactly this process —
//! kept in its own integration-test binary so no sibling test's threads
//! pollute the reading.

use std::time::{Duration, Instant};

use onepaxos::NodeId;
use onepaxos_runtime::{TcpTransport, Transport};

/// On-CPU nanoseconds this process has been scheduled for, or `None`
/// where `/proc` is unavailable (the test then passes vacuously rather
/// than inventing numbers).
fn on_cpu_ns() -> Option<u64> {
    let stat = std::fs::read_to_string("/proc/self/schedstat").ok()?;
    stat.split_whitespace().next()?.parse().ok()
}

#[test]
fn idle_recv_deadline_sleeps_instead_of_spinning() {
    let (mut a, _b) = TcpTransport::<u64>::pair(NodeId(0), NodeId(1)).expect("loopback pair");

    // Warm-up out of the measurement: thread start, page faults, the
    // socket setup above.
    let _ = a.recv_deadline(Instant::now() + Duration::from_millis(20));

    let Some(cpu_before) = on_cpu_ns() else {
        eprintln!("no /proc/self/schedstat on this platform; skipping");
        return;
    };
    let wall_start = Instant::now();
    let got = a.recv_deadline(wall_start + Duration::from_millis(400));
    let wall = wall_start.elapsed();
    let cpu = on_cpu_ns().expect("schedstat disappeared mid-test") - cpu_before;

    assert!(got.is_none(), "nothing was sent, yet something arrived");
    assert!(
        wall >= Duration::from_millis(380),
        "deadline returned early: {wall:?}"
    );
    // A spinning waiter sits at ~100% of wall. The backoff should land
    // far below half even on a noisy, oversubscribed CI core.
    let budget = wall.as_nanos() as u64 / 2;
    assert!(
        cpu < budget,
        "idle recv_deadline burned {} ms of CPU over {} ms of wall \
         (backoff missing?)",
        cpu / 1_000_000,
        wall.as_millis()
    );
}
