//! Property tests for the runtime's [`Wire`] envelope: the frame a
//! `TcpTransport` actually puts on a socket is `topic ++ Wire<M>`, so
//! beyond the per-message codecs (tested in the core crate) the envelope
//! itself must round-trip for every arm — including `Shutdown`, which has
//! no payload, and `Peer`, which nests a full protocol message.

use onepaxos::multipaxos;
use onepaxos::wire::{decode_exact, encode_to_vec, Codec};
use onepaxos::{Ballot, NodeId, Op};
use onepaxos_runtime::Wire;
use proptest::prelude::*;

fn arb_node() -> BoxedStrategy<NodeId> {
    any::<u16>().prop_map(NodeId).boxed()
}

fn arb_op() -> BoxedStrategy<Op> {
    prop_oneof![
        Just(Op::Noop),
        (any::<u64>(), any::<u64>()).prop_map(|(key, value)| Op::Put { key, value }),
        any::<u64>().prop_map(|key| Op::Get { key }),
    ]
    .boxed()
}

fn arb_peer_msg() -> BoxedStrategy<multipaxos::Msg> {
    use multipaxos::Msg;
    let bal = || {
        (any::<u32>(), arb_node())
            .prop_map(|(round, node)| Ballot { round, node })
            .boxed()
    };
    prop_oneof![
        (bal(), any::<u64>()).prop_map(|(bal, from_inst)| Msg::Prepare { bal, from_inst }),
        bal().prop_map(|bal| Msg::Heartbeat { bal }),
        bal().prop_map(|promised| Msg::AcceptNack { promised }),
    ]
    .boxed()
}

fn arb_value() -> BoxedStrategy<Option<u64>> {
    prop_oneof![Just(None), any::<u64>().prop_map(Some)].boxed()
}

fn arb_wire() -> BoxedStrategy<Wire<multipaxos::Msg>> {
    prop_oneof![
        arb_peer_msg().prop_map(Wire::Peer),
        (arb_node(), any::<u64>(), arb_op()).prop_map(|(client, req_id, op)| Wire::Request {
            client,
            req_id,
            op,
        }),
        (arb_node(), any::<u64>(), any::<u64>()).prop_map(|(client, req_id, key)| {
            Wire::ReadRelaxed {
                client,
                req_id,
                key,
            }
        }),
        (any::<u64>(), any::<u64>(), arb_value()).prop_map(|(req_id, instance, value)| {
            Wire::Reply {
                req_id,
                instance,
                value,
            }
        }),
        (any::<u64>(), arb_value()).prop_map(|(req_id, value)| Wire::ReadValue { req_id, value }),
        Just(Wire::Shutdown),
        (any::<u16>(), any::<u64>())
            .prop_map(|(shard, have)| Wire::SnapshotRequest { shard, have }),
        (
            any::<u16>(),
            any::<u64>(),
            prop::collection::vec(any::<u8>(), 0..64)
        )
            .prop_map(|(shard, watermark, bytes)| Wire::Snapshot {
                shard,
                watermark,
                bytes,
            }),
    ]
    .boxed()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    #[test]
    fn wire_envelope_round_trips(w in arb_wire()) {
        prop_assert_eq!(
            decode_exact::<Wire<multipaxos::Msg>>(&encode_to_vec(&w)).unwrap(),
            w
        );
    }

    // What TcpTransport frames is (topic, Wire) — that pair must round-trip
    // too, since shard routing over sockets depends on the topic surviving.
    #[test]
    fn topic_tagged_envelope_round_trips(topic in any::<u16>(), w in arb_wire()) {
        let mut buf = Vec::new();
        topic.encode(&mut buf);
        w.encode(&mut buf);
        let mut r = onepaxos::wire::Reader::new(&buf);
        let got_topic = u16::decode(&mut r).unwrap();
        let got: Wire<multipaxos::Msg> = Wire::decode(&mut r).unwrap();
        prop_assert!(r.is_empty(), "decoder left {} trailing bytes", r.remaining());
        prop_assert_eq!(got_topic, topic);
        prop_assert_eq!(got, w);
    }
}
