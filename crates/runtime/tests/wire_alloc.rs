//! The zero-steady-state-allocation contract of the TCP wire hot path.
//!
//! A counting global allocator wraps the system allocator; after a
//! warm-up phase (buffer pools filling, inbox deques reaching capacity)
//! a measured run of request/reply round trips over a real loopback
//! socket pair must allocate **nothing**: frames encode into pooled
//! send segments, arrive into pooled receive segments, and decode by
//! borrowing those segments in place. Any regression that reintroduces
//! a per-frame `Vec` or a drain-compaction copy shows up here as a
//! nonzero count, the same discipline `Outbox::take_into` is held to.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::time::{Duration, Instant};

use onepaxos::{NodeId, Op};
use onepaxos_runtime::{TcpTransport, Transport, Wire};

/// System allocator wrapped with allocation counting.
struct Counting;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates directly to `System`; the counter is a relaxed
// atomic with no further side effects.
#[allow(unsafe_code)]
unsafe impl GlobalAlloc for Counting {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static COUNTER: Counting = Counting;

fn allocs() -> u64 {
    ALLOCS.load(Relaxed)
}

/// One request/reply round trip across the pair, exercising the full
/// production hot path: coalesced vectored send, pump/recv_ready sweep
/// on the server side, and the parked `recv_from_deadline` wait on the
/// client side.
fn round_trip(client: &mut TcpTransport<u64>, server: &mut TcpTransport<u64>, req_id: u64) {
    let c = NodeId(0);
    let s = NodeId(1);
    client.send(
        s,
        0,
        Wire::Request {
            client: c,
            req_id,
            op: Op::Put {
                key: req_id,
                value: req_id,
            },
        },
    );
    client.flush();

    let deadline = Instant::now() + Duration::from_secs(5);
    let req = loop {
        server.pump();
        if let Some((_, m)) = server.recv_ready() {
            break m;
        }
        assert!(Instant::now() < deadline, "request never arrived");
        std::thread::yield_now();
    };
    let Wire::Request { req_id: r, .. } = req else {
        panic!("expected request, got {req:?}");
    };
    assert_eq!(r, req_id);

    server.send(
        c,
        0,
        Wire::Reply {
            req_id,
            instance: req_id,
            value: Some(req_id),
        },
    );
    server.flush();

    let (_, reply) = client
        .recv_from_deadline(s, deadline)
        .expect("reply never arrived");
    let Wire::Reply { req_id: r, .. } = reply else {
        panic!("expected reply, got {reply:?}");
    };
    assert_eq!(r, req_id);
}

#[test]
fn tcp_hot_path_allocates_nothing_in_steady_state() {
    let (mut client, mut server) =
        TcpTransport::<u64>::pair(NodeId(0), NodeId(1)).expect("loopback pair");

    // Warm up: fill the segment pools, grow the inbox deques, fault in
    // the lazily initialised corners of the socket path.
    for i in 0..256 {
        round_trip(&mut client, &mut server, i);
    }

    let before = allocs();
    for i in 256..1280 {
        round_trip(&mut client, &mut server, i);
    }
    let during = allocs() - before;

    assert_eq!(
        during, 0,
        "TCP send/recv hot path allocated {during} times over 1024 \
         steady-state round trips (contract: zero per-frame allocations)"
    );
}
