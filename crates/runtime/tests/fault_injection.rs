//! The seeded [`FaultTransport`] contract: a fault scenario is a
//! reproducible seed, and every injected fault stays inside the
//! [`Transport`] delivery contract.
//!
//! Determinism is asserted the strong way — the full delivery *trace*
//! (which messages arrived, in which order) plus the injection counters
//! must be identical across repeated runs of the same seed — and FIFO
//! preservation is asserted under heavy delay injection: delivered
//! payloads form a strictly increasing subsequence of the send
//! sequence, never a reordering.

use std::time::{Duration, Instant};

use onepaxos::{NodeId, Op};
use onepaxos_runtime::{
    FaultPlan, FaultStats, FaultTransport, MemTransport, Partition, TcpTransport, Transport, Wire,
};

const A: NodeId = NodeId(0);
const B: NodeId = NodeId(1);

fn msg(req_id: u64) -> Wire<u64> {
    Wire::Request {
        client: A,
        req_id,
        op: Op::Put {
            key: req_id,
            value: req_id,
        },
    }
}

/// Sends `n` tagged messages through a faulted A-side over shared
/// memory, drains until quiescent, and returns (delivery trace, fault
/// stats). Single-threaded, so the only nondeterminism on offer is the
/// fault dice — which is the thing under test.
fn run_trace(seed: u64, n: u64) -> (Vec<u64>, FaultStats) {
    // One topic: the delivery contract orders messages per peer per
    // topic, so a multi-topic trace could interleave differently
    // depending on *when* held messages release — per-topic order is
    // the deterministic observable.
    let (a, mut b) = MemTransport::<u64>::pair(A, B, 1);
    let plan = FaultPlan::seeded(seed)
        .drops(150)
        .delays(300, Duration::from_millis(2));
    let mut a = FaultTransport::new(a, plan);
    let mut trace = Vec::new();
    for i in 0..n {
        a.send(B, 0, msg(i));
        a.flush();
        while let Some((_, Wire::Request { req_id, .. })) = b.recv() {
            trace.push(req_id);
        }
    }
    // Drain the held-back tail: flush() returns true while delayed
    // messages await release.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let busy = a.flush();
        while let Some((_, Wire::Request { req_id, .. })) = b.recv() {
            trace.push(req_id);
        }
        if !busy {
            break;
        }
        assert!(Instant::now() < deadline, "held queue never drained");
        std::thread::sleep(Duration::from_micros(100));
    }
    (trace, a.fault_stats())
}

/// Acceptance: the seeded twin produces identical results across three
/// runs of the same seed — same messages dropped, same messages
/// delivered, same order — while a different seed perturbs the trace.
#[test]
fn same_seed_same_trace_three_runs() {
    let (t1, s1) = run_trace(0xDEAD_BEEF, 400);
    let (t2, s2) = run_trace(0xDEAD_BEEF, 400);
    let (t3, s3) = run_trace(0xDEAD_BEEF, 400);
    assert_eq!(t1, t2, "run 2 diverged from run 1");
    assert_eq!(t1, t3, "run 3 diverged from run 1");
    assert_eq!(s1, s2);
    assert_eq!(s1, s3);
    assert!(s1.dropped > 0, "drop dice never fired: {s1:?}");
    assert!(s1.delayed > 0, "delay dice never fired: {s1:?}");
    assert_eq!(
        t1.len() as u64 + s1.dropped,
        400,
        "every message accounted for"
    );

    let (t4, _) = run_trace(0xFEED_F00D, 400);
    assert_ne!(t1, t4, "different seeds produced the same trace");
}

/// Injected delays must preserve per-peer FIFO order: a delayed message
/// blocks everything queued after it rather than being overtaken, so
/// the delivered req_ids are strictly increasing.
#[test]
fn delays_preserve_fifo_order() {
    let (trace, stats) = run_trace(7, 600);
    assert!(stats.delayed > 0, "no delays injected: {stats:?}");
    for w in trace.windows(2) {
        assert!(
            w[0] < w[1],
            "reordering observed: {} delivered before {}",
            w[1],
            w[0]
        );
    }
}

/// A timed partition window silently cuts traffic to the peer for its
/// duration, then heals on its own: sends during the window are counted
/// as partitioned, sends after it get through.
#[test]
fn partition_window_cuts_then_heals() {
    let (a, mut b) = MemTransport::<u64>::pair(A, B, 1);
    let window = Duration::from_millis(150);
    let mut a = FaultTransport::new(
        a,
        FaultPlan::seeded(11).partition(Partition {
            start: Duration::ZERO,
            duration: window,
            peer: Some(B),
        }),
    );

    // Inside the window: nothing crosses.
    a.send(B, 0, msg(1));
    a.flush();
    assert!(b.recv().is_none(), "message crossed an open partition");
    assert_eq!(a.fault_stats().partitioned, 1);

    // After the window: traffic resumes untouched.
    std::thread::sleep(window + Duration::from_millis(20));
    a.send(B, 0, msg(2));
    a.flush();
    match b.recv() {
        Some((_, Wire::Request { req_id, .. })) => assert_eq!(req_id, 2),
        other => panic!("partition never healed: {other:?}"),
    }
}

/// Scheduled connection kills fire into the inner transport's real
/// socket teardown — and the reconnect lifecycle repairs each one, so
/// traffic keeps flowing through the whole schedule.
#[test]
fn scheduled_conn_kills_exercise_reconnect() {
    let (dialer, mut acceptor) = TcpTransport::<u64>::pair(A, B).expect("loopback pair");
    let plan = FaultPlan::seeded(3)
        .kill_at(Duration::from_millis(30), B)
        .kill_at(Duration::from_millis(90), B);
    let mut dialer = FaultTransport::new(dialer, plan);

    let deadline = Instant::now() + Duration::from_secs(20);
    let mut delivered = 0u64;
    let mut next = 0u64;
    // Exit only once both kills fired AND a healthy batch made it
    // through afterwards — proof the second teardown also healed.
    let mut at_second_kill: Option<u64> = None;
    loop {
        dialer.send(B, 0, msg(next));
        next += 1;
        dialer.flush();
        acceptor.pump();
        while let Some((_, Wire::Request { .. })) = acceptor.recv_ready() {
            delivered += 1;
        }
        if dialer.fault_stats().kills >= 2 && at_second_kill.is_none() {
            at_second_kill = Some(delivered);
        }
        if at_second_kill.is_some_and(|base| delivered >= base + 50) {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "stalled: delivered {delivered}, kills {:?}",
            dialer.fault_stats()
        );
        std::thread::sleep(Duration::from_micros(200));
    }

    assert_eq!(dialer.fault_stats().kills, 2, "kill schedule misfired");
    let inner = dialer.inner().stats();
    assert!(
        inner.conn_kills >= 2,
        "kills never hit the socket: {inner:?}"
    );
    assert!(inner.reconnects >= 2, "links never healed: {inner:?}");
    assert_eq!(dialer.inner().conn_count(), 1, "no live link at the end");
}
