//! The reconnect lifecycle of [`TcpTransport`]: a dead connection is a
//! blip, not a permanent partition.
//!
//! A killed or corrupted link must be (1) reaped — the conn-slot table
//! stays bounded by the peer count, no graveyard of terminal slots —
//! and (2) re-established, by backoff redial on the side that owns the
//! dial and by the nonblocking accept sweep on the side that owns the
//! listener. Frames lost across the gap are covered by the documented
//! may-drop/at-most-once delivery contract, which is what lets these
//! tests simply re-send a probe until one crosses.

use std::time::{Duration, Instant};

use onepaxos::{NodeId, Op};
use onepaxos_runtime::{TcpTransport, Transport, Wire};

const DIALER: NodeId = NodeId(0);
const ACCEPTOR: NodeId = NodeId(1);

fn probe(req_id: u64) -> Wire<u64> {
    Wire::Request {
        client: DIALER,
        req_id,
        op: Op::Put {
            key: req_id,
            value: req_id,
        },
    }
}

/// Drives both endpoints until a probe tagged at or above `floor`
/// crosses from `tx` to `rx` on `topic`, re-sending each pass (the
/// contract allows drops across the reconnect gap). Returns the req_id
/// that made it.
fn drive_until_delivered(
    tx: &mut TcpTransport<u64>,
    rx: &mut TcpTransport<u64>,
    to: NodeId,
    topic: u16,
    floor: u64,
) -> u64 {
    let deadline = Instant::now() + Duration::from_secs(20);
    let mut next = floor;
    loop {
        tx.send(to, topic, probe(next));
        next += 1;
        tx.flush();
        tx.pump();
        rx.pump();
        rx.flush();
        while let Some(((_, t), wire)) = rx.recv_ready() {
            if let Wire::Request { req_id, .. } = wire {
                if t == topic && req_id >= floor {
                    return req_id;
                }
            }
        }
        assert!(
            Instant::now() < deadline,
            "no probe >= {floor} delivered on topic {topic} within 20s"
        );
        std::thread::sleep(Duration::from_micros(200));
    }
}

/// Satellite regression: repeated kills never grow the conn-slot table.
/// Every kill reaps the dead slot, every heal installs exactly one
/// replacement — `conn_count` stays pinned at the peer count (1) on
/// both sides through eight kill/heal rounds, alternating which side
/// pulls the trigger.
#[test]
fn conn_slots_stay_bounded_under_repeated_kills() {
    let (mut dialer, mut acceptor) =
        TcpTransport::<u64>::pair(DIALER, ACCEPTOR).expect("loopback pair");
    drive_until_delivered(&mut dialer, &mut acceptor, ACCEPTOR, 0, 0);

    for round in 0..8u64 {
        if round % 2 == 0 {
            dialer.kill_peer_link(ACCEPTOR);
        } else {
            acceptor.kill_peer_link(DIALER);
        }
        let floor = (round + 1) * 1_000;
        drive_until_delivered(&mut dialer, &mut acceptor, ACCEPTOR, 0, floor);
        assert!(
            dialer.conn_count() <= 1 && acceptor.conn_count() <= 1,
            "round {round}: conn slots grew (dialer {}, acceptor {})",
            dialer.conn_count(),
            acceptor.conn_count()
        );
    }

    // Healed end state: exactly one live connection each, nothing left
    // in backoff, and the counters saw every kill and every repair.
    assert_eq!(dialer.conn_count(), 1);
    assert_eq!(acceptor.conn_count(), 1);
    assert_eq!(dialer.backoff_count(), 0);
    let d = dialer.stats();
    let a = acceptor.stats();
    assert!(d.conn_kills >= 4, "dialer saw {} kills", d.conn_kills);
    assert!(a.conn_kills >= 4, "acceptor saw {} kills", a.conn_kills);
    assert!(d.reconnects >= 8, "dialer made {} repairs", d.reconnects);
    assert!(a.reconnects >= 8, "acceptor made {} repairs", a.reconnects);
}

/// Satellite regression: a corrupt frame on one topic kills the shared
/// connection (it must — framing is unrecoverable mid-stream), but
/// after the reconnect *unrelated topics* resume in both directions,
/// and the kill is attributed in `TransportStats::corrupt_frames`.
#[test]
fn corrupt_frame_kill_heals_and_unrelated_topics_resume() {
    let (mut dialer, mut acceptor) =
        TcpTransport::<u64>::pair(DIALER, ACCEPTOR).expect("loopback pair");
    // Healthy traffic on two topics before the fault.
    drive_until_delivered(&mut dialer, &mut acceptor, ACCEPTOR, 0, 0);
    drive_until_delivered(&mut dialer, &mut acceptor, ACCEPTOR, 1, 100);

    // Poison the stream: a well-framed payload that does not decode.
    dialer.inject_corrupt_frame(ACCEPTOR);
    dialer.flush();

    // The acceptor kills the connection on decode failure and books it
    // as a corrupt-frame kill; both topics then resume through the
    // healed link, in both directions.
    drive_until_delivered(&mut dialer, &mut acceptor, ACCEPTOR, 0, 10_000);
    drive_until_delivered(&mut dialer, &mut acceptor, ACCEPTOR, 1, 20_000);
    drive_until_delivered(&mut acceptor, &mut dialer, DIALER, 1, 30_000);

    let a = acceptor.stats();
    assert_eq!(
        a.corrupt_frames, 1,
        "corrupt-frame kill not attributed: {a:?}"
    );
    assert!(a.conn_kills >= 1, "kill not counted: {a:?}");
    assert!(a.reconnects >= 1, "no repair counted: {a:?}");
    assert_eq!(acceptor.conn_count(), 1);
    assert_eq!(dialer.conn_count(), 1);
}

/// Satellite regression: a client parked in `recv_from_deadline`'s
/// blocking read must not stay stuck when the hot connection dies
/// mid-park — the EOF wakes it, the maintenance pass redials under the
/// wait, and the reply sent over the healed link is delivered long
/// before the deadline.
#[test]
fn parked_client_survives_connection_death_mid_park() {
    let (mut client, mut server) =
        TcpTransport::<u64>::pair(DIALER, ACCEPTOR).expect("loopback pair");
    drive_until_delivered(&mut client, &mut server, ACCEPTOR, 0, 0);

    let nemesis = std::thread::spawn(move || {
        // Let the client reach its parked blocking read, then sever the
        // socket from the server side — the client's park sees EOF.
        std::thread::sleep(Duration::from_millis(100));
        server.kill_peer_link(DIALER);
        // Sweep accepts until the client's redial lands.
        let deadline = Instant::now() + Duration::from_secs(20);
        while server.conn_count() == 0 {
            server.pump();
            assert!(Instant::now() < deadline, "client never redialed");
            std::thread::sleep(Duration::from_micros(200));
        }
        // Reply over the healed connection.
        server.send(
            DIALER,
            0,
            Wire::Reply {
                req_id: 42,
                instance: 42,
                value: Some(42),
            },
        );
        let flush_deadline = Instant::now() + Duration::from_secs(5);
        while server.flush() && Instant::now() < flush_deadline {
            std::thread::yield_now();
        }
        server
    });

    // Park far longer than the repair takes: the test only passes
    // quickly if the mid-park death degrades to bounded slices that
    // drive the redial, exactly as documented.
    let parked_at = Instant::now();
    let got = client.recv_from_deadline(ACCEPTOR, parked_at + Duration::from_secs(30));
    let server = nemesis.join().expect("nemesis thread");

    match got {
        Some((_, Wire::Reply { req_id, .. })) => assert_eq!(req_id, 42),
        other => panic!("parked client never resumed: {other:?}"),
    }
    assert!(
        parked_at.elapsed() < Duration::from_secs(25),
        "client only resumed at the deadline — the park was stuck"
    );
    assert!(
        client.stats().reconnects >= 1,
        "client never redialed: {:?}",
        client.stats()
    );
    drop(server);
}
