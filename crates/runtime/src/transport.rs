//! Pluggable IO boundary for the threaded runtime: the replica loop and
//! the client handles speak to a [`Transport`], never to a queue or a
//! socket directly, so the *same* engine loop runs behind shared memory
//! ([`MemTransport`], qc-channel SPSC queues) or real sockets
//! ([`TcpTransport`], loopback TCP with the `onepaxos::wire` framed
//! binary codec).
//!
//! # Addressing
//!
//! A destination is a [`Peer`] — `(NodeId, topic)`. The topic is the
//! shard-group channel: the shared-memory transport maps each topic to
//! its own SPSC queue pair (preserving the one-queue-per-group layout of
//! §6.1), while TCP multiplexes all topics over one connection per
//! process pair and carries the topic inside each frame.
//!
//! # TCP frame layout
//!
//! Every TCP message is one `onepaxos::wire` frame (magic `0xC51D`,
//! version, length — see [`onepaxos::wire::write_frame`]) whose payload
//! is the destination topic (`u16` LE) followed by the
//! [`Codec`]-encoded [`Wire`] message. The first frame on every
//! connection is a *hello* whose payload is the dialing process's
//! [`NodeId`], which is how the accepting side learns who is talking.

use std::collections::{BTreeMap, VecDeque};
use std::io::{IoSlice, Read as _, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::time::{Duration, Instant};

use onepaxos::wire::{self, Codec, DecodeError, Reader, RecvBuf, SendQueue};
use onepaxos::NodeId;
use qc_channel::{Mailbox, Receiver, Sender};

use crate::wire::Wire;

/// A peer address on the wire: who, on which shard-group topic.
pub type Peer = (NodeId, u16);

/// The IO boundary the replica loop and client handles are written
/// against.
///
/// # Delivery contract
///
/// The engines assume exactly what the paper's in-machine channels give
/// them, no more:
///
/// * **Per-peer FIFO order** — messages from one process to another on
///   one topic arrive in send order. Order across topics or across
///   senders is unspecified.
/// * **At-most-once delivery** — a transport never duplicates a
///   message. It may *drop* messages (a full queue whose sender exits, a
///   closed socket): every protocol in the tree already tolerates loss
///   through retransmission timers, but none tolerates duplication of
///   its client requests without the engines' dedup records.
/// * **Non-blocking** — [`send`](Transport::send) buffers instead of
///   blocking when the link is busy ([`flush`](Transport::flush)
///   retries), and [`recv`](Transport::recv) returns `None` instead of
///   waiting, so one slow peer can never wedge a replica's event loop.
pub trait Transport<M>: Send {
    /// Queues `msg` for `(to, topic)`. Never blocks: if the link is
    /// full the message is buffered and retried by [`flush`]
    /// (Transport::flush). Messages to unknown peers are dropped.
    fn send(&mut self, to: NodeId, topic: u16, msg: Wire<M>);

    /// Retries buffered sends. Returns `true` while anything remains
    /// buffered.
    fn flush(&mut self) -> bool;

    /// Non-blocking receive: the next inbound message and its sender,
    /// or `None` if nothing is waiting.
    fn recv(&mut self) -> Option<(Peer, Wire<M>)>;

    /// Sweeps ready inbound traffic into the transport's local inbox in
    /// one pass, for transports whose `recv` otherwise pays IO per call.
    /// An event loop calls this once per iteration and then drains with
    /// [`recv_ready`](Transport::recv_ready) — on TCP that is one
    /// `read(2)` sweep per iteration instead of one per message miss.
    /// Default: no-op (queue transports have nothing to sweep).
    fn pump(&mut self) {}

    /// Pops a message already swept in by [`pump`](Transport::pump)
    /// without doing IO. Default: plain [`recv`](Transport::recv), which
    /// is correct for transports where receiving never syscalls.
    fn recv_ready(&mut self) -> Option<(Peer, Wire<M>)> {
        self.recv()
    }

    /// Blocking receive with a deadline: flushes and polls until a
    /// message arrives or `deadline` passes.
    ///
    /// The default implementation spins briefly (a message in flight on
    /// loopback arrives within microseconds) and then backs off into
    /// escalating sleeps, so a caller parked on a long deadline
    /// deschedules instead of burning its core polling — on a machine
    /// with fewer cores than threads, a spinning waiter would steal the
    /// very cycles the replica needs to produce the awaited reply.
    fn recv_deadline(&mut self, deadline: Instant) -> Option<(Peer, Wire<M>)> {
        let mut spins = 0u32;
        let mut nap = IDLE_NAP_FLOOR;
        loop {
            self.flush();
            if let Some(m) = self.recv() {
                return Some(m);
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            if spins < IDLE_SPINS {
                spins += 1;
                std::thread::yield_now();
            } else {
                std::thread::sleep(nap.min(deadline - now));
                nap = (nap * 2).min(IDLE_NAP_CEIL);
            }
        }
    }

    /// [`recv_deadline`](Transport::recv_deadline) with a sender hint:
    /// the caller has just issued a request to `from` and expects the
    /// answer from there (a synchronous client awaiting its reply). A
    /// socket transport parks in a blocking read on that peer's
    /// connection — the kernel wakes it the moment the reply's bytes
    /// arrive, with zero empty polls — instead of spinning. Messages
    /// from other peers are still delivered (the hint is an
    /// optimisation, not a filter). Default: ignore the hint.
    fn recv_from_deadline(&mut self, _from: NodeId, deadline: Instant) -> Option<(Peer, Wire<M>)> {
        self.recv_deadline(deadline)
    }
}

/// Polls before the first sleep in [`Transport::recv_deadline`]. Covers
/// the common case — a reply already crossing loopback — without ever
/// descheduling.
pub const IDLE_SPINS: u32 = 64;

/// Narrows this thread's kernel timer slack to 1 µs, best-effort.
///
/// Linux pads every `nanosleep` by the thread's timer slack — 50 µs by
/// default — to coalesce wakeups. The idle backoffs here sleep in the
/// 5–250 µs range, and a 50 µs pad on a 5 µs nap turns the backoff into
/// a latency cliff (most visible when replicas and clients timeshare a
/// core and wake each other constantly). Threads inherit the value from
/// their spawner, so the cluster builders call this once on the spawning
/// thread before starting replica threads. Failure (procfs unavailable,
/// old kernel) is ignored: the backoff still works, just coarser.
pub(crate) fn tighten_timer_slack() {
    if std::fs::write("/proc/thread-self/timerslack_ns", "1000").is_err() {
        let _ = std::fs::write("/proc/self/timerslack_ns", "1000");
    }
}

/// First sleep once the spin budget is exhausted.
pub const IDLE_NAP_FLOOR: Duration = Duration::from_micros(5);

/// Ceiling on the escalating idle sleep: long enough to drop idle CPU to
/// noise, short enough that no protocol timer (hundreds of µs and up)
/// misses its beat by more than this.
pub const IDLE_NAP_CEIL: Duration = Duration::from_micros(250);

// ---------------------------------------------------------------------
// Shared memory
// ---------------------------------------------------------------------

/// The qc-channel transport: one lock-free SPSC queue per direction per
/// `(peer, topic)` link — exactly the runtime's original IO layer, now
/// behind the trait. Overflow on a full 7-slot queue is buffered at the
/// sender so the event loop never blocks.
pub struct MemTransport<M> {
    senders: BTreeMap<Peer, Sender<Wire<M>>>,
    backlog: BTreeMap<Peer, VecDeque<Wire<M>>>,
    mailbox: Mailbox<Peer, Wire<M>>,
}

impl<M> MemTransport<M> {
    /// Builds the transport from one process's half of the mesh.
    pub(crate) fn new(
        senders: BTreeMap<Peer, Sender<Wire<M>>>,
        receivers: Vec<(Peer, Receiver<Wire<M>>)>,
    ) -> Self {
        let mut mailbox = Mailbox::new();
        for (peer, rx) in receivers {
            mailbox.add_peer(peer, rx);
        }
        MemTransport {
            senders,
            backlog: BTreeMap::new(),
            mailbox,
        }
    }
}

impl<M> std::fmt::Debug for MemTransport<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MemTransport")
            .field("peers", &self.senders.len())
            .finish_non_exhaustive()
    }
}

impl<M: Send> Transport<M> for MemTransport<M> {
    fn send(&mut self, to: NodeId, topic: u16, msg: Wire<M>) {
        let Some(tx) = self.senders.get(&(to, topic)) else {
            return; // unknown peer: drop (e.g. client already gone)
        };
        let back = self.backlog.entry((to, topic)).or_default();
        if back.is_empty() {
            if let Err(qc_channel::Full(m)) = tx.try_send(msg) {
                back.push_back(m);
            }
        } else {
            back.push_back(msg);
        }
    }

    fn flush(&mut self) -> bool {
        let mut pending = false;
        for (addr, q) in self.backlog.iter_mut() {
            let Some(tx) = self.senders.get(addr) else {
                q.clear();
                continue;
            };
            while let Some(m) = q.pop_front() {
                if let Err(qc_channel::Full(m)) = tx.try_send(m) {
                    q.push_front(m);
                    pending = true;
                    break;
                }
            }
        }
        pending
    }

    fn recv(&mut self) -> Option<(Peer, Wire<M>)> {
        self.mailbox.poll()
    }
}

// ---------------------------------------------------------------------
// TCP
// ---------------------------------------------------------------------

/// Most [`IoSlice`]s handed to one `write_vectored` call. Linux caps a
/// vectored write at `IOV_MAX` (1024); 64 covers every realistic flush
/// window (segments are 32 KiB soft-capped, so 64 slices is ~2 MiB) from
/// a stack array.
const MAX_IOV: usize = 64;

/// Unsent-byte threshold above which `send` sheds to the socket inline
/// instead of waiting for the next `flush` — backpressure for a peer
/// that has stopped reading.
const SEND_HIGH_WATER: usize = 256 * 1024;

/// Longest single blocking park in
/// [`Transport::recv_from_deadline`]: bounds how stale the nonblocking
/// sweep of the *other* connections can get while parked on the hinted
/// one.
const PARK_SLICE: Duration = Duration::from_millis(1);

/// Write timeout armed on every connection at creation. Nonblocking
/// sockets ignore it; it only bites for writes made while a connection
/// is parked in blocking mode, turning a peer that has stopped reading
/// into a retryable timeout instead of a hang.
const WRITE_STALL: Duration = Duration::from_secs(1);

/// Empty read sweeps before a connection counts as cold. Cold
/// connections are probed only every [`COLD_EVERY`]th sweep: an idle
/// replica's spin loop stops paying an empty `read(2)` per connection
/// per iteration, and an acceptor stops sweeping client connections
/// that never talk to it.
const COLD_AFTER: u32 = 2;

/// Sweep period for cold connections. Bounds the discovery delay for a
/// peer that starts talking again to [`COLD_EVERY`] event-loop
/// iterations — yields or naps, so microseconds when traffic resumes.
const COLD_EVERY: u32 = 4;

/// One nonblocking loopback connection to a peer process.
///
/// Receive side: the socket reads **directly into** the [`RecvBuf`]'s
/// segment tail and complete frames slice out as `Chunk`s — a frame's
/// bytes are touched once between the kernel and the codec (the old
/// scratch-buffer copy and `rbuf.drain(..rpos)` compaction are gone).
/// Send side: frames encode into the [`SendQueue`]'s pooled segments
/// and drain through vectored writes, so one syscall carries a whole
/// flush window. Both sides recycle their buffers: steady-state IO
/// allocates nothing.
struct TcpConn {
    peer: NodeId,
    stream: TcpStream,
    recv: RecvBuf,
    send: SendQueue,
    /// Socket is in blocking mode with a [`PARK_SLICE`] read timeout —
    /// the client-side wait state. Cached so steady-state parking costs
    /// zero `setsockopt` calls; any generic sweep restores nonblocking
    /// mode lazily through [`TcpConn::unpark`].
    parked: bool,
    /// Consecutive read sweeps that produced no frames; at
    /// [`COLD_AFTER`] the connection drops out of the per-iteration
    /// sweep and is probed every [`COLD_EVERY`]th pass instead.
    cold: u32,
    /// Set on EOF, IO error, or a corrupt frame; the connection is then
    /// skipped (its peer is gone or speaking garbage).
    dead: bool,
}

impl TcpConn {
    fn new(peer: NodeId, stream: TcpStream) -> std::io::Result<Self> {
        stream.set_nonblocking(true)?;
        stream.set_nodelay(true)?;
        // Inert while nonblocking; bounds writes made while parked, so a
        // stalled peer surfaces as a timed-out write instead of a hang.
        stream.set_write_timeout(Some(WRITE_STALL))?;
        Ok(TcpConn {
            peer,
            stream,
            recv: RecvBuf::new(),
            send: SendQueue::new(),
            parked: false,
            cold: 0,
            dead: false,
        })
    }

    /// Tries to push queued outbound bytes with vectored writes; returns
    /// whether any remain.
    fn try_write(&mut self) -> bool {
        while !self.send.is_empty() {
            let mut iov = [IoSlice::new(&[]); MAX_IOV];
            let n = self.send.slices(&mut iov);
            match self.stream.write_vectored(&iov[..n]) {
                Ok(0) => {
                    self.dead = true;
                    break;
                }
                Ok(written) => self.send.consume(written),
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.dead = true;
                    break;
                }
            }
        }
        if self.dead {
            self.send.clear();
        }
        !self.send.is_empty()
    }

    /// Decodes every complete buffered frame into `inbox`. The chunk a
    /// frame slices out as aliases the receive segment — the codec reads
    /// the socket's bytes in place, and the chunk drops as soon as the
    /// typed message is built, freeing the segment for the next fill. A
    /// corrupt frame or payload kills the connection: the peer is
    /// speaking a different dialect, and a framed stream cannot be
    /// resynchronised by guessing.
    fn drain_frames<M: Codec>(&mut self, inbox: &mut VecDeque<(Peer, Wire<M>)>) {
        loop {
            match self.recv.next_frame() {
                Ok(Some(frame)) => {
                    let mut r = Reader::new(&frame);
                    match decode_payload::<M>(&mut r) {
                        Ok((topic, msg)) => inbox.push_back(((self.peer, topic), msg)),
                        Err(_) => {
                            self.dead = true;
                            return;
                        }
                    }
                }
                Ok(None) => return,
                Err(_) => {
                    self.dead = true;
                    return;
                }
            }
        }
    }

    /// Parks in a blocking read for up to [`PARK_SLICE`], delivering any
    /// bytes into the receive buffer. Returns whether any arrived. The
    /// thread leaves the run queue entirely — on a shared core this is
    /// what hands the CPU to the peer that must produce the awaited
    /// bytes — and the kernel wakes it the instant data lands. The
    /// blocking-with-timeout mode *sticks* between calls (steady-state
    /// parking makes no `setsockopt` calls at all); the next generic
    /// sweep restores nonblocking mode through [`TcpConn::unpark`].
    fn park_fill(&mut self) -> bool {
        if !self.parked {
            if self.stream.set_read_timeout(Some(PARK_SLICE)).is_err()
                || self.stream.set_nonblocking(false).is_err()
            {
                return false;
            }
            self.parked = true;
        }
        let tail = self.recv.writable();
        match self.stream.read(tail) {
            Ok(0) => {
                self.dead = true;
                false
            }
            Ok(n) => {
                self.recv.commit(n);
                true
            }
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock
                        | std::io::ErrorKind::TimedOut
                        | std::io::ErrorKind::Interrupted
                ) =>
            {
                false
            }
            Err(_) => {
                self.dead = true;
                false
            }
        }
    }

    /// Restores nonblocking mode if a previous [`TcpConn::park_fill`]
    /// left the socket blocking. Cached: the common case is a no-op.
    fn unpark(&mut self) {
        if self.parked {
            if self.stream.set_nonblocking(true).is_err() {
                self.dead = true;
            }
            self.parked = false;
        }
    }

    /// Reads available bytes straight into the receive buffer's segment
    /// tail — no intermediate scratch copy.
    fn fill(&mut self) {
        self.unpark();
        loop {
            let tail = self.recv.writable();
            let cap = tail.len();
            match self.stream.read(tail) {
                Ok(0) => {
                    self.dead = true; // peer closed
                    return;
                }
                Ok(n) => {
                    self.recv.commit(n);
                    if n < cap {
                        // Short read: the socket buffer is drained;
                        // skip the WouldBlock confirmation syscall.
                        return;
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.dead = true;
                    return;
                }
            }
        }
    }
}

/// The socket transport: one loopback TCP connection per peer process,
/// all shard-group topics multiplexed over it, every message a
/// length-prefixed `onepaxos::wire` frame. `send` coalesces frames into
/// per-connection segment queues drained by vectored writes; the receive
/// path decodes frames in place from `Arc`-backed segments.
pub struct TcpTransport<M> {
    conns: Vec<TcpConn>,
    inbox: VecDeque<(Peer, Wire<M>)>,
    next_read: usize,
    /// Read-sweep sequence number; cold connections are probed on every
    /// [`COLD_EVERY`]th tick of this counter.
    sweep_seq: u32,
}

impl<M> std::fmt::Debug for TcpTransport<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TcpTransport")
            .field("peers", &self.conns.len())
            .field("inbox", &self.inbox.len())
            .finish_non_exhaustive()
    }
}

impl<M: Codec> TcpTransport<M> {
    fn new(conns: Vec<TcpConn>) -> Self {
        TcpTransport {
            conns,
            inbox: VecDeque::new(),
            next_read: 0,
            sweep_seq: 0,
        }
    }

    /// A connected pair of single-peer transports over loopback — the
    /// harness the allocation tests and codec microbenches drive the
    /// real socket path through without standing up a cluster.
    pub fn pair(a: NodeId, b: NodeId) -> std::io::Result<(Self, Self)> {
        let listener = TcpListener::bind(("127.0.0.1", 0))?;
        let addr = listener.local_addr()?;
        let dialed = Self::dial(a, b, addr)?;
        let accepted = Self::accept(&listener)?;
        Ok((Self::new(vec![dialed]), Self::new(vec![accepted])))
    }

    /// Dials `addr` and sends the hello frame identifying `me`.
    fn dial(me: NodeId, peer: NodeId, addr: SocketAddr) -> std::io::Result<TcpConn> {
        let mut stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let mut hello = Vec::with_capacity(wire::FRAME_HEADER + 2);
        wire::write_frame_with(&mut hello, |buf| me.encode(buf));
        stream.write_all(&hello)?;
        TcpConn::new(peer, stream)
    }

    /// Accepts one connection from `listener` and reads its hello frame
    /// to learn the dialer's identity. Blocking (setup phase only).
    fn accept(listener: &TcpListener) -> std::io::Result<TcpConn> {
        let (mut stream, _) = listener.accept()?;
        let mut header = [0u8; wire::FRAME_HEADER + 2];
        stream.read_exact(&mut header)?;
        let peer = match wire::read_frame(&header) {
            Ok(Some((payload, _))) => {
                let mut r = Reader::new(payload);
                NodeId::decode(&mut r)
                    .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?
            }
            _ => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    "bad hello frame",
                ))
            }
        };
        TcpConn::new(peer, stream)
    }

    /// One read pass over the connections, decoding complete frames into
    /// the inbox. Starts at the connection that last produced traffic
    /// (for a client awaiting one reply, that makes the common poll a
    /// single `read(2)`); with `stop_on_frame`, the sweep ends at the
    /// first connection that yields frames instead of reading the rest.
    /// [`pump`](Transport::pump) always sweeps every connection, so no
    /// peer starves as long as the event loop keeps iterating.
    fn read_pass(&mut self, stop_on_frame: bool) {
        self.sweep_seq = self.sweep_seq.wrapping_add(1);
        let probe_cold = self.sweep_seq.is_multiple_of(COLD_EVERY);
        let n = self.conns.len();
        for step in 0..n {
            let i = (self.next_read + step) % n;
            let conn = &mut self.conns[i];
            if conn.dead || (conn.cold >= COLD_AFTER && !probe_cold) {
                continue;
            }
            let before = self.inbox.len();
            conn.fill();
            conn.drain_frames(&mut self.inbox);
            if self.inbox.len() > before {
                conn.cold = 0;
                // Bias the next sweep toward the talkative connection.
                self.next_read = i;
                if stop_on_frame {
                    return;
                }
            } else {
                conn.cold = conn.cold.saturating_add(1);
            }
        }
    }
}

/// Decodes one frame payload: destination topic, then the message.
fn decode_payload<M: Codec>(r: &mut Reader<'_>) -> Result<(u16, Wire<M>), DecodeError> {
    let topic = u16::decode(r)?;
    let msg = Wire::<M>::decode(r)?;
    if !r.is_empty() {
        return Err(DecodeError::Trailing(r.remaining()));
    }
    Ok((topic, msg))
}

impl<M: Codec + Send> Transport<M> for TcpTransport<M> {
    fn send(&mut self, to: NodeId, topic: u16, msg: Wire<M>) {
        let Some(conn) = self.conns.iter_mut().find(|c| c.peer == to && !c.dead) else {
            return; // unknown or departed peer: drop
        };
        conn.send.push_frame(|buf| {
            topic.encode(buf);
            msg.encode(buf);
        });
        // Coalesce: the bytes ride the next `flush` (every event loop
        // iterates send → flush), so back-to-back sends share one
        // vectored syscall. Only shed inline when a peer has stopped
        // reading and the queue is growing without bound.
        if conn.send.queued_bytes() >= SEND_HIGH_WATER {
            conn.try_write();
        }
    }

    fn flush(&mut self) -> bool {
        let mut pending = false;
        for conn in &mut self.conns {
            if !conn.dead && conn.try_write() {
                pending = true;
            }
        }
        pending
    }

    fn recv(&mut self) -> Option<(Peer, Wire<M>)> {
        if self.inbox.is_empty() {
            self.read_pass(true);
        }
        self.inbox.pop_front()
    }

    fn pump(&mut self) {
        self.read_pass(false);
    }

    fn recv_ready(&mut self) -> Option<(Peer, Wire<M>)> {
        self.inbox.pop_front()
    }

    /// Socket-aware wait: same spin-then-sleep shape as the default, but
    /// each empty poll here costs a `read(2)` per connection, so the
    /// spin phase yields the core several times between polls. On a
    /// machine where replicas and clients timeshare cores, those yields
    /// are what let the replica produce the awaited reply at all —
    /// polling back-to-back would spend the shared core on empty
    /// syscalls instead.
    fn recv_deadline(&mut self, deadline: Instant) -> Option<(Peer, Wire<M>)> {
        const YIELDS_PER_POLL: u32 = 1;
        let mut spins = 0u32;
        let mut nap = IDLE_NAP_FLOOR;
        loop {
            self.flush();
            if let Some(m) = self.recv() {
                return Some(m);
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            if spins < IDLE_SPINS {
                spins += 1;
                for _ in 0..YIELDS_PER_POLL {
                    std::thread::yield_now();
                }
            } else {
                std::thread::sleep(nap.min(deadline - now));
                nap = (nap * 2).min(IDLE_NAP_CEIL);
            }
        }
    }

    /// Parks in a blocking read on `from`'s connection: zero polls, and
    /// the kernel delivers the wakeup the moment the reply's bytes land.
    /// The blocking mode persists across calls (the steady-state request
    /// → reply cycle makes exactly one write and one read syscall on the
    /// transport), and each park is a bounded [`PARK_SLICE`]; on an
    /// empty slice the other connections get a nonblocking sweep, so a
    /// message arriving from an unexpected peer is still delivered. May
    /// overshoot `deadline` by up to one slice.
    fn recv_from_deadline(&mut self, from: NodeId, deadline: Instant) -> Option<(Peer, Wire<M>)> {
        loop {
            self.flush();
            if let Some(m) = self.inbox.pop_front() {
                return Some(m);
            }
            if Instant::now() >= deadline {
                return None;
            }
            let Some(i) = self.conns.iter().position(|c| c.peer == from && !c.dead) else {
                // Hinted peer gone: fall back to the polling wait.
                return self.recv_deadline(deadline);
            };
            if self.conns[i].park_fill() {
                self.conns[i].drain_frames(&mut self.inbox);
                self.next_read = i;
            } else {
                // Empty slice: sweep the other connections so traffic
                // from unexpected peers is not starved while parked.
                for j in 0..self.conns.len() {
                    if j != i && !self.conns[j].dead {
                        self.conns[j].fill();
                        self.conns[j].drain_frames(&mut self.inbox);
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// TCP cluster wiring
// ---------------------------------------------------------------------

/// Binds one loopback listener per replica; returns listeners and their
/// addresses.
pub(crate) fn bind_replicas(r: usize) -> std::io::Result<(Vec<TcpListener>, Vec<SocketAddr>)> {
    let mut listeners = Vec::with_capacity(r);
    let mut addrs = Vec::with_capacity(r);
    for _ in 0..r {
        let l = TcpListener::bind(("127.0.0.1", 0))?;
        addrs.push(l.local_addr()?);
        listeners.push(l);
    }
    Ok((listeners, addrs))
}

/// Builds replica `i`'s transport: dial every lower-numbered replica
/// (deterministic initiator rule — exactly one connection per pair),
/// then accept the expected number of inbound connections (higher
/// replicas, clients, and the control endpoint).
pub(crate) fn replica_transport<M: Codec>(
    me: NodeId,
    listener: &TcpListener,
    lower: &[(NodeId, SocketAddr)],
    expect_accepts: usize,
) -> std::io::Result<TcpTransport<M>> {
    let mut conns = Vec::with_capacity(lower.len() + expect_accepts);
    for &(peer, addr) in lower {
        conns.push(TcpTransport::<M>::dial(me, peer, addr)?);
    }
    for _ in 0..expect_accepts {
        conns.push(TcpTransport::<M>::accept(listener)?);
    }
    Ok(TcpTransport::new(conns))
}

/// Builds a client-side transport (clients and the control endpoint):
/// dial every replica.
pub(crate) fn client_transport<M: Codec>(
    me: NodeId,
    replicas: &[(NodeId, SocketAddr)],
) -> std::io::Result<TcpTransport<M>> {
    let mut conns = Vec::with_capacity(replicas.len());
    for &(peer, addr) in replicas {
        conns.push(TcpTransport::<M>::dial(me, peer, addr)?);
    }
    Ok(TcpTransport::new(conns))
}
