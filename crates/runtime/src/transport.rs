//! Pluggable IO boundary for the threaded runtime: the replica loop and
//! the client handles speak to a [`Transport`], never to a queue or a
//! socket directly, so the *same* engine loop runs behind shared memory
//! ([`MemTransport`], qc-channel SPSC queues) or real sockets
//! ([`TcpTransport`], loopback TCP with the `onepaxos::wire` framed
//! binary codec).
//!
//! # Addressing
//!
//! A destination is a [`Peer`] — `(NodeId, topic)`. The topic is the
//! shard-group channel: the shared-memory transport maps each topic to
//! its own SPSC queue pair (preserving the one-queue-per-group layout of
//! §6.1), while TCP multiplexes all topics over one connection per
//! process pair and carries the topic inside each frame.
//!
//! # TCP frame layout
//!
//! Every TCP message is one `onepaxos::wire` frame (magic `0xC51D`,
//! version, length — see [`onepaxos::wire::write_frame`]) whose payload
//! is the destination topic (`u16` LE) followed by the
//! [`Codec`]-encoded [`Wire`] message. The first frame on every
//! connection is a *hello* whose payload is the dialing process's
//! [`NodeId`], which is how the accepting side learns who is talking.

use std::collections::{BTreeMap, VecDeque};
use std::io::{IoSlice, Read as _, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::time::{Duration, Instant};

use onepaxos::wire::{self, Codec, DecodeError, Reader, RecvBuf, SendQueue};
use onepaxos::NodeId;
use qc_channel::{Mailbox, Receiver, Sender};

use crate::wire::Wire;

/// A peer address on the wire: who, on which shard-group topic.
pub type Peer = (NodeId, u16);

/// Counters a transport keeps about its own connection lifecycle,
/// surfaced so deployments can observe failure handling (the replica
/// loop republishes them into [`crate::NodeMetrics`]).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct TransportStats {
    /// Connections re-established after a failure: successful redials
    /// on the dialer side, replacement accepts on the listener side.
    pub reconnects: u64,
    /// Connections torn down for any reason — EOF, IO error, corrupt
    /// frame, or injected kill.
    pub conn_kills: u64,
    /// The subset of `conn_kills` caused by an undecodable frame or
    /// payload (a framed stream cannot be resynchronised by guessing,
    /// so the connection is cut and redialed from scratch).
    pub corrupt_frames: u64,
}

/// The IO boundary the replica loop and client handles are written
/// against.
///
/// # Delivery contract
///
/// The engines assume exactly what the paper's in-machine channels give
/// them, no more:
///
/// * **Per-peer FIFO order** — messages from one process to another on
///   one topic arrive in send order. Order across topics or across
///   senders is unspecified.
/// * **At-most-once delivery** — a transport never duplicates a
///   message. It may *drop* messages (a full queue whose sender exits, a
///   closed socket): every protocol in the tree already tolerates loss
///   through retransmission timers, but none tolerates duplication of
///   its client requests without the engines' dedup records.
/// * **Non-blocking** — [`send`](Transport::send) buffers instead of
///   blocking when the link is busy ([`flush`](Transport::flush)
///   retries), and [`recv`](Transport::recv) returns `None` instead of
///   waiting, so one slow peer can never wedge a replica's event loop.
/// * **Failures are transient** — a broken link (EOF, IO error, corrupt
///   frame) is a *blip*, never a permanent partition: the transport
///   repairs it in the background (redial with capped exponential
///   backoff on the dialer side, replacement accepts on the listener
///   side) while the frames in flight across the gap are simply lost —
///   which the may-drop/at-most-once contract above already allows, so
///   reconnection is invisible to the protocols beyond a retransmission
///   timeout. This mirrors the paper's failure model: "crash" models
///   *slow* cores and suspicion is never permanent (§1 fn. 3, the
///   `onepaxos::failure::FailureDetector` contract).
pub trait Transport<M>: Send {
    /// Queues `msg` for `(to, topic)`. Never blocks: if the link is
    /// full the message is buffered and retried by [`flush`]
    /// (Transport::flush). Messages to unknown peers are dropped.
    fn send(&mut self, to: NodeId, topic: u16, msg: Wire<M>);

    /// Retries buffered sends. Returns `true` while anything remains
    /// buffered.
    fn flush(&mut self) -> bool;

    /// Non-blocking receive: the next inbound message and its sender,
    /// or `None` if nothing is waiting.
    fn recv(&mut self) -> Option<(Peer, Wire<M>)>;

    /// Sweeps ready inbound traffic into the transport's local inbox in
    /// one pass, for transports whose `recv` otherwise pays IO per call.
    /// An event loop calls this once per iteration and then drains with
    /// [`recv_ready`](Transport::recv_ready) — on TCP that is one
    /// `read(2)` sweep per iteration instead of one per message miss.
    /// Default: no-op (queue transports have nothing to sweep).
    fn pump(&mut self) {}

    /// Pops a message already swept in by [`pump`](Transport::pump)
    /// without doing IO. Default: plain [`recv`](Transport::recv), which
    /// is correct for transports where receiving never syscalls.
    fn recv_ready(&mut self) -> Option<(Peer, Wire<M>)> {
        self.recv()
    }

    /// Blocking receive with a deadline: flushes and polls until a
    /// message arrives or `deadline` passes.
    ///
    /// The default implementation spins briefly (a message in flight on
    /// loopback arrives within microseconds) and then backs off into
    /// escalating sleeps, so a caller parked on a long deadline
    /// deschedules instead of burning its core polling — on a machine
    /// with fewer cores than threads, a spinning waiter would steal the
    /// very cycles the replica needs to produce the awaited reply.
    fn recv_deadline(&mut self, deadline: Instant) -> Option<(Peer, Wire<M>)> {
        let mut spins = 0u32;
        let mut nap = IDLE_NAP_FLOOR;
        loop {
            self.flush();
            if let Some(m) = self.recv() {
                return Some(m);
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            if spins < IDLE_SPINS {
                spins += 1;
                std::thread::yield_now();
            } else {
                std::thread::sleep(nap.min(deadline - now));
                nap = (nap * 2).min(IDLE_NAP_CEIL);
            }
        }
    }

    /// [`recv_deadline`](Transport::recv_deadline) with a sender hint:
    /// the caller has just issued a request to `from` and expects the
    /// answer from there (a synchronous client awaiting its reply). A
    /// socket transport parks in a blocking read on that peer's
    /// connection — the kernel wakes it the moment the reply's bytes
    /// arrive, with zero empty polls — instead of spinning. Messages
    /// from other peers are still delivered (the hint is an
    /// optimisation, not a filter). Default: ignore the hint.
    fn recv_from_deadline(&mut self, _from: NodeId, deadline: Instant) -> Option<(Peer, Wire<M>)> {
        self.recv_deadline(deadline)
    }

    /// The transport's connection-lifecycle counters. Queue transports
    /// have no connections to lose; the default is all-zero.
    fn stats(&self) -> TransportStats {
        TransportStats::default()
    }

    /// Fault injection: violently severs the link to `peer` as if the
    /// connection died, exercising the transport's own repair path
    /// (redial with backoff, or a replacement accept from the peer).
    /// Frames in flight are lost — exactly what the delivery contract
    /// already permits. Default: no-op (queue links cannot break).
    fn kill_peer_link(&mut self, _peer: NodeId) {}
}

/// SplitMix64 step — the deterministic PRNG behind reconnect/retry
/// jitter and the seeded fault schedules (same generator as the shard
/// router's key hash).
pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Polls before the first sleep in [`Transport::recv_deadline`]. Covers
/// the common case — a reply already crossing loopback — without ever
/// descheduling.
pub const IDLE_SPINS: u32 = 64;

/// Narrows this thread's kernel timer slack to 1 µs, best-effort.
///
/// Linux pads every `nanosleep` by the thread's timer slack — 50 µs by
/// default — to coalesce wakeups. The idle backoffs here sleep in the
/// 5–250 µs range, and a 50 µs pad on a 5 µs nap turns the backoff into
/// a latency cliff (most visible when replicas and clients timeshare a
/// core and wake each other constantly). Threads inherit the value from
/// their spawner, so the cluster builders call this once on the spawning
/// thread before starting replica threads. Failure (procfs unavailable,
/// old kernel) is ignored: the backoff still works, just coarser.
pub(crate) fn tighten_timer_slack() {
    if std::fs::write("/proc/thread-self/timerslack_ns", "1000").is_err() {
        let _ = std::fs::write("/proc/self/timerslack_ns", "1000");
    }
}

/// First sleep once the spin budget is exhausted.
pub const IDLE_NAP_FLOOR: Duration = Duration::from_micros(5);

/// Ceiling on the escalating idle sleep: long enough to drop idle CPU to
/// noise, short enough that no protocol timer (hundreds of µs and up)
/// misses its beat by more than this.
pub const IDLE_NAP_CEIL: Duration = Duration::from_micros(250);

// ---------------------------------------------------------------------
// Shared memory
// ---------------------------------------------------------------------

/// The qc-channel transport: one lock-free SPSC queue per direction per
/// `(peer, topic)` link — exactly the runtime's original IO layer, now
/// behind the trait. Overflow on a full 7-slot queue is buffered at the
/// sender so the event loop never blocks.
pub struct MemTransport<M> {
    senders: BTreeMap<Peer, Sender<Wire<M>>>,
    backlog: BTreeMap<Peer, VecDeque<Wire<M>>>,
    mailbox: Mailbox<Peer, Wire<M>>,
}

impl<M> MemTransport<M> {
    /// A connected pair of single-peer shared-memory transports with
    /// `topics` queue pairs per direction — the deterministic harness
    /// the seeded fault-injection tests drive without standing up a
    /// cluster (the queue analogue of [`TcpTransport::pair`]).
    pub fn pair(a: NodeId, b: NodeId, topics: u16) -> (Self, Self) {
        let mut a_send = BTreeMap::new();
        let mut b_send = BTreeMap::new();
        let mut a_recv = Vec::new();
        let mut b_recv = Vec::new();
        for t in 0..topics {
            let (tx, rx) = qc_channel::spsc::channel(qc_channel::DEFAULT_SLOTS);
            a_send.insert((b, t), tx);
            b_recv.push(((a, t), rx));
            let (tx, rx) = qc_channel::spsc::channel(qc_channel::DEFAULT_SLOTS);
            b_send.insert((a, t), tx);
            a_recv.push(((b, t), rx));
        }
        (Self::new(a_send, a_recv), Self::new(b_send, b_recv))
    }

    /// Builds the transport from one process's half of the mesh.
    pub(crate) fn new(
        senders: BTreeMap<Peer, Sender<Wire<M>>>,
        receivers: Vec<(Peer, Receiver<Wire<M>>)>,
    ) -> Self {
        let mut mailbox = Mailbox::new();
        for (peer, rx) in receivers {
            mailbox.add_peer(peer, rx);
        }
        MemTransport {
            senders,
            backlog: BTreeMap::new(),
            mailbox,
        }
    }
}

impl<M> std::fmt::Debug for MemTransport<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MemTransport")
            .field("peers", &self.senders.len())
            .finish_non_exhaustive()
    }
}

impl<M: Send> Transport<M> for MemTransport<M> {
    fn send(&mut self, to: NodeId, topic: u16, msg: Wire<M>) {
        let Some(tx) = self.senders.get(&(to, topic)) else {
            return; // unknown peer: drop (e.g. client already gone)
        };
        let back = self.backlog.entry((to, topic)).or_default();
        if back.is_empty() {
            if let Err(qc_channel::Full(m)) = tx.try_send(msg) {
                back.push_back(m);
            }
        } else {
            back.push_back(msg);
        }
    }

    fn flush(&mut self) -> bool {
        let mut pending = false;
        for (addr, q) in self.backlog.iter_mut() {
            let Some(tx) = self.senders.get(addr) else {
                q.clear();
                continue;
            };
            while let Some(m) = q.pop_front() {
                if let Err(qc_channel::Full(m)) = tx.try_send(m) {
                    q.push_front(m);
                    pending = true;
                    break;
                }
            }
        }
        pending
    }

    fn recv(&mut self) -> Option<(Peer, Wire<M>)> {
        self.mailbox.poll()
    }
}

// ---------------------------------------------------------------------
// TCP
// ---------------------------------------------------------------------

/// Most [`IoSlice`]s handed to one `write_vectored` call. Linux caps a
/// vectored write at `IOV_MAX` (1024); 64 covers every realistic flush
/// window (segments are 32 KiB soft-capped, so 64 slices is ~2 MiB) from
/// a stack array.
const MAX_IOV: usize = 64;

/// Unsent-byte threshold above which `send` sheds to the socket inline
/// instead of waiting for the next `flush` — backpressure for a peer
/// that has stopped reading.
const SEND_HIGH_WATER: usize = 256 * 1024;

/// Longest single blocking park in
/// [`Transport::recv_from_deadline`]: bounds how stale the nonblocking
/// sweep of the *other* connections can get while parked on the hinted
/// one.
const PARK_SLICE: Duration = Duration::from_millis(1);

/// Write timeout armed on every connection at creation. Nonblocking
/// sockets ignore it; it only bites for writes made while a connection
/// is parked in blocking mode, turning a peer that has stopped reading
/// into a retryable timeout instead of a hang.
const WRITE_STALL: Duration = Duration::from_secs(1);

/// Empty read sweeps before a connection counts as cold. Cold
/// connections are probed only every [`COLD_EVERY`]th sweep: an idle
/// replica's spin loop stops paying an empty `read(2)` per connection
/// per iteration, and an acceptor stops sweeping client connections
/// that never talk to it.
const COLD_AFTER: u32 = 2;

/// Sweep period for cold connections. Bounds the discovery delay for a
/// peer that starts talking again to [`COLD_EVERY`] event-loop
/// iterations — yields or naps, so microseconds when traffic resumes.
const COLD_EVERY: u32 = 4;

/// First redial delay after a connection dies. Loopback connects are
/// microseconds, so the first attempt is nearly immediate; the delay
/// exists to stop a hard-down peer from turning the event loop into a
/// connect-storm.
const RECONNECT_BASE: Duration = Duration::from_micros(500);

/// Ceiling on the exponential redial backoff: a peer that stays down
/// costs one refused `connect(2)` per this interval, and a peer coming
/// back is discovered within it.
const RECONNECT_CAP: Duration = Duration::from_millis(64);

/// Messages buffered per reconnecting peer while its link is being
/// repaired; they ride the fresh connection the moment the redial
/// lands. Overflow drops the oldest — a legal drop under the delivery
/// contract, and the newest traffic (retransmissions, shutdown fan-out)
/// is what matters after a gap.
const RECONNECT_PENDING_CAP: usize = 64;

/// Patience for the hello frame on a runtime-accepted connection. The
/// dialer writes its hello before the connect is even observable here,
/// so on loopback this never waits; the bound protects the event loop
/// from a rogue dialer that connects and says nothing.
const HELLO_TIMEOUT: Duration = Duration::from_millis(250);

/// One nonblocking loopback connection to a peer process.
///
/// Receive side: the socket reads **directly into** the [`RecvBuf`]'s
/// segment tail and complete frames slice out as `Chunk`s — a frame's
/// bytes are touched once between the kernel and the codec (the old
/// scratch-buffer copy and `rbuf.drain(..rpos)` compaction are gone).
/// Send side: frames encode into the [`SendQueue`]'s pooled segments
/// and drain through vectored writes, so one syscall carries a whole
/// flush window. Both sides recycle their buffers: steady-state IO
/// allocates nothing.
struct TcpConn {
    peer: NodeId,
    stream: TcpStream,
    recv: RecvBuf,
    send: SendQueue,
    /// Socket is in blocking mode with a [`PARK_SLICE`] read timeout —
    /// the client-side wait state. Cached so steady-state parking costs
    /// zero `setsockopt` calls; any generic sweep restores nonblocking
    /// mode lazily through [`TcpConn::unpark`].
    parked: bool,
    /// Consecutive read sweeps that produced no frames; at
    /// [`COLD_AFTER`] the connection drops out of the per-iteration
    /// sweep and is probed every [`COLD_EVERY`]th pass instead.
    cold: u32,
    /// Set on EOF, IO error, or a corrupt frame. A dead connection is
    /// *terminal for the socket, not for the peer pair*: the next
    /// [`TcpTransport::maintain`] pass reaps the slot and either
    /// schedules a redial (dialer side) or waits for the peer to redial
    /// through the listener (acceptor side).
    dead: bool,
    /// The death was an undecodable frame rather than an IO failure —
    /// counted separately in [`TransportStats::corrupt_frames`].
    corrupt: bool,
}

impl TcpConn {
    fn new(peer: NodeId, stream: TcpStream) -> std::io::Result<Self> {
        stream.set_nonblocking(true)?;
        stream.set_nodelay(true)?;
        // Inert while nonblocking; bounds writes made while parked, so a
        // stalled peer surfaces as a timed-out write instead of a hang.
        stream.set_write_timeout(Some(WRITE_STALL))?;
        Ok(TcpConn {
            peer,
            stream,
            recv: RecvBuf::new(),
            send: SendQueue::new(),
            parked: false,
            cold: 0,
            dead: false,
            corrupt: false,
        })
    }

    /// Tries to push queued outbound bytes with vectored writes; returns
    /// whether any remain.
    fn try_write(&mut self) -> bool {
        while !self.send.is_empty() {
            let mut iov = [IoSlice::new(&[]); MAX_IOV];
            let n = self.send.slices(&mut iov);
            match self.stream.write_vectored(&iov[..n]) {
                Ok(0) => {
                    self.dead = true;
                    break;
                }
                Ok(written) => self.send.consume(written),
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.dead = true;
                    break;
                }
            }
        }
        if self.dead {
            self.send.clear();
        }
        !self.send.is_empty()
    }

    /// Decodes every complete buffered frame into `inbox`. The chunk a
    /// frame slices out as aliases the receive segment — the codec reads
    /// the socket's bytes in place, and the chunk drops as soon as the
    /// typed message is built, freeing the segment for the next fill. A
    /// corrupt frame or payload kills the connection (a framed stream
    /// cannot be resynchronised by guessing); the reconnect lifecycle
    /// then re-establishes the peer pair from a clean stream, so one
    /// garbled frame costs a retransmission window, not the peer.
    fn drain_frames<M: Codec>(&mut self, inbox: &mut VecDeque<(Peer, Wire<M>)>) {
        loop {
            match self.recv.next_frame() {
                Ok(Some(frame)) => {
                    let mut r = Reader::new(&frame);
                    match decode_payload::<M>(&mut r) {
                        Ok((topic, msg)) => inbox.push_back(((self.peer, topic), msg)),
                        Err(_) => {
                            self.dead = true;
                            self.corrupt = true;
                            return;
                        }
                    }
                }
                Ok(None) => return,
                Err(_) => {
                    self.dead = true;
                    self.corrupt = true;
                    return;
                }
            }
        }
    }

    /// Parks in a blocking read for up to [`PARK_SLICE`], delivering any
    /// bytes into the receive buffer. Returns whether any arrived. The
    /// thread leaves the run queue entirely — on a shared core this is
    /// what hands the CPU to the peer that must produce the awaited
    /// bytes — and the kernel wakes it the instant data lands. The
    /// blocking-with-timeout mode *sticks* between calls (steady-state
    /// parking makes no `setsockopt` calls at all); the next generic
    /// sweep restores nonblocking mode through [`TcpConn::unpark`].
    fn park_fill(&mut self) -> bool {
        if !self.parked {
            if self.stream.set_read_timeout(Some(PARK_SLICE)).is_err()
                || self.stream.set_nonblocking(false).is_err()
            {
                return false;
            }
            self.parked = true;
        }
        let tail = self.recv.writable();
        match self.stream.read(tail) {
            Ok(0) => {
                self.dead = true;
                false
            }
            Ok(n) => {
                self.recv.commit(n);
                true
            }
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock
                        | std::io::ErrorKind::TimedOut
                        | std::io::ErrorKind::Interrupted
                ) =>
            {
                false
            }
            Err(_) => {
                self.dead = true;
                false
            }
        }
    }

    /// Restores nonblocking mode if a previous [`TcpConn::park_fill`]
    /// left the socket blocking. Cached: the common case is a no-op.
    fn unpark(&mut self) {
        if self.parked {
            if self.stream.set_nonblocking(true).is_err() {
                self.dead = true;
            }
            self.parked = false;
        }
    }

    /// Reads available bytes straight into the receive buffer's segment
    /// tail — no intermediate scratch copy.
    fn fill(&mut self) {
        self.unpark();
        loop {
            let tail = self.recv.writable();
            let cap = tail.len();
            match self.stream.read(tail) {
                Ok(0) => {
                    self.dead = true; // peer closed
                    return;
                }
                Ok(n) => {
                    self.recv.commit(n);
                    if n < cap {
                        // Short read: the socket buffer is drained;
                        // skip the WouldBlock confirmation syscall.
                        return;
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.dead = true;
                    return;
                }
            }
        }
    }
}

/// Dialer-side reconnect state for one peer whose connection died:
/// capped exponential backoff between redial attempts, plus a bounded
/// buffer of frames sent across the gap that will ride the fresh
/// connection (anything beyond the cap is dropped, as the delivery
/// contract allows).
struct Redial<M> {
    peer: NodeId,
    addr: SocketAddr,
    next_attempt: Instant,
    attempt: u32,
    pending: VecDeque<(u16, Wire<M>)>,
}

/// The socket transport: one loopback TCP connection per peer process,
/// all shard-group topics multiplexed over it, every message a
/// length-prefixed `onepaxos::wire` frame. `send` coalesces frames into
/// per-connection segment queues drained by vectored writes; the receive
/// path decodes frames in place from `Arc`-backed segments.
///
/// # Connection lifecycle
///
/// A connection is **live** until EOF, an IO error, a corrupt frame, or
/// an injected [`Transport::kill_peer_link`] marks it dead; the next
/// maintenance pass (every [`Transport::flush`]/[`Transport::pump`])
/// reaps the slot — the conn table never accumulates a graveyard. What
/// happens next depends on which side of the original handshake this
/// endpoint was:
///
/// * **Dialer** (this endpoint connected): the peer moves to a
///   **backoff** state and is redialed with capped exponential backoff
///   plus jitter ([`RECONNECT_BASE`] → [`RECONNECT_CAP`]), re-running
///   the hello-frame handshake. Frames sent meanwhile are buffered (up
///   to [`RECONNECT_PENDING_CAP`]) and ride the fresh connection.
/// * **Acceptor** (the peer connected): the slot is simply purged; the
///   peer redials through this endpoint's listener, and the accept
///   sweep installs the replacement — superseding any stale slot for
///   that peer.
///
/// Frames lost across the gap are covered by the trait's may-drop
/// contract; the protocols' retransmission timers absorb the blip.
pub struct TcpTransport<M> {
    /// This endpoint's identity, sent in the hello frame on every
    /// (re)dial.
    me: NodeId,
    conns: Vec<TcpConn>,
    inbox: VecDeque<(Peer, Wire<M>)>,
    next_read: usize,
    /// Read-sweep sequence number; cold connections are probed on every
    /// [`COLD_EVERY`]th tick of this counter.
    sweep_seq: u32,
    /// Peers this endpoint dialed and therefore owns reconnection for.
    dial_addrs: BTreeMap<NodeId, SocketAddr>,
    /// Peers currently between connections, waiting on a redial.
    backoff: Vec<Redial<M>>,
    /// Accept side of the reconnect lifecycle: present on replica
    /// transports, polled nonblockingly by the maintenance pass so a
    /// peer (or a restarted replica's clients) can re-establish at any
    /// time — not just during setup.
    listener: Option<TcpListener>,
    stats: TransportStats,
    /// Jitter state for redial backoff (seeded from `me`, so the
    /// schedule is deterministic per node).
    rng: u64,
}

impl<M> std::fmt::Debug for TcpTransport<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TcpTransport")
            .field("me", &self.me)
            .field("peers", &self.conns.len())
            .field("backoff", &self.backoff.len())
            .field("inbox", &self.inbox.len())
            .finish_non_exhaustive()
    }
}

impl<M: Codec> TcpTransport<M> {
    fn new(
        me: NodeId,
        conns: Vec<TcpConn>,
        dial_addrs: BTreeMap<NodeId, SocketAddr>,
        listener: Option<TcpListener>,
    ) -> Self {
        if let Some(l) = &listener {
            // The blocking setup phase is over; from here on the accept
            // sweep must never stall the event loop.
            let _ = l.set_nonblocking(true);
        }
        let mut t = TcpTransport {
            me,
            conns,
            inbox: VecDeque::new(),
            next_read: 0,
            sweep_seq: 0,
            dial_addrs,
            backoff: Vec::new(),
            listener,
            stats: TransportStats::default(),
            rng: 0x5EED ^ ((me.0 as u64) << 17),
        };
        // Dial-owned peers without a live connection start in backoff,
        // due immediately — how a restarted replica rejoins its mesh.
        let now = Instant::now();
        let missing: Vec<(NodeId, SocketAddr)> = t
            .dial_addrs
            .iter()
            .filter(|(p, _)| !t.conns.iter().any(|c| c.peer == **p))
            .map(|(&p, &a)| (p, a))
            .collect();
        for (peer, addr) in missing {
            t.backoff.push(Redial {
                peer,
                addr,
                next_attempt: now,
                attempt: 0,
                pending: VecDeque::new(),
            });
        }
        t
    }

    /// A connected pair of single-peer transports over loopback — the
    /// harness the allocation, reconnect and fault tests drive the real
    /// socket path through without standing up a cluster. The first
    /// transport is the dialer (it owns redial for the pair), the
    /// second the acceptor (it keeps the listener, so the pair heals
    /// after either side's connection dies).
    pub fn pair(a: NodeId, b: NodeId) -> std::io::Result<(Self, Self)> {
        let listener = TcpListener::bind(("127.0.0.1", 0))?;
        let addr = listener.local_addr()?;
        let dialed = Self::dial(a, b, addr)?;
        let accepted = Self::accept(&listener)?;
        let mut dial_addrs = BTreeMap::new();
        dial_addrs.insert(b, addr);
        Ok((
            Self::new(a, vec![dialed], dial_addrs, None),
            Self::new(b, vec![accepted], BTreeMap::new(), Some(listener)),
        ))
    }

    /// Dials `addr` and sends the hello frame identifying `me`.
    fn dial(me: NodeId, peer: NodeId, addr: SocketAddr) -> std::io::Result<TcpConn> {
        let mut stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let mut hello = Vec::with_capacity(wire::FRAME_HEADER + 2);
        wire::write_frame_with(&mut hello, |buf| me.encode(buf));
        stream.write_all(&hello)?;
        TcpConn::new(peer, stream)
    }

    /// Accepts one connection from `listener` and reads its hello frame
    /// to learn the dialer's identity. Blocks for at most
    /// [`HELLO_TIMEOUT`] on the hello read — during setup the dialer's
    /// hello is already in flight, and at runtime (a reconnecting peer)
    /// it was written before the connect was observable here.
    fn accept(listener: &TcpListener) -> std::io::Result<TcpConn> {
        let (mut stream, _) = listener.accept()?;
        stream.set_read_timeout(Some(HELLO_TIMEOUT))?;
        let mut header = [0u8; wire::FRAME_HEADER + 2];
        stream.read_exact(&mut header)?;
        let peer = match wire::read_frame(&header) {
            Ok(Some((payload, _))) => {
                let mut r = Reader::new(payload);
                NodeId::decode(&mut r)
                    .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?
            }
            _ => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    "bad hello frame",
                ))
            }
        };
        TcpConn::new(peer, stream)
    }

    /// One read pass over the connections, decoding complete frames into
    /// the inbox. Starts at the connection that last produced traffic
    /// (for a client awaiting one reply, that makes the common poll a
    /// single `read(2)`); with `stop_on_frame`, the sweep ends at the
    /// first connection that yields frames instead of reading the rest.
    /// [`pump`](Transport::pump) always sweeps every connection, so no
    /// peer starves as long as the event loop keeps iterating.
    fn read_pass(&mut self, stop_on_frame: bool) {
        self.sweep_seq = self.sweep_seq.wrapping_add(1);
        let probe_cold = self.sweep_seq.is_multiple_of(COLD_EVERY);
        let n = self.conns.len();
        for step in 0..n {
            let i = (self.next_read + step) % n;
            let conn = &mut self.conns[i];
            if conn.dead || (conn.cold >= COLD_AFTER && !probe_cold) {
                continue;
            }
            let before = self.inbox.len();
            conn.fill();
            conn.drain_frames(&mut self.inbox);
            if self.inbox.len() > before {
                conn.cold = 0;
                // Bias the next sweep toward the talkative connection.
                self.next_read = i;
                if stop_on_frame {
                    return;
                }
            } else {
                conn.cold = conn.cold.saturating_add(1);
            }
        }
    }

    /// The connection-lifecycle maintenance pass, run from every
    /// [`flush`](Transport::flush) and [`pump`](Transport::pump):
    /// reaps dead connection slots, fires due redials, and sweeps the
    /// listener for inbound (re)connections. With nothing broken this
    /// is a scan of the (tiny) conn table plus one nonblocking
    /// `accept(2)` on listener-owning transports — no allocation, no
    /// time syscalls beyond the ones the event loop already makes.
    fn maintain(&mut self) {
        // Reap: a dead slot either moves its peer to backoff (we dialed
        // it) or is simply dropped (the peer will redial our listener).
        if self.conns.iter().any(|c| c.dead) {
            let now = Instant::now();
            let mut i = 0;
            while i < self.conns.len() {
                if !self.conns[i].dead {
                    i += 1;
                    continue;
                }
                let conn = self.conns.swap_remove(i);
                self.stats.conn_kills += 1;
                if conn.corrupt {
                    self.stats.corrupt_frames += 1;
                }
                if let Some(&addr) = self.dial_addrs.get(&conn.peer) {
                    if !self.backoff.iter().any(|r| r.peer == conn.peer) {
                        self.backoff.push(Redial {
                            peer: conn.peer,
                            addr,
                            next_attempt: now,
                            attempt: 0,
                            pending: VecDeque::new(),
                        });
                    }
                }
            }
            self.next_read = 0;
        }
        // Redial: each due entry gets one connect attempt per pass.
        if !self.backoff.is_empty() {
            let now = Instant::now();
            let me = self.me;
            let mut i = 0;
            while i < self.backoff.len() {
                if self.backoff[i].next_attempt > now {
                    i += 1;
                    continue;
                }
                let (peer, addr) = (self.backoff[i].peer, self.backoff[i].addr);
                match Self::dial(me, peer, addr) {
                    Ok(mut conn) => {
                        let mut r = self.backoff.swap_remove(i);
                        for (topic, msg) in r.pending.drain(..) {
                            conn.send.push_frame(|buf| {
                                topic.encode(buf);
                                msg.encode(buf);
                            });
                        }
                        self.conns.push(conn);
                        self.stats.reconnects += 1;
                    }
                    Err(_) => {
                        let attempt = self.backoff[i].attempt.saturating_add(1);
                        let delay = self.redial_delay(attempt);
                        let r = &mut self.backoff[i];
                        r.attempt = attempt;
                        r.next_attempt = now + delay;
                        i += 1;
                    }
                }
            }
        }
        // Accept: install inbound (re)connections, superseding any
        // stale slot for the same peer.
        if let Some(listener) = &self.listener {
            loop {
                match Self::accept(listener) {
                    Ok(conn) => {
                        if let Some(stale) = self.conns.iter().position(|c| c.peer == conn.peer) {
                            self.conns.swap_remove(stale);
                            self.next_read = 0;
                        }
                        // A redialing peer supersedes our own backoff
                        // entry for it too (both sides may dial in a
                        // symmetric pair harness).
                        self.backoff.retain(|r| r.peer != conn.peer);
                        self.conns.push(conn);
                        self.stats.reconnects += 1;
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                    // A dialer that connected and hung up (or spoke a
                    // bad hello): ignore it and keep sweeping.
                    Err(_) => break,
                }
            }
        }
    }

    /// Capped exponential backoff with deterministic jitter: attempt
    /// `n` waits `BASE << n` (capped), plus up to 25% more so a mesh of
    /// dialers does not thunder back in lockstep.
    fn redial_delay(&mut self, attempt: u32) -> Duration {
        let exp = RECONNECT_BASE.saturating_mul(1u32 << attempt.min(8).saturating_sub(1));
        let capped = exp.min(RECONNECT_CAP);
        let jitter = capped.mul_f64((splitmix64(&mut self.rng) % 256) as f64 / 1024.0);
        capped + jitter
    }

    /// Live connection count — the reconnect lifecycle's invariant is
    /// that this stays bounded by the peer count no matter how many
    /// times links die (no graveyard of terminal slots).
    pub fn conn_count(&self) -> usize {
        self.conns.len()
    }

    /// Peers currently between connections, waiting on a redial.
    pub fn backoff_count(&self) -> usize {
        self.backoff.len()
    }

    /// Test hook: queues a syntactically valid frame whose payload does
    /// not decode, so the receiving end exercises its corrupt-frame
    /// kill-and-reconnect path.
    #[doc(hidden)]
    pub fn inject_corrupt_frame(&mut self, to: NodeId) {
        if let Some(conn) = self.conns.iter_mut().find(|c| c.peer == to && !c.dead) {
            conn.send.push_frame(|buf| buf.push(0xFF));
        }
    }
}

/// Decodes one frame payload: destination topic, then the message.
fn decode_payload<M: Codec>(r: &mut Reader<'_>) -> Result<(u16, Wire<M>), DecodeError> {
    let topic = u16::decode(r)?;
    let msg = Wire::<M>::decode(r)?;
    if !r.is_empty() {
        return Err(DecodeError::Trailing(r.remaining()));
    }
    Ok((topic, msg))
}

impl<M: Codec + Send> Transport<M> for TcpTransport<M> {
    fn send(&mut self, to: NodeId, topic: u16, msg: Wire<M>) {
        let Some(conn) = self.conns.iter_mut().find(|c| c.peer == to && !c.dead) else {
            // Between connections: buffer a bounded window of traffic to
            // ride the redial. Anything else (unknown peer, acceptor
            // side waiting on the peer to redial) is dropped, as the
            // delivery contract allows.
            if let Some(r) = self.backoff.iter_mut().find(|r| r.peer == to) {
                r.pending.push_back((topic, msg));
                if r.pending.len() > RECONNECT_PENDING_CAP {
                    r.pending.pop_front();
                }
            }
            return;
        };
        conn.send.push_frame(|buf| {
            topic.encode(buf);
            msg.encode(buf);
        });
        // Coalesce: the bytes ride the next `flush` (every event loop
        // iterates send → flush), so back-to-back sends share one
        // vectored syscall. Only shed inline when a peer has stopped
        // reading and the queue is growing without bound.
        if conn.send.queued_bytes() >= SEND_HIGH_WATER {
            conn.try_write();
        }
    }

    fn flush(&mut self) -> bool {
        self.maintain();
        let mut pending = false;
        for conn in &mut self.conns {
            if !conn.dead && conn.try_write() {
                pending = true;
            }
        }
        // Messages parked behind a redial still count as unflushed work,
        // so bounded drain loops (shutdown fan-out) keep driving the
        // reconnect instead of declaring the queue empty.
        pending || self.backoff.iter().any(|r| !r.pending.is_empty())
    }

    fn recv(&mut self) -> Option<(Peer, Wire<M>)> {
        if self.inbox.is_empty() {
            self.read_pass(true);
        }
        self.inbox.pop_front()
    }

    fn pump(&mut self) {
        self.maintain();
        self.read_pass(false);
    }

    fn recv_ready(&mut self) -> Option<(Peer, Wire<M>)> {
        self.inbox.pop_front()
    }

    fn stats(&self) -> TransportStats {
        self.stats
    }

    /// Severs the connection to `peer` at the socket (both directions,
    /// so the peer sees EOF immediately too) and lets the maintenance
    /// pass drive the repair — redial from whichever side dialed.
    fn kill_peer_link(&mut self, peer: NodeId) {
        if let Some(conn) = self.conns.iter_mut().find(|c| c.peer == peer && !c.dead) {
            let _ = conn.stream.shutdown(std::net::Shutdown::Both);
            conn.dead = true;
        }
        self.maintain();
    }

    /// Socket-aware wait: same spin-then-sleep shape as the default, but
    /// each empty poll here costs a `read(2)` per connection, so the
    /// spin phase yields the core several times between polls. On a
    /// machine where replicas and clients timeshare cores, those yields
    /// are what let the replica produce the awaited reply at all —
    /// polling back-to-back would spend the shared core on empty
    /// syscalls instead.
    fn recv_deadline(&mut self, deadline: Instant) -> Option<(Peer, Wire<M>)> {
        const YIELDS_PER_POLL: u32 = 1;
        let mut spins = 0u32;
        let mut nap = IDLE_NAP_FLOOR;
        loop {
            self.flush();
            if let Some(m) = self.recv() {
                return Some(m);
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            if spins < IDLE_SPINS {
                spins += 1;
                for _ in 0..YIELDS_PER_POLL {
                    std::thread::yield_now();
                }
            } else {
                std::thread::sleep(nap.min(deadline - now));
                nap = (nap * 2).min(IDLE_NAP_CEIL);
            }
        }
    }

    /// Parks in a blocking read on `from`'s connection: zero polls, and
    /// the kernel delivers the wakeup the moment the reply's bytes land.
    /// The blocking mode persists across calls (the steady-state request
    /// → reply cycle makes exactly one write and one read syscall on the
    /// transport), and each park is a bounded [`PARK_SLICE`]; on an
    /// empty slice the other connections get a nonblocking sweep, so a
    /// message arriving from an unexpected peer is still delivered. May
    /// overshoot `deadline` by up to one slice.
    ///
    /// If the hinted connection dies mid-park (EOF wakes the blocking
    /// read immediately), the park degrades to bounded polling slices —
    /// each of which drives the maintenance pass, so the redial happens
    /// *under* this wait — and re-parks the moment the fresh connection
    /// is up. The caller never sees the gap except as latency.
    fn recv_from_deadline(&mut self, from: NodeId, deadline: Instant) -> Option<(Peer, Wire<M>)> {
        loop {
            self.flush();
            if let Some(m) = self.inbox.pop_front() {
                return Some(m);
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            let Some(i) = self.conns.iter().position(|c| c.peer == from && !c.dead) else {
                // Hinted peer between connections: wait one bounded
                // slice with the polling strategy (whose flush calls
                // drive the redial), then re-check for the repaired
                // connection and re-park on it.
                let slice = (deadline - now).min(PARK_SLICE);
                if let Some(m) = self.recv_deadline(now + slice) {
                    return Some(m);
                }
                continue;
            };
            if self.conns[i].park_fill() {
                self.conns[i].drain_frames(&mut self.inbox);
                self.next_read = i;
            } else {
                // Empty slice: sweep the other connections so traffic
                // from unexpected peers is not starved while parked.
                for j in 0..self.conns.len() {
                    if j != i && !self.conns[j].dead {
                        self.conns[j].fill();
                        self.conns[j].drain_frames(&mut self.inbox);
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// TCP cluster wiring
// ---------------------------------------------------------------------

/// Binds one loopback listener per replica; returns listeners and their
/// addresses.
pub(crate) fn bind_replicas(r: usize) -> std::io::Result<(Vec<TcpListener>, Vec<SocketAddr>)> {
    let mut listeners = Vec::with_capacity(r);
    let mut addrs = Vec::with_capacity(r);
    for _ in 0..r {
        let l = TcpListener::bind(("127.0.0.1", 0))?;
        addrs.push(l.local_addr()?);
        listeners.push(l);
    }
    Ok((listeners, addrs))
}

/// Builds replica `i`'s transport: dial every lower-numbered replica
/// (deterministic initiator rule — exactly one connection per pair),
/// then accept the expected number of inbound connections (higher
/// replicas, clients, and the control endpoint). The listener stays
/// with the transport afterwards, nonblocking, so peers can reconnect
/// at runtime.
pub(crate) fn replica_transport<M: Codec>(
    me: NodeId,
    listener: TcpListener,
    lower: &[(NodeId, SocketAddr)],
    expect_accepts: usize,
) -> std::io::Result<TcpTransport<M>> {
    let mut conns = Vec::with_capacity(lower.len() + expect_accepts);
    for &(peer, addr) in lower {
        conns.push(TcpTransport::<M>::dial(me, peer, addr)?);
    }
    for _ in 0..expect_accepts {
        conns.push(TcpTransport::<M>::accept(&listener)?);
    }
    let dial_addrs: BTreeMap<NodeId, SocketAddr> = lower.iter().copied().collect();
    Ok(TcpTransport::new(me, conns, dial_addrs, Some(listener)))
}

/// Builds the transport of a replica *rejoining* a running cluster
/// (restart after a crash): rebind the replica's original address, and
/// connect nothing up front — lower-numbered peers start in backoff
/// (redialed by the maintenance pass), higher-numbered peers and
/// clients redial this listener when their own dead-link backoff fires.
/// The bind itself is retried briefly: the dying instance's listener
/// may take a moment to release the port.
pub(crate) fn rejoin_replica_transport<M: Codec>(
    me: NodeId,
    addr: SocketAddr,
    lower: &[(NodeId, SocketAddr)],
) -> std::io::Result<TcpTransport<M>> {
    let deadline = Instant::now() + Duration::from_secs(5);
    let listener = loop {
        match TcpListener::bind(addr) {
            Ok(l) => break l,
            Err(e) if Instant::now() >= deadline => return Err(e),
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    };
    let dial_addrs: BTreeMap<NodeId, SocketAddr> = lower.iter().copied().collect();
    Ok(TcpTransport::new(
        me,
        Vec::new(),
        dial_addrs,
        Some(listener),
    ))
}

/// Builds a client-side transport (clients and the control endpoint):
/// dial every replica. Clients own redial for all their links.
pub(crate) fn client_transport<M: Codec>(
    me: NodeId,
    replicas: &[(NodeId, SocketAddr)],
) -> std::io::Result<TcpTransport<M>> {
    let mut conns = Vec::with_capacity(replicas.len());
    for &(peer, addr) in replicas {
        conns.push(TcpTransport::<M>::dial(me, peer, addr)?);
    }
    let dial_addrs: BTreeMap<NodeId, SocketAddr> = replicas.iter().copied().collect();
    Ok(TcpTransport::new(me, conns, dial_addrs, None))
}
