//! Pluggable IO boundary for the threaded runtime: the replica loop and
//! the client handles speak to a [`Transport`], never to a queue or a
//! socket directly, so the *same* engine loop runs behind shared memory
//! ([`MemTransport`], qc-channel SPSC queues) or real sockets
//! ([`TcpTransport`], loopback TCP with the `onepaxos::wire` framed
//! binary codec).
//!
//! # Addressing
//!
//! A destination is a [`Peer`] — `(NodeId, topic)`. The topic is the
//! shard-group channel: the shared-memory transport maps each topic to
//! its own SPSC queue pair (preserving the one-queue-per-group layout of
//! §6.1), while TCP multiplexes all topics over one connection per
//! process pair and carries the topic inside each frame.
//!
//! # TCP frame layout
//!
//! Every TCP message is one `onepaxos::wire` frame (magic `0xC51D`,
//! version, length — see [`onepaxos::wire::write_frame`]) whose payload
//! is the destination topic (`u16` LE) followed by the
//! [`Codec`]-encoded [`Wire`] message. The first frame on every
//! connection is a *hello* whose payload is the dialing process's
//! [`NodeId`], which is how the accepting side learns who is talking.

use std::collections::{BTreeMap, VecDeque};
use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::time::Instant;

use onepaxos::wire::{self, Codec, DecodeError, Reader};
use onepaxos::NodeId;
use qc_channel::{Mailbox, Receiver, Sender};

use crate::wire::Wire;

/// A peer address on the wire: who, on which shard-group topic.
pub type Peer = (NodeId, u16);

/// The IO boundary the replica loop and client handles are written
/// against.
///
/// # Delivery contract
///
/// The engines assume exactly what the paper's in-machine channels give
/// them, no more:
///
/// * **Per-peer FIFO order** — messages from one process to another on
///   one topic arrive in send order. Order across topics or across
///   senders is unspecified.
/// * **At-most-once delivery** — a transport never duplicates a
///   message. It may *drop* messages (a full queue whose sender exits, a
///   closed socket): every protocol in the tree already tolerates loss
///   through retransmission timers, but none tolerates duplication of
///   its client requests without the engines' dedup records.
/// * **Non-blocking** — [`send`](Transport::send) buffers instead of
///   blocking when the link is busy ([`flush`](Transport::flush)
///   retries), and [`recv`](Transport::recv) returns `None` instead of
///   waiting, so one slow peer can never wedge a replica's event loop.
pub trait Transport<M>: Send {
    /// Queues `msg` for `(to, topic)`. Never blocks: if the link is
    /// full the message is buffered and retried by [`flush`]
    /// (Transport::flush). Messages to unknown peers are dropped.
    fn send(&mut self, to: NodeId, topic: u16, msg: Wire<M>);

    /// Retries buffered sends. Returns `true` while anything remains
    /// buffered.
    fn flush(&mut self) -> bool;

    /// Non-blocking receive: the next inbound message and its sender,
    /// or `None` if nothing is waiting.
    fn recv(&mut self) -> Option<(Peer, Wire<M>)>;

    /// Blocking receive with a deadline: flushes and polls until a
    /// message arrives or `deadline` passes.
    fn recv_deadline(&mut self, deadline: Instant) -> Option<(Peer, Wire<M>)> {
        loop {
            self.flush();
            if let Some(m) = self.recv() {
                return Some(m);
            }
            if Instant::now() >= deadline {
                return None;
            }
            std::thread::yield_now();
        }
    }
}

// ---------------------------------------------------------------------
// Shared memory
// ---------------------------------------------------------------------

/// The qc-channel transport: one lock-free SPSC queue per direction per
/// `(peer, topic)` link — exactly the runtime's original IO layer, now
/// behind the trait. Overflow on a full 7-slot queue is buffered at the
/// sender so the event loop never blocks.
pub struct MemTransport<M> {
    senders: BTreeMap<Peer, Sender<Wire<M>>>,
    backlog: BTreeMap<Peer, VecDeque<Wire<M>>>,
    mailbox: Mailbox<Peer, Wire<M>>,
}

impl<M> MemTransport<M> {
    /// Builds the transport from one process's half of the mesh.
    pub(crate) fn new(
        senders: BTreeMap<Peer, Sender<Wire<M>>>,
        receivers: Vec<(Peer, Receiver<Wire<M>>)>,
    ) -> Self {
        let mut mailbox = Mailbox::new();
        for (peer, rx) in receivers {
            mailbox.add_peer(peer, rx);
        }
        MemTransport {
            senders,
            backlog: BTreeMap::new(),
            mailbox,
        }
    }
}

impl<M> std::fmt::Debug for MemTransport<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MemTransport")
            .field("peers", &self.senders.len())
            .finish_non_exhaustive()
    }
}

impl<M: Send> Transport<M> for MemTransport<M> {
    fn send(&mut self, to: NodeId, topic: u16, msg: Wire<M>) {
        let Some(tx) = self.senders.get(&(to, topic)) else {
            return; // unknown peer: drop (e.g. client already gone)
        };
        let back = self.backlog.entry((to, topic)).or_default();
        if back.is_empty() {
            if let Err(qc_channel::Full(m)) = tx.try_send(msg) {
                back.push_back(m);
            }
        } else {
            back.push_back(msg);
        }
    }

    fn flush(&mut self) -> bool {
        let mut pending = false;
        for (addr, q) in self.backlog.iter_mut() {
            let Some(tx) = self.senders.get(addr) else {
                q.clear();
                continue;
            };
            while let Some(m) = q.pop_front() {
                if let Err(qc_channel::Full(m)) = tx.try_send(m) {
                    q.push_front(m);
                    pending = true;
                    break;
                }
            }
        }
        pending
    }

    fn recv(&mut self) -> Option<(Peer, Wire<M>)> {
        self.mailbox.poll()
    }
}

// ---------------------------------------------------------------------
// TCP
// ---------------------------------------------------------------------

/// Read chunk size for the socket receive path. Each connection keeps a
/// single growable receive buffer that is reused across reads; frames
/// are decoded in place from it, so steady-state receiving allocates
/// nothing.
const READ_CHUNK: usize = 64 * 1024;

/// One nonblocking loopback connection to a peer process.
struct TcpConn {
    peer: NodeId,
    stream: TcpStream,
    /// Reusable receive buffer: bytes `rpos..rbuf.len()` are unparsed.
    rbuf: Vec<u8>,
    rpos: usize,
    /// Pending outbound bytes: `wpos..wbuf.len()` are unsent.
    wbuf: Vec<u8>,
    wpos: usize,
    /// Set on EOF, IO error, or a corrupt frame; the connection is then
    /// skipped (its peer is gone or speaking garbage).
    dead: bool,
}

impl TcpConn {
    fn new(peer: NodeId, stream: TcpStream) -> std::io::Result<Self> {
        stream.set_nonblocking(true)?;
        stream.set_nodelay(true)?;
        Ok(TcpConn {
            peer,
            stream,
            rbuf: Vec::new(),
            rpos: 0,
            wbuf: Vec::new(),
            wpos: 0,
            dead: false,
        })
    }

    /// Tries to push pending outbound bytes; returns whether any remain.
    fn try_write(&mut self) -> bool {
        while self.wpos < self.wbuf.len() {
            match self.stream.write(&self.wbuf[self.wpos..]) {
                Ok(0) => {
                    self.dead = true;
                    break;
                }
                Ok(n) => self.wpos += n,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.dead = true;
                    break;
                }
            }
        }
        if self.wpos == self.wbuf.len() || self.dead {
            self.wbuf.clear();
            self.wpos = 0;
        }
        !self.wbuf.is_empty()
    }

    /// Reads every available byte into the receive buffer.
    fn fill(&mut self, scratch: &mut [u8]) {
        loop {
            match self.stream.read(scratch) {
                Ok(0) => {
                    self.dead = true; // peer closed
                    return;
                }
                Ok(n) => self.rbuf.extend_from_slice(&scratch[..n]),
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.dead = true;
                    return;
                }
            }
        }
    }

    /// Pops the next complete frame's payload range, if one is buffered.
    fn next_frame(&mut self) -> Result<Option<(usize, usize)>, DecodeError> {
        match wire::read_frame(&self.rbuf[self.rpos..])? {
            Some((payload, consumed)) => {
                let start = self.rpos + (consumed - payload.len());
                let end = self.rpos + consumed;
                self.rpos += consumed;
                Ok(Some((start, end)))
            }
            None => {
                // Partial frame: reclaim the consumed prefix so the
                // buffer never grows past one frame plus one read chunk.
                if self.rpos > 0 {
                    self.rbuf.drain(..self.rpos);
                    self.rpos = 0;
                }
                Ok(None)
            }
        }
    }
}

/// The socket transport: one loopback TCP connection per peer process,
/// all shard-group topics multiplexed over it, every message a
/// length-prefixed `onepaxos::wire` frame. Receive buffers are reused
/// across reads; encode goes straight into the connection's write
/// buffer.
pub struct TcpTransport<M> {
    conns: Vec<TcpConn>,
    inbox: VecDeque<(Peer, Wire<M>)>,
    scratch: Box<[u8]>,
    next_read: usize,
}

impl<M> std::fmt::Debug for TcpTransport<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TcpTransport")
            .field("peers", &self.conns.len())
            .field("inbox", &self.inbox.len())
            .finish_non_exhaustive()
    }
}

impl<M: Codec> TcpTransport<M> {
    fn new(conns: Vec<TcpConn>) -> Self {
        TcpTransport {
            conns,
            inbox: VecDeque::new(),
            scratch: vec![0u8; READ_CHUNK].into_boxed_slice(),
            next_read: 0,
        }
    }

    /// Dials `addr` and sends the hello frame identifying `me`.
    fn dial(me: NodeId, peer: NodeId, addr: SocketAddr) -> std::io::Result<TcpConn> {
        let mut stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let mut hello = Vec::with_capacity(wire::FRAME_HEADER + 2);
        wire::write_frame_with(&mut hello, |buf| me.encode(buf));
        stream.write_all(&hello)?;
        TcpConn::new(peer, stream)
    }

    /// Accepts one connection from `listener` and reads its hello frame
    /// to learn the dialer's identity. Blocking (setup phase only).
    fn accept(listener: &TcpListener) -> std::io::Result<TcpConn> {
        let (mut stream, _) = listener.accept()?;
        let mut header = [0u8; wire::FRAME_HEADER + 2];
        stream.read_exact(&mut header)?;
        let peer = match wire::read_frame(&header) {
            Ok(Some((payload, _))) => {
                let mut r = Reader::new(payload);
                NodeId::decode(&mut r)
                    .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?
            }
            _ => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    "bad hello frame",
                ))
            }
        };
        TcpConn::new(peer, stream)
    }

    /// One read pass over every connection, decoding all complete frames
    /// into the inbox. Round-robins the starting connection so a chatty
    /// peer cannot starve the others.
    fn read_pass(&mut self) {
        let n = self.conns.len();
        for step in 0..n {
            let i = (self.next_read + step) % n;
            let conn = &mut self.conns[i];
            if conn.dead {
                continue;
            }
            conn.fill(&mut self.scratch);
            loop {
                match conn.next_frame() {
                    Ok(Some((start, end))) => {
                        let mut r = Reader::new(&conn.rbuf[start..end]);
                        match decode_payload::<M>(&mut r) {
                            Ok((topic, msg)) => self.inbox.push_back(((conn.peer, topic), msg)),
                            Err(_) => {
                                // Corrupt payload: the peer is speaking a
                                // different dialect; cut it off rather
                                // than guess at framing.
                                conn.dead = true;
                                break;
                            }
                        }
                    }
                    Ok(None) => break,
                    Err(_) => {
                        conn.dead = true;
                        break;
                    }
                }
            }
        }
        if n > 0 {
            self.next_read = (self.next_read + 1) % n;
        }
    }
}

/// Decodes one frame payload: destination topic, then the message.
fn decode_payload<M: Codec>(r: &mut Reader<'_>) -> Result<(u16, Wire<M>), DecodeError> {
    let topic = u16::decode(r)?;
    let msg = Wire::<M>::decode(r)?;
    if !r.is_empty() {
        return Err(DecodeError::Trailing(r.remaining()));
    }
    Ok((topic, msg))
}

impl<M: Codec + Send> Transport<M> for TcpTransport<M> {
    fn send(&mut self, to: NodeId, topic: u16, msg: Wire<M>) {
        let Some(conn) = self.conns.iter_mut().find(|c| c.peer == to && !c.dead) else {
            return; // unknown or departed peer: drop
        };
        wire::write_frame_with(&mut conn.wbuf, |buf| {
            topic.encode(buf);
            msg.encode(buf);
        });
        conn.try_write();
    }

    fn flush(&mut self) -> bool {
        let mut pending = false;
        for conn in &mut self.conns {
            if !conn.dead && conn.try_write() {
                pending = true;
            }
        }
        pending
    }

    fn recv(&mut self) -> Option<(Peer, Wire<M>)> {
        if self.inbox.is_empty() {
            self.read_pass();
        }
        self.inbox.pop_front()
    }
}

// ---------------------------------------------------------------------
// TCP cluster wiring
// ---------------------------------------------------------------------

/// Binds one loopback listener per replica; returns listeners and their
/// addresses.
pub(crate) fn bind_replicas(r: usize) -> std::io::Result<(Vec<TcpListener>, Vec<SocketAddr>)> {
    let mut listeners = Vec::with_capacity(r);
    let mut addrs = Vec::with_capacity(r);
    for _ in 0..r {
        let l = TcpListener::bind(("127.0.0.1", 0))?;
        addrs.push(l.local_addr()?);
        listeners.push(l);
    }
    Ok((listeners, addrs))
}

/// Builds replica `i`'s transport: dial every lower-numbered replica
/// (deterministic initiator rule — exactly one connection per pair),
/// then accept the expected number of inbound connections (higher
/// replicas, clients, and the control endpoint).
pub(crate) fn replica_transport<M: Codec>(
    me: NodeId,
    listener: &TcpListener,
    lower: &[(NodeId, SocketAddr)],
    expect_accepts: usize,
) -> std::io::Result<TcpTransport<M>> {
    let mut conns = Vec::with_capacity(lower.len() + expect_accepts);
    for &(peer, addr) in lower {
        conns.push(TcpTransport::<M>::dial(me, peer, addr)?);
    }
    for _ in 0..expect_accepts {
        conns.push(TcpTransport::<M>::accept(listener)?);
    }
    Ok(TcpTransport::new(conns))
}

/// Builds a client-side transport (clients and the control endpoint):
/// dial every replica.
pub(crate) fn client_transport<M: Codec>(
    me: NodeId,
    replicas: &[(NodeId, SocketAddr)],
) -> std::io::Result<TcpTransport<M>> {
    let mut conns = Vec::with_capacity(replicas.len());
    for &(peer, addr) in replicas {
        conns.push(TcpTransport::<M>::dial(me, peer, addr)?);
    }
    Ok(TcpTransport::new(conns))
}
