//! Threaded deployment: one OS thread per replica, a pluggable
//! [`Transport`] between every pair of processes, optional core pinning
//! — the runtime equivalent of the paper's testbed (§6, §7.1), where
//! replicas were assigned to cores with `taskset`.
//!
//! A replica thread owns a [`ShardedEngine`] (one consensus group unless
//! [`ClusterBuilder::shards`] raises it) and does nothing but IO: poll
//! its transport, feed events to the engines, push [`EngineEffect`]s
//! back onto the wire (transports buffer instead of blocking, so a busy
//! link never wedges the loop). Timers, commits, replies and the state
//! machines all live in the engines — the same engines the simulator and
//! `TestNet` deploy.
//!
//! The transport is chosen at spawn time and nothing else changes:
//! [`ClusterBuilder::spawn`] wires the processes over qc-channel shared
//! memory ([`MemTransport`], §6.1's pairwise SPSC queues), while
//! [`ClusterBuilder::spawn_tcp`] puts the identical loop on loopback TCP
//! sockets ([`TcpTransport`]) with every message in the
//! `onepaxos::wire` framed binary format.
//!
//! Sharding keeps **one OS thread per core**: each replica thread hosts
//! every shard group's member for its slot, and each group gets its own
//! transport *topic* — a dedicated SPSC queue per direction per pair in
//! shared memory, a tag inside the frame on TCP — so per-shard FIFO
//! order matches the other harnesses. Clients route their requests by
//! key hash ([`ShardRouter`]) with a per-shard target replica, so
//! callers of [`ClientHandle::put`]/[`ClientHandle::get`] stay
//! shard-oblivious.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use onepaxos::engine::{
    BatchConfig, EngineConfig, EngineEffect, EngineStats, ReplicaEngine, ReplyMode,
};
use onepaxos::kv::KvStore;
use onepaxos::rsm::ApplierSnapshot;
use onepaxos::shard::{ShardId, ShardRouter, ShardedEffects, ShardedEngine};
use onepaxos::txn::{Fragment, TxnCoordinator, TxnStep};
use onepaxos::wire::{decode_exact, encode_to_vec, Codec};
use onepaxos::{EngineEvent, Instance, Nanos, NodeId, Op, Protocol, TxnOutcome};
use qc_channel::{spsc, Receiver, Sender};

use crate::affinity;
use crate::fault::{FaultPlan, FaultTransport};
use crate::transport::{
    self, splitmix64, MemTransport, Peer, TcpTransport, Transport, TransportStats,
};
use crate::wire::Wire;

/// Queue slots per direction between each pair of processes; the paper's
/// default of seven (§6.1). Overflow is buffered at the sender, so small
/// queues cannot deadlock the node loops.
pub const QUEUE_SLOTS: usize = qc_channel::DEFAULT_SLOTS;

/// The transport topic carrying client↔replica traffic (client links
/// need no per-shard split: requests are routed by the replica engines,
/// replies carry no shard identity).
const CLIENT_TOPIC: u16 = 0;

/// The receive sides of one shared-memory process: one queue per peer
/// per topic.
type PeerReceivers<M> = Vec<(Peer, Receiver<Wire<M>>)>;

/// The tagged effect stream of one runtime replica's engines.
type Effects<P> = ShardedEffects<<P as Protocol>::Msg, Option<u64>>;

/// Shared per-replica counters.
#[derive(Debug, Default)]
pub struct NodeMetrics {
    /// Messages received from peers and clients.
    pub received: AtomicU64,
    /// Messages sent to peers and clients.
    pub sent: AtomicU64,
    /// Commands committed (applied or queued for application), summed
    /// over shard groups.
    pub committed: AtomicU64,
    /// Batches flushed to the protocols, summed over shard groups (the
    /// replica loop republishes its engines' [`EngineStats`] snapshot
    /// whenever it makes progress; zero with batching off).
    pub batch_flushes: AtomicU64,
    /// Commands those flushes carried, summed over shard groups.
    pub batched_commands: AtomicU64,
    /// Current flush depth: the deepest shard group's learned depth
    /// under adaptive batching, the static `max_commands` under a fixed
    /// config, 1 with batching off.
    pub batch_depth: AtomicU64,
    /// Connections this replica's transport re-established after a
    /// failure — redials it performed plus replacement accepts it
    /// installed (zero on queue transports, which cannot lose links).
    pub reconnects: AtomicU64,
    /// Connections this replica's transport tore down (EOF, IO error,
    /// corrupt frame, injected kill).
    pub conn_kills: AtomicU64,
    /// The subset of `conn_kills` caused by an undecodable frame.
    pub corrupt_frames: AtomicU64,
    /// State snapshots this replica served to catching-up peers.
    pub snapshots_served: AtomicU64,
    /// State snapshots this replica installed — each one a catch-up
    /// fast-forward past log entries agreed truncation made
    /// unreplayable.
    pub snapshots_installed: AtomicU64,
    /// Agreed truncations this replica applied, observed as log-base
    /// advances (snapshot installs count too: installing implies
    /// truncating below the watermark).
    pub truncations: AtomicU64,
    /// Decided commands parked above an apply gap, summed over shard
    /// groups — the signal that this replica is missing a decided
    /// prefix and may need a snapshot transfer to make progress.
    pub gap_backlog: AtomicU64,
    /// Applied-log entries retained, summed over shard groups. Flat
    /// under periodic truncation — the memory-soak gate watches this.
    pub applied_log_len: AtomicU64,
    /// Retired per-client outputs retained, summed over shard groups
    /// (bounded by the live client count, not by request volume).
    pub outputs_len: AtomicU64,
    /// Finished-transaction records retained, summed over shard groups
    /// (bounded by the per-coordinator GC window).
    pub finished_len: AtomicU64,
}

/// Builder for a threaded cluster.
pub struct ClusterBuilder<P, F> {
    replicas: usize,
    clients: usize,
    shards: u16,
    factory: F,
    pin_cores: bool,
    batching: Option<BatchConfig>,
    truncate_every: Option<u64>,
    faults: Option<FaultPlan>,
    _marker: std::marker::PhantomData<fn() -> P>,
}

impl<P, F> std::fmt::Debug for ClusterBuilder<P, F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClusterBuilder")
            .field("replicas", &self.replicas)
            .field("clients", &self.clients)
            .field("shards", &self.shards)
            .field("pin_cores", &self.pin_cores)
            .finish_non_exhaustive()
    }
}

impl<P, F> ClusterBuilder<P, F>
where
    P: Protocol + Send + 'static,
    F: FnMut(&[NodeId], NodeId) -> P,
{
    /// Starts a builder for `replicas` replica processes whose protocol
    /// instances come from `factory(members, me)`.
    pub fn new(replicas: usize, factory: F) -> Self {
        ClusterBuilder {
            replicas,
            clients: 1,
            shards: 1,
            factory,
            pin_cores: false,
            batching: None,
            truncate_every: None,
            faults: None,
            _marker: std::marker::PhantomData,
        }
    }

    /// Number of client handles to create (each may be used from its own
    /// thread). Default 1.
    pub fn clients(mut self, c: usize) -> Self {
        self.clients = c;
        self
    }

    /// Number of independent consensus groups with key-hash routing
    /// (default 1). `factory` is invoked once per `(shard, replica)`;
    /// each group gets its own transport topic between every replica
    /// pair while the thread count stays one per replica slot.
    ///
    /// # Panics
    ///
    /// `spawn` panics if `s` is zero.
    pub fn shards(mut self, s: u16) -> Self {
        self.shards = s;
        self
    }

    /// Applies a shared [`EngineConfig`] — the same shard-count/batching
    /// shape accepted by `TestNet::builder` and the simulator's
    /// `SimBuilder`, so one config value can describe a deployment
    /// across all three harnesses.
    pub fn config(mut self, cfg: EngineConfig) -> Self {
        self.shards = cfg.shards;
        self.batching = cfg.batching;
        self
    }

    /// Pin replica threads to distinct cores (the paper's `taskset`),
    /// when the machine has enough cores. Best-effort. Default off.
    pub fn pin_cores(mut self, pin: bool) -> Self {
        self.pin_cores = pin;
        self
    }

    /// Wraps every replica's transport in a [`FaultTransport`] driven
    /// by `plan`, with a per-node decorrelated seed
    /// ([`FaultPlan::for_node`]) — seeded drops, FIFO-preserving
    /// delays, partition windows, and (over TCP) connection kills that
    /// exercise the reconnect lifecycle. Every injected fault stays
    /// inside the [`Transport`] delivery contract, so a cluster that
    /// misbehaves under faults has a real bug. Default: no faults.
    pub fn faults(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    /// Enables engine-level command batching on every replica: requests
    /// coalesce into one agreement per batch (amortising the per-message
    /// cost, §3), with per-client replies fanned back out on commit.
    /// Each shard group batches independently — and, under
    /// [`BatchConfig::Adaptive`], learns its own flush depth from its
    /// own load (watch it move via [`NodeMetrics::batch_depth`]). The
    /// flush deadline runs on the replica loop's wall clock. Default off.
    pub fn batching(mut self, cfg: BatchConfig) -> Self {
        self.batching = Some(cfg);
        self
    }

    /// Enables **periodic agreed truncation**: whenever a shard group's
    /// leader sees `every` or more commands applied above the group's
    /// log base, it orders an [`Op::Truncate`] at its applied watermark
    /// through the group's own log. Every replica applies the same
    /// truncation at the same point in the command sequence, dropping
    /// its applied log, retired outputs and learner state below the
    /// watermark — which is what keeps a long-running replica's memory
    /// bounded (watch [`NodeMetrics::applied_log_len`] stay flat). A
    /// replica that falls behind a truncation catches up by snapshot
    /// install instead of replay (see [`NodeMetrics::snapshots_installed`]).
    /// Default off: nothing is ever dropped.
    pub fn truncate_every(mut self, every: u64) -> Self {
        self.truncate_every = Some(every.max(1));
        self
    }

    /// Spawns the replica threads over qc-channel shared memory and
    /// returns the cluster handle plus one [`ClientHandle`] per
    /// requested client.
    pub fn spawn(mut self) -> (Cluster, Vec<ClientHandle<P::Msg>>) {
        transport::tighten_timer_slack();
        let r = self.replicas;
        let c = self.clients;
        let shards = self.shards;
        assert!(shards >= 1, "need at least one shard");
        // Endpoints: r replicas, c clients, plus one control endpoint
        // (the cluster handle itself) that exists only to fan out
        // shutdown — which is what lets `Cluster` stay non-generic.
        let total = r + c + 1;
        let members: Vec<NodeId> = (0..r as u16).map(NodeId).collect();

        // Full mesh of SPSC queues: senders[i][(j, t)] sends i → j on
        // shard-group topic t. Replica pairs get one topic per group;
        // client and control links use the single CLIENT_TOPIC.
        let mut senders: Vec<BTreeMap<Peer, Sender<Wire<P::Msg>>>> =
            (0..total).map(|_| BTreeMap::new()).collect();
        let mut receivers: Vec<PeerReceivers<P::Msg>> = (0..total).map(|_| Vec::new()).collect();
        #[allow(clippy::needless_range_loop)]
        for i in 0..total {
            for j in 0..total {
                if i == j {
                    continue;
                }
                // Client↔client (and control) links are never used.
                if i >= r && j >= r {
                    continue;
                }
                let topics = if i < r && j < r { shards } else { 1 };
                for t in 0..topics {
                    let (tx, rx) = spsc::channel(QUEUE_SLOTS);
                    senders[i].insert((NodeId(j as u16), t), tx);
                    receivers[j].push(((NodeId(i as u16), t), rx));
                }
            }
        }

        let metrics: Vec<Arc<NodeMetrics>> =
            (0..r).map(|_| Arc::new(NodeMetrics::default())).collect();
        let core_ids = if self.pin_cores {
            affinity::get_core_ids().unwrap_or_default()
        } else {
            Vec::new()
        };

        let mut threads = Vec::new();
        let mut receivers_iter = receivers.into_iter();
        let mut node_receivers: Vec<PeerReceivers<P::Msg>> = Vec::new();
        for _ in 0..r {
            node_receivers.push(receivers_iter.next().expect("replica slot"));
        }
        let mut endpoint_receivers: Vec<PeerReceivers<P::Msg>> = receivers_iter.collect();
        let control_receivers = endpoint_receivers.pop().expect("control slot");

        for (i, rxs) in node_receivers.into_iter().enumerate() {
            let me = members[i];
            // One protocol instance per shard group, all hosted on this
            // slot's single OS thread.
            let nodes: Vec<P> = (0..shards).map(|_| (self.factory)(&members, me)).collect();
            let io = MemTransport::new(std::mem::take(&mut senders[i]), rxs);
            let m = Arc::clone(&metrics[i]);
            let core = core_ids.get(i % core_ids.len().max(1)).copied();
            let opts = LoopOpts {
                batching: self.batching,
                truncate_every: self.truncate_every,
                members: members.clone(),
            };
            let faults = self.faults.clone();
            let handle = std::thread::Builder::new()
                .name(format!("replica-{}", me))
                .spawn(move || {
                    if let Some(core) = core {
                        let _ = affinity::set_for_current(core);
                    }
                    match faults {
                        Some(plan) => {
                            replica_loop(nodes, FaultTransport::new(io, plan.for_node(me)), m, opts)
                        }
                        None => replica_loop(nodes, io, m, opts),
                    }
                })
                .expect("spawn replica thread");
            threads.push(Some(handle));
        }

        let clients = endpoint_receivers
            .into_iter()
            .enumerate()
            .map(|(j, rxs)| {
                ClientHandle::with_transport(
                    NodeId((r + j) as u16),
                    members.clone(),
                    MemTransport::new(std::mem::take(&mut senders[r + j]), rxs),
                    shards,
                )
            })
            .collect();

        let control = MemTransport::new(std::mem::take(&mut senders[r + c]), control_receivers);
        (
            Cluster {
                threads,
                metrics,
                fan_shutdown: shutdown_fan(control, members),
                respawn: None,
            },
            clients,
        )
    }

    /// Spawns the replica threads over loopback TCP sockets — the same
    /// engines, the same loop, but every message now crosses a real
    /// socket as a length-prefixed `onepaxos::wire` frame. Requires the
    /// protocol's message type to implement [`Codec`].
    ///
    /// Connection layout: each replica binds one listener; replica `i`
    /// dials every lower-numbered replica (so each pair shares exactly
    /// one connection), clients and the control endpoint dial every
    /// replica. Shard-group topics are multiplexed over the pair's
    /// single connection, tagged inside each frame.
    ///
    /// # Errors
    ///
    /// Returns any socket-setup error (bind/connect/accept); once setup
    /// succeeds, runtime socket failures degrade to dropped peers, which
    /// the protocols absorb through their timeout paths.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    #[allow(clippy::type_complexity)]
    pub fn spawn_tcp(
        self,
    ) -> std::io::Result<(Cluster, Vec<ClientHandle<P::Msg, TcpTransport<P::Msg>>>)>
    where
        P::Msg: Codec,
        F: Send + 'static,
    {
        transport::tighten_timer_slack();
        let r = self.replicas;
        let c = self.clients;
        let shards = self.shards;
        assert!(shards >= 1, "need at least one shard");
        let members: Vec<NodeId> = (0..r as u16).map(NodeId).collect();

        let (listeners, addrs) = transport::bind_replicas(r)?;
        let replica_addrs: Vec<(NodeId, std::net::SocketAddr)> = members
            .iter()
            .zip(addrs.iter())
            .map(|(&m, &a)| (m, a))
            .collect();

        let metrics: Vec<Arc<NodeMetrics>> =
            (0..r).map(|_| Arc::new(NodeMetrics::default())).collect();
        let core_ids = if self.pin_cores {
            affinity::get_core_ids().unwrap_or_default()
        } else {
            Vec::new()
        };

        // One spawner serves both the initial boot (a pre-bound
        // listener plus a deterministic blocking handshake) and a
        // restart (`Cluster::restart_replica`: rebind the same address,
        // rejoin lazily through the reconnect lifecycle). The factory
        // moves behind a mutex so restarts can mint fresh engines long
        // after this builder is gone.
        let factory = Arc::new(Mutex::new(self.factory));
        let batching = self.batching;
        let truncate_every = self.truncate_every;
        let faults = self.faults;
        let spawn_replica = {
            let members = members.clone();
            let replica_addrs = replica_addrs.clone();
            let metrics = metrics.clone();
            let core_ids = core_ids.clone();
            move |i: usize, listener: Option<(std::net::TcpListener, usize)>| -> JoinHandle<()> {
                let me = members[i];
                let nodes: Vec<P> = {
                    let mut make = factory.lock().expect("factory mutex");
                    (0..shards).map(|_| make(&members, me)).collect()
                };
                let lower: Vec<(NodeId, std::net::SocketAddr)> = replica_addrs[..i].to_vec();
                let my_addr = replica_addrs[i].1;
                let opts = LoopOpts {
                    batching,
                    truncate_every,
                    members: members.clone(),
                };
                let m = Arc::clone(&metrics[i]);
                let core = core_ids.get(i % core_ids.len().max(1)).copied();
                let faults = faults.clone();
                std::thread::Builder::new()
                    .name(format!("replica-{}", me))
                    .spawn(move || {
                        if let Some(core) = core {
                            let _ = affinity::set_for_current(core);
                        }
                        let io = match listener {
                            Some((l, expect_accepts)) => transport::replica_transport::<P::Msg>(
                                me,
                                l,
                                &lower,
                                expect_accepts,
                            ),
                            None => {
                                transport::rejoin_replica_transport::<P::Msg>(me, my_addr, &lower)
                            }
                        }
                        .expect("tcp replica setup");
                        match faults {
                            Some(plan) => replica_loop(
                                nodes,
                                FaultTransport::new(io, plan.for_node(me)),
                                m,
                                opts,
                            ),
                            None => replica_loop(nodes, io, m, opts),
                        }
                    })
                    .expect("spawn replica thread")
            }
        };

        let mut threads = Vec::with_capacity(r);
        for (i, listener) in listeners.into_iter().enumerate() {
            // Inbound: every higher replica, every client, and control.
            let expect_accepts = (r - 1 - i) + c + 1;
            threads.push(Some(spawn_replica(i, Some((listener, expect_accepts)))));
        }

        let mut clients = Vec::with_capacity(c);
        for j in 0..c {
            let me = NodeId((r + j) as u16);
            let io = transport::client_transport::<P::Msg>(me, &replica_addrs)?;
            clients.push(ClientHandle::with_transport(
                me,
                members.clone(),
                io,
                shards,
            ));
        }

        let control =
            transport::client_transport::<P::Msg>(NodeId((r + c) as u16), &replica_addrs)?;
        Ok((
            Cluster {
                threads,
                metrics,
                fan_shutdown: shutdown_fan(control, members),
                respawn: Some(Box::new(move |i| spawn_replica(i, None))),
            },
            clients,
        ))
    }
}

/// Type-erases a transport into the closure [`Cluster::shutdown`]
/// drives: one round fans [`Wire::Shutdown`] out to every replica and
/// briefly drains the send buffers. The round is re-run until every
/// replica thread is observably gone, because over TCP a shutdown frame
/// is droppable like any other — the canonical case being a control
/// link that went stale-dead across a replica restart, where the first
/// send is lost with the reaped connection and the *retry* rides the
/// redial to the live replica.
fn shutdown_fan<M, T>(control: T, members: Vec<NodeId>) -> Box<dyn FnMut() + Send>
where
    M: Send + 'static,
    T: Transport<M> + 'static,
{
    let mut control = control;
    Box::new(move || {
        for &m in &members {
            control.send(m, CLIENT_TOPIC, Wire::Shutdown);
        }
        // Bounded drain: push redials along and flush what can flush —
        // a permanently-gone peer keeps its backoff entry pending, so
        // "still busy" must not hold a round open forever.
        let deadline = Instant::now() + Duration::from_millis(100);
        while control.flush() && Instant::now() < deadline {
            std::thread::yield_now();
        }
    })
}

/// A running cluster of replica threads.
pub struct Cluster {
    threads: Vec<Option<JoinHandle<()>>>,
    metrics: Vec<Arc<NodeMetrics>>,
    /// The control endpoint's shutdown fan-out, type-erased so `Cluster`
    /// needs no message-type parameter and callers simply write
    /// `cluster.shutdown()`. Each call runs one send-and-drain round.
    fan_shutdown: Box<dyn FnMut() + Send>,
    /// Re-spawns replica slot `i` after it stopped (TCP deployments
    /// only): rebinds the slot's listener address and rejoins through
    /// the reconnect lifecycle. `None` on shared-memory clusters, whose
    /// SPSC queue endpoints are consumed at spawn.
    respawn: Option<Box<dyn FnMut(usize) -> JoinHandle<()> + Send>>,
}

impl std::fmt::Debug for Cluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Cluster")
            .field("replicas", &self.threads.len())
            .finish_non_exhaustive()
    }
}

impl Cluster {
    /// Per-replica counters.
    pub fn metrics(&self) -> &[Arc<NodeMetrics>] {
        &self.metrics
    }

    /// Number of replica threads.
    pub fn len(&self) -> usize {
        self.threads.len()
    }

    /// Whether the cluster has no replicas (never true after `spawn`).
    pub fn is_empty(&self) -> bool {
        self.threads.is_empty()
    }

    /// Whether replica slot `i`'s thread has exited (true after a
    /// processed [`ClientHandle::stop_replica`], and trivially true for
    /// a slot already taken by a restart in progress). A shutdown
    /// request travels the wire and may be dropped across a reconnect
    /// gap like any other frame, so callers re-send the stop until this
    /// reports true before calling [`Cluster::restart_replica`] —
    /// joining a live thread blocks forever.
    pub fn replica_finished(&self, i: usize) -> bool {
        self.threads[i].as_ref().is_none_or(|h| h.is_finished())
    }

    /// Restarts replica slot `i` with a fresh protocol instance after
    /// its thread stopped (e.g. [`ClientHandle::stop_replica`]): joins
    /// the old thread, rebinds the slot's listener address and rejoins
    /// the cluster lazily through the reconnect lifecycle — peers'
    /// backoff redials and the restarted listener's accept sweep
    /// re-knit the mesh without a coordinated handshake.
    ///
    /// The restarted replica boots on a fresh engine and an empty
    /// store, then rejoins **warm**: its loop probes a peer for a state
    /// snapshot at boot and again whenever an apply gap persists, and
    /// installs the `(snapshot, watermark)` it gets back — so it
    /// resumes applying from the donor's watermark instead of needing
    /// the (possibly truncated, hence unreplayable) log prefix. What it
    /// still loses is its *acceptor* state — promises and accepted
    /// values — so only restart replicas whose protocol can tolerate
    /// that, e.g. the OnePaxos backup, which holds no acknowledged
    /// state the leader cannot re-supply.
    ///
    /// # Panics
    ///
    /// Panics on shared-memory clusters ([`ClusterBuilder::spawn`]),
    /// whose queue endpoints cannot be rebuilt, or if `i` is out of
    /// range. Call only after the slot's thread has actually exited —
    /// joining a live thread blocks forever.
    pub fn restart_replica(&mut self, i: usize) {
        let respawn = self
            .respawn
            .as_mut()
            .expect("restart_replica requires a TCP cluster");
        if let Some(old) = self.threads[i].take() {
            let _ = old.join();
        }
        self.threads[i] = Some(respawn(i));
    }

    /// Asks every replica to shut down (over the cluster's own control
    /// link — no client handle needed) and joins the replica threads.
    /// The shutdown fan-out is re-sent until every thread is observably
    /// gone (bounded at ten seconds): over TCP the request is a frame
    /// like any other and may be lost across a reconnect gap, so a
    /// single round is not enough once replicas have been restarted.
    pub fn shutdown(mut self) {
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            (self.fan_shutdown)();
            let all_done = (0..self.threads.len()).all(|i| self.replica_finished(i));
            if all_done || Instant::now() >= deadline {
                break;
            }
            std::thread::sleep(Duration::from_millis(20));
        }
        for t in self.threads.into_iter().flatten() {
            let _ = t.join();
        }
    }
}

/// Pushes one replica's tagged effects onto the wire: peer messages on
/// their shard group's topic, replies on the client topic. Replies always
/// carry their state-machine output: the engines run in
/// [`ReplyMode::AfterApply`], so an acknowledgement is only released once
/// the command is applied.
fn dispatch_effects<P: Protocol, T: Transport<P::Msg>>(
    effects: &mut Effects<P>,
    io: &mut T,
    metrics: &NodeMetrics,
) {
    for (shard, effect) in effects.drain(..) {
        match effect {
            EngineEffect::SendTo { to, msg } => {
                io.send(to, shard.0, Wire::Peer(msg));
                metrics.sent.fetch_add(1, Ordering::Relaxed);
            }
            EngineEffect::ReplyTo {
                client,
                req_id,
                instance,
                value,
            } => {
                io.send(
                    client,
                    CLIENT_TOPIC,
                    Wire::Reply {
                        req_id,
                        instance,
                        value: value.flatten(),
                    },
                );
                metrics.sent.fetch_add(1, Ordering::Relaxed);
            }
            EngineEffect::Committed { .. } => {
                metrics.committed.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

/// Republishes a replica's folded engine counters into its shared
/// metrics block, so callers outside the replica thread can watch the
/// adaptive batch depth move — and, for the bounded-memory gates, the
/// retained-state gauges (applied log, retired outputs, finished-txn
/// records, gap backlog) that must stay flat under periodic truncation.
fn publish_engine_stats(stats: &EngineStats, metrics: &NodeMetrics) {
    metrics
        .batch_flushes
        .store(stats.flushes, Ordering::Relaxed);
    metrics
        .batched_commands
        .store(stats.flushed_commands, Ordering::Relaxed);
    metrics
        .batch_depth
        .store(stats.depth as u64, Ordering::Relaxed);
    metrics
        .gap_backlog
        .store(stats.gap_backlog as u64, Ordering::Relaxed);
    metrics
        .applied_log_len
        .store(stats.applied_log_len as u64, Ordering::Relaxed);
    metrics
        .outputs_len
        .store(stats.outputs_len as u64, Ordering::Relaxed);
    metrics
        .finished_len
        .store(stats.finished_len as u64, Ordering::Relaxed);
}

/// Republishes a replica transport's failure counters into its shared
/// metrics block, so the chaos harness (and operators) can assert that
/// links actually died and actually healed.
fn publish_transport_stats(stats: &TransportStats, metrics: &NodeMetrics) {
    metrics
        .reconnects
        .store(stats.reconnects, Ordering::Relaxed);
    metrics
        .conn_kills
        .store(stats.conn_kills, Ordering::Relaxed);
    metrics
        .corrupt_frames
        .store(stats.corrupt_frames, Ordering::Relaxed);
}

/// Deployment knobs a replica loop needs beyond its engines, bundled so
/// both transports' spawn paths (and TCP restarts) hand them over in
/// one piece.
#[derive(Clone)]
struct LoopOpts {
    batching: Option<BatchConfig>,
    /// Leader-driven periodic agreed truncation
    /// ([`ClusterBuilder::truncate_every`]); `None` never truncates.
    truncate_every: Option<u64>,
    /// The full replica membership — the snapshot donor pool.
    members: Vec<NodeId>,
}

/// Cadence of the replica loop's background duties (snapshot catch-up
/// probing, periodic truncation proposals, truncation accounting), so
/// the hot path stays message-driven.
const MAINT_INTERVAL: Duration = Duration::from_millis(5);

/// How long an apply gap must persist before the loop treats it as
/// unfillable by replay (the missing prefix may be truncated everywhere)
/// and requests a snapshot transfer. Transient reorder gaps close well
/// inside this window; the patience also paces re-requests while a
/// transfer is in flight.
const GAP_PATIENCE: Duration = Duration::from_millis(15);

fn replica_loop<P: Protocol, T: Transport<P::Msg>>(
    nodes: Vec<P>,
    mut io: T,
    metrics: Arc<NodeMetrics>,
    opts: LoopOpts,
) {
    let start = Instant::now();
    let now_ns = || start.elapsed().as_nanos() as Nanos;
    let me = nodes.first().expect("at least one shard").node_id();
    let peers: Vec<NodeId> = opts.members.iter().copied().filter(|&p| p != me).collect();
    // The engines own timers, commits, the KV replicas and reply
    // records; this loop owns only the transport IO. History off: a
    // live cluster serves traffic indefinitely and must not grow
    // per-command records (metrics carry the counters instead).
    let mut nodes = nodes.into_iter();
    let shard_count = nodes.len() as u16;
    let mut engine = ShardedEngine::new(shard_count, |shard| {
        ReplicaEngine::with_reply_mode(
            nodes.next().expect("one node per shard"),
            KvStore::new(),
            ReplyMode::AfterApply,
        )
        .with_history(false)
        .with_shard(shard)
    });
    engine.set_batching(opts.batching);
    let mut effects: Effects<P> = Vec::new();
    // Relaxed reads caught inside a 2PC lock window, waiting it out
    // ("a read arriving inside the gap waits for the lock window to
    // close", §7.5).
    let mut pending_reads: Vec<(NodeId, u64, u64)> = Vec::new();

    engine.start(now_ns(), &mut effects);
    dispatch_effects::<P, T>(&mut effects, &mut io, &metrics);
    publish_engine_stats(&engine.merged_stats(), &metrics);

    // Boot-time catch-up probe: a replica (re)joining a cluster that has
    // been running asks one peer per shard group for a snapshot outright,
    // so a restarted slot rejoins warm even when no client traffic is
    // flowing. On a genuinely fresh cluster every donor refuses (it has
    // nothing newer than watermark 0) and the probes are the end of it.
    for s in 0..shard_count {
        if let Some(&donor) = peers.get((me.0 as usize + s as usize) % peers.len().max(1)) {
            io.send(donor, s, Wire::SnapshotRequest { shard: s, have: 0 });
            metrics.sent.fetch_add(1, Ordering::Relaxed);
        }
    }

    // Per-shard maintenance state: when the current apply gap was first
    // seen (None while there is none), the last observed log base (for
    // the truncation counter), and a rotating donor cursor staggered by
    // node id so concurrent catch-ups spread over the cluster.
    let mut gap_since: Vec<Option<Instant>> = vec![None; shard_count as usize];
    let mut last_base: Vec<Instance> = vec![0; shard_count as usize];
    let mut donor_rr = me.0 as usize;
    let mut last_maint = Instant::now();

    let mut idle_spins: u32 = 0;
    let mut idle_nap = transport::IDLE_NAP_FLOOR;
    let mut last_io = io.stats();
    loop {
        let mut progressed = io.flush();
        // Failure counters move outside the request path (a link dying
        // or healing is not "progress"), so compare-and-republish every
        // iteration; `TransportStats` is `Copy` and the comparison is
        // three integer equality checks.
        let io_stats = io.stats();
        if io_stats != last_io {
            publish_transport_stats(&io_stats, &metrics);
            last_io = io_stats;
        }
        // Fire due timers across every shard group.
        if engine.fire_due(now_ns(), &mut effects) > 0 {
            dispatch_effects::<P, T>(&mut effects, &mut io, &metrics);
            progressed = true;
        }
        // One syscall sweep over every connection, then drain a bounded
        // batch of the decoded messages without further IO.
        io.pump();
        for _ in 0..64 {
            let Some(((from, topic), wire)) = io.recv_ready() else {
                break;
            };
            metrics.received.fetch_add(1, Ordering::Relaxed);
            progressed = true;
            let now = now_ns();
            match wire {
                Wire::Peer(msg) => {
                    // Peer traffic arrives on its group's own topic.
                    engine.handle(
                        ShardId(topic),
                        EngineEvent::Message { from, msg },
                        now,
                        &mut effects,
                    );
                }
                Wire::Request { client, req_id, op } => {
                    // Key-hash routing to the owning group; its batch
                    // accumulator takes over from here.
                    engine.submit(client, req_id, op, now, &mut effects);
                }
                Wire::ReadRelaxed {
                    client,
                    req_id,
                    key,
                } => {
                    if let Some(value) = engine.local_read(key) {
                        io.send(client, CLIENT_TOPIC, Wire::ReadValue { req_id, value });
                        metrics.sent.fetch_add(1, Ordering::Relaxed);
                    } else if engine.supports_local_reads() {
                        // Inside the lock window: wait it out. At most one
                        // pending read per client — clients are synchronous,
                        // so a newer request supersedes anything older, and
                        // the backlog stays bounded by the client count even
                        // if a lock window never closes.
                        pending_reads.retain(|&(c, _, _)| c != client);
                        pending_reads.push((client, req_id, key));
                    } else {
                        // Ordered-reads-only protocol: relaxed degrades
                        // to a linearized read through consensus (routed
                        // to the key's group like any other command).
                        engine.submit(client, req_id, Op::Get { key }, now, &mut effects);
                    }
                }
                Wire::Reply { .. } | Wire::ReadValue { .. } => {} // replicas ignore replies
                Wire::SnapshotRequest { shard, have } => {
                    // Serve a catching-up peer — but only a snapshot
                    // strictly past what it already has, so stale or
                    // boot-time probes against an empty group go
                    // unanswered instead of bouncing watermark-0 state.
                    if shard < shard_count {
                        let snap = engine.snapshot_shard(ShardId(shard));
                        if snap.watermark > have {
                            let watermark = snap.watermark;
                            let bytes = encode_to_vec(&snap);
                            io.send(
                                from,
                                shard,
                                Wire::Snapshot {
                                    shard,
                                    watermark,
                                    bytes,
                                },
                            );
                            metrics.snapshots_served.fetch_add(1, Ordering::Relaxed);
                            metrics.sent.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
                Wire::Snapshot {
                    shard,
                    watermark,
                    bytes,
                } => {
                    // Install iff the payload decodes, matches its
                    // advertised watermark, and is newer than the local
                    // apply frontier (the installer enforces the last
                    // part). The install fast-forwards the applier,
                    // truncates the protocol node's learner state below
                    // the watermark and drops parked out-of-gap commands
                    // the snapshot already covers.
                    if shard < shard_count {
                        if let Ok(snap) = decode_exact::<ApplierSnapshot<KvStore>>(&bytes) {
                            if snap.watermark == watermark
                                && engine.install_shard_snapshot(ShardId(shard), snap)
                            {
                                metrics.snapshots_installed.fetch_add(1, Ordering::Relaxed);
                                gap_since[shard as usize] = None;
                            }
                        }
                    }
                }
                Wire::Shutdown => return,
            }
            dispatch_effects::<P, T>(&mut effects, &mut io, &metrics);
        }
        // Retry relaxed reads whose lock window may have closed.
        if !pending_reads.is_empty() {
            let mut still = Vec::new();
            for (client, req_id, key) in pending_reads.drain(..) {
                match engine.local_read(key) {
                    Some(value) => {
                        io.send(client, CLIENT_TOPIC, Wire::ReadValue { req_id, value });
                        metrics.sent.fetch_add(1, Ordering::Relaxed);
                        progressed = true;
                    }
                    None => still.push((client, req_id, key)),
                }
            }
            pending_reads = still;
        }
        // Low-frequency maintenance: snapshot catch-up and the leader's
        // periodic truncation proposals run off a coarse clock so the
        // per-message path above never scans the shard groups.
        if last_maint.elapsed() >= MAINT_INTERVAL {
            last_maint = Instant::now();
            for s in 0..shard_count {
                let shard = ShardId(s);
                let (backlog, next, base, leading) = {
                    let e = engine.shard(shard);
                    let a = e.applier();
                    (
                        a.gap_backlog(),
                        a.applied_up_to().map_or(0, |i| i + 1),
                        a.log_base(),
                        e.node().is_leader(),
                    )
                };
                if base > last_base[s as usize] {
                    metrics.truncations.fetch_add(1, Ordering::Relaxed);
                    last_base[s as usize] = base;
                }
                // An apply gap that outlives the patience window cannot
                // be assumed replay-fillable — the missing prefix may be
                // truncated on every peer — so fetch a snapshot. The
                // re-arm paces retries and rotates donors until the gap
                // closes (by install or by late-arriving instances).
                if backlog > 0 {
                    let since = *gap_since[s as usize].get_or_insert_with(Instant::now);
                    if since.elapsed() >= GAP_PATIENCE && !peers.is_empty() {
                        let donor = peers[donor_rr % peers.len()];
                        donor_rr += 1;
                        io.send(
                            donor,
                            s,
                            Wire::SnapshotRequest {
                                shard: s,
                                have: next,
                            },
                        );
                        metrics.sent.fetch_add(1, Ordering::Relaxed);
                        gap_since[s as usize] = Some(Instant::now());
                        progressed = true;
                    }
                } else {
                    gap_since[s as usize] = None;
                }
                // Leader-driven agreed truncation: once `every` commands
                // sit applied above the log base, order a Truncate at the
                // applied watermark through the group's own log. Proposed
                // as client `me` (the transport drops the self-addressed
                // reply); req_id = watermark keeps the ids monotone for
                // the applier's session dedup even across restarts of
                // this slot, and makes re-proposals of the same watermark
                // idempotent.
                if let Some(every) = opts.truncate_every {
                    if leading && next.saturating_sub(base) >= every {
                        engine.handle(
                            shard,
                            EngineEvent::ClientRequest {
                                client: me,
                                req_id: next,
                                op: Op::Truncate { watermark: next },
                            },
                            now_ns(),
                            &mut effects,
                        );
                        dispatch_effects::<P, T>(&mut effects, &mut io, &metrics);
                        progressed = true;
                    }
                }
            }
        }
        if progressed {
            idle_spins = 0;
            idle_nap = transport::IDLE_NAP_FLOOR;
            publish_engine_stats(&engine.merged_stats(), &metrics);
        } else if idle_spins < transport::IDLE_SPINS {
            // Recently busy: stay hot for a few polls — inbound frames
            // on loopback usually land within microseconds.
            idle_spins += 1;
            std::thread::yield_now();
        } else {
            // Idle: deschedule instead of burning the core polling (the
            // dev box has far fewer cores than the paper's testbed, so a
            // spinning idle replica steals cycles from the busy ones).
            // The nap escalates from microseconds — a replica dozing
            // between two requests wakes almost instantly — and is
            // bounded by the next protocol timer so retrans / heartbeat
            // deadlines still fire on time.
            let cap = match engine.next_deadline() {
                Some(due) => {
                    Duration::from_nanos(due.saturating_sub(now_ns())).min(transport::IDLE_NAP_CEIL)
                }
                None => transport::IDLE_NAP_CEIL,
            };
            if cap > Duration::ZERO {
                std::thread::sleep(idle_nap.min(cap));
                idle_nap = (idle_nap * 2).min(transport::IDLE_NAP_CEIL);
            }
        }
    }
}

/// Error returned when a command cannot be committed in time.
///
/// Implements [`std::fmt::Display`] and [`std::error::Error`], so it
/// composes with `?` in application code:
///
/// ```
/// use onepaxos::onepaxos::{OnePaxosNode, Timing};
/// use onepaxos::{ClusterConfig, NodeId};
/// use onepaxos_runtime::ClusterBuilder;
///
/// fn demo() -> Result<(), Box<dyn std::error::Error>> {
///     let timing = Timing { tick: 2_000_000, io_timeout: 200_000_000, suspect_after: 400_000_000 };
///     let (cluster, mut clients) = ClusterBuilder::new(3, move |m: &[NodeId], me| {
///         OnePaxosNode::with_timing(ClusterConfig::new(m.to_vec(), me), timing)
///     })
///     .spawn();
///     clients[0].set_timeout(std::time::Duration::from_secs(5));
///     clients[0].put(1, 2)?; // SubmitTimeout converts into Box<dyn Error>
///     assert_eq!(clients[0].get(1)?, Some(2));
///     cluster.shutdown();
///     Ok(())
/// }
/// demo().unwrap();
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SubmitTimeout {
    /// How many send-and-wait attempts the client made before giving
    /// up — the [`RetryPolicy::max_attempts`] in force at the time.
    pub attempts: u32,
}

impl std::fmt::Display for SubmitTimeout {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "request timed out after {} attempts without a reply",
            self.attempts
        )
    }
}

impl std::error::Error for SubmitTimeout {}

/// The client-side retry schedule: capped exponential backoff with
/// jitter, shared by every blocking [`ClientHandle`] operation
/// (`submit`/`put`/`get`/`txn_put`/`get_relaxed`).
///
/// Attempt `n` (zero-based) waits `min(base << n, cap)` plus a random
/// jitter of up to `jitter_permille`‰ of that value before re-sending —
/// to the next replica of the shard group for routed commands, to the
/// same replica for relaxed reads. After `max_attempts` unanswered
/// attempts the operation returns [`SubmitTimeout`] carrying that count.
///
/// The default policy starts at 100 ms (generous because dev machines
/// oversubscribe their cores), doubles to a cap of 800 ms, jitters by up
/// to 25%, and gives up after six attempts —
/// [`ClusterBuilder`]-constructed handles override `max_attempts` to
/// `2 × replicas`, preserving the old every-replica-twice sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// First attempt's patience.
    pub base: Duration,
    /// Upper bound the doubling saturates at.
    pub cap: Duration,
    /// Jitter magnitude in permille of the capped backoff (0–1000);
    /// the actual jitter is drawn uniformly from `[0, magnitude)`.
    pub jitter_permille: u32,
    /// Attempts before giving up (at least 1 is always made).
    pub max_attempts: u32,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            base: Duration::from_millis(100),
            cap: Duration::from_millis(800),
            jitter_permille: 250,
            max_attempts: 6,
        }
    }
}

impl RetryPolicy {
    /// A flat schedule: every attempt waits exactly `timeout`, no
    /// jitter — what [`ClientHandle::set_timeout`] installs, and the
    /// right shape for tests that assert timing.
    pub fn fixed(timeout: Duration, max_attempts: u32) -> Self {
        RetryPolicy {
            base: timeout,
            cap: timeout,
            jitter_permille: 0,
            max_attempts,
        }
    }

    /// The patience for zero-based `attempt`, jittered from `rng`.
    fn timeout_for(&self, attempt: u32, rng: &mut u64) -> Duration {
        let backed = self.base.saturating_mul(1u32 << attempt.min(8));
        let capped = backed.min(self.cap);
        let magnitude = f64::from(self.jitter_permille.min(1000)) / 1000.0;
        let draw = (splitmix64(rng) % 1024) as f64 / 1024.0;
        capped + capped.mul_f64(magnitude * draw)
    }
}

/// A synchronous client: submits one command at a time and waits for its
/// commit acknowledgement, re-targeting replicas on timeout — exactly the
/// closed loop the paper's load generators run (§7.1, §7.6). On a sharded
/// cluster the handle routes each operation to its owning group's
/// preferred replica by key hash; callers stay shard-oblivious.
///
/// Generic over its [`Transport`]: [`ClusterBuilder::spawn`] hands out
/// shared-memory handles (the default parameter), and
/// [`ClusterBuilder::spawn_tcp`] hands out socket-backed ones — same
/// API, same closed loop.
pub struct ClientHandle<M, T = MemTransport<M>> {
    me: NodeId,
    replicas: Vec<NodeId>,
    io: T,
    next_req: u64,
    /// Next transaction sequence number (see `TxnCoordinator`): TxnIds
    /// must stay unique for the handle's lifetime, so the counter lives
    /// here and is resynced through each `txn_put`'s coordinator — a
    /// reused id would make participant shards echo the previous
    /// transaction's recorded outcome instead of staging the new one.
    next_txn_seq: u64,
    router: ShardRouter,
    /// Preferred replica index per shard group, bumped on timeout so a
    /// slow group leader re-targets only its own group's traffic.
    targets: Vec<usize>,
    policy: RetryPolicy,
    /// SplitMix64 state for retry jitter.
    rng: u64,
    _marker: std::marker::PhantomData<fn() -> M>,
}

impl<M, T> std::fmt::Debug for ClientHandle<M, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClientHandle")
            .field("me", &self.me)
            .field("replicas", &self.replicas.len())
            .field("shards", &self.router.shards())
            .field("next_req", &self.next_req)
            .finish_non_exhaustive()
    }
}

impl<M, T> ClientHandle<M, T>
where
    M: Clone + std::fmt::Debug + Send + 'static,
    T: Transport<M>,
{
    fn with_transport(me: NodeId, replicas: Vec<NodeId>, io: T, shards: u16) -> Self {
        let policy = RetryPolicy {
            // Every replica gets its two chances, as the fixed rotate
            // loop always gave it.
            max_attempts: (replicas.len().max(1) * 2) as u32,
            ..RetryPolicy::default()
        };
        ClientHandle {
            me,
            replicas,
            io,
            next_req: 1,
            next_txn_seq: 1,
            router: ShardRouter::new(shards),
            // Per-shard preferred replica: a slow group leader only
            // re-targets its own group's requests.
            targets: vec![0; shards as usize],
            policy,
            rng: 0xC11E_57A7 ^ ((me.0 as u64) << 21),
            _marker: std::marker::PhantomData,
        }
    }

    /// This client's node id.
    pub fn id(&self) -> NodeId {
        self.me
    }

    /// Sets a flat per-attempt patience before re-sending to the next
    /// replica: shorthand for installing
    /// [`RetryPolicy::fixed`]`(t, current max_attempts)`. The default
    /// policy instead backs off exponentially from 100 ms — see
    /// [`RetryPolicy`].
    pub fn set_timeout(&mut self, t: Duration) {
        self.policy = RetryPolicy::fixed(t, self.policy.max_attempts);
    }

    /// Installs a full retry schedule (backoff base/cap, jitter,
    /// attempt budget) shared by every blocking operation on this
    /// handle.
    pub fn set_retry_policy(&mut self, p: RetryPolicy) {
        self.policy = p;
    }

    /// The retry schedule currently in force.
    pub fn retry_policy(&self) -> RetryPolicy {
        self.policy
    }

    /// Severs this client's transport link to `node` (a real socket
    /// shutdown over TCP, a no-op on queue transports) — fault
    /// injection for chaos tests: the next operation must ride the
    /// reconnect lifecycle instead of a healthy socket.
    pub fn kill_connection(&mut self, node: NodeId) {
        self.io.kill_peer_link(node);
    }

    /// Failure counters of this client's own transport (kills it
    /// suffered or injected, reconnects it performed).
    pub fn transport_stats(&self) -> TransportStats {
        self.io.stats()
    }

    /// The shard group that operations on `key` route to.
    pub fn shard_of(&self, key: u64) -> ShardId {
        self.router.route_key(key)
    }

    /// Submits `op` and blocks until it commits, retrying other replicas
    /// on the [`RetryPolicy`]'s backoff schedule. Returns the
    /// state-machine output (previous value for `Put`, current value for
    /// `Get`).
    ///
    /// # Errors
    ///
    /// Returns [`SubmitTimeout`] after [`RetryPolicy::max_attempts`]
    /// unanswered attempts.
    pub fn submit(&mut self, op: Op) -> Result<Option<u64>, SubmitTimeout> {
        let req_id = self.next_req;
        self.next_req += 1;
        let shard = self.router.route(self.me, &op).index();
        let attempts = self.policy.max_attempts.max(1);
        for attempt in 0..attempts {
            let target = self.replicas[self.targets[shard] % self.replicas.len()];
            self.io.send(
                target,
                CLIENT_TOPIC,
                Wire::Request {
                    client: self.me,
                    req_id,
                    op: op.clone(),
                },
            );
            let deadline = Instant::now() + self.policy.timeout_for(attempt, &mut self.rng);
            // The reply comes from the replica the request went to (the
            // advocate), so a socket transport can park on that
            // connection instead of polling.
            while let Some((_, wire)) = self.io.recv_from_deadline(target, deadline) {
                match wire {
                    Wire::Reply {
                        req_id: r, value, ..
                    } if r == req_id => return Ok(value),
                    _ => {} // stale reply for an older request
                }
            }
            // "Once the clients detect the slow leader, they send their
            // requests to other nodes" (§7.6) — per shard group, so one
            // slow group does not un-target the healthy ones.
            self.targets[shard] += 1;
        }
        Err(SubmitTimeout { attempts })
    }

    /// Convenience: replicated write (routed to `key`'s shard group).
    ///
    /// # Errors
    ///
    /// Propagates [`SubmitTimeout`].
    pub fn put(&mut self, key: u64, value: u64) -> Result<Option<u64>, SubmitTimeout> {
        self.submit(Op::Put { key, value })
    }

    /// Convenience: linearized read (ordered through `key`'s shard
    /// group, §7.5).
    ///
    /// # Errors
    ///
    /// Propagates [`SubmitTimeout`].
    pub fn get(&mut self, key: u64) -> Result<Option<u64>, SubmitTimeout> {
        self.submit(Op::Get { key })
    }

    /// Sends one transaction fragment to its shard group's current
    /// preferred replica.
    fn send_fragment(&mut self, f: &Fragment) {
        let target = self.replicas[self.targets[f.shard.index()] % self.replicas.len()];
        self.io.send(
            target,
            CLIENT_TOPIC,
            Wire::Request {
                client: self.me,
                req_id: f.req_id,
                op: f.op.clone(),
            },
        );
    }

    /// Writes several keys **atomically**, across shard groups if their
    /// key hashes demand it: this handle acts as the 2PC coordinator
    /// (see `onepaxos::txn`), sending each shard's fragment over that
    /// group's route and driving PREPARE → COMMIT/ABORT, every phase a
    /// command agreed by the participant group's own log. A write set
    /// owned by one shard short-circuits to a single `Op::MultiPut`
    /// agreement.
    ///
    /// Returns [`TxnOutcome::Committed`] when every touched group voted
    /// yes and applied its fragment, [`TxnOutcome::Aborted`] when a lock
    /// conflict with a concurrent transaction refused the prepare
    /// (nothing was applied anywhere).
    ///
    /// # Errors
    ///
    /// Returns [`SubmitTimeout`] when a shard group stops answering
    /// mid-protocol. The transaction may then be left prepared (locked)
    /// on a subset of groups; resolving it is a coordinator-recovery
    /// pass (`onepaxos::txn::recover_outcome`) once this coordinator is
    /// known dead — the same rule every 2PC deployment lives by.
    pub fn txn_put(&mut self, writes: &[(u64, u64)]) -> Result<TxnOutcome, SubmitTimeout> {
        // The coordinator is rebuilt per call, so BOTH of its counters
        // are seeded from this handle and resynced back at every exit:
        // request ids are shared with plain traffic, and the
        // transaction sequence must never repeat for this client —
        // participant shards remember a finished TxnId's outcome
        // forever, so a reused id would echo the old outcome while
        // silently dropping the new writes.
        let mut coord = TxnCoordinator::with_first_req(self.me, self.router, self.next_req)
            .with_first_seq(self.next_txn_seq);
        let mut to_send = coord.begin(writes);
        // The same patience budget as `submit`, refilled at each phase
        // transition — a slow prepare must not starve the outcome phase
        // of retries once the decision is already in the logs. The
        // backoff schedule restarts with each phase too: consecutive
        // unanswered waits within a phase escalate the patience.
        let phase_budget = self.policy.max_attempts.max(1);
        let mut attempts = phase_budget;
        loop {
            for f in to_send.drain(..) {
                self.send_fragment(&f);
            }
            let waited = phase_budget - attempts;
            let deadline = Instant::now() + self.policy.timeout_for(waited, &mut self.rng);
            let mut progressed = false;
            while let Some((_, wire)) = self.io.recv_deadline(deadline) {
                let Wire::Reply {
                    req_id: r, value, ..
                } = wire
                else {
                    continue; // stale read values etc.
                };
                match coord.on_reply(r, value) {
                    TxnStep::Pending => {
                        // A lock-wait vote queued a fresh-id re-probe:
                        // send it right away — the shard parks it behind
                        // the holder, so the one-window pacing the sim
                        // applies buys nothing on this blocking handle.
                        let deferred = coord.take_deferred();
                        if !deferred.is_empty() {
                            to_send = deferred;
                            attempts = phase_budget;
                            progressed = true;
                            break;
                        }
                    }
                    TxnStep::Submit(next) => {
                        to_send = next;
                        attempts = phase_budget;
                        progressed = true;
                        break;
                    }
                    TxnStep::Decided { outcome, submit } => {
                        // Presumed durability: the votes recorded in the
                        // shard logs force this outcome whether or not
                        // we survive to deliver it, so ack the caller
                        // NOW and fan the outcome legs out
                        // fire-and-forget. A slow participant applies
                        // the outcome from its log whenever it catches
                        // up, and this coordinator's stale
                        // acknowledgements are dropped as unknown ids by
                        // the next call's fresh coordinator.
                        for f in &submit {
                            self.send_fragment(f);
                        }
                        self.io.flush();
                        self.next_req = coord.next_req();
                        self.next_txn_seq = coord.next_seq();
                        return Ok(outcome);
                    }
                    TxnStep::Done(outcome) => {
                        self.next_req = coord.next_req();
                        self.next_txn_seq = coord.next_seq();
                        return Ok(outcome);
                    }
                }
            }
            if !progressed {
                attempts -= 1;
                if attempts == 0 {
                    self.next_req = coord.next_req();
                    // The abandoned transaction's id may sit prepared on
                    // some shards; burning its sequence number keeps any
                    // later txn_put from colliding with it.
                    self.next_txn_seq = coord.next_seq();
                    return Err(SubmitTimeout {
                        attempts: phase_budget,
                    });
                }
                // Re-target each stalled fragment's own group (§7.6,
                // per shard) and re-send; the appliers dedup, the
                // protocols re-answer decided ids.
                to_send = coord.outstanding_fragments();
                for f in &to_send {
                    self.targets[f.shard.index()] += 1;
                }
            }
        }
    }

    /// Relaxed read (§7.5): asks `replica` for its local copy of `key`,
    /// bypassing consensus when the protocol allows it (2PC outside its
    /// lock window). The replica consults the shard group owning `key`;
    /// under an ordered-reads protocol (the Paxos family) it
    /// transparently degrades to a linearized read, so the call is
    /// always answered.
    ///
    /// The value may be stale with respect to commands still in flight —
    /// that is the relaxation.
    ///
    /// # Errors
    ///
    /// Returns [`SubmitTimeout`] if `replica` does not answer in time
    /// (e.g. a 2PC lock window that never closes because the coordinator
    /// is stuck).
    pub fn get_relaxed(&mut self, replica: NodeId, key: u64) -> Result<Option<u64>, SubmitTimeout> {
        let req_id = self.next_req;
        self.next_req += 1;
        // Re-send to the *same* replica on each attempt — a relaxed read
        // targets that replica's local copy by definition, so there is
        // no rotation; the retries ride out a dropped frame or a
        // reconnect window. Reads are idempotent and the replica keeps
        // at most one pending read per client, so re-sending is safe.
        let attempts = self.policy.max_attempts.max(1);
        for attempt in 0..attempts {
            self.io.send(
                replica,
                CLIENT_TOPIC,
                Wire::ReadRelaxed {
                    client: self.me,
                    req_id,
                    key,
                },
            );
            let deadline = Instant::now() + self.policy.timeout_for(attempt, &mut self.rng);
            while let Some((_, wire)) = self.io.recv_deadline(deadline) {
                match wire {
                    Wire::ReadValue { req_id: r, value } if r == req_id => return Ok(value),
                    Wire::Reply {
                        req_id: r, value, ..
                    } if r == req_id => return Ok(value), // served through consensus instead
                    _ => {} // stale reply for an older request
                }
            }
        }
        Err(SubmitTimeout { attempts })
    }

    /// Asks one replica to shut down — fault injection for tests and
    /// demos ("crashes" in the paper's model are slow cores; a stopped
    /// thread is the limit case).
    pub fn stop_replica(&mut self, node: NodeId) {
        self.io.send(node, CLIENT_TOPIC, Wire::Shutdown);
        let deadline = Instant::now() + Duration::from_secs(5);
        while self.io.flush() && Instant::now() < deadline {
            std::thread::yield_now();
        }
    }
}
