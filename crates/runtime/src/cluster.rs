//! Threaded deployment: one OS thread per replica, qc-channel queues
//! between every pair of processes, optional core pinning — the runtime
//! equivalent of the paper's testbed (§6, §7.1), where replicas were
//! assigned to cores with `taskset`.
//!
//! A replica thread owns a [`ShardedEngine`] (one consensus group unless
//! [`ClusterBuilder::shards`] raises it) and does nothing but IO: poll
//! the qc-channel mailbox, feed events to the engines, push
//! [`EngineEffect`]s back onto the wire (with overflow backlogs so a full
//! 7-slot queue never blocks the loop). Timers, commits, replies and the
//! state machines all live in the engines — the same engines the
//! simulator and `TestNet` deploy.
//!
//! Sharding keeps **one OS thread per core**: each replica thread hosts
//! every shard group's member for its slot, and each group gets its own
//! qc-channel *topic* — a dedicated SPSC queue per direction per pair —
//! so group traffic never interleaves inside a queue and the per-shard
//! FIFO order matches the other harnesses. Clients route their requests
//! by key hash ([`ShardRouter`]) with a per-shard target replica, so
//! callers of [`ClientHandle::put`]/[`ClientHandle::get`] stay
//! shard-oblivious.

use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use onepaxos::engine::{BatchConfig, EngineEffect, EngineStats, ReplicaEngine, ReplyMode};
use onepaxos::kv::KvStore;
use onepaxos::shard::{ShardId, ShardRouter, ShardedEffects, ShardedEngine};
use onepaxos::txn::{Fragment, TxnCoordinator, TxnStep};
use onepaxos::{EngineEvent, Nanos, NodeId, Op, Protocol, TxnOutcome};
use qc_channel::{spsc, Mailbox, Receiver, Sender};

use crate::affinity;
use crate::wire::Wire;

/// Queue slots per direction between each pair of processes; the paper's
/// default of seven (§6.1). Overflow is buffered at the sender, so small
/// queues cannot deadlock the node loops.
pub const QUEUE_SLOTS: usize = qc_channel::DEFAULT_SLOTS;

/// The qc-channel topic carrying client↔replica traffic (client links
/// need no per-shard split: requests are routed by the replica engines,
/// replies carry no shard identity).
const CLIENT_TOPIC: u16 = 0;

/// A peer address on the wire: who, on which shard-group topic.
type Peer = (NodeId, u16);

/// The receive sides a process polls: one queue per peer per topic.
type PeerReceivers<M> = Vec<(Peer, Receiver<Wire<M>>)>;

/// The tagged effect stream of one runtime replica's engines.
type Effects<P> = ShardedEffects<<P as Protocol>::Msg, Option<u64>>;

/// Shared per-replica counters.
#[derive(Debug, Default)]
pub struct NodeMetrics {
    /// Messages received from peers and clients.
    pub received: AtomicU64,
    /// Messages sent to peers and clients.
    pub sent: AtomicU64,
    /// Commands committed (applied or queued for application), summed
    /// over shard groups.
    pub committed: AtomicU64,
    /// Batches flushed to the protocols, summed over shard groups (the
    /// replica loop republishes its engines' [`EngineStats`] snapshot
    /// whenever it makes progress; zero with batching off).
    pub batch_flushes: AtomicU64,
    /// Commands those flushes carried, summed over shard groups.
    pub batched_commands: AtomicU64,
    /// Current flush depth: the deepest shard group's learned depth
    /// under adaptive batching, the static `max_commands` under a fixed
    /// config, 1 with batching off.
    pub batch_depth: AtomicU64,
}

/// Outbound side of one process: senders to every peer/topic plus
/// overflow backlogs so a full 7-slot queue never blocks the event loop.
struct NodeIo<M> {
    senders: BTreeMap<Peer, Sender<Wire<M>>>,
    backlog: BTreeMap<Peer, VecDeque<Wire<M>>>,
    sent: u64,
}

impl<M> NodeIo<M> {
    fn new(senders: BTreeMap<Peer, Sender<Wire<M>>>) -> Self {
        NodeIo {
            senders,
            backlog: BTreeMap::new(),
            sent: 0,
        }
    }

    fn send(&mut self, to: NodeId, topic: u16, msg: Wire<M>) {
        self.sent += 1;
        let Some(tx) = self.senders.get(&(to, topic)) else {
            return; // unknown peer: drop (e.g. client already gone)
        };
        let back = self.backlog.entry((to, topic)).or_default();
        if back.is_empty() {
            if let Err(qc_channel::Full(m)) = tx.try_send(msg) {
                back.push_back(m);
            }
        } else {
            back.push_back(msg);
        }
    }

    /// Retries backlogged sends; returns whether any backlog remains.
    fn flush(&mut self) -> bool {
        let mut pending = false;
        for (addr, q) in self.backlog.iter_mut() {
            let Some(tx) = self.senders.get(addr) else {
                q.clear();
                continue;
            };
            while let Some(m) = q.pop_front() {
                if let Err(qc_channel::Full(m)) = tx.try_send(m) {
                    q.push_front(m);
                    pending = true;
                    break;
                }
            }
        }
        pending
    }
}

/// Builder for a threaded cluster.
pub struct ClusterBuilder<P, F> {
    replicas: usize,
    clients: usize,
    shards: u16,
    factory: F,
    pin_cores: bool,
    batching: Option<BatchConfig>,
    _marker: std::marker::PhantomData<fn() -> P>,
}

impl<P, F> std::fmt::Debug for ClusterBuilder<P, F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClusterBuilder")
            .field("replicas", &self.replicas)
            .field("clients", &self.clients)
            .field("shards", &self.shards)
            .field("pin_cores", &self.pin_cores)
            .finish_non_exhaustive()
    }
}

impl<P, F> ClusterBuilder<P, F>
where
    P: Protocol + Send + 'static,
    F: FnMut(&[NodeId], NodeId) -> P,
{
    /// Starts a builder for `replicas` replica processes whose protocol
    /// instances come from `factory(members, me)`.
    pub fn new(replicas: usize, factory: F) -> Self {
        ClusterBuilder {
            replicas,
            clients: 1,
            shards: 1,
            factory,
            pin_cores: false,
            batching: None,
            _marker: std::marker::PhantomData,
        }
    }

    /// Number of client handles to create (each may be used from its own
    /// thread). Default 1.
    pub fn clients(mut self, c: usize) -> Self {
        self.clients = c;
        self
    }

    /// Number of independent consensus groups with key-hash routing
    /// (default 1). `factory` is invoked once per `(shard, replica)`;
    /// each group gets its own qc-channel topic between every replica
    /// pair while the thread count stays one per replica slot.
    ///
    /// # Panics
    ///
    /// `spawn` panics if `s` is zero.
    pub fn shards(mut self, s: u16) -> Self {
        self.shards = s;
        self
    }

    /// Pin replica threads to distinct cores (the paper's `taskset`),
    /// when the machine has enough cores. Best-effort. Default off.
    pub fn pin_cores(mut self, pin: bool) -> Self {
        self.pin_cores = pin;
        self
    }

    /// Enables engine-level command batching on every replica: requests
    /// coalesce into one agreement per batch (amortising the per-message
    /// cost, §3), with per-client replies fanned back out on commit.
    /// Each shard group batches independently — and, under
    /// [`BatchConfig::Adaptive`], learns its own flush depth from its
    /// own load (watch it move via [`NodeMetrics::batch_depth`]). The
    /// flush deadline runs on the replica loop's wall clock. Default off.
    pub fn batching(mut self, cfg: BatchConfig) -> Self {
        self.batching = Some(cfg);
        self
    }

    /// Spawns the replica threads and returns the cluster handle plus one
    /// [`ClientHandle`] per requested client.
    pub fn spawn(mut self) -> (Cluster, Vec<ClientHandle<P::Msg>>) {
        let r = self.replicas;
        let c = self.clients;
        let shards = self.shards;
        assert!(shards >= 1, "need at least one shard");
        let total = r + c;
        let members: Vec<NodeId> = (0..r as u16).map(NodeId).collect();

        // Full mesh of SPSC queues: senders[i][(j, t)] sends i → j on
        // shard-group topic t. Replica pairs get one topic per group;
        // client links use the single CLIENT_TOPIC.
        let mut senders: Vec<BTreeMap<Peer, Sender<Wire<P::Msg>>>> =
            (0..total).map(|_| BTreeMap::new()).collect();
        let mut receivers: Vec<PeerReceivers<P::Msg>> = (0..total).map(|_| Vec::new()).collect();
        #[allow(clippy::needless_range_loop)]
        for i in 0..total {
            for j in 0..total {
                if i == j {
                    continue;
                }
                // Client↔client links are never used; skip them.
                if i >= r && j >= r {
                    continue;
                }
                let topics = if i < r && j < r { shards } else { 1 };
                for t in 0..topics {
                    let (tx, rx) = spsc::channel(QUEUE_SLOTS);
                    senders[i].insert((NodeId(j as u16), t), tx);
                    receivers[j].push(((NodeId(i as u16), t), rx));
                }
            }
        }

        let metrics: Vec<Arc<NodeMetrics>> =
            (0..r).map(|_| Arc::new(NodeMetrics::default())).collect();
        let core_ids = if self.pin_cores {
            affinity::get_core_ids().unwrap_or_default()
        } else {
            Vec::new()
        };

        let mut threads = Vec::new();
        let mut receivers_iter = receivers.into_iter();
        let mut node_receivers: Vec<PeerReceivers<P::Msg>> = Vec::new();
        for _ in 0..r {
            node_receivers.push(receivers_iter.next().expect("replica slot"));
        }
        let client_receivers: Vec<PeerReceivers<P::Msg>> = receivers_iter.collect();

        for (i, rxs) in node_receivers.into_iter().enumerate() {
            let me = members[i];
            // One protocol instance per shard group, all hosted on this
            // slot's single OS thread.
            let nodes: Vec<P> = (0..shards).map(|_| (self.factory)(&members, me)).collect();
            let io = NodeIo::new(std::mem::take(&mut senders[i]));
            let m = Arc::clone(&metrics[i]);
            let core = core_ids.get(i % core_ids.len().max(1)).copied();
            let batching = self.batching;
            let handle = std::thread::Builder::new()
                .name(format!("replica-{}", me))
                .spawn(move || {
                    if let Some(core) = core {
                        let _ = affinity::set_for_current(core);
                    }
                    replica_loop(nodes, rxs, io, m, batching);
                })
                .expect("spawn replica thread");
            threads.push(handle);
        }

        let clients = client_receivers
            .into_iter()
            .enumerate()
            .map(|(j, rxs)| {
                let me = NodeId((r + j) as u16);
                let mut mailbox = Mailbox::new();
                for (peer, rx) in rxs {
                    mailbox.add_peer(peer, rx);
                }
                ClientHandle {
                    me,
                    replicas: members.clone(),
                    io: NodeIo::new(std::mem::take(&mut senders[r + j])),
                    mailbox,
                    next_req: 1,
                    next_txn_seq: 1,
                    router: ShardRouter::new(shards),
                    // Per-shard preferred replica: a slow group leader
                    // only re-targets its own group's requests.
                    targets: vec![0; shards as usize],
                    timeout: Duration::from_millis(100),
                }
            })
            .collect();

        (
            Cluster {
                threads,
                metrics,
                shutdown: ShutdownFan {
                    members: members.clone(),
                },
            },
            clients,
        )
    }
}

struct ShutdownFan {
    members: Vec<NodeId>,
}

/// A running cluster of replica threads.
#[derive(Debug)]
pub struct Cluster {
    threads: Vec<JoinHandle<()>>,
    metrics: Vec<Arc<NodeMetrics>>,
    #[allow(dead_code)]
    shutdown: ShutdownFan,
}

impl std::fmt::Debug for ShutdownFan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShutdownFan")
            .field("members", &self.members)
            .finish()
    }
}

impl Cluster {
    /// Per-replica counters.
    pub fn metrics(&self) -> &[Arc<NodeMetrics>] {
        &self.metrics
    }

    /// Number of replica threads.
    pub fn len(&self) -> usize {
        self.threads.len()
    }

    /// Whether the cluster has no replicas (never true after `spawn`).
    pub fn is_empty(&self) -> bool {
        self.threads.is_empty()
    }

    /// Requests shutdown via a client handle and joins all replica
    /// threads.
    pub fn shutdown<M: Clone + std::fmt::Debug + Send + 'static>(
        self,
        client: &mut ClientHandle<M>,
    ) {
        for &m in client.replicas.clone().iter() {
            client.io.send(m, CLIENT_TOPIC, Wire::Shutdown);
        }
        while client.io.flush() {
            std::thread::yield_now();
        }
        for t in self.threads {
            let _ = t.join();
        }
    }
}

/// Pushes one replica's tagged effects onto the wire: peer messages on
/// their shard group's topic, replies on the client topic. Replies always
/// carry their state-machine output: the engines run in
/// [`ReplyMode::AfterApply`], so an acknowledgement is only released once
/// the command is applied.
fn dispatch_effects<P: Protocol>(
    effects: &mut Effects<P>,
    io: &mut NodeIo<P::Msg>,
    metrics: &NodeMetrics,
) {
    for (shard, effect) in effects.drain(..) {
        match effect {
            EngineEffect::SendTo { to, msg } => {
                io.send(to, shard.0, Wire::Peer(msg));
                metrics.sent.fetch_add(1, Ordering::Relaxed);
            }
            EngineEffect::ReplyTo {
                client,
                req_id,
                instance,
                value,
            } => {
                io.send(
                    client,
                    CLIENT_TOPIC,
                    Wire::Reply {
                        req_id,
                        instance,
                        value: value.flatten(),
                    },
                );
                metrics.sent.fetch_add(1, Ordering::Relaxed);
            }
            EngineEffect::Committed { .. } => {
                metrics.committed.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

/// Republishes a replica's folded batching counters into its shared
/// metrics block, so callers outside the replica thread can watch the
/// adaptive depth move.
fn publish_batch_stats(stats: &EngineStats, metrics: &NodeMetrics) {
    metrics
        .batch_flushes
        .store(stats.flushes, Ordering::Relaxed);
    metrics
        .batched_commands
        .store(stats.flushed_commands, Ordering::Relaxed);
    metrics
        .batch_depth
        .store(stats.depth as u64, Ordering::Relaxed);
}

fn replica_loop<P: Protocol>(
    nodes: Vec<P>,
    rxs: PeerReceivers<P::Msg>,
    mut io: NodeIo<P::Msg>,
    metrics: Arc<NodeMetrics>,
    batching: Option<BatchConfig>,
) {
    let start = Instant::now();
    let now_ns = || start.elapsed().as_nanos() as Nanos;
    let mut mailbox = Mailbox::new();
    for (peer, rx) in rxs {
        mailbox.add_peer(peer, rx);
    }
    // The engines own timers, commits, the KV replicas and reply
    // records; this loop owns only the qc-channel IO and its overflow
    // backlog. History off: a live cluster serves traffic indefinitely
    // and must not grow per-command records (metrics carry the counters
    // instead).
    let mut nodes = nodes.into_iter();
    let shard_count = nodes.len() as u16;
    let mut engine = ShardedEngine::new(shard_count, |shard| {
        ReplicaEngine::with_reply_mode(
            nodes.next().expect("one node per shard"),
            KvStore::new(),
            ReplyMode::AfterApply,
        )
        .with_history(false)
        .with_shard(shard)
    });
    engine.set_batching(batching);
    let mut effects: Effects<P> = Vec::new();
    // Relaxed reads caught inside a 2PC lock window, waiting it out
    // ("a read arriving inside the gap waits for the lock window to
    // close", §7.5).
    let mut pending_reads: Vec<(NodeId, u64, u64)> = Vec::new();

    engine.start(now_ns(), &mut effects);
    dispatch_effects::<P>(&mut effects, &mut io, &metrics);
    publish_batch_stats(&engine.merged_stats(), &metrics);

    loop {
        let mut progressed = io.flush();
        // Fire due timers across every shard group.
        if engine.fire_due(now_ns(), &mut effects) > 0 {
            dispatch_effects::<P>(&mut effects, &mut io, &metrics);
            progressed = true;
        }
        // Drain a bounded batch of inbound messages.
        for _ in 0..64 {
            let Some(((from, topic), wire)) = mailbox.poll() else {
                break;
            };
            metrics.received.fetch_add(1, Ordering::Relaxed);
            progressed = true;
            let now = now_ns();
            match wire {
                Wire::Peer(msg) => {
                    // Peer traffic arrives on its group's own topic.
                    engine.handle(
                        ShardId(topic),
                        EngineEvent::Message { from, msg },
                        now,
                        &mut effects,
                    );
                }
                Wire::Request { client, req_id, op } => {
                    // Key-hash routing to the owning group; its batch
                    // accumulator takes over from here.
                    engine.submit(client, req_id, op, now, &mut effects);
                }
                Wire::ReadRelaxed {
                    client,
                    req_id,
                    key,
                } => {
                    if let Some(value) = engine.local_read(key) {
                        io.send(client, CLIENT_TOPIC, Wire::ReadValue { req_id, value });
                        metrics.sent.fetch_add(1, Ordering::Relaxed);
                    } else if engine.supports_local_reads() {
                        // Inside the lock window: wait it out. At most one
                        // pending read per client — clients are synchronous,
                        // so a newer request supersedes anything older, and
                        // the backlog stays bounded by the client count even
                        // if a lock window never closes.
                        pending_reads.retain(|&(c, _, _)| c != client);
                        pending_reads.push((client, req_id, key));
                    } else {
                        // Ordered-reads-only protocol: relaxed degrades
                        // to a linearized read through consensus (routed
                        // to the key's group like any other command).
                        engine.submit(client, req_id, Op::Get { key }, now, &mut effects);
                    }
                }
                Wire::Reply { .. } | Wire::ReadValue { .. } => {} // replicas ignore replies
                Wire::Shutdown => return,
            }
            dispatch_effects::<P>(&mut effects, &mut io, &metrics);
        }
        // Retry relaxed reads whose lock window may have closed.
        if !pending_reads.is_empty() {
            let mut still = Vec::new();
            for (client, req_id, key) in pending_reads.drain(..) {
                match engine.local_read(key) {
                    Some(value) => {
                        io.send(client, CLIENT_TOPIC, Wire::ReadValue { req_id, value });
                        metrics.sent.fetch_add(1, Ordering::Relaxed);
                        progressed = true;
                    }
                    None => still.push((client, req_id, key)),
                }
            }
            pending_reads = still;
        }
        if progressed {
            publish_batch_stats(&engine.merged_stats(), &metrics);
        } else {
            // Idle: be polite on shared machines (the dev box has far
            // fewer cores than the paper's testbed).
            std::thread::yield_now();
        }
    }
}

/// Error returned when a command cannot be committed in time.
///
/// Implements [`std::fmt::Display`] and [`std::error::Error`], so it
/// composes with `?` in application code:
///
/// ```
/// use onepaxos::onepaxos::{OnePaxosNode, Timing};
/// use onepaxos::{ClusterConfig, NodeId};
/// use onepaxos_runtime::ClusterBuilder;
///
/// fn demo() -> Result<(), Box<dyn std::error::Error>> {
///     let timing = Timing { tick: 2_000_000, io_timeout: 200_000_000, suspect_after: 400_000_000 };
///     let (cluster, mut clients) = ClusterBuilder::new(3, move |m: &[NodeId], me| {
///         OnePaxosNode::with_timing(ClusterConfig::new(m.to_vec(), me), timing)
///     })
///     .spawn();
///     clients[0].set_timeout(std::time::Duration::from_secs(5));
///     clients[0].put(1, 2)?; // SubmitTimeout converts into Box<dyn Error>
///     assert_eq!(clients[0].get(1)?, Some(2));
///     cluster.shutdown(&mut clients[0]);
///     Ok(())
/// }
/// demo().unwrap();
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SubmitTimeout;

impl std::fmt::Display for SubmitTimeout {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("request timed out before the cluster replied")
    }
}

impl std::error::Error for SubmitTimeout {}

/// A synchronous client: submits one command at a time and waits for its
/// commit acknowledgement, re-targeting replicas on timeout — exactly the
/// closed loop the paper's load generators run (§7.1, §7.6). On a sharded
/// cluster the handle routes each operation to its owning group's
/// preferred replica by key hash; callers stay shard-oblivious.
pub struct ClientHandle<M> {
    me: NodeId,
    replicas: Vec<NodeId>,
    io: NodeIo<M>,
    mailbox: Mailbox<Peer, Wire<M>>,
    next_req: u64,
    /// Next transaction sequence number (see `TxnCoordinator`): TxnIds
    /// must stay unique for the handle's lifetime, so the counter lives
    /// here and is resynced through each `txn_put`'s coordinator — a
    /// reused id would make participant shards echo the previous
    /// transaction's recorded outcome instead of staging the new one.
    next_txn_seq: u64,
    router: ShardRouter,
    /// Preferred replica index per shard group, bumped on timeout so a
    /// slow group leader re-targets only its own group's traffic.
    targets: Vec<usize>,
    timeout: Duration,
}

impl<M> std::fmt::Debug for NodeIo<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NodeIo")
            .field("peers", &self.senders.len())
            .field("sent", &self.sent)
            .finish()
    }
}

impl<M> std::fmt::Debug for ClientHandle<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClientHandle")
            .field("me", &self.me)
            .field("replicas", &self.replicas.len())
            .field("shards", &self.router.shards())
            .field("next_req", &self.next_req)
            .finish_non_exhaustive()
    }
}

impl<M: Clone + std::fmt::Debug + Send + 'static> ClientHandle<M> {
    /// This client's node id.
    pub fn id(&self) -> NodeId {
        self.me
    }

    /// Sets the per-attempt patience before re-sending to the next
    /// replica (default 100 ms — generous because the dev machine may
    /// heavily oversubscribe its cores).
    pub fn set_timeout(&mut self, t: Duration) {
        self.timeout = t;
    }

    /// The shard group that operations on `key` route to.
    pub fn shard_of(&self, key: u64) -> ShardId {
        self.router.route_key(key)
    }

    /// Submits `op` and blocks until it commits, retrying other replicas
    /// on timeout. Returns the state-machine output (previous value for
    /// `Put`, current value for `Get`).
    ///
    /// # Errors
    ///
    /// Returns [`SubmitTimeout`] after trying every replica twice without
    /// an acknowledgement.
    pub fn submit(&mut self, op: Op) -> Result<Option<u64>, SubmitTimeout> {
        let req_id = self.next_req;
        self.next_req += 1;
        let shard = self.router.route(self.me, &op).index();
        let attempts = self.replicas.len() * 2;
        for _ in 0..attempts {
            let target = self.replicas[self.targets[shard] % self.replicas.len()];
            self.io.send(
                target,
                CLIENT_TOPIC,
                Wire::Request {
                    client: self.me,
                    req_id,
                    op: op.clone(),
                },
            );
            let deadline = Instant::now() + self.timeout;
            while Instant::now() < deadline {
                self.io.flush();
                match self.mailbox.poll() {
                    Some((
                        _,
                        Wire::Reply {
                            req_id: r, value, ..
                        },
                    )) if r == req_id => {
                        return Ok(value);
                    }
                    Some(_) => {} // stale reply for an older request
                    None => std::thread::yield_now(),
                }
            }
            // "Once the clients detect the slow leader, they send their
            // requests to other nodes" (§7.6) — per shard group, so one
            // slow group does not un-target the healthy ones.
            self.targets[shard] += 1;
        }
        Err(SubmitTimeout)
    }

    /// Convenience: replicated write (routed to `key`'s shard group).
    ///
    /// # Errors
    ///
    /// Propagates [`SubmitTimeout`].
    pub fn put(&mut self, key: u64, value: u64) -> Result<Option<u64>, SubmitTimeout> {
        self.submit(Op::Put { key, value })
    }

    /// Convenience: linearized read (ordered through `key`'s shard
    /// group, §7.5).
    ///
    /// # Errors
    ///
    /// Propagates [`SubmitTimeout`].
    pub fn get(&mut self, key: u64) -> Result<Option<u64>, SubmitTimeout> {
        self.submit(Op::Get { key })
    }

    /// Sends one transaction fragment to its shard group's current
    /// preferred replica.
    fn send_fragment(&mut self, f: &Fragment) {
        let target = self.replicas[self.targets[f.shard.index()] % self.replicas.len()];
        self.io.send(
            target,
            CLIENT_TOPIC,
            Wire::Request {
                client: self.me,
                req_id: f.req_id,
                op: f.op.clone(),
            },
        );
    }

    /// Writes several keys **atomically**, across shard groups if their
    /// key hashes demand it: this handle acts as the 2PC coordinator
    /// (see `onepaxos::txn`), sending each shard's fragment over that
    /// group's route and driving PREPARE → COMMIT/ABORT, every phase a
    /// command agreed by the participant group's own log. A write set
    /// owned by one shard short-circuits to a single `Op::MultiPut`
    /// agreement.
    ///
    /// Returns [`TxnOutcome::Committed`] when every touched group voted
    /// yes and applied its fragment, [`TxnOutcome::Aborted`] when a lock
    /// conflict with a concurrent transaction refused the prepare
    /// (nothing was applied anywhere).
    ///
    /// # Errors
    ///
    /// Returns [`SubmitTimeout`] when a shard group stops answering
    /// mid-protocol. The transaction may then be left prepared (locked)
    /// on a subset of groups; resolving it is a coordinator-recovery
    /// pass (`onepaxos::txn::recover_outcome`) once this coordinator is
    /// known dead — the same rule every 2PC deployment lives by.
    pub fn txn_put(&mut self, writes: &[(u64, u64)]) -> Result<TxnOutcome, SubmitTimeout> {
        // The coordinator is rebuilt per call, so BOTH of its counters
        // are seeded from this handle and resynced back at every exit:
        // request ids are shared with plain traffic, and the
        // transaction sequence must never repeat for this client —
        // participant shards remember a finished TxnId's outcome
        // forever, so a reused id would echo the old outcome while
        // silently dropping the new writes.
        let mut coord = TxnCoordinator::with_first_req(self.me, self.router, self.next_req)
            .with_first_seq(self.next_txn_seq);
        let mut to_send = coord.begin(writes);
        // The same patience budget as `submit`, refilled at each phase
        // transition: every replica of a group gets its two chances per
        // phase — a slow prepare must not starve the outcome phase of
        // retries once the decision is already in the logs.
        let phase_budget = self.replicas.len() * 2;
        let mut attempts = phase_budget;
        loop {
            for f in to_send.drain(..) {
                self.send_fragment(&f);
            }
            let deadline = Instant::now() + self.timeout;
            let mut progressed = false;
            while Instant::now() < deadline {
                self.io.flush();
                match self.mailbox.poll() {
                    Some((
                        _,
                        Wire::Reply {
                            req_id: r, value, ..
                        },
                    )) => match coord.on_reply(r, value) {
                        TxnStep::Pending => {
                            // A lock-wait vote queued a fresh-id
                            // re-probe: send it right away — the shard
                            // parks it behind the holder, so the
                            // one-window pacing the sim applies buys
                            // nothing on this blocking handle.
                            let deferred = coord.take_deferred();
                            if !deferred.is_empty() {
                                to_send = deferred;
                                attempts = phase_budget;
                                progressed = true;
                                break;
                            }
                        }
                        TxnStep::Submit(next) => {
                            to_send = next;
                            attempts = phase_budget;
                            progressed = true;
                            break;
                        }
                        TxnStep::Decided { outcome, submit } => {
                            // Presumed durability: the votes recorded in
                            // the shard logs force this outcome whether
                            // or not we survive to deliver it, so ack
                            // the caller NOW and fan the outcome legs
                            // out fire-and-forget. The transport is
                            // reliable in-process channels; a slow
                            // participant applies the outcome from its
                            // log whenever it catches up, and this
                            // coordinator's stale acknowledgements are
                            // dropped as unknown ids by the next call's
                            // fresh coordinator.
                            for f in &submit {
                                self.send_fragment(f);
                            }
                            self.io.flush();
                            self.next_req = coord.next_req();
                            self.next_txn_seq = coord.next_seq();
                            return Ok(outcome);
                        }
                        TxnStep::Done(outcome) => {
                            self.next_req = coord.next_req();
                            self.next_txn_seq = coord.next_seq();
                            return Ok(outcome);
                        }
                    },
                    Some(_) => {} // stale read values etc.
                    None => std::thread::yield_now(),
                }
            }
            if !progressed {
                attempts -= 1;
                if attempts == 0 {
                    self.next_req = coord.next_req();
                    // The abandoned transaction's id may sit prepared on
                    // some shards; burning its sequence number keeps any
                    // later txn_put from colliding with it.
                    self.next_txn_seq = coord.next_seq();
                    return Err(SubmitTimeout);
                }
                // Re-target each stalled fragment's own group (§7.6,
                // per shard) and re-send; the appliers dedup, the
                // protocols re-answer decided ids.
                to_send = coord.outstanding_fragments();
                for f in &to_send {
                    self.targets[f.shard.index()] += 1;
                }
            }
        }
    }

    /// Relaxed read (§7.5): asks `replica` for its local copy of `key`,
    /// bypassing consensus when the protocol allows it (2PC outside its
    /// lock window). The replica consults the shard group owning `key`;
    /// under an ordered-reads protocol (the Paxos family) it
    /// transparently degrades to a linearized read, so the call is
    /// always answered.
    ///
    /// The value may be stale with respect to commands still in flight —
    /// that is the relaxation.
    ///
    /// # Errors
    ///
    /// Returns [`SubmitTimeout`] if `replica` does not answer in time
    /// (e.g. a 2PC lock window that never closes because the coordinator
    /// is stuck).
    pub fn get_relaxed(&mut self, replica: NodeId, key: u64) -> Result<Option<u64>, SubmitTimeout> {
        let req_id = self.next_req;
        self.next_req += 1;
        self.io.send(
            replica,
            CLIENT_TOPIC,
            Wire::ReadRelaxed {
                client: self.me,
                req_id,
                key,
            },
        );
        let deadline = Instant::now() + self.timeout;
        while Instant::now() < deadline {
            self.io.flush();
            match self.mailbox.poll() {
                Some((_, Wire::ReadValue { req_id: r, value })) if r == req_id => {
                    return Ok(value);
                }
                Some((
                    _,
                    Wire::Reply {
                        req_id: r, value, ..
                    },
                )) if r == req_id => {
                    return Ok(value); // served through consensus instead
                }
                Some(_) => {} // stale reply for an older request
                None => std::thread::yield_now(),
            }
        }
        Err(SubmitTimeout)
    }

    /// Asks one replica to shut down — fault injection for tests and
    /// demos ("crashes" in the paper's model are slow cores; a stopped
    /// thread is the limit case).
    pub fn stop_replica(&mut self, node: NodeId) {
        self.io.send(node, CLIENT_TOPIC, Wire::Shutdown);
        while self.io.flush() {
            std::thread::yield_now();
        }
    }
}
