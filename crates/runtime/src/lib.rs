//! Threaded deployment of the *"Consensus Inside"* protocols over
//! [`qc_channel`] shared-memory message passing.
//!
//! One OS thread per replica, a pair of lock-free SPSC queues between
//! every two processes (§6.1), optional `core_affinity` pinning (the
//! paper's `taskset`, §7.1), and synchronous client handles running the
//! paper's closed loop.
//!
//! # Example
//!
//! ```
//! use onepaxos::onepaxos::{OnePaxosNode, Timing};
//! use onepaxos::{ClusterConfig, Op};
//! use onepaxos_runtime::ClusterBuilder;
//!
//! // Relaxed timeouts: CI machines oversubscribe their cores.
//! let timing = Timing { tick: 2_000_000, io_timeout: 200_000_000, suspect_after: 400_000_000 };
//! let (cluster, mut clients) = ClusterBuilder::new(3, move |m, me| {
//!     OnePaxosNode::with_timing(ClusterConfig::new(m.to_vec(), me), timing)
//! })
//! .clients(1)
//! .spawn();
//! let c = &mut clients[0];
//! assert_eq!(c.put(7, 42).unwrap(), None);
//! assert_eq!(c.get(7).unwrap(), Some(42));
//! cluster.shutdown();
//! ```
//!
//! Swap `.spawn()` for `.spawn_tcp()` and the same replicas, engines and
//! client loop run over loopback TCP sockets instead, every message a
//! length-prefixed [`onepaxos::wire`] frame — see [`Transport`].

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![deny(unsafe_code)]

pub mod affinity;
mod cluster;
mod fault;
mod transport;
mod wire;

pub use cluster::{
    ClientHandle, Cluster, ClusterBuilder, NodeMetrics, RetryPolicy, SubmitTimeout, QUEUE_SLOTS,
};
pub use fault::{FaultPlan, FaultStats, FaultTransport, Partition};
pub use transport::{MemTransport, Peer, TcpTransport, Transport, TransportStats};
pub use wire::Wire;
