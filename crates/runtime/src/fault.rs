//! Deterministic, seeded fault injection at the transport boundary.
//!
//! [`FaultTransport`] wraps any [`Transport`] and perturbs its traffic
//! from a seeded schedule: per-message drops, bounded FIFO-preserving
//! delays, timed partition windows, and connection-kill triggers that
//! fire the inner transport's [`Transport::kill_peer_link`] (a real
//! socket teardown on TCP, exercising the reconnect lifecycle). Every
//! decision comes from a SplitMix64 stream, so a fault scenario is a
//! *reproducible seed* instead of a flaky sleep: the same seed makes
//! the same drop/delay choices in the same order, run after run.
//!
//! Everything injected here stays inside the [`Transport`] delivery
//! contract — drops and kills are what the contract already allows, and
//! delays preserve per-peer FIFO order (a delayed message blocks the
//! messages queued behind it rather than being overtaken) — so the
//! protocols above need no special cases: their retransmission timers
//! absorb whatever this module throws at them. That is the point: a
//! chaos run that finds a safety violation has found a real bug, not an
//! artifact of the harness breaking its own contract.

use std::collections::VecDeque;
use std::time::{Duration, Instant};

use onepaxos::NodeId;

use crate::transport::{splitmix64, Peer, Transport, TransportStats};
use crate::wire::Wire;

/// A timed window during which traffic to and from a peer (or every
/// peer) is silently dropped — the schedule-driven analogue of a
/// network partition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Partition {
    /// Window start, measured from the transport's creation.
    pub start: Duration,
    /// Window length.
    pub duration: Duration,
    /// The peer cut off, or `None` to isolate this endpoint entirely.
    pub peer: Option<NodeId>,
}

impl Partition {
    /// Whether `peer` is unreachable at `elapsed` since transport start.
    fn cuts(&self, peer: NodeId, elapsed: Duration) -> bool {
        (self.peer.is_none() || self.peer == Some(peer))
            && elapsed >= self.start
            && elapsed < self.start + self.duration
    }
}

/// The seeded schedule a [`FaultTransport`] injects.
///
/// Probabilities are per-message permille (0–1000); the RNG stream is
/// consumed one draw per decision, so two runs with the same seed and
/// the same message sequence make identical choices.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    /// Seed for the decision stream.
    pub seed: u64,
    /// Per-message probability (‰) of silently dropping an outbound
    /// message.
    pub drop_permille: u32,
    /// Per-message probability (‰) of delaying an outbound message.
    pub delay_permille: u32,
    /// Upper bound on an injected delay; actual delays are drawn
    /// uniformly from `(0, max_delay]`.
    pub max_delay: Duration,
    /// Timed partition windows.
    pub partitions: Vec<Partition>,
    /// Connection-kill triggers: at each offset from transport start,
    /// sever the link to the named peer via the inner transport's
    /// [`Transport::kill_peer_link`]. Must be sorted by offset.
    pub conn_kills: Vec<(Duration, NodeId)>,
}

impl FaultPlan {
    /// A quiet plan with the given seed: no faults until the knobs are
    /// raised.
    pub fn seeded(seed: u64) -> Self {
        FaultPlan {
            seed,
            drop_permille: 0,
            delay_permille: 0,
            max_delay: Duration::from_millis(1),
            partitions: Vec::new(),
            conn_kills: Vec::new(),
        }
    }

    /// Sets the per-message drop probability in permille.
    pub fn drops(mut self, permille: u32) -> Self {
        self.drop_permille = permille;
        self
    }

    /// Sets the per-message delay probability and the delay cap.
    pub fn delays(mut self, permille: u32, max: Duration) -> Self {
        self.delay_permille = permille;
        self.max_delay = max;
        self
    }

    /// Adds a partition window.
    pub fn partition(mut self, p: Partition) -> Self {
        self.partitions.push(p);
        self
    }

    /// Adds a connection-kill trigger (keep them sorted by offset).
    pub fn kill_at(mut self, at: Duration, peer: NodeId) -> Self {
        self.conn_kills.push((at, peer));
        self
    }

    /// Derives a per-node plan: same knobs, decorrelated seed — so
    /// every process of a cluster runs its own independent decision
    /// stream from one cluster-level seed.
    pub fn for_node(&self, node: NodeId) -> Self {
        let mut p = self.clone();
        let mut s = self.seed ^ ((node.0 as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        p.seed = splitmix64(&mut s);
        p
    }
}

/// Counters of what a [`FaultTransport`] actually injected.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct FaultStats {
    /// Outbound messages silently dropped by the drop dice.
    pub dropped: u64,
    /// Outbound messages held back by the delay dice.
    pub delayed: u64,
    /// Messages (both directions) discarded inside partition windows.
    pub partitioned: u64,
    /// Connection-kill triggers fired into the inner transport.
    pub kills: u64,
}

/// A [`Transport`] decorator injecting faults from a [`FaultPlan`].
///
/// Delayed messages are held in a single release queue whose release
/// times are monotone — a delayed message delays everything queued
/// after it, which is exactly what preserves the per-peer FIFO
/// contract. Held messages re-enter the inner transport from
/// [`flush`](Transport::flush)/[`pump`](Transport::pump), which every
/// event loop already calls each iteration.
pub struct FaultTransport<M, T> {
    inner: T,
    plan: FaultPlan,
    rng: u64,
    start: Instant,
    /// Held-back outbound messages, release times nondecreasing.
    held: VecDeque<(Instant, NodeId, u16, Wire<M>)>,
    next_kill: usize,
    stats: FaultStats,
}

impl<M, T: std::fmt::Debug> std::fmt::Debug for FaultTransport<M, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultTransport")
            .field("inner", &self.inner)
            .field("held", &self.held.len())
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

impl<M, T: Transport<M>> FaultTransport<M, T> {
    /// Wraps `inner`, injecting faults according to `plan`.
    pub fn new(inner: T, plan: FaultPlan) -> Self {
        let rng = plan.seed;
        FaultTransport {
            inner,
            plan,
            rng,
            start: Instant::now(),
            held: VecDeque::new(),
            next_kill: 0,
            stats: FaultStats::default(),
        }
    }

    /// What has been injected so far.
    pub fn fault_stats(&self) -> FaultStats {
        self.stats
    }

    /// The wrapped transport.
    pub fn inner(&self) -> &T {
        &self.inner
    }

    /// One draw from the decision stream in `0..1000`.
    fn roll(&mut self) -> u32 {
        (splitmix64(&mut self.rng) % 1000) as u32
    }

    /// Fires due conn-kill triggers and releases due delayed messages
    /// into the inner transport.
    fn advance(&mut self) {
        let now = Instant::now();
        let elapsed = now - self.start;
        while let Some(&(at, peer)) = self.plan.conn_kills.get(self.next_kill) {
            if elapsed < at {
                break;
            }
            self.inner.kill_peer_link(peer);
            self.stats.kills += 1;
            self.next_kill += 1;
        }
        while let Some(&(release, ..)) = self.held.front() {
            if release > now {
                break;
            }
            let (_, to, topic, msg) = self.held.pop_front().expect("checked front");
            self.inner.send(to, topic, msg);
        }
    }

    /// Whether a message to/from `peer` falls inside a partition window.
    fn partitioned(&self, peer: NodeId) -> bool {
        let elapsed = self.start.elapsed();
        self.plan.partitions.iter().any(|p| p.cuts(peer, elapsed))
    }
}

impl<M: Send, T: Transport<M>> Transport<M> for FaultTransport<M, T> {
    fn send(&mut self, to: NodeId, topic: u16, msg: Wire<M>) {
        self.advance();
        if self.partitioned(to) {
            self.stats.partitioned += 1;
            return;
        }
        // One decision draw per knob per message, taken unconditionally
        // so the stream stays aligned across runs even when a knob is 0.
        let drop_roll = self.roll();
        let delay_roll = self.roll();
        let delay_len = splitmix64(&mut self.rng);
        if drop_roll < self.plan.drop_permille {
            self.stats.dropped += 1;
            return;
        }
        if !self.held.is_empty() || delay_roll < self.plan.delay_permille {
            // FIFO preservation: anything behind a held message queues
            // behind it; release times are clamped monotone.
            let max = self.plan.max_delay.as_nanos().max(1) as u64;
            let extra = if delay_roll < self.plan.delay_permille {
                Duration::from_nanos(delay_len % max + 1)
            } else {
                Duration::ZERO
            };
            let mut release = Instant::now() + extra;
            if let Some(&(last, ..)) = self.held.back() {
                release = release.max(last);
            }
            self.stats.delayed += u64::from(extra > Duration::ZERO);
            self.held.push_back((release, to, topic, msg));
            return;
        }
        self.inner.send(to, topic, msg);
    }

    fn flush(&mut self) -> bool {
        self.advance();
        self.inner.flush() || !self.held.is_empty()
    }

    fn recv(&mut self) -> Option<(Peer, Wire<M>)> {
        self.advance();
        while let Some(((from, topic), msg)) = self.inner.recv() {
            if self.partitioned(from) {
                self.stats.partitioned += 1;
                continue;
            }
            return Some(((from, topic), msg));
        }
        None
    }

    fn pump(&mut self) {
        self.advance();
        self.inner.pump();
    }

    fn recv_ready(&mut self) -> Option<(Peer, Wire<M>)> {
        while let Some(((from, topic), msg)) = self.inner.recv_ready() {
            if self.partitioned(from) {
                self.stats.partitioned += 1;
                continue;
            }
            return Some(((from, topic), msg));
        }
        None
    }

    fn stats(&self) -> TransportStats {
        self.inner.stats()
    }

    fn kill_peer_link(&mut self, peer: NodeId) {
        self.stats.kills += 1;
        self.inner.kill_peer_link(peer);
    }
}
