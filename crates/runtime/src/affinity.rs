//! Best-effort thread-to-core pinning.
//!
//! The paper pins replicas with `taskset` (§7.1). Portable pinning needs a
//! platform crate (`core_affinity`), which this offline build cannot
//! depend on; pinning in the cluster builder is documented as best-effort,
//! so this stub keeps the same call shape and simply reports that pinning
//! was not applied. Swapping the bodies for `core_affinity` calls restores
//! real pinning on a networked build — no caller changes.

/// An assignable core, mirroring `core_affinity::CoreId`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CoreId {
    /// OS core index.
    pub id: usize,
}

/// The cores threads could be pinned to: one id per unit of available
/// parallelism, or `None` when even that cannot be determined.
pub fn get_core_ids() -> Option<Vec<CoreId>> {
    let n = std::thread::available_parallelism().ok()?.get();
    Some((0..n).map(|id| CoreId { id }).collect())
}

/// Requests that the current thread run on `_core`. The stub cannot ask
/// the OS, so it returns `false` ("not pinned") and the caller proceeds
/// unpinned — exactly the documented best-effort behaviour.
pub fn set_for_current(_core: CoreId) -> bool {
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn core_ids_cover_available_parallelism() {
        let ids = get_core_ids().expect("parallelism known");
        assert!(!ids.is_empty());
        assert_eq!(ids[0], CoreId { id: 0 });
    }

    #[test]
    fn stub_pinning_reports_unpinned() {
        assert!(!set_for_current(CoreId { id: 0 }));
    }
}
