//! Wire format between processes: protocol messages plus the client
//! request/reply traffic that the paper treats as ordinary messages.

use onepaxos::{Instance, NodeId, Op};

/// A message travelling over a qc-channel queue between two processes.
#[derive(Clone, Debug)]
pub enum Wire<M> {
    /// A protocol message between replicas.
    Peer(M),
    /// A client command submitted to a replica.
    Request {
        /// Originating client.
        client: NodeId,
        /// Client-local request id.
        req_id: u64,
        /// Operation to replicate.
        op: Op,
    },
    /// A relaxed read (§7.5): served from the replica's local copy when
    /// the protocol allows it, bypassing consensus entirely. A read
    /// arriving inside a 2PC lock window waits at the replica until the
    /// window closes; protocols whose reads must be ordered (the Paxos
    /// family) answer it through consensus instead.
    ReadRelaxed {
        /// Originating client.
        client: NodeId,
        /// Client-local request id.
        req_id: u64,
        /// Key to read.
        key: u64,
    },
    /// A commit acknowledgement back to a client, carrying the
    /// state-machine output (the read value for `Get`s).
    Reply {
        /// The request being acknowledged.
        req_id: u64,
        /// The slot the command committed in.
        instance: Instance,
        /// State-machine output (previous/read value).
        value: Option<u64>,
    },
    /// The answer to a [`Wire::ReadRelaxed`]: the value read from the
    /// replica's local copy. No consensus slot is involved.
    ReadValue {
        /// The request being answered.
        req_id: u64,
        /// The locally read value.
        value: Option<u64>,
    },
    /// Orderly shutdown of the receiving process.
    Shutdown,
}
