//! Wire format between processes: protocol messages plus the client
//! request/reply traffic that the paper treats as ordinary messages.

use onepaxos::wire::{Codec, DecodeError, Reader};
use onepaxos::{Instance, NodeId, Op};

/// A message travelling over a qc-channel queue between two processes.
#[derive(Clone, Debug, PartialEq)]
pub enum Wire<M> {
    /// A protocol message between replicas.
    Peer(M),
    /// A client command submitted to a replica.
    Request {
        /// Originating client.
        client: NodeId,
        /// Client-local request id.
        req_id: u64,
        /// Operation to replicate.
        op: Op,
    },
    /// A relaxed read (§7.5): served from the replica's local copy when
    /// the protocol allows it, bypassing consensus entirely. A read
    /// arriving inside a 2PC lock window waits at the replica until the
    /// window closes; protocols whose reads must be ordered (the Paxos
    /// family) answer it through consensus instead.
    ReadRelaxed {
        /// Originating client.
        client: NodeId,
        /// Client-local request id.
        req_id: u64,
        /// Key to read.
        key: u64,
    },
    /// A commit acknowledgement back to a client, carrying the
    /// state-machine output (the read value for `Get`s).
    Reply {
        /// The request being acknowledged.
        req_id: u64,
        /// The slot the command committed in.
        instance: Instance,
        /// State-machine output (previous/read value).
        value: Option<u64>,
    },
    /// The answer to a [`Wire::ReadRelaxed`]: the value read from the
    /// replica's local copy. No consensus slot is involved.
    ReadValue {
        /// The request being answered.
        req_id: u64,
        /// The locally read value.
        value: Option<u64>,
    },
    /// Orderly shutdown of the receiving process.
    Shutdown,
    /// A lagging replica asking a peer for a state snapshot of one shard
    /// group — the catch-up path once agreed truncation has dropped the
    /// log entries replay would need. `have` is the requester's applied
    /// watermark; the peer answers with a [`Wire::Snapshot`] only when
    /// it can offer a strictly newer one.
    SnapshotRequest {
        /// The shard group to snapshot.
        shard: u16,
        /// The requester's applied watermark (instances below it are
        /// already applied there).
        have: Instance,
    },
    /// A state snapshot of one shard group, answering a
    /// [`Wire::SnapshotRequest`]: the `onepaxos::wire` encoding of an
    /// `ApplierSnapshot` at `watermark`, carried opaquely so the wire
    /// enum stays independent of the state-machine type.
    Snapshot {
        /// The shard group the snapshot belongs to.
        shard: u16,
        /// The instance watermark the snapshot covers up to
        /// (exclusive); duplicated from the payload so a receiver can
        /// discard stale offers without decoding them.
        watermark: Instance,
        /// The encoded `ApplierSnapshot`.
        bytes: Vec<u8>,
    },
}

/// Tag bytes for the [`Wire`] arms on the binary wire (append-only:
/// released tags never change meaning).
mod tag {
    pub const PEER: u8 = 0;
    pub const REQUEST: u8 = 1;
    pub const READ_RELAXED: u8 = 2;
    pub const REPLY: u8 = 3;
    pub const READ_VALUE: u8 = 4;
    pub const SHUTDOWN: u8 = 5;
    pub const SNAPSHOT_REQUEST: u8 = 6;
    pub const SNAPSHOT: u8 = 7;
}

impl<M: Codec> Codec for Wire<M> {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            Wire::Peer(msg) => {
                buf.push(tag::PEER);
                msg.encode(buf);
            }
            Wire::Request { client, req_id, op } => {
                buf.push(tag::REQUEST);
                client.encode(buf);
                req_id.encode(buf);
                op.encode(buf);
            }
            Wire::ReadRelaxed {
                client,
                req_id,
                key,
            } => {
                buf.push(tag::READ_RELAXED);
                client.encode(buf);
                req_id.encode(buf);
                key.encode(buf);
            }
            Wire::Reply {
                req_id,
                instance,
                value,
            } => {
                buf.push(tag::REPLY);
                req_id.encode(buf);
                instance.encode(buf);
                value.encode(buf);
            }
            Wire::ReadValue { req_id, value } => {
                buf.push(tag::READ_VALUE);
                req_id.encode(buf);
                value.encode(buf);
            }
            Wire::Shutdown => buf.push(tag::SHUTDOWN),
            Wire::SnapshotRequest { shard, have } => {
                buf.push(tag::SNAPSHOT_REQUEST);
                shard.encode(buf);
                have.encode(buf);
            }
            Wire::Snapshot {
                shard,
                watermark,
                bytes,
            } => {
                buf.push(tag::SNAPSHOT);
                shard.encode(buf);
                watermark.encode(buf);
                bytes.encode(buf);
            }
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(match r.u8()? {
            tag::PEER => Wire::Peer(M::decode(r)?),
            tag::REQUEST => Wire::Request {
                client: NodeId::decode(r)?,
                req_id: u64::decode(r)?,
                op: Op::decode(r)?,
            },
            tag::READ_RELAXED => Wire::ReadRelaxed {
                client: NodeId::decode(r)?,
                req_id: u64::decode(r)?,
                key: u64::decode(r)?,
            },
            tag::REPLY => Wire::Reply {
                req_id: u64::decode(r)?,
                instance: Instance::decode(r)?,
                value: Option::<u64>::decode(r)?,
            },
            tag::READ_VALUE => Wire::ReadValue {
                req_id: u64::decode(r)?,
                value: Option::<u64>::decode(r)?,
            },
            tag::SHUTDOWN => Wire::Shutdown,
            tag::SNAPSHOT_REQUEST => Wire::SnapshotRequest {
                shard: u16::decode(r)?,
                have: Instance::decode(r)?,
            },
            tag::SNAPSHOT => Wire::Snapshot {
                shard: u16::decode(r)?,
                watermark: Instance::decode(r)?,
                bytes: Vec::<u8>::decode(r)?,
            },
            t => {
                return Err(DecodeError::BadTag {
                    what: "Wire",
                    tag: t,
                })
            }
        })
    }
}
