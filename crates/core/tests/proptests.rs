//! Property-based tests on the core data structures: the quorum learner's
//! order-independence and the RSM applier's determinism under every
//! decided-event ordering.

use onepaxos::basic_paxos::QuorumLearner;
use onepaxos::kv::KvStore;
use onepaxos::rsm::Applier;
use onepaxos::{Ballot, Command, Instance, NodeId, Op};
use proptest::prelude::*;

// --------------------------------------------------------------------
// QuorumLearner: a legal vote multiset decides the same value at every
// learner regardless of delivery order.
// --------------------------------------------------------------------

/// A legal single-instance vote set: one winner ballot with a majority of
/// voters, plus lower-ballot minority votes with arbitrary values (what a
/// real Paxos execution with competing proposers can produce).
#[derive(Clone, Debug)]
struct LegalVotes {
    votes: Vec<(NodeId, Ballot, u32)>,
    winner_value: u32,
}

fn legal_votes(n_acceptors: u16) -> impl Strategy<Value = LegalVotes> {
    let majority = (n_acceptors as usize) / 2 + 1;
    (
        2u32..6,                                                  // winner ballot round
        0u32..100,                                                // winner value
        prop::collection::vec((0u32..100, 0..n_acceptors), 0..4), // losers
    )
        .prop_map(move |(wround, wvalue, losers)| {
            let wballot = Ballot::new(wround, NodeId(0));
            let mut votes: Vec<(NodeId, Ballot, u32)> = (0..majority as u16)
                .map(|a| (NodeId(a), wballot, wvalue))
                .collect();
            // Lower-ballot minority votes: at most majority-1 per ballot.
            for (i, (value, acceptor)) in losers.into_iter().enumerate() {
                let ballot = Ballot::new(1, NodeId(i as u16 + 1));
                votes.push((NodeId(acceptor % n_acceptors), ballot, value));
            }
            LegalVotes {
                votes,
                winner_value: wvalue,
            }
        })
}

proptest! {
    #[test]
    fn learner_is_order_independent(
        lv in legal_votes(5),
        order in prop::collection::vec(any::<prop::sample::Index>(), 16),
    ) {
        let quorum = 3;
        // Learner A: natural order. Learner B: adversarial order with
        // duplicates.
        let mut a: QuorumLearner<u32> = QuorumLearner::new();
        for &(from, bal, v) in &lv.votes {
            a.on_learn(0, from, bal, v, quorum);
        }
        let mut b: QuorumLearner<u32> = QuorumLearner::new();
        for idx in order {
            let &(from, bal, v) = idx.get(&lv.votes);
            b.on_learn(0, from, bal, v, quorum);
        }
        // Feed B the rest too, so it certainly has every vote.
        for &(from, bal, v) in &lv.votes {
            b.on_learn(0, from, bal, v, quorum);
        }
        prop_assert_eq!(a.chosen(0), Some(&lv.winner_value));
        prop_assert_eq!(b.chosen(0), Some(&lv.winner_value));
    }
}

// --------------------------------------------------------------------
// Applier: any delivery order of the same decided log (with duplicates)
// produces the same state and applies each client request at most once.
// --------------------------------------------------------------------

fn decided_log(len: usize) -> impl Strategy<Value = Vec<(Instance, Command)>> {
    prop::collection::vec((0u16..4, 1u64..6, 0u64..8, 0u64..100), 1..=len).prop_map(|entries| {
        entries
            .into_iter()
            .enumerate()
            .map(|(i, (client, req, key, value))| {
                (
                    i as Instance,
                    Command::new(NodeId(client), req, Op::Put { key, value }),
                )
            })
            .collect()
    })
}

proptest! {
    #[test]
    fn applier_is_order_independent(
        log in decided_log(12),
        order in prop::collection::vec(any::<prop::sample::Index>(), 0..40),
    ) {
        // Reference: in-order application.
        let mut reference: Applier<KvStore> = Applier::new(KvStore::new());
        for (inst, cmd) in &log {
            reference.on_decided(*inst, cmd.clone());
        }
        // Adversary: random prefix with duplicates, then completion.
        let mut adversary: Applier<KvStore> = Applier::new(KvStore::new());
        for idx in order {
            let (inst, cmd) = idx.get(&log);
            adversary.on_decided(*inst, cmd.clone());
        }
        for (inst, cmd) in &log {
            adversary.on_decided(*inst, cmd.clone());
        }
        prop_assert_eq!(
            reference.state().digest(),
            adversary.state().digest(),
            "KV state diverged"
        );
        prop_assert_eq!(reference.applied_up_to(), adversary.applied_up_to());
        prop_assert_eq!(reference.applied_log(), adversary.applied_log());
    }

    #[test]
    fn applier_never_reapplies_client_requests(log in decided_log(16)) {
        let mut a: Applier<KvStore> = Applier::new(KvStore::new());
        for (inst, cmd) in &log {
            a.on_decided(*inst, cmd.clone());
        }
        // Writes applied == distinct (client, req_id) pairs whose first
        // occurrence is not masked by a later req_id from the same client
        // appearing earlier in the log.
        let mut sessions: std::collections::BTreeMap<NodeId, u64> = Default::default();
        let mut expected_writes = 0u64;
        for (_, cmd) in &log {
            let last = sessions.get(&cmd.client).copied().unwrap_or(0);
            if cmd.req_id > last {
                sessions.insert(cmd.client, cmd.req_id);
                expected_writes += 1;
            }
        }
        prop_assert_eq!(a.state().writes(), expected_writes);
    }
}
