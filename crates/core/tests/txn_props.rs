//! Property-based tests for cross-shard transactions (`onepaxos::txn`):
//! under arbitrary interleaved transaction/plain-put schedules — with
//! coordinator crashes injected mid-prepare — every transaction is
//! all-or-nothing, no key ever holds a fragment of an aborted
//! transaction, and the final per-key state on every node equals a
//! serial reference execution in which aborted transactions simply never
//! happened.

use std::collections::BTreeMap;

use onepaxos::shard::ShardRouter;
use onepaxos::testnet::TestNet;
use onepaxos::twopc::TwoPcNode;
use onepaxos::txn::{recover_outcome, Fragment, TxnCoordinator, TxnOutcome, TxnStatus};
use onepaxos::{ClusterConfig, NodeId, Op};
use proptest::prelude::*;

const KEYSPACE: u64 = 24;

/// A finished transaction as the GC proptest remembers it:
/// `(id, writes, committed)`.
type FinishedTxn = (onepaxos::TxnId, Vec<(u64, u64)>, bool);

fn make(m: &[NodeId], me: NodeId) -> TwoPcNode {
    TwoPcNode::new(ClusterConfig::new(m.to_vec(), me))
}

/// One step of a schedule. Values are assigned at execution time from a
/// global counter, so every write carries a unique value — which makes
/// "a fragment of an aborted transaction landed" detectable as a plain
/// state mismatch against the serial reference.
#[derive(Clone, Debug)]
enum Step {
    /// A plain put from an independent client.
    Put { client: u16, key: u64 },
    /// A full transaction over `keys` driven to its outcome.
    Txn { keys: Vec<u64> },
    /// A transaction whose coordinator dies mid-prepare: only the
    /// fragments selected by `mask` are ever submitted, then a recovery
    /// coordinator queries the shards and drives the uniquely-safe
    /// outcome.
    Crashed { keys: Vec<u64>, mask: u8 },
}

fn keys_strategy() -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec(0u64..KEYSPACE, 1..5)
}

fn steps(len: usize) -> impl Strategy<Value = Vec<Step>> {
    let step = prop_oneof![
        3 => (0u16..4, 0u64..KEYSPACE).prop_map(|(client, key)| Step::Put { client, key }),
        3 => keys_strategy().prop_map(|keys| Step::Txn { keys }),
        2 => (keys_strategy(), any::<u8>()).prop_map(|(keys, mask)| Step::Crashed { keys, mask }),
    ];
    prop::collection::vec(step, 1..=len)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]
    #[test]
    fn schedules_are_atomic_and_match_a_serial_reference(
        schedule in steps(10),
        shards in 2u16..5,
    ) {
        let mut net = TestNet::builder(3).shards(shards).build(make);
        let router = ShardRouter::new(shards);
        // Serial reference: plain puts and committed transactions apply,
        // aborted transactions never happened.
        let mut reference: BTreeMap<u64, u64> = BTreeMap::new();
        let mut next_val: u64 = 1;
        let mut alloc = |keys: &[u64]| -> Vec<(u64, u64)> {
            keys.iter()
                .map(|&k| {
                    next_val += 1;
                    (k, next_val)
                })
                .collect()
        };
        // Live transactions share one long-lived coordinator; every
        // crashed transaction gets a throwaway one (its ids die with it)
        // plus a distinct recovery coordinator.
        let mut live = TxnCoordinator::new(NodeId(100), router);
        let mut put_reqs = [0u64; 4];
        for (i, step) in schedule.iter().enumerate() {
            let target = NodeId((i % 3) as u16);
            match step {
                Step::Put { client, key } => {
                    let writes = alloc(&[*key]);
                    put_reqs[*client as usize] += 1;
                    net.client_request(
                        target,
                        NodeId(50 + client),
                        put_reqs[*client as usize],
                        Op::Put { key: *key, value: writes[0].1 },
                    );
                    net.run_to_quiescence();
                    reference.insert(*key, writes[0].1);
                }
                Step::Txn { keys } => {
                    let writes = alloc(keys);
                    let outcome = net.run_txn(target, &mut live, &writes);
                    // Serial execution, no coordinator failure: locks are
                    // always free, so the transaction must commit.
                    prop_assert_eq!(outcome, TxnOutcome::Committed);
                    for &(k, v) in &writes {
                        reference.insert(k, v);
                    }
                }
                Step::Crashed { keys, mask } => {
                    let writes = alloc(keys);
                    let mut doomed =
                        TxnCoordinator::new(NodeId(150 + i as u16), router);
                    let frags = doomed.begin(&writes);
                    if frags.len() == 1 {
                        // Single-shard short-circuit: the MultiPut either
                        // decides (coordinator died after submitting) or
                        // never existed. Submit iff the mask lands it.
                        if mask & 1 != 0 {
                            net.submit_fragments(target, doomed.client(), frags);
                            net.run_to_quiescence();
                            for &(k, v) in &writes {
                                reference.insert(k, v);
                            }
                        }
                        continue;
                    }
                    // Multi-shard: land the masked subset of prepares,
                    // then the coordinator is dead.
                    let landed: Vec<Fragment> = frags
                        .into_iter()
                        .enumerate()
                        .filter(|(fi, _)| mask & (1 << (fi % 8)) != 0)
                        .map(|(_, f)| f)
                        .collect();
                    let txn = doomed.current_txn().expect("multi-shard txn");
                    let all_landed =
                        landed.len() == doomed.outstanding_fragments().len();
                    net.submit_fragments(target, doomed.client(), landed);
                    net.run_to_quiescence();
                    // Recovery: query each touched shard's status through
                    // its log (the agreed probe — the only status read
                    // recovery may trust) and drive the uniquely-safe
                    // outcome.
                    let statuses: Vec<TxnStatus> = {
                        let mut shard_keys: BTreeMap<_, u64> = BTreeMap::new();
                        for &(k, _) in &writes {
                            shard_keys.entry(router.route_key(k)).or_insert(k);
                        }
                        shard_keys
                            .values()
                            .map(|&k| net.txn_status_agreed(target, k, txn))
                            .collect()
                    };
                    let outcome = recover_outcome(&statuses);
                    // The matrix: unanimous landed prepares recover to
                    // commit (the dead coordinator could only have decided
                    // commit), anything less aborts.
                    prop_assert_eq!(
                        outcome,
                        if all_landed { TxnOutcome::Committed } else { TxnOutcome::Aborted },
                        "statuses {:?}", statuses
                    );
                    let mut recovery =
                        TxnCoordinator::new(NodeId(200 + i as u16), router);
                    let outcome_frags = recovery.begin_recovery(txn, &writes, outcome);
                    let driven = net.drive_txn(target, &mut recovery, outcome_frags);
                    prop_assert_eq!(driven, outcome);
                    if outcome == TxnOutcome::Committed {
                        for &(k, v) in &writes {
                            reference.insert(k, v);
                        }
                    }
                }
            }
        }
        net.assert_consistent();
        // All-or-nothing, against the serial reference: committed
        // transactions' writes all landed, aborted ones left no
        // fragment anywhere (every write's value is globally unique, so
        // a stray fragment would shows up as a mismatch).
        for n in 0..3u16 {
            prop_assert_eq!(net.txn_locks(NodeId(n)), 0, "locks leaked at node {}", n);
            for key in 0..KEYSPACE {
                prop_assert_eq!(
                    net.kv_get(NodeId(n), key),
                    reference.get(&key).copied(),
                    "node {} key {} diverged from the serial reference", n, key
                );
            }
        }
    }

    #[test]
    fn conflicting_transaction_aborts_cleanly_and_retries_after_recovery(
        shards in 2u16..5,
        seed_key in 0u64..KEYSPACE,
    ) {
        // A crashed coordinator holds locks on its prepared shards; a
        // live transaction overlapping those keys must abort without
        // leaving any fragment, and succeed once recovery releases the
        // locks — lock conflicts compose with all-or-nothing.
        let mut net = TestNet::builder(3).shards(shards).build(make);
        let router = ShardRouter::new(shards);
        // Two keys on distinct shards, the first derived from seed_key.
        let k0 = seed_key;
        let k1 = (0u64..).find(|&k| router.route_key(k) != router.route_key(k0)).unwrap();
        let mut doomed = TxnCoordinator::new(NodeId(150), router);
        let frags = doomed.begin(&[(k0, 1), (k1, 2)]);
        let txn = doomed.current_txn().expect("multi-shard");
        // Only k0's shard ever sees the prepare; then the coordinator dies.
        let keep: Vec<Fragment> = frags
            .into_iter()
            .filter(|f| f.shard == router.route_key(k0))
            .collect();
        net.submit_fragments(NodeId(0), doomed.client(), keep);
        net.run_to_quiescence();
        prop_assert_eq!(net.txn_status(NodeId(1), k0, txn), TxnStatus::Prepared);
        // A live transaction overlapping the locked key must abort…
        let mut live = TxnCoordinator::new(NodeId(100), router);
        let outcome = net.run_txn(NodeId(1), &mut live, &[(k0, 10), (k1, 20)]);
        prop_assert_eq!(outcome, TxnOutcome::Aborted);
        for n in 0..3u16 {
            prop_assert_eq!(net.kv_get(NodeId(n), k0), None, "fragment leaked");
            prop_assert_eq!(net.kv_get(NodeId(n), k1), None, "fragment leaked");
        }
        // …until recovery aborts the crashed one and releases its locks
        // (statuses read through each shard's log via the agreed probe).
        let statuses = [
            net.txn_status_agreed(NodeId(0), k0, txn),
            net.txn_status_agreed(NodeId(0), k1, txn),
        ];
        prop_assert_eq!(recover_outcome(&statuses), TxnOutcome::Aborted);
        let mut recovery = TxnCoordinator::new(NodeId(200), router);
        let outcome_frags =
            recovery.begin_recovery(txn, &[(k0, 1), (k1, 2)], TxnOutcome::Aborted);
        net.drive_txn(NodeId(0), &mut recovery, outcome_frags);
        let retry = net.run_txn(NodeId(1), &mut live, &[(k0, 10), (k1, 20)]);
        prop_assert_eq!(retry, TxnOutcome::Committed);
        for n in 0..3u16 {
            prop_assert_eq!(net.kv_get(NodeId(n), k0), Some(10));
            prop_assert_eq!(net.kv_get(NodeId(n), k1), Some(20));
            prop_assert_eq!(net.txn_locks(NodeId(n)), 0);
        }
        net.assert_consistent();
    }

    // ----------------------------------------------------------------
    // Finished-outcome GC (the bounded `finished` map): under arbitrary
    // schedules of transactions and replayed prepares — including
    // prepares of transactions whose outcome has already been GC'd
    // below the per-coordinator floor — a finished transaction never
    // re-enters its lock window, and the retained outcome map stays
    // bounded by coordinators × FINISHED_WINDOW instead of growing with
    // transaction count.
    // ----------------------------------------------------------------
    #[test]
    fn finished_transactions_never_relock_and_the_outcome_map_stays_bounded(
        schedule in prop::collection::vec(
            (any::<bool>(), any::<bool>(), any::<prop::sample::Index>(), any::<bool>()),
            1..300,
        ),
    ) {
        use onepaxos::kv::{KvStore, FINISHED_WINDOW};
        use onepaxos::rsm::StateMachine;
        use onepaxos::{TxnId, TxnVote};

        let coords = [NodeId(50), NodeId(51)];
        let mut kv = KvStore::new();
        let mut next_seq = [1u64, 1u64];
        // Every transaction this schedule finished: (txn, writes, committed).
        let mut done: Vec<FinishedTxn> = Vec::new();

        for (which, commit, attack, attack_first) in schedule {
            let c = usize::from(which);
            let run_attack = |kv: &mut KvStore, done: &[FinishedTxn]| {
                let Some(&(txn, ref writes, _committed)) = (!done.is_empty())
                    .then(|| &done[attack.index(done.len())])
                else {
                    return Ok(());
                };
                // Replayed prepare of a finished transaction (possibly
                // below the GC floor): must echo an outcome, never park,
                // never stage, never take a lock.
                let vote = kv
                    .apply(Op::TxnPrepare { txn, writes: writes.clone().into() })
                    .and_then(TxnVote::from_output);
                prop_assert!(
                    matches!(vote, Some(TxnVote::Commit) | Some(TxnVote::Abort)),
                    "replayed prepare of finished {txn:?} answered {vote:?}"
                );
                prop_assert!(
                    kv.txn_status(txn) != TxnStatus::Prepared,
                    "finished transaction re-entered its lock window"
                );
                Ok(())
            };

            if attack_first {
                run_attack(&mut kv, &done)?;
            }
            // A fresh transaction: prepare, then immediately finish, so
            // no locks outlive a schedule step (every later lock
            // observation isolates the replay's effect).
            let txn = TxnId::new(coords[c], next_seq[c]);
            next_seq[c] += 1;
            let writes = vec![(txn.seq % 8, txn.seq * 10 + c as u64)];
            let vote = kv
                .apply(Op::TxnPrepare { txn, writes: writes.clone().into() })
                .and_then(TxnVote::from_output);
            prop_assert_eq!(vote, Some(TxnVote::Commit), "uncontended prepare");
            let key = writes[0].0;
            let op = if commit {
                Op::TxnCommit { txn, key }
            } else {
                Op::TxnAbort { txn, key }
            };
            kv.apply(op);
            done.push((txn, writes, commit));
            if !attack_first {
                run_attack(&mut kv, &done)?;
            }

            // Invariants after every step: no lock survives its
            // transaction, and the outcome map is bounded by the
            // per-coordinator retention window.
            prop_assert_eq!(kv.txn_locks(), 0, "a lock leaked");
            prop_assert!(
                kv.finished_len() <= coords.len() * FINISHED_WINDOW as usize,
                "finished map grew to {} for {} coordinators",
                kv.finished_len(),
                coords.len()
            );
        }

        // Replayed prepares only echoed outcomes — they never re-staged
        // or re-applied writes — so each key holds exactly the last
        // committed write in application order.
        let mut expect = std::collections::HashMap::new();
        for (_txn, writes, committed) in &done {
            if *committed {
                expect.insert(writes[0].0, writes[0].1);
            }
        }
        for (k, v) in expect {
            prop_assert_eq!(kv.get(k), Some(v), "key {}", k);
        }
    }
}
