//! Integration tests for the bounded-memory machinery: agreed log
//! truncation (`Op::Truncate` ordered through each shard's own log),
//! the snapshot-install catch-up path, and the regression tests pinning
//! the unbounded-memory bug family — replicas must hold O(state) +
//! O(clients) + O(window) memory no matter how many commands commit.

use onepaxos::onepaxos::OnePaxosNode;
use onepaxos::shard::ShardId;
use onepaxos::testnet::TestNet;
use onepaxos::{ClusterConfig, NodeId, Op};

fn make(m: &[NodeId], me: NodeId) -> OnePaxosNode {
    OnePaxosNode::new(ClusterConfig::new(m.to_vec(), me))
}

fn net(n: u16) -> TestNet<OnePaxosNode> {
    TestNet::new(n, make)
}

const LEADER: NodeId = NodeId(0);
const SHARD: ShardId = ShardId(0);

/// A client driving numbered puts at the leader.
struct Client {
    id: NodeId,
    next: u64,
}

impl Client {
    fn new(id: u16) -> Self {
        Client {
            id: NodeId(id),
            next: 0,
        }
    }

    fn put(&mut self, net: &mut TestNet<OnePaxosNode>, key: u64, value: u64) {
        self.next += 1;
        net.client_request(LEADER, self.id, self.next, Op::Put { key, value });
    }
}

#[test]
fn agreed_truncation_drops_the_prefix_on_every_replica() {
    let mut n = net(3);
    let mut c = Client::new(100);
    for i in 0..20 {
        c.put(&mut n, i % 4, i);
    }
    n.run_to_quiescence();

    let w = n.propose_truncate(LEADER, SHARD);
    assert!(w >= 20, "watermark covers the applied prefix, got {w}");
    n.run_to_quiescence();

    // Every replica applied the same agreed cut — log bases identical,
    // retained logs empty of the pre-watermark prefix.
    for id in 0..3 {
        let a = n.engine(NodeId(id)).applier();
        assert_eq!(a.log_base(), w, "node {id} log base");
        assert!(
            a.applied_log().len() <= 1,
            "node {id} kept {} entries below/at the watermark",
            a.applied_log().len()
        );
    }

    // The group keeps committing normally after the cut.
    for i in 0..10 {
        c.put(&mut n, i % 4, 1_000 + i);
    }
    n.run_to_quiescence();
    n.assert_consistent();
    for id in 0..3 {
        assert_eq!(n.kv_get(NodeId(id), 0), n.kv_get(LEADER, 0));
    }
}

#[test]
fn replica_memory_stays_flat_over_50k_ops_with_periodic_truncation() {
    // The tentpole regression: 50 000 committed commands under periodic
    // agreed truncation must leave every retained-state gauge flat —
    // applied log near the truncation period, reply outputs at
    // O(clients) — instead of growing with the commit count.
    const TOTAL: u64 = 50_000;
    const CHUNK: u64 = 64;
    const TRUNCATE_EVERY: u64 = 1_024;

    let mut n = net(3);
    let mut clients: Vec<Client> = (0..4).map(|j| Client::new(100 + j)).collect();
    let mut since_truncate = 0u64;
    let mut max_log = 0usize;
    let mut max_outputs = 0usize;

    let mut sent = 0u64;
    while sent < TOTAL {
        for _ in 0..CHUNK {
            let c = &mut clients[(sent % 4) as usize];
            c.put(&mut n, sent % 512, sent);
            sent += 1;
        }
        n.run_to_quiescence();
        since_truncate += CHUNK;
        if since_truncate >= TRUNCATE_EVERY {
            since_truncate = 0;
            n.propose_truncate(LEADER, SHARD);
            n.run_to_quiescence();
            for id in 0..3 {
                let a = n.engine(NodeId(id)).applier();
                max_log = max_log.max(a.applied_log().len());
                max_outputs = max_outputs.max(a.outputs_len());
            }
        }
    }
    n.run_to_quiescence();
    n.assert_consistent();

    // All 50k commands actually committed and applied everywhere.
    for id in 0..3 {
        let a = n.engine(NodeId(id)).applier();
        assert!(
            a.applied_up_to().unwrap_or(0) >= TOTAL,
            "node {id} applied only {:?}",
            a.applied_up_to()
        );
        assert_eq!(a.gap_backlog(), 0, "node {id} left a gap");
    }
    // Flatness: the retained log never exceeded a couple of truncation
    // periods (sampled right after each agreed cut quiesced), and the
    // reply outputs never exceeded one per client (+ the probe client).
    assert!(
        max_log < 3 * TRUNCATE_EVERY as usize,
        "applied log grew to {max_log} — truncation is not bounding memory"
    );
    assert!(
        max_outputs <= clients.len() + 1,
        "outputs grew to {max_outputs} for {} clients",
        clients.len()
    );
}

#[test]
fn warm_reset_rejoins_past_a_truncated_prefix() {
    // Once the prefix is truncated, a rebooted replica cannot replay
    // history from instance 0 — the snapshot install is the only way
    // back in. reset_node_warm models exactly the runtime's restart +
    // snapshot-request boot sequence.
    let mut n = net(3);
    let mut c = Client::new(100);
    for i in 0..100 {
        c.put(&mut n, i % 8, i);
    }
    n.run_to_quiescence();
    let w = n.propose_truncate(LEADER, SHARD);
    n.run_to_quiescence();

    // The backup reboots and installs the leader's snapshot: state and
    // watermark jump straight to the donor's, no replay below the cut.
    n.reset_node_warm(NodeId(2), LEADER, || {
        make(&[NodeId(0), NodeId(1), NodeId(2)], NodeId(2))
    });
    let a = n.engine(NodeId(2)).applier();
    assert!(a.applied_up_to().unwrap_or(0) + 1 > w, "not caught up");
    assert_eq!(n.state(NodeId(2)).digest(), n.state(LEADER).digest());

    // And it consumes the live log from the watermark on.
    for i in 0..20 {
        c.put(&mut n, i % 8, 2_000 + i);
    }
    n.run_to_quiescence();
    n.assert_consistent();
    assert_eq!(n.state(NodeId(2)).digest(), n.state(LEADER).digest());
    assert_eq!(n.engine(NodeId(2)).applier().gap_backlog(), 0);
}

#[test]
fn cold_reset_after_truncation_gaps_until_a_snapshot_arrives() {
    // The trigger condition the runtime's maintenance loop watches: a
    // cold-rebooted replica behind a truncated prefix accumulates
    // decided-but-unappliable commands (gap_backlog) that replay can
    // never drain, because nobody retransmits truncated instances. A
    // snapshot install is what clears it.
    let mut n = net(3);
    let mut c = Client::new(100);
    for i in 0..50 {
        c.put(&mut n, i % 8, i);
    }
    n.run_to_quiescence();
    n.propose_truncate(LEADER, SHARD);
    n.run_to_quiescence();

    // Cold reboot: amnesia, no snapshot.
    n.reset_node(NodeId(2), || {
        make(&[NodeId(0), NodeId(1), NodeId(2)], NodeId(2))
    });
    for i in 0..20 {
        c.put(&mut n, i % 8, 3_000 + i);
    }
    n.run_to_quiescence();
    let stats = n.engine_stats(NodeId(2));
    assert!(
        stats.gap_backlog > 0,
        "new commits above the truncated hole must defer, got backlog 0"
    );

    // The snapshot install (what the runtime requests from a peer once
    // the gap persists) clears the backlog and converges the state.
    n.reset_node_warm(NodeId(2), LEADER, || {
        make(&[NodeId(0), NodeId(1), NodeId(2)], NodeId(2))
    });
    n.run_to_quiescence();
    n.assert_consistent();
    assert_eq!(n.engine_stats(NodeId(2)).gap_backlog, 0);
    assert_eq!(n.state(NodeId(2)).digest(), n.state(LEADER).digest());
}
