//! Fault injection for cross-shard transactions (`onepaxos::txn`): a
//! transaction layer is only as real as its failure story. These tests
//! kill the coordinator at every interesting point of the protocol and
//! crash a participant replica mid-prepare, then assert the participants
//! converge to the uniquely-safe outcome — votes and outcomes being
//! ordinary commands in each shard's replicated log is what makes every
//! one of these recoverable.

use onepaxos::onepaxos::OnePaxosNode;
use onepaxos::shard::ShardRouter;
use onepaxos::testnet::TestNet;
use onepaxos::twopc::TwoPcNode;
use onepaxos::txn::{recover_outcome, Fragment, TxnCoordinator, TxnOutcome, TxnStatus};
use onepaxos::{ClusterConfig, NodeId, Op};

fn cfg(m: &[NodeId], me: NodeId) -> ClusterConfig {
    ClusterConfig::new(m.to_vec(), me)
}

/// Two keys owned by two distinct shards of an `s`-way router.
fn cross_shard_keys(s: u16) -> (u64, u64, ShardRouter) {
    let router = ShardRouter::new(s);
    let k0 = 0u64;
    let k1 = (1u64..)
        .find(|&k| router.route_key(k) != router.route_key(k0))
        .expect("router spreads keys");
    (k0, k1, router)
}

#[test]
fn coordinator_crash_after_partial_prepare_recovers_to_abort() {
    // The coordinator dies after PREPARE landed on a strict subset of
    // the touched shards: the prepared shard holds locks (its replicas
    // refuse relaxed reads of the staged keys), and recovery must abort
    // — the missing vote proves no commit was ever sent.
    let mut net = TestNet::builder(3)
        .shards(4)
        .build(|m, me| TwoPcNode::new(cfg(m, me)));
    let (k0, k1, router) = cross_shard_keys(4);
    let mut doomed = TxnCoordinator::new(NodeId(150), router);
    let frags = doomed.begin(&[(k0, 10), (k1, 20)]);
    let txn = doomed.current_txn().expect("multi-shard txn");
    // Only k0's fragment ever reaches its shard; then the coordinator
    // is gone.
    let landed: Vec<Fragment> = frags
        .into_iter()
        .filter(|f| f.shard == router.route_key(k0))
        .collect();
    net.submit_fragments(NodeId(0), doomed.client(), landed);
    net.run_to_quiescence();
    // The prepared shard is inside the transaction's lock window: the
    // vote is recorded, the key is locked on every replica, and the
    // relaxed-read fast path refuses to serve it.
    for n in 0..3u16 {
        assert_eq!(net.txn_status(NodeId(n), k0, txn), TxnStatus::Prepared);
        assert_eq!(net.txn_status(NodeId(n), k1, txn), TxnStatus::Unknown);
        assert_eq!(net.local_read(NodeId(n), k0), None, "locked key served");
        assert_eq!(net.txn_locks(NodeId(n)), 1, "node {n}");
    }
    // Recovery: query every touched shard THROUGH ITS LOG (an agreed
    // Op::TxnStatus probe per shard — a relaxed local read could lag),
    // derive the outcome, drive it.
    let statuses = [
        net.txn_status_agreed(NodeId(0), k0, txn),
        net.txn_status_agreed(NodeId(0), k1, txn),
    ];
    assert_eq!(recover_outcome(&statuses), TxnOutcome::Aborted);
    let mut recovery = TxnCoordinator::new(NodeId(200), router);
    let outcome = recovery.begin_recovery(txn, &[(k0, 10), (k1, 20)], TxnOutcome::Aborted);
    assert_eq!(
        net.drive_txn(NodeId(0), &mut recovery, outcome),
        TxnOutcome::Aborted
    );
    // Converged: locks released, no fragment landed anywhere, the
    // transaction is recorded aborted on both shards, and reads flow.
    for n in 0..3u16 {
        assert_eq!(net.txn_locks(NodeId(n)), 0, "node {n}");
        assert_eq!(net.kv_get(NodeId(n), k0), None, "aborted fragment landed");
        assert_eq!(net.kv_get(NodeId(n), k1), None, "aborted fragment landed");
        assert_eq!(net.txn_status(NodeId(n), k0, txn), TxnStatus::Aborted);
        assert_eq!(net.txn_status(NodeId(n), k1, txn), TxnStatus::Aborted);
        assert_eq!(
            net.local_read(NodeId(n), k0),
            Some(None),
            "window still shut"
        );
    }
    // A late duplicate of the lost prepare must not resurrect the
    // transaction or re-take locks.
    net.client_request(
        NodeId(0),
        NodeId(150),
        9_999,
        Op::TxnPrepare {
            txn,
            writes: vec![(k1, 20)].into(),
        },
    );
    net.run_to_quiescence();
    assert_eq!(net.txn_status(NodeId(1), k1, txn), TxnStatus::Aborted);
    assert_eq!(net.txn_locks(NodeId(1)), 0);
    net.assert_consistent();
}

#[test]
fn coordinator_crash_after_full_prepare_recovers_to_commit() {
    // Every shard voted yes before the coordinator died: the unanimous
    // votes are in the logs, so recovery commits — the dead coordinator
    // could only ever have decided commit.
    let mut net = TestNet::builder(3)
        .shards(4)
        .build(|m, me| TwoPcNode::new(cfg(m, me)));
    let (k0, k1, router) = cross_shard_keys(4);
    let mut doomed = TxnCoordinator::new(NodeId(150), router);
    let frags = doomed.begin(&[(k0, 10), (k1, 20)]);
    let txn = doomed.current_txn().expect("multi-shard txn");
    net.submit_fragments(NodeId(0), doomed.client(), frags);
    net.run_to_quiescence();
    // Status via the agreed per-shard probe — the only status read a
    // real recovery may trust (see recover_outcome's freshness
    // contract).
    let statuses = [
        net.txn_status_agreed(NodeId(0), k0, txn),
        net.txn_status_agreed(NodeId(0), k1, txn),
    ];
    assert_eq!(statuses, [TxnStatus::Prepared, TxnStatus::Prepared]);
    assert_eq!(recover_outcome(&statuses), TxnOutcome::Committed);
    let mut recovery = TxnCoordinator::new(NodeId(200), router);
    let outcome = recovery.begin_recovery(txn, &[(k0, 10), (k1, 20)], TxnOutcome::Committed);
    assert_eq!(
        net.drive_txn(NodeId(0), &mut recovery, outcome),
        TxnOutcome::Committed
    );
    for n in 0..3u16 {
        assert_eq!(net.kv_get(NodeId(n), k0), Some(10), "node {n}");
        assert_eq!(net.kv_get(NodeId(n), k1), Some(20), "node {n}");
        assert_eq!(net.txn_locks(NodeId(n)), 0);
    }
    net.assert_consistent();
}

#[test]
fn recovery_status_must_be_read_through_the_log_not_a_lagging_replica() {
    // The hazard the agreed probe exists for: a replica lagging its
    // shard groups (here: blocked while a quorum commits a transaction)
    // locally reports Unknown for a transaction its shards have already
    // COMMITTED. Feeding that relaxed view to recover_outcome derives
    // Abort against a committed transaction — recovery would then abort
    // shards whose sibling already applied its fragment, breaking
    // atomicity. The agreed probe is ordered through each shard's log,
    // so it cannot under-report no matter which replica lags.
    let mut net = TestNet::builder(3)
        .shards(2)
        .build(|m, me| OnePaxosNode::new(cfg(m, me)));
    net.run_to_quiescence(); // leader adoption in both groups
    let (k0, k1, router) = cross_shard_keys(2);
    net.block(NodeId(2)); // the slow core misses everything from here on
    let mut coord = TxnCoordinator::new(NodeId(100), router);
    let frags = coord.begin(&[(k0, 7), (k1, 8)]);
    let txn = coord.current_txn().expect("multi-shard txn");
    // The surviving quorum (nodes 0 and 1) commits the transaction.
    assert_eq!(
        net.drive_txn(NodeId(0), &mut coord, frags),
        TxnOutcome::Committed
    );
    assert_eq!(net.kv_get(NodeId(0), k0), Some(7));
    // The lagging replica's relaxed local view is stale on both shards…
    let stale = [
        net.txn_status(NodeId(2), k0, txn),
        net.txn_status(NodeId(2), k1, txn),
    ];
    assert_eq!(stale, [TxnStatus::Unknown, TxnStatus::Unknown]);
    // …and would steer recovery to the WRONG outcome — which is exactly
    // why recovery must never consume relaxed status reads.
    assert_eq!(recover_outcome(&stale), TxnOutcome::Aborted);
    // The agreed probe answers from the shard's decided prefix instead.
    let agreed = [
        net.txn_status_agreed(NodeId(0), k0, txn),
        net.txn_status_agreed(NodeId(0), k1, txn),
    ];
    assert_eq!(agreed, [TxnStatus::Committed, TxnStatus::Committed]);
    assert_eq!(recover_outcome(&agreed), TxnOutcome::Committed);
    // Once the slow core catches up, its local view converges too.
    net.unblock(NodeId(2));
    net.run_to_quiescence();
    assert_eq!(net.txn_status(NodeId(2), k0, txn), TxnStatus::Committed);
    assert_eq!(net.txn_status(NodeId(2), k1, txn), TxnStatus::Committed);
    net.assert_consistent();
}

#[test]
fn coordinator_crash_while_parked_leaves_no_zombie_waiter() {
    // A conflicting prepare from an OLDER transaction parks in the
    // shard's lock-wait queue instead of voting no. Parked entries
    // stage nothing and hold no locks — so a coordinator that dies
    // while parked must be cleaned up by ordinary recovery: the parked
    // shard reports Unknown, the recovery abort purges the queue entry,
    // and the dead transaction can never be granted the lock later.
    let mut net = TestNet::builder(3)
        .shards(4)
        .build(|m, me| TwoPcNode::new(cfg(m, me)));
    let (k0, k1, router) = cross_shard_keys(4);
    // The HOLDER: a younger coordinator (higher TxnId) whose prepare
    // lands on k0's shard only, taking the lock — then it dies.
    let mut holder = TxnCoordinator::new(NodeId(200), router);
    let h_frags = holder.begin(&[(k0, 1), (k1, 2)]);
    let h_txn = holder.current_txn().expect("multi-shard txn");
    let landed: Vec<Fragment> = h_frags
        .into_iter()
        .filter(|f| f.shard == router.route_key(k0))
        .collect();
    net.submit_fragments(NodeId(0), holder.client(), landed);
    net.run_to_quiescence();
    assert_eq!(net.txn_locks(NodeId(0)), 1);
    // The WAITER: an older coordinator (lower TxnId) conflicts on k0;
    // wait-die parks it behind the holder. Then it dies too.
    let mut waiter = TxnCoordinator::new(NodeId(100), router);
    let w_frags = waiter.begin(&[(k0, 10), (k1, 20)]);
    let w_txn = waiter.current_txn().expect("multi-shard txn");
    net.submit_fragments(NodeId(0), waiter.client(), w_frags);
    net.run_to_quiescence();
    for n in 0..3u16 {
        assert_eq!(net.txn_parked(NodeId(n)), 1, "node {n} parked queue");
        // Parked ≠ prepared: the waiter staged nothing on k0…
        assert_eq!(net.txn_status(NodeId(n), k0, w_txn), TxnStatus::Unknown);
        // …though its k1 fragment prepared normally.
        assert_eq!(net.txn_status(NodeId(n), k1, w_txn), TxnStatus::Prepared);
    }
    // Recovery reaches the waiter first, while it is still parked:
    // Unknown on k0 proves no commit could have been acked.
    let statuses = [
        net.txn_status_agreed(NodeId(0), k0, w_txn),
        net.txn_status_agreed(NodeId(0), k1, w_txn),
    ];
    assert_eq!(recover_outcome(&statuses), TxnOutcome::Aborted);
    let mut rec_w = TxnCoordinator::new(NodeId(300), router);
    let frags = rec_w.begin_recovery(w_txn, &[(k0, 10), (k1, 20)], TxnOutcome::Aborted);
    assert_eq!(
        net.drive_txn(NodeId(0), &mut rec_w, frags),
        TxnOutcome::Aborted
    );
    // The abort purged the queue entry — no zombie waiter survives.
    for n in 0..3u16 {
        assert_eq!(net.txn_parked(NodeId(n)), 0, "zombie waiter on node {n}");
        assert_eq!(net.txn_status(NodeId(n), k0, w_txn), TxnStatus::Aborted);
    }
    // Now recover the holder (partial prepare → abort). Releasing its
    // lock must NOT hand it to the dead waiter: the entry is gone and
    // the waiter's transaction is recorded aborted.
    let statuses = [
        net.txn_status_agreed(NodeId(0), k0, h_txn),
        net.txn_status_agreed(NodeId(0), k1, h_txn),
    ];
    assert_eq!(recover_outcome(&statuses), TxnOutcome::Aborted);
    let mut rec_h = TxnCoordinator::new(NodeId(301), router);
    let frags = rec_h.begin_recovery(h_txn, &[(k0, 1), (k1, 2)], TxnOutcome::Aborted);
    assert_eq!(
        net.drive_txn(NodeId(0), &mut rec_h, frags),
        TxnOutcome::Aborted
    );
    for n in 0..3u16 {
        assert_eq!(net.txn_locks(NodeId(n)), 0, "node {n}");
        assert_eq!(net.txn_parked(NodeId(n)), 0, "node {n}");
        assert_eq!(net.kv_get(NodeId(n), k0), None);
    }
    // A late duplicate of the waiter's lost prepare re-parks nothing —
    // the recorded outcome is echoed instead of a fresh wait.
    net.client_request(
        NodeId(0),
        NodeId(100),
        9_999,
        Op::TxnPrepare {
            txn: w_txn,
            writes: vec![(k0, 10)].into(),
        },
    );
    net.run_to_quiescence();
    assert_eq!(net.txn_parked(NodeId(1)), 0);
    assert_eq!(net.txn_locks(NodeId(1)), 0);
    // The lane is clear: a fresh transaction over the same keys commits.
    let mut fresh = TxnCoordinator::new(NodeId(400), router);
    let outcome = net.run_txn(NodeId(0), &mut fresh, &[(k0, 77), (k1, 88)]);
    assert_eq!(outcome, TxnOutcome::Committed);
    assert_eq!(net.kv_get(NodeId(0), k0), Some(77));
    net.assert_consistent();
}

#[test]
fn participant_replica_crash_mid_prepare_cannot_lose_the_vote() {
    // The 2PC-over-Paxos payoff: the vote is a decided command in the
    // shard's replicated log, so crashing a participant replica between
    // prepare and outcome loses nothing — the surviving quorum carries
    // both the vote and the outcome. (In plain 2PC, per §2.2, this
    // crash would block every update forever.)
    let mut net = TestNet::builder(3)
        .shards(2)
        .build(|m, me| OnePaxosNode::new(cfg(m, me)));
    net.run_to_quiescence(); // leader adoption in both groups
    let (k0, k1, router) = cross_shard_keys(2);
    let mut coord = TxnCoordinator::new(NodeId(100), router);
    let frags = coord.begin(&[(k0, 7), (k1, 8)]);
    let txn = coord.current_txn().expect("multi-shard txn");
    let prepare_reqs: Vec<u64> = frags.iter().map(|f| f.req_id).collect();
    net.submit_fragments(NodeId(0), coord.client(), frags);
    net.run_to_quiescence();
    // Both prepares decided; the lock window is open on every replica.
    assert_eq!(net.txn_status(NodeId(0), k0, txn), TxnStatus::Prepared);
    assert_eq!(net.txn_status(NodeId(0), k1, txn), TxnStatus::Prepared);
    // Mid-prepare, a participant replica silently reboots, losing all
    // of its shard-group state (the paper's silently rebooted node).
    let c2 = cfg(&[NodeId(0), NodeId(1), NodeId(2)], NodeId(2));
    net.reset_node(NodeId(2), || OnePaxosNode::new(c2.clone()));
    // The votes survive in the shard logs held by the quorum: both
    // prepare commands sit decided at the leader…
    for &k in &[k0, k1] {
        let shard = router.route_key(k);
        let vote_logged = net
            .shard_commits(NodeId(0), shard)
            .values()
            .any(|c| matches!(&c.op, Op::TxnPrepare { txn: t, .. } if *t == txn));
        assert!(vote_logged, "vote missing from shard {shard}'s log");
    }
    // …so the coordinator finishes the transaction as if nothing
    // happened: feed it the recorded votes (forcing the early-acked
    // commit decision) and drive the outcome fan-out.
    let mut outcome_frags = Vec::new();
    for r in net.replies().iter().filter(|r| r.client == NodeId(100)) {
        if prepare_reqs.contains(&r.req_id) {
            if let onepaxos::txn::TxnStep::Decided {
                outcome: TxnOutcome::Committed,
                submit,
            } = coord.on_reply(r.req_id, r.value)
            {
                outcome_frags = submit;
            }
        }
    }
    assert!(
        !outcome_frags.is_empty(),
        "votes did not reach the coordinator"
    );
    // Fan the commit out and drain the acknowledgements.
    let seen = net.replies().len();
    net.submit_fragments(NodeId(0), coord.client(), outcome_frags);
    net.run_to_quiescence();
    for r in net.replies()[seen..].iter().copied() {
        if r.client == coord.client() {
            coord.on_reply(r.req_id, r.value);
        }
    }
    assert!(!coord.draining(), "commit fan-out did not drain");
    // The surviving replicas hold the full write set atomically.
    for n in 0..2u16 {
        assert_eq!(net.kv_get(NodeId(n), k0), Some(7), "node {n}");
        assert_eq!(net.kv_get(NodeId(n), k1), Some(8), "node {n}");
        assert_eq!(net.txn_locks(NodeId(n)), 0);
        assert_eq!(net.txn_status(NodeId(n), k0, txn), TxnStatus::Committed);
    }
    // The harness oracle (which outlives the reboot) saw no divergence.
    net.assert_consistent();
}
