//! Property-based tests for key-hash shard routing and the sharded
//! harness: routing is deterministic and key-stable, and a sharded
//! deployment's per-key final state is indistinguishable from an
//! unsharded one on the same command sequence.

use onepaxos::shard::{ShardId, ShardRouter};
use onepaxos::testnet::TestNet;
use onepaxos::twopc::TwoPcNode;
use onepaxos::{ClusterConfig, NodeId, Op};
use proptest::prelude::*;

// --------------------------------------------------------------------
// Routing: a pure function of (key, shard count). Same key → same shard,
// on every router instance, forever; and every shard id is in range.
// --------------------------------------------------------------------

proptest! {
    #[test]
    fn routing_is_deterministic_and_key_stable(
        keys in prop::collection::vec(any::<u64>(), 1..64),
        shards in 1u16..9,
    ) {
        let a = ShardRouter::new(shards);
        let b = ShardRouter::new(shards);
        for &key in &keys {
            let s = a.route_key(key);
            prop_assert!(s.0 < shards, "shard {s} out of range for {shards}");
            // Stable across calls and across independently built routers
            // (nodes, clients and reboots all agree with no coordination).
            prop_assert_eq!(s, a.route_key(key));
            prop_assert_eq!(s, b.route_key(key));
            // Keyed operations route exactly like their key, regardless
            // of the submitting client.
            prop_assert_eq!(s, a.route(NodeId(0), &Op::Get { key }));
            prop_assert_eq!(s, a.route(NodeId(7), &Op::Put { key, value: 1 }));
        }
    }

    #[test]
    fn keyless_commands_route_by_client_and_stay_stable(
        clients in prop::collection::vec(0u16..128, 1..32),
        shards in 1u16..9,
    ) {
        let r = ShardRouter::new(shards);
        for &c in &clients {
            let s = r.route(NodeId(c), &Op::Noop);
            prop_assert!(s.0 < shards);
            prop_assert_eq!(s, r.route(NodeId(c), &Op::Noop));
        }
    }
}

// --------------------------------------------------------------------
// Sharded == unsharded: the same command sequence through an S-shard
// TestNet and a 1-shard TestNet ends in the same per-key KV state and
// the same number of client replies. 2PC decides at quiescence with all
// nodes healthy, so each submitted command is fully settled before the
// next — the routing layer is the only variable.
// --------------------------------------------------------------------

/// A random command sequence: per-client monotone req_ids, small key
/// space (collisions across shards guaranteed), puts and reads.
fn command_seq(len: usize) -> impl Strategy<Value = Vec<(u16, u64, u64, bool)>> {
    prop::collection::vec((0u16..4, 0u64..16, 0u64..1_000, any::<bool>()), 1..=len)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]
    #[test]
    fn sharded_run_matches_unsharded_per_key_state(
        seq in command_seq(24),
        shards in 2u16..6,
        nodes in 2u16..4,
    ) {
        let make = |m: &[NodeId], me: NodeId| TwoPcNode::new(ClusterConfig::new(m.to_vec(), me));
        let mut plain = TestNet::new(nodes, make);
        let mut sharded = TestNet::builder(nodes).shards(shards).build(make);
        for (i, &(client, key, value, is_put)) in seq.iter().enumerate() {
            let op = if is_put {
                Op::Put { key, value }
            } else {
                Op::Get { key }
            };
            let req_id = i as u64 + 1;
            let target = NodeId((i % nodes as usize) as u16);
            plain.client_request(target, NodeId(100 + client), req_id, op.clone());
            plain.run_to_quiescence();
            let owner = sharded.client_request(target, NodeId(100 + client), req_id, op);
            prop_assert_eq!(
                owner,
                sharded.sharded_engine(target).router().route_key(key),
                "request routed off its key"
            );
            sharded.run_to_quiescence();
        }
        plain.assert_consistent();
        sharded.assert_consistent();
        // Same replies answered, same per-key final state on every node.
        prop_assert_eq!(plain.replies().len(), sharded.replies().len());
        for n in 0..nodes {
            for key in 0..16u64 {
                prop_assert_eq!(
                    plain.state(NodeId(n)).get(key),
                    sharded.kv_get(NodeId(n), key),
                    "node {} key {} diverged", n, key
                );
            }
            // And the sharded node's merged contents contain nothing
            // beyond the unsharded state (no stray keys on wrong shards).
            let merged: std::collections::BTreeMap<u64, u64> = (0..shards)
                .map(ShardId)
                .flat_map(|s| {
                    sharded
                        .sharded_engine(NodeId(n))
                        .shard(s)
                        .state()
                        .entries()
                        .collect::<Vec<_>>()
                })
                .collect();
            let reference: std::collections::BTreeMap<u64, u64> =
                plain.state(NodeId(n)).entries().collect();
            prop_assert_eq!(merged, reference, "node {} merged contents diverged", n);
        }
    }

    #[test]
    fn shard_key_sets_are_disjoint_after_a_sharded_run(
        seq in command_seq(20),
        shards in 2u16..6,
    ) {
        let make = |m: &[NodeId], me: NodeId| TwoPcNode::new(ClusterConfig::new(m.to_vec(), me));
        let mut net = TestNet::builder(3).shards(shards).build(make);
        for (i, &(client, key, value, _)) in seq.iter().enumerate() {
            net.client_request(
                NodeId(0),
                NodeId(100 + client),
                i as u64 + 1,
                Op::Put { key, value },
            );
            net.run_to_quiescence();
        }
        // Each key lives on exactly the shard the router names, nowhere
        // else — key-stability observed through the applied replicas.
        for n in 0..3u16 {
            let router = net.sharded_engine(NodeId(n)).router();
            for s in (0..shards).map(ShardId) {
                for (key, _) in net.sharded_engine(NodeId(n)).shard(s).state().entries() {
                    prop_assert_eq!(
                        router.route_key(key),
                        s,
                        "key {} applied on shard {} at node {}", key, s, n
                    );
                }
            }
        }
    }
}
