//! Property-based liveness tests for the ordered-lock fast path
//! (`onepaxos::txn` + the `KvStore` lock-wait queue): any set of
//! concurrently-driven transactions with arbitrarily overlapping write
//! sets drains — every coordinator reaches an outcome (no deadlock, no
//! starvation), every lock and every lock-wait queue entry is released,
//! and committed transactions land atomically.
//!
//! Why this holds, in two parts the generator attacks directly:
//!
//! * **No deadlock.** Coordinators emit prepares in shard-id order and
//!   shards park a conflicting prepare only under wait-die (the
//!   requester's `TxnId` is older than every holder it conflicts with),
//!   so every wait edge points old → young and no cycle can form.
//!   Younger conflicters get a retryable busy vote instead of an edge.
//! * **No starvation.** A parked prepare is granted in arrival order
//!   when the holder finishes; a coordinator that waits or retries past
//!   its patience budget aborts — so even pathological conflict chains
//!   terminate within a bounded number of rounds.

use proptest::prelude::*;

use onepaxos::shard::ShardRouter;
use onepaxos::testnet::TestNet;
use onepaxos::twopc::TwoPcNode;
use onepaxos::txn::{Fragment, TxnCoordinator, TxnOutcome, TxnStep};
use onepaxos::{ClusterConfig, NodeId};

/// Small keyspace on purpose: with up to six transactions over eight
/// keys, most generated schedules conflict somewhere and many conflict
/// in chains — exactly the shapes that would deadlock an unordered
/// lock protocol.
const KEYSPACE: u64 = 8;

fn make(m: &[NodeId], me: NodeId) -> TwoPcNode {
    TwoPcNode::new(ClusterConfig::new(m.to_vec(), me))
}

/// One concurrently-driven transaction: a coordinator, the fragments it
/// wants on the wire, and its reply cursor into the harness log.
struct Driver {
    coord: TxnCoordinator,
    frags: Vec<Fragment>,
    outcome: Option<TxnOutcome>,
    seen: usize,
}

impl Driver {
    fn done(&self) -> bool {
        self.outcome.is_some() && !self.coord.draining()
    }
}

/// Interleaves every live transaction through the same network: each
/// round submits whatever every coordinator has pending, settles the
/// network once, then feeds each coordinator its replies. This is the
/// schedule a real contended deployment produces — prepares from
/// different transactions race into the same shard logs.
fn drive_concurrently(net: &mut TestNet<TwoPcNode>, drivers: &mut [Driver], rounds: usize) {
    for round in 0..rounds {
        for d in drivers.iter_mut() {
            if !d.done() {
                let frags = std::mem::take(&mut d.frags);
                net.submit_fragments(NodeId(0), d.coord.client(), frags);
            }
        }
        net.run_to_quiescence();
        if round > 0 {
            net.advance_and_settle(200_000, 1);
        }
        let replies = net.replies().to_vec();
        for d in drivers.iter_mut() {
            let mut step = TxnStep::Pending;
            while d.seen < replies.len() {
                let r = replies[d.seen];
                d.seen += 1;
                if r.client != d.coord.client() {
                    continue;
                }
                match d.coord.on_reply(r.req_id, r.value) {
                    TxnStep::Pending => {}
                    next => step = next,
                }
            }
            match step {
                TxnStep::Done(outcome) => d.outcome = Some(outcome),
                TxnStep::Decided { outcome, submit } => {
                    d.outcome = Some(outcome);
                    d.frags = submit;
                }
                TxnStep::Submit(next) => d.frags = next,
                TxnStep::Pending => {
                    // Deferred lock-wait re-probes go straight back out;
                    // the one-window delay is a throughput lever, not a
                    // correctness one.
                    d.coord.take_deferred();
                    if !d.done() {
                        d.frags = d.coord.outstanding_fragments();
                    }
                }
            }
        }
        if drivers.iter().all(Driver::done) {
            return;
        }
    }
    let stuck: Vec<NodeId> = drivers
        .iter()
        .filter(|d| !d.done())
        .map(|d| d.coord.client())
        .collect();
    panic!("transactions starved or deadlocked: {stuck:?} never finished");
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]
    #[test]
    fn conflicting_schedules_never_deadlock_or_starve(
        write_sets in prop::collection::vec(
            prop::collection::vec(0u64..KEYSPACE, 1..4),
            2..=6,
        ),
        shards in 2u16..5,
    ) {
        let mut net = TestNet::builder(3).shards(shards).build(make);
        let router = ShardRouter::new(shards);
        // Unique values everywhere: value = 100*driver + key slot, so
        // any byte of an aborted transaction surviving in the store is
        // detectable by provenance.
        let mut drivers: Vec<Driver> = Vec::new();
        let mut writes_of: Vec<Vec<(u64, u64)>> = Vec::new();
        for (i, set) in write_sets.iter().enumerate() {
            let mut keys = set.clone();
            keys.sort_unstable();
            keys.dedup();
            let writes: Vec<(u64, u64)> = keys
                .iter()
                .enumerate()
                .map(|(j, &k)| (k, 100 * (i as u64 + 1) + j as u64))
                .collect();
            let coord = TxnCoordinator::new(NodeId(100 + i as u16), router);
            writes_of.push(writes);
            drivers.push(Driver { coord, frags: Vec::new(), outcome: None, seen: 0 });
        }
        for (d, writes) in drivers.iter_mut().zip(&writes_of) {
            d.frags = d.coord.begin(writes);
        }
        // LIVENESS: every transaction reaches an outcome within the
        // round budget, no matter how the write sets overlap.
        drive_concurrently(&mut net, &mut drivers, 192);
        // No residue: all locks released, no parked waiter left behind.
        for n in 0..3u16 {
            prop_assert_eq!(net.txn_locks(NodeId(n)), 0, "locks on node {}", n);
            prop_assert_eq!(net.txn_parked(NodeId(n)), 0, "waiters on node {}", n);
        }
        // ATOMICITY/PROVENANCE: a committed transaction's keys hold its
        // values unless a competing COMMITTED transaction overwrote
        // them; keys only aborted transactions wrote hold nothing.
        let committed: Vec<usize> = drivers
            .iter()
            .enumerate()
            .filter(|(_, d)| d.outcome == Some(TxnOutcome::Committed))
            .map(|(i, _)| i)
            .collect();
        for key in 0..KEYSPACE {
            let candidates: Vec<u64> = committed
                .iter()
                .flat_map(|&i| &writes_of[i])
                .filter(|&&(k, _)| k == key)
                .map(|&(_, v)| v)
                .collect();
            let got = net.kv_get(NodeId(0), key);
            if let Some(v) = got {
                prop_assert!(
                    candidates.contains(&v),
                    "key {} holds {} which no committed transaction wrote",
                    key,
                    v
                );
            }
            if candidates.is_empty() {
                prop_assert_eq!(got, None, "aborted fragment landed on key {}", key);
            }
        }
        // Every committed transaction is all-or-nothing: each of its
        // keys holds either its value or a committed competitor's.
        for &i in &committed {
            for &(k, v) in &writes_of[i] {
                let got = net.kv_get(NodeId(0), k);
                let others: Vec<u64> = committed
                    .iter()
                    .filter(|&&j| j != i)
                    .flat_map(|&j| &writes_of[j])
                    .filter(|&&(kk, _)| kk == k)
                    .map(|&(_, vv)| vv)
                    .collect();
                prop_assert!(
                    got == Some(v) || got.is_some_and(|g| others.contains(&g)),
                    "txn {} committed but key {} holds {:?}",
                    i,
                    k,
                    got
                );
            }
        }
        net.assert_consistent();
    }

    /// The adversarial shape for starvation: every transaction wants the
    /// SAME key (plus a private one), so the lock-wait queue and the
    /// wait-die kill path both run hot. All of them must still finish,
    /// and at least one must commit (the oldest can always win).
    #[test]
    fn a_pileup_on_one_hot_key_drains_and_someone_wins(
        private in prop::collection::vec(1u64..KEYSPACE, 2..=5),
        hot in 0u64..1,
    ) {
        let shards = 4u16;
        let mut net = TestNet::builder(3).shards(shards).build(make);
        let router = ShardRouter::new(shards);
        let mut drivers: Vec<Driver> = Vec::new();
        let mut writes_of: Vec<Vec<(u64, u64)>> = Vec::new();
        for (i, &p) in private.iter().enumerate() {
            let mut writes = vec![(hot, 100 * (i as u64 + 1))];
            if p != hot {
                writes.push((p, 100 * (i as u64 + 1) + 1));
            }
            let coord = TxnCoordinator::new(NodeId(100 + i as u16), router);
            writes_of.push(writes);
            drivers.push(Driver { coord, frags: Vec::new(), outcome: None, seen: 0 });
        }
        for (d, writes) in drivers.iter_mut().zip(&writes_of) {
            d.frags = d.coord.begin(writes);
        }
        drive_concurrently(&mut net, &mut drivers, 192);
        for n in 0..3u16 {
            prop_assert_eq!(net.txn_locks(NodeId(n)), 0, "locks on node {}", n);
            prop_assert_eq!(net.txn_parked(NodeId(n)), 0, "waiters on node {}", n);
        }
        prop_assert!(
            drivers.iter().any(|d| d.outcome == Some(TxnOutcome::Committed)),
            "a full pileup must not abort everyone"
        );
        net.assert_consistent();
    }
}
