//! Property-based tests for the adaptive batch-depth controller
//! (`BatchConfig::Adaptive`), extending the PR 3 `shard_props.rs`
//! pattern: under *any* event sequence the learned depth stays within
//! `[1, max_commands]`, under constant offered load it converges to a
//! fixed point, and an adaptive-batched deployment's final per-key
//! state is indistinguishable from an unbatched one on the same
//! command sequence.

use onepaxos::engine::AdaptiveBatch;
use onepaxos::shard::ShardId;
use onepaxos::testnet::TestNet;
use onepaxos::twopc::TwoPcNode;
use onepaxos::{ClusterConfig, NodeId, Op};
use proptest::prelude::*;

fn make(m: &[NodeId], me: NodeId) -> TwoPcNode {
    TwoPcNode::new(ClusterConfig::new(m.to_vec(), me))
}

// --------------------------------------------------------------------
// Bounds: whatever the schedule does — bursts, trickles, long gaps,
// partial deliveries — every shard's learned depth stays in
// [1, max_commands] at every step.
// --------------------------------------------------------------------

/// One step of an arbitrary load schedule: submit a burst of 0..8
/// requests at some node, advance time by 0..4 flush windows, and
/// sometimes let the network settle.
fn schedule(len: usize) -> impl Strategy<Value = Vec<(u16, u8, u8, bool)>> {
    prop::collection::vec((0u16..3, 0u8..8, 0u8..4, any::<bool>()), 1..=len)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]
    #[test]
    fn depth_stays_within_bounds_under_any_schedule(
        steps in schedule(30),
        cap in 2usize..12,
        shards in 1u16..4,
    ) {
        const DELAY: u64 = 1_000;
        let mut net = TestNet::builder(3)
            .shards(shards)
            .batching(onepaxos::BatchConfig::adaptive(AdaptiveBatch::new(cap, DELAY)))
            .build(make);
        let mut req = 0u64;
        for &(target, burst, advance, settle) in &steps {
            for b in 0..burst {
                req += 1;
                net.client_request(
                    NodeId(target % 3),
                    NodeId(100 + b as u16),
                    req,
                    Op::Put { key: req % 32, value: req },
                );
            }
            net.advance(u64::from(advance) * DELAY);
            if settle {
                net.run_to_quiescence();
            }
            for node in 0..3u16 {
                for s in (0..shards).map(ShardId) {
                    let d = net.sharded_engine(NodeId(node)).stats(s).depth;
                    prop_assert!(
                        (1..=cap).contains(&d),
                        "node {} shard {} depth {} escaped [1, {}]",
                        node, s, d, cap
                    );
                }
            }
        }
        // Everything submitted eventually commits consistently.
        net.advance(DELAY);
        net.run_to_quiescence();
        net.advance(DELAY);
        net.run_to_quiescence();
        net.assert_consistent();
    }

    // ----------------------------------------------------------------
    // Convergence: constant offered load (a fixed-size burst per flush
    // window) drives the depth to a fixed point — exactly the burst
    // size (capped), with no residual oscillation.
    // ----------------------------------------------------------------

    #[test]
    fn depth_converges_to_a_fixed_point_under_constant_load(
        burst in 1usize..10,
        cap in 2usize..9,
    ) {
        const DELAY: u64 = 1_000;
        const SPACING: u64 = 5 * DELAY; // wider than a window, far under idle_after
        let mut cfg = AdaptiveBatch::new(cap, DELAY);
        cfg.idle_after = u64::MAX; // rounds must never read as idle
        // A single-node group decides every agreement synchronously, so
        // the only dynamics left are the controller's.
        let mut net = TestNet::builder(1).adaptive_batching(cfg).build(make);
        let mut depths = Vec::new();
        for round in 0..30u64 {
            for c in 0..burst {
                net.client_request(
                    NodeId(0),
                    NodeId(100 + c as u16),
                    round + 1,
                    Op::Noop,
                );
            }
            net.advance(DELAY); // flush any partial tail
            net.advance(SPACING - DELAY);
            depths.push(net.engine_stats(NodeId(0)).depth);
        }
        let expect = burst.min(cap);
        prop_assert!(
            depths[20..].iter().all(|&d| d == expect),
            "burst {} cap {}: depths {:?} did not converge to {}",
            burst, cap, depths, expect
        );
        net.run_to_quiescence();
        net.assert_consistent();
    }

    // ----------------------------------------------------------------
    // Adaptive == unbatched: the same command sequence through an
    // adaptive-batched TestNet and a plain one ends in the same per-key
    // KV state with the same replies answered (extends the PR 3
    // sharded-equals-unsharded oracle to the batching dimension).
    // ----------------------------------------------------------------

    #[test]
    fn adaptive_batched_state_matches_unbatched(
        seq in prop::collection::vec((0u16..4, 0u64..16, 0u64..1_000, any::<bool>()), 1..24),
        cap in 2usize..9,
    ) {
        const DELAY: u64 = 1_000;
        let mut plain = TestNet::new(3, make);
        let mut adaptive = TestNet::builder(3)
            .adaptive_batching(AdaptiveBatch::new(cap, DELAY))
            .build(make);
        for (i, &(client, key, value, is_put)) in seq.iter().enumerate() {
            let op = if is_put {
                Op::Put { key, value }
            } else {
                Op::Get { key }
            };
            let req_id = i as u64 + 1;
            let target = NodeId((i % 3) as u16);
            plain.client_request(target, NodeId(100 + client), req_id, op.clone());
            plain.run_to_quiescence();
            adaptive.client_request(target, NodeId(100 + client), req_id, op);
            // Deliver what flushed; partial batches may stay buffered
            // until the deadline — exactly what the next advance covers.
            adaptive.run_to_quiescence();
            if i % 3 == 2 {
                adaptive.advance(DELAY);
                adaptive.run_to_quiescence();
            }
        }
        adaptive.advance(DELAY);
        adaptive.run_to_quiescence();
        plain.assert_consistent();
        adaptive.assert_consistent();
        prop_assert_eq!(plain.replies().len(), adaptive.replies().len());
        for n in 0..3u16 {
            for key in 0..16u64 {
                prop_assert_eq!(
                    plain.state(NodeId(n)).get(key),
                    adaptive.kv_get(NodeId(n), key),
                    "node {} key {} diverged", n, key
                );
            }
        }
    }
}
