//! Property tests for the [`onepaxos::wire`] codec: every encodable value
//! round-trips bit-exactly, and no corrupted, truncated or outright random
//! byte string can do worse than a clean [`DecodeError`].
//!
//! The round-trip half is the substance of the transport abstraction's
//! correctness argument — `TcpTransport` is the shared-memory cluster
//! composed with `decode ∘ encode`, so these properties are what make the
//! socket deployment behaviourally identical to the queue one. The fuzz
//! half is the safety argument: a replica must shrug off a malformed frame
//! from a sick peer (tag bytes flipped, varints cut mid-continuation,
//! garbage after the value) without panicking the consensus thread.

use onepaxos::onepaxos::{AbandonRe, Msg, UtilityEntry, UtilityMsg};
use onepaxos::wire::{
    decode_exact, encode_to_vec, read_frame, write_frame, write_frame_with, Codec, DecodeError,
    FRAME_HEADER, MAX_FRAME,
};
use onepaxos::{multipaxos, twopc, Ballot, Command, NodeId, Op, TxnId, TxnWrites};
use proptest::prelude::*;

// --------------------------------------------------------------------
// Generators
// --------------------------------------------------------------------

fn arb_node() -> BoxedStrategy<NodeId> {
    any::<u16>().prop_map(NodeId).boxed()
}

fn arb_ballot() -> BoxedStrategy<Ballot> {
    (any::<u32>(), arb_node())
        .prop_map(|(round, node)| Ballot { round, node })
        .boxed()
}

fn arb_txn_id() -> BoxedStrategy<TxnId> {
    (arb_node(), any::<u64>())
        .prop_map(|(coordinator, seq)| TxnId { coordinator, seq })
        .boxed()
}

fn arb_writes() -> BoxedStrategy<TxnWrites> {
    prop::collection::vec((any::<u64>(), any::<u64>()), 0..5)
        .prop_map(TxnWrites::from)
        .boxed()
}

/// The client-submitted subset of [`Op`]: what real batches contain.
fn arb_simple_op() -> BoxedStrategy<Op> {
    prop_oneof![
        Just(Op::Noop),
        (any::<u64>(), any::<u64>()).prop_map(|(key, value)| Op::Put { key, value }),
        any::<u64>().prop_map(|key| Op::Get { key }),
        arb_writes().prop_map(|writes| Op::MultiPut { writes }),
    ]
    .boxed()
}

fn arb_cmd() -> BoxedStrategy<Command> {
    (arb_node(), any::<u64>(), arb_simple_op())
        .prop_map(|(client, req_id, op)| Command { client, req_id, op })
        .boxed()
}

/// All ten [`Op`] variants. Batches hold simple ops only — the engine
/// never nests a batch inside a batch, so neither does the generator.
fn arb_op() -> BoxedStrategy<Op> {
    prop_oneof![
        arb_simple_op(),
        prop::collection::vec(arb_cmd(), 0..4).prop_map(|cmds| Op::Batch(cmds.into())),
        (arb_txn_id(), arb_writes()).prop_map(|(txn, writes)| Op::TxnPrepare { txn, writes }),
        (arb_txn_id(), any::<u64>()).prop_map(|(txn, key)| Op::TxnCommit { txn, key }),
        (arb_txn_id(), any::<u64>()).prop_map(|(txn, key)| Op::TxnAbort { txn, key }),
        (arb_txn_id(), any::<u64>()).prop_map(|(txn, key)| Op::TxnStatus { txn, key }),
        any::<u64>().prop_map(|watermark| Op::Truncate { watermark }),
    ]
    .boxed()
}

fn arb_uentry() -> BoxedStrategy<UtilityEntry> {
    prop_oneof![
        (arb_node(), arb_node())
            .prop_map(|(leader, acceptor)| UtilityEntry::LeaderChange { leader, acceptor }),
        (
            arb_node(),
            arb_node(),
            prop::collection::vec((any::<u64>(), arb_cmd()), 0..3)
        )
            .prop_map(|(by, acceptor, uncommitted)| UtilityEntry::AcceptorChange {
                by,
                acceptor,
                uncommitted,
            }),
    ]
    .boxed()
}

fn arb_umsg() -> BoxedStrategy<UtilityMsg> {
    prop_oneof![
        (any::<u64>(), arb_ballot()).prop_map(|(uinst, bal)| UtilityMsg::Prepare { uinst, bal }),
        (
            any::<u64>(),
            arb_ballot(),
            prop_oneof![
                Just(None),
                (arb_ballot(), arb_uentry()).prop_map(Some).boxed()
            ]
        )
            .prop_map(|(uinst, bal, accepted)| UtilityMsg::Promise {
                uinst,
                bal,
                accepted,
            }),
        (any::<u64>(), arb_ballot())
            .prop_map(|(uinst, promised)| UtilityMsg::PrepareNack { uinst, promised }),
        (any::<u64>(), arb_ballot(), arb_uentry())
            .prop_map(|(uinst, bal, entry)| UtilityMsg::Accept { uinst, bal, entry }),
        (any::<u64>(), arb_ballot())
            .prop_map(|(uinst, promised)| UtilityMsg::AcceptNack { uinst, promised }),
        (any::<u64>(), arb_ballot(), arb_uentry())
            .prop_map(|(uinst, bal, entry)| UtilityMsg::Learn { uinst, bal, entry }),
        (any::<u64>(), any::<u64>()).prop_map(|(qid, have)| UtilityMsg::Query { qid, have }),
        (
            any::<u64>(),
            prop::collection::vec((any::<u64>(), arb_uentry()), 0..3)
        )
            .prop_map(|(qid, entries)| UtilityMsg::QueryResp { qid, entries }),
    ]
    .boxed()
}

fn arb_onepaxos_msg() -> BoxedStrategy<Msg> {
    prop_oneof![
        arb_cmd().prop_map(|cmd| Msg::Forward { cmd }),
        (arb_ballot(), any::<bool>())
            .prop_map(|(pn, expect_fresh)| Msg::PrepareReq { pn, expect_fresh }),
        (
            arb_ballot(),
            prop::collection::vec((any::<u64>(), arb_ballot(), arb_cmd()), 0..3)
        )
            .prop_map(|(pn, accepted)| Msg::PrepareResp { pn, accepted }),
        (any::<u64>(), arb_ballot(), arb_cmd()).prop_map(|(inst, pn, cmd)| Msg::AcceptReq {
            inst,
            pn,
            cmd
        }),
        (
            arb_ballot(),
            any::<bool>(),
            prop_oneof![Just(AbandonRe::Prepare), Just(AbandonRe::Accept)]
        )
            .prop_map(|(hpn, fresh, re)| Msg::Abandon { hpn, fresh, re }),
        (any::<u64>(), arb_ballot(), arb_cmd()).prop_map(|(inst, pn, cmd)| Msg::Learn {
            inst,
            pn,
            cmd
        }),
        arb_umsg().prop_map(Msg::Utility),
        any::<u64>().prop_map(|floor| Msg::Truncated { floor }),
    ]
    .boxed()
}

fn arb_multipaxos_msg() -> BoxedStrategy<multipaxos::Msg> {
    use multipaxos::Msg;
    prop_oneof![
        arb_cmd().prop_map(|cmd| Msg::Forward { cmd }),
        (arb_ballot(), any::<u64>()).prop_map(|(bal, from_inst)| Msg::Prepare { bal, from_inst }),
        (
            arb_ballot(),
            prop::collection::vec((any::<u64>(), arb_ballot(), arb_cmd()), 0..3)
        )
            .prop_map(|(bal, accepted)| Msg::Promise { bal, accepted }),
        arb_ballot().prop_map(|promised| Msg::PrepareNack { promised }),
        (arb_ballot(), any::<u64>(), arb_cmd()).prop_map(|(bal, inst, cmd)| Msg::Accept {
            bal,
            inst,
            cmd
        }),
        arb_ballot().prop_map(|promised| Msg::AcceptNack { promised }),
        (any::<u64>(), arb_ballot(), arb_cmd()).prop_map(|(inst, bal, cmd)| Msg::Learn {
            inst,
            bal,
            cmd
        }),
        arb_ballot().prop_map(|bal| Msg::Heartbeat { bal }),
        any::<u64>().prop_map(|floor| Msg::Truncated { floor }),
    ]
    .boxed()
}

fn arb_twopc_msg() -> BoxedStrategy<twopc::Msg> {
    use twopc::Msg;
    prop_oneof![
        arb_cmd().prop_map(|cmd| Msg::Forward { cmd }),
        (any::<u64>(), arb_cmd()).prop_map(|(round, cmd)| Msg::Prepare { round, cmd }),
        any::<u64>().prop_map(|round| Msg::Ack { round }),
        any::<u64>().prop_map(|round| Msg::Nack { round }),
        (any::<u64>(), arb_cmd()).prop_map(|(round, cmd)| Msg::Commit { round, cmd }),
        any::<u64>().prop_map(|round| Msg::CommitAck { round }),
        any::<u64>().prop_map(|round| Msg::Rollback { round }),
    ]
    .boxed()
}

// --------------------------------------------------------------------
// Round trips: decode ∘ encode ≡ identity, with nothing left over
// --------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    #[test]
    fn op_round_trips(op in arb_op()) {
        prop_assert_eq!(decode_exact::<Op>(&encode_to_vec(&op)).unwrap(), op);
    }

    #[test]
    fn command_round_trips(cmd in arb_cmd()) {
        prop_assert_eq!(decode_exact::<Command>(&encode_to_vec(&cmd)).unwrap(), cmd);
    }

    #[test]
    fn onepaxos_msg_round_trips(msg in arb_onepaxos_msg()) {
        prop_assert_eq!(decode_exact::<Msg>(&encode_to_vec(&msg)).unwrap(), msg);
    }

    #[test]
    fn multipaxos_msg_round_trips(msg in arb_multipaxos_msg()) {
        prop_assert_eq!(
            decode_exact::<multipaxos::Msg>(&encode_to_vec(&msg)).unwrap(),
            msg
        );
    }

    #[test]
    fn twopc_msg_round_trips(msg in arb_twopc_msg()) {
        prop_assert_eq!(decode_exact::<twopc::Msg>(&encode_to_vec(&msg)).unwrap(), msg);
    }

    // A byte stream carrying several frames back to back parses into the
    // same values in the same order — the exact shape `TcpTransport`'s
    // receive buffer sees after a large socket read.
    #[test]
    fn frames_parse_back_to_back(a in arb_op(), b in arb_onepaxos_msg()) {
        let mut stream = Vec::new();
        write_frame_with(&mut stream, |buf| a.encode(buf));
        let first = stream.len();
        write_frame(&mut stream, &encode_to_vec(&b));
        let (payload, consumed) = read_frame(&stream).unwrap().expect("first frame complete");
        prop_assert_eq!(consumed, first);
        prop_assert_eq!(decode_exact::<Op>(payload).unwrap(), a);
        let (payload, also) = read_frame(&stream[consumed..]).unwrap().expect("second frame");
        prop_assert_eq!(consumed + also, stream.len());
        prop_assert_eq!(decode_exact::<Msg>(payload).unwrap(), b);
    }
}

// --------------------------------------------------------------------
// Fuzz: truncation, corruption and garbage are errors, never panics
// --------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig { cases: 512, ..ProptestConfig::default() })]

    // Every strict prefix of a frame is "not yet a frame" — the framing
    // layer asks for more bytes instead of misparsing a partial read.
    #[test]
    fn truncated_frames_are_incomplete_not_errors(
        op in arb_op(),
        cut in any::<prop::sample::Index>(),
    ) {
        let mut frame = Vec::new();
        write_frame_with(&mut frame, |buf| op.encode(buf));
        let k = cut.index(frame.len());
        prop_assert!(
            matches!(read_frame(&frame[..k]), Ok(None)),
            "prefix of {k}/{} bytes must read as incomplete", frame.len()
        );
    }

    // Every strict prefix of a value encoding fails to decode: no prefix
    // of one message is mistakable for a complete other message.
    #[test]
    fn truncated_encodings_error_cleanly(
        msg in arb_onepaxos_msg(),
        cut in any::<prop::sample::Index>(),
    ) {
        let bytes = encode_to_vec(&msg);
        let k = cut.index(bytes.len());
        prop_assert!(decode_exact::<Msg>(&bytes[..k]).is_err());
    }

    // Flipping any byte of a valid encoding yields Ok (a different value)
    // or a clean Err — decoding corrupted input must never panic.
    #[test]
    fn corrupted_encodings_never_panic(
        op in arb_op(),
        pos in any::<prop::sample::Index>(),
        flip in 1u8..=255,
    ) {
        let mut bytes = encode_to_vec(&op);
        let i = pos.index(bytes.len());
        bytes[i] ^= flip;
        let _ = decode_exact::<Op>(&bytes);
        let _ = decode_exact::<Msg>(&bytes);
    }

    // Outright random bytes: decoders and the frame reader return, and a
    // garbage payload still travels opaquely through the framing layer.
    #[test]
    fn random_bytes_decode_cleanly(bytes in prop::collection::vec(any::<u8>(), 0..64)) {
        let _ = decode_exact::<Op>(&bytes);
        let _ = decode_exact::<Command>(&bytes);
        let _ = decode_exact::<Msg>(&bytes);
        let _ = read_frame(&bytes);
        let mut framed = Vec::new();
        write_frame(&mut framed, &bytes);
        let (payload, consumed) = read_frame(&framed).unwrap().expect("complete frame");
        prop_assert_eq!(payload, &bytes[..]);
        prop_assert_eq!(consumed, framed.len());
    }

    // Bytes appended after a complete value are reported, byte-exactly, as
    // trailing garbage — decode_exact refuses to silently swallow them.
    #[test]
    fn trailing_bytes_are_rejected(op in arb_op(), extra in 1usize..8) {
        let mut bytes = encode_to_vec(&op);
        bytes.resize(bytes.len() + extra, 0);
        prop_assert!(matches!(
            decode_exact::<Op>(&bytes),
            Err(DecodeError::Trailing(n)) if n == extra
        ));
    }
}

// --------------------------------------------------------------------
// Frame-header corruption: each guard fires on its own byte
// --------------------------------------------------------------------

#[test]
fn corrupt_frame_headers_are_rejected_by_field() {
    let mut frame = Vec::new();
    write_frame_with(&mut frame, |buf| Op::Noop.encode(buf));
    assert_eq!(frame.len(), FRAME_HEADER + 1);

    let mut bad_magic = frame.clone();
    bad_magic[0] ^= 0xFF;
    assert!(matches!(
        read_frame(&bad_magic),
        Err(DecodeError::BadMagic(_))
    ));

    let mut bad_version = frame.clone();
    bad_version[2] = 0x7F;
    assert!(matches!(
        read_frame(&bad_version),
        Err(DecodeError::BadVersion(0x7F))
    ));

    let mut bad_reserved = frame.clone();
    bad_reserved[3] = 1;
    assert!(matches!(
        read_frame(&bad_reserved),
        Err(DecodeError::BadReserved(1))
    ));

    let mut oversized = frame.clone();
    let huge = (MAX_FRAME as u32) + 1;
    oversized[4..8].copy_from_slice(&huge.to_le_bytes());
    assert!(matches!(
        read_frame(&oversized),
        Err(DecodeError::FrameTooLarge(n)) if n == huge
    ));

    // The unmodified original still parses — the guards above really were
    // triggered by the corrupted byte, not by the payload.
    let (payload, consumed) = read_frame(&frame).unwrap().expect("intact frame");
    assert_eq!(consumed, frame.len());
    assert_eq!(decode_exact::<Op>(payload).unwrap(), Op::Noop);
}

// --------------------------------------------------------------------
// Chunked receive path: zero-copy slicing and split-invariance
// --------------------------------------------------------------------

use onepaxos::wire::{Chunk, RecvBuf};

/// Feeds `stream` into `buf` in pieces of the given sizes (cycled), and
/// returns every complete frame payload drained along the way, decoded
/// with `decode_exact::<Op>`. Mirrors exactly what `TcpTransport::fill`
/// + `drain_frames` do with an arbitrary sequence of socket reads.
fn feed_in_pieces(buf: &mut RecvBuf, stream: &[u8], pieces: &[usize]) -> Vec<Op> {
    let mut out = Vec::new();
    let mut fed = 0;
    let mut pick = 0;
    while fed < stream.len() {
        let tail = buf.writable();
        assert!(!tail.is_empty(), "writable tail must never be empty");
        let step = pieces[pick % pieces.len()].clamp(1, tail.len());
        pick += 1;
        let n = step.min(stream.len() - fed);
        tail[..n].copy_from_slice(&stream[fed..fed + n]);
        buf.commit(n);
        fed += n;
        while let Some(frame) = buf.next_frame().expect("valid stream") {
            out.push(decode_exact::<Op>(&frame).expect("valid payload"));
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    // The decoded values coming out of the chunked reader are invariant
    // under how the byte stream was cut into socket reads, and under the
    // segment size (frames spanning segment boundaries decode the same).
    #[test]
    fn frames_split_anywhere_decode_identically(
        ops in prop::collection::vec(arb_op(), 1..6),
        pieces in prop::collection::vec(1usize..24, 1..8),
        segment in (FRAME_HEADER + 1)..96,
    ) {
        let mut stream = Vec::new();
        for op in &ops {
            write_frame_with(&mut stream, |buf| op.encode(buf));
        }
        let mut buf = RecvBuf::with_segment_size(segment);
        let got = feed_in_pieces(&mut buf, &stream, &pieces);
        prop_assert_eq!(got, ops);
        prop_assert_eq!(buf.pending(), 0);
    }

    // Zero-copy: a frame sliced out of the receive buffer aliases the
    // buffer's segment rather than copying it, two frames arriving in
    // one read share one segment, and `Chunk::slice` aliases its parent
    // byte-for-byte (same backing allocation, same addresses).
    #[test]
    fn decoded_chunks_alias_their_segment(
        a in arb_op(),
        b in arb_op(),
        cut in any::<prop::sample::Index>(),
    ) {
        let mut stream = Vec::new();
        write_frame_with(&mut stream, |buf| a.encode(buf));
        write_frame_with(&mut stream, |buf| b.encode(buf));

        let mut buf = RecvBuf::new();
        let tail = buf.writable();
        tail[..stream.len()].copy_from_slice(&stream);
        buf.commit(stream.len());

        let ca: Chunk = buf.next_frame().unwrap().expect("first frame");
        let cb: Chunk = buf.next_frame().unwrap().expect("second frame");
        prop_assert!(ca.same_segment(&cb), "one read, one segment");
        prop_assert_eq!(decode_exact::<Op>(&ca).unwrap(), a);
        prop_assert_eq!(decode_exact::<Op>(&cb).unwrap(), b);

        let k = cut.index(ca.len() + 1);
        let sliced = ca.slice(0..k);
        prop_assert!(sliced.same_segment(&ca), "slice shares the segment");
        prop_assert_eq!(sliced.as_slice().as_ptr(), ca.as_slice().as_ptr());
        prop_assert_eq!(sliced.as_slice(), &ca.as_slice()[..k]);
    }

    // Corruption fuzz through the chunked reader: flip any byte of a
    // valid multi-frame stream, feed it through a RecvBuf in arbitrary
    // pieces — every outcome is a decoded value, a clean framing error,
    // or a request for more bytes. Never a panic, never a runaway
    // allocation (a corrupt length field is clamped, then rejected).
    #[test]
    fn chunked_reader_survives_corruption(
        ops in prop::collection::vec(arb_op(), 1..4),
        pieces in prop::collection::vec(1usize..16, 1..6),
        pos in any::<prop::sample::Index>(),
        flip in 1u8..=255,
    ) {
        let mut stream = Vec::new();
        for op in &ops {
            write_frame_with(&mut stream, |buf| op.encode(buf));
        }
        let i = pos.index(stream.len());
        stream[i] ^= flip;

        let mut buf = RecvBuf::with_segment_size(64);
        let mut fed = 0;
        let mut pick = 0;
        'outer: while fed < stream.len() {
            let tail = buf.writable();
            prop_assert!(!tail.is_empty());
            let step = pieces[pick % pieces.len()].clamp(1, tail.len());
            pick += 1;
            let n = step.min(stream.len() - fed);
            tail[..n].copy_from_slice(&stream[fed..fed + n]);
            buf.commit(n);
            fed += n;
            loop {
                match buf.next_frame() {
                    Ok(Some(frame)) => { let _ = decode_exact::<Op>(&frame); }
                    Ok(None) => break,
                    Err(_) => break 'outer, // dead connection, as in transport
                }
            }
        }
    }
}
