//! Dedicated `TestNet` harness coverage for the Mencius baseline,
//! mirroring the agreement/consistency suites the 1Paxos protocol has —
//! all driven through the shared replica-engine path (every `TestNet`
//! node is a `ReplicaEngine`).

use onepaxos::mencius::MenciusNode;
use onepaxos::onepaxos::OnePaxosNode;
use onepaxos::testnet::TestNet;
use onepaxos::{BatchConfig, ClusterConfig, NodeId, Op};

fn net(n: u16) -> TestNet<MenciusNode> {
    TestNet::new(n, |m, me| {
        MenciusNode::new(ClusterConfig::new(m.to_vec(), me))
    })
}

fn batched_net(n: u16, cfg: BatchConfig) -> TestNet<MenciusNode> {
    TestNet::builder(n)
        .batching(cfg)
        .build(|m, me| MenciusNode::new(ClusterConfig::new(m.to_vec(), me)))
}

#[test]
fn single_command_reaches_agreement_on_all_nodes() {
    let mut net = net(3);
    net.client_request(NodeId(0), NodeId(9), 1, Op::Put { key: 1, value: 10 });
    net.run_to_quiescence();
    assert_eq!(net.replies().len(), 1);
    let r = net.replies()[0];
    assert_eq!((r.client, r.req_id), (NodeId(9), 1));
    // Every node learned the command in the advocate's slot (slot 0 is
    // owned by n0).
    for n in 0..3u16 {
        let commits = net.commits(NodeId(n));
        assert_eq!(commits.get(&0).map(|c| c.req_id), Some(1), "node {n}");
    }
    net.assert_consistent();
}

#[test]
fn concurrent_proposals_from_all_leaders_stay_consistent() {
    // The defining multi-leader property: simultaneous advocacy on every
    // node lands in disjoint slots, so there is nothing to conflict on.
    let mut net = net(3);
    for round in 1..=10u64 {
        for n in 0..3u16 {
            net.client_request(
                NodeId(n),
                NodeId(100 + n),
                round,
                Op::Put {
                    key: u64::from(n),
                    value: round,
                },
            );
        }
    }
    net.run_to_quiescence();
    assert_eq!(net.replies().len(), 30);
    net.assert_consistent();
    // All nodes converge to identical commit logs and identical KV state.
    let reference = net.commits(NodeId(0)).clone();
    for n in 1..3u16 {
        assert_eq!(net.commits(NodeId(n)), &reference, "log of node {n}");
        assert_eq!(
            net.state(NodeId(n)).digest(),
            net.state(NodeId(0)).digest(),
            "state of node {n}"
        );
    }
    for n in 0..3u16 {
        assert_eq!(net.state(NodeId(0)).get(u64::from(n)), Some(10));
    }
}

#[test]
fn interleaved_delivery_schedules_preserve_consistency() {
    // Deliver one message at a time, alternating links, asserting the
    // Appendix B consistency property at every step.
    let mut net = net(3);
    for n in 0..3u16 {
        net.client_request(NodeId(n), NodeId(100 + n), 1, Op::Noop);
    }
    let mut guard = 0;
    loop {
        let links = net.deliverable_links();
        if links.is_empty() {
            break;
        }
        // Pick a different link each round (rotating), one delivery only.
        let (from, to) = links[guard % links.len()];
        net.deliver_one(from, to);
        net.assert_consistent();
        guard += 1;
        assert!(guard < 10_000, "schedule did not converge");
    }
    assert_eq!(net.replies().len(), 3);
    net.assert_consistent();
}

#[test]
fn state_machines_apply_in_slot_order_across_leaders() {
    // Writes to one key from different leaders: every replica must apply
    // them in slot order, so all end states agree.
    let mut net = net(3);
    net.client_request(NodeId(0), NodeId(7), 1, Op::Put { key: 5, value: 50 });
    net.client_request(NodeId(1), NodeId(8), 1, Op::Put { key: 5, value: 51 });
    net.client_request(NodeId(2), NodeId(9), 1, Op::Put { key: 5, value: 52 });
    net.run_to_quiescence();
    // Skips may be needed before the log is contiguous everywhere.
    net.advance_and_settle(MenciusNode::DEFAULT_TICK, 3);
    let expected = net.state(NodeId(0)).get(5);
    assert!(expected.is_some());
    for n in 1..3u16 {
        assert_eq!(net.state(NodeId(n)).get(5), expected, "replica {n}");
    }
    net.assert_consistent();
}

#[test]
fn blocked_minority_does_not_stop_agreement() {
    let mut net = net(5);
    net.block(NodeId(3));
    net.block(NodeId(4));
    for n in 0..3u16 {
        net.client_request(NodeId(n), NodeId(100 + n), 1, Op::Noop);
    }
    net.run_to_quiescence();
    assert_eq!(net.replies().len(), 3, "majority must still decide");
    net.unblock(NodeId(3));
    net.unblock(NodeId(4));
    net.run_to_quiescence();
    net.assert_consistent();
    // The healed nodes caught up on every decided slot.
    for inst in net.commits(NodeId(0)).keys() {
        assert!(
            net.commits(NodeId(4)).contains_key(inst),
            "n4 missing instance {inst}"
        );
    }
}

#[test]
fn mencius_full_batch_travels_through_one_agreement() {
    let mut net = batched_net(3, BatchConfig::new(4, 1_000_000));
    for c in 0..4u16 {
        net.client_request(
            NodeId(0),
            NodeId(100 + c),
            1,
            Op::Put {
                key: u64::from(c),
                value: 7,
            },
        );
    }
    net.run_to_quiescence();
    // All four clients answered, but only one slot was agreed on.
    assert_eq!(net.replies().len(), 4);
    for n in 0..3u16 {
        let commits = net.commits(NodeId(n));
        assert_eq!(commits.len(), 1, "node {n}");
        assert_eq!(commits.get(&0).map(|c| c.command_count()), Some(4));
        for c in 0..4u64 {
            assert_eq!(net.state(NodeId(n)).get(c), Some(7), "node {n} key {c}");
        }
    }
    net.assert_consistent();
}

#[test]
fn mencius_partial_batch_flushes_on_deadline() {
    let mut net = batched_net(3, BatchConfig::new(8, 500_000));
    net.client_request(NodeId(0), NodeId(9), 1, Op::Put { key: 1, value: 10 });
    net.client_request(NodeId(0), NodeId(10), 1, Op::Put { key: 2, value: 20 });
    net.run_to_quiescence();
    assert!(net.replies().is_empty(), "batch must still be open");
    // The engine's next_deadline covers the pending flush; advancing past
    // it releases the two-command batch.
    net.advance(500_000);
    net.run_to_quiescence();
    assert_eq!(net.replies().len(), 2);
    for n in 0..3u16 {
        assert_eq!(net.state(NodeId(n)).get(1), Some(10));
        assert_eq!(net.state(NodeId(n)).get(2), Some(20));
    }
    net.assert_consistent();
}

#[test]
fn mencius_batched_multi_leader_agreement_matches_unbatched_state() {
    // Every node batches its own clients' commands into its own slots;
    // the end state must equal the unbatched run's.
    let drive = |net: &mut TestNet<MenciusNode>| {
        for round in 1..=4u64 {
            for n in 0..3u16 {
                net.client_request(
                    NodeId(n),
                    NodeId(100 + n),
                    round,
                    Op::Put {
                        key: u64::from(n),
                        value: round,
                    },
                );
            }
        }
        net.run_to_quiescence();
        net.advance_and_settle(MenciusNode::DEFAULT_TICK, 3);
        net.advance_and_settle(1_000_000, 2); // flush any open batches
    };
    let mut plain = net(3);
    drive(&mut plain);
    let mut batched = batched_net(3, BatchConfig::new(4, 1_000_000));
    drive(&mut batched);
    assert_eq!(plain.replies().len(), 12);
    assert_eq!(batched.replies().len(), 12);
    for n in 0..3u16 {
        assert_eq!(
            plain.state(NodeId(n)).digest(),
            batched.state(NodeId(n)).digest(),
            "node {n}"
        );
    }
    batched.assert_consistent();
}

#[test]
fn onepaxos_batched_agreement_including_the_forwarding_path() {
    let mut net = TestNet::builder(3)
        .batching(BatchConfig::new(3, 400_000))
        .build(|m, me| OnePaxosNode::new(ClusterConfig::new(m.to_vec(), me)));
    net.run_to_quiescence(); // initial leader adoption
                             // Three requests land on the leader (full batch, size flush), two on
                             // a follower (deadline flush, forwarded to the leader as one batch).
    for c in 0..3u16 {
        net.client_request(
            NodeId(0),
            NodeId(100 + c),
            1,
            Op::Put {
                key: u64::from(c),
                value: 1,
            },
        );
    }
    net.client_request(NodeId(1), NodeId(110), 1, Op::Put { key: 10, value: 2 });
    net.client_request(NodeId(1), NodeId(111), 1, Op::Put { key: 11, value: 2 });
    net.run_to_quiescence();
    net.advance_and_settle(400_000, 3);
    assert_eq!(net.replies().len(), 5);
    // The five commands travelled in two agreements.
    assert_eq!(net.commits(NodeId(2)).len(), 2);
    for n in 0..3u16 {
        for key in [0u64, 1, 2] {
            assert_eq!(net.state(NodeId(n)).get(key), Some(1), "node {n}");
        }
        assert_eq!(net.state(NodeId(n)).get(10), Some(2));
        assert_eq!(net.state(NodeId(n)).get(11), Some(2));
    }
    net.assert_consistent();
}

#[test]
fn rebooted_node_batches_again_under_fresh_identities() {
    // A silently rebooted node restarts its engine from scratch. Its
    // batch sequence must land in a fresh epoch: recycling a decided
    // (batch_source, seq) identity would make surviving peers drop the
    // new batch as an already-decided duplicate, stranding its clients.
    let mut net = TestNet::builder(3)
        .batching(BatchConfig::new(2, 400_000))
        .build(|m, me| OnePaxosNode::new(ClusterConfig::new(m.to_vec(), me)));
    net.run_to_quiescence(); // leader adoption
    net.client_request(NodeId(1), NodeId(100), 1, Op::Put { key: 1, value: 1 });
    net.client_request(NodeId(1), NodeId(101), 1, Op::Put { key: 2, value: 1 });
    net.run_to_quiescence();
    net.advance_and_settle(400_000, 3);
    assert_eq!(net.replies().len(), 2, "first batch answered");
    // n1 reboots, losing all engine state (including its batch counter).
    let members: Vec<NodeId> = (0..3).map(NodeId).collect();
    net.reset_node(NodeId(1), || {
        OnePaxosNode::new(ClusterConfig::new(members.clone(), NodeId(1)))
    });
    net.run_to_quiescence();
    net.client_request(NodeId(1), NodeId(102), 1, Op::Put { key: 3, value: 2 });
    net.client_request(NodeId(1), NodeId(103), 1, Op::Put { key: 4, value: 2 });
    net.run_to_quiescence();
    net.advance_and_settle(400_000, 5);
    assert_eq!(
        net.replies().len(),
        4,
        "post-reboot batch must not be dropped as a duplicate"
    );
    for n in [0u16, 2] {
        assert_eq!(net.state(NodeId(n)).get(3), Some(2), "node {n}");
        assert_eq!(net.state(NodeId(n)).get(4), Some(2), "node {n}");
    }
    net.assert_consistent();
}

#[test]
fn skips_fill_the_log_and_replies_survive_them() {
    // Skewed load through the engine path: the idle leaders' skip no-ops
    // must not disturb client replies or state.
    let mut net = net(3);
    for req in 1..=6u64 {
        net.client_request(
            NodeId(0),
            NodeId(9),
            req,
            Op::Put {
                key: req,
                value: req * 10,
            },
        );
        net.run_to_quiescence();
    }
    net.advance_and_settle(MenciusNode::DEFAULT_TICK, 4);
    assert_eq!(net.replies().len(), 6);
    for req in 1..=6u64 {
        assert_eq!(net.state(NodeId(1)).get(req), Some(req * 10));
    }
    assert!(net.node(NodeId(1)).skips_proposed() > 0);
    net.assert_consistent();
}
