//! Dedicated `TestNet` harness coverage for the Mencius baseline,
//! mirroring the agreement/consistency suites the 1Paxos protocol has —
//! all driven through the shared replica-engine path (every `TestNet`
//! node is a `ReplicaEngine`).

use onepaxos::mencius::MenciusNode;
use onepaxos::testnet::TestNet;
use onepaxos::{ClusterConfig, NodeId, Op};

fn net(n: u16) -> TestNet<MenciusNode> {
    TestNet::new(n, |m, me| {
        MenciusNode::new(ClusterConfig::new(m.to_vec(), me))
    })
}

#[test]
fn single_command_reaches_agreement_on_all_nodes() {
    let mut net = net(3);
    net.client_request(NodeId(0), NodeId(9), 1, Op::Put { key: 1, value: 10 });
    net.run_to_quiescence();
    assert_eq!(net.replies().len(), 1);
    let r = net.replies()[0];
    assert_eq!((r.client, r.req_id), (NodeId(9), 1));
    // Every node learned the command in the advocate's slot (slot 0 is
    // owned by n0).
    for n in 0..3u16 {
        let commits = net.commits(NodeId(n));
        assert_eq!(commits.get(&0).map(|c| c.req_id), Some(1), "node {n}");
    }
    net.assert_consistent();
}

#[test]
fn concurrent_proposals_from_all_leaders_stay_consistent() {
    // The defining multi-leader property: simultaneous advocacy on every
    // node lands in disjoint slots, so there is nothing to conflict on.
    let mut net = net(3);
    for round in 1..=10u64 {
        for n in 0..3u16 {
            net.client_request(
                NodeId(n),
                NodeId(100 + n),
                round,
                Op::Put {
                    key: u64::from(n),
                    value: round,
                },
            );
        }
    }
    net.run_to_quiescence();
    assert_eq!(net.replies().len(), 30);
    net.assert_consistent();
    // All nodes converge to identical commit logs and identical KV state.
    let reference = net.commits(NodeId(0)).clone();
    for n in 1..3u16 {
        assert_eq!(net.commits(NodeId(n)), &reference, "log of node {n}");
        assert_eq!(
            net.state(NodeId(n)).digest(),
            net.state(NodeId(0)).digest(),
            "state of node {n}"
        );
    }
    for n in 0..3u16 {
        assert_eq!(net.state(NodeId(0)).get(u64::from(n)), Some(10));
    }
}

#[test]
fn interleaved_delivery_schedules_preserve_consistency() {
    // Deliver one message at a time, alternating links, asserting the
    // Appendix B consistency property at every step.
    let mut net = net(3);
    for n in 0..3u16 {
        net.client_request(NodeId(n), NodeId(100 + n), 1, Op::Noop);
    }
    let mut guard = 0;
    loop {
        let links = net.deliverable_links();
        if links.is_empty() {
            break;
        }
        // Pick a different link each round (rotating), one delivery only.
        let (from, to) = links[guard % links.len()];
        net.deliver_one(from, to);
        net.assert_consistent();
        guard += 1;
        assert!(guard < 10_000, "schedule did not converge");
    }
    assert_eq!(net.replies().len(), 3);
    net.assert_consistent();
}

#[test]
fn state_machines_apply_in_slot_order_across_leaders() {
    // Writes to one key from different leaders: every replica must apply
    // them in slot order, so all end states agree.
    let mut net = net(3);
    net.client_request(NodeId(0), NodeId(7), 1, Op::Put { key: 5, value: 50 });
    net.client_request(NodeId(1), NodeId(8), 1, Op::Put { key: 5, value: 51 });
    net.client_request(NodeId(2), NodeId(9), 1, Op::Put { key: 5, value: 52 });
    net.run_to_quiescence();
    // Skips may be needed before the log is contiguous everywhere.
    net.advance_and_settle(MenciusNode::DEFAULT_TICK, 3);
    let expected = net.state(NodeId(0)).get(5);
    assert!(expected.is_some());
    for n in 1..3u16 {
        assert_eq!(net.state(NodeId(n)).get(5), expected, "replica {n}");
    }
    net.assert_consistent();
}

#[test]
fn blocked_minority_does_not_stop_agreement() {
    let mut net = net(5);
    net.block(NodeId(3));
    net.block(NodeId(4));
    for n in 0..3u16 {
        net.client_request(NodeId(n), NodeId(100 + n), 1, Op::Noop);
    }
    net.run_to_quiescence();
    assert_eq!(net.replies().len(), 3, "majority must still decide");
    net.unblock(NodeId(3));
    net.unblock(NodeId(4));
    net.run_to_quiescence();
    net.assert_consistent();
    // The healed nodes caught up on every decided slot.
    for inst in net.commits(NodeId(0)).keys() {
        assert!(
            net.commits(NodeId(4)).contains_key(inst),
            "n4 missing instance {inst}"
        );
    }
}

#[test]
fn skips_fill_the_log_and_replies_survive_them() {
    // Skewed load through the engine path: the idle leaders' skip no-ops
    // must not disturb client replies or state.
    let mut net = net(3);
    for req in 1..=6u64 {
        net.client_request(
            NodeId(0),
            NodeId(9),
            req,
            Op::Put {
                key: req,
                value: req * 10,
            },
        );
        net.run_to_quiescence();
    }
    net.advance_and_settle(MenciusNode::DEFAULT_TICK, 4);
    assert_eq!(net.replies().len(), 6);
    for req in 1..=6u64 {
        assert_eq!(net.state(NodeId(1)).get(req), Some(req * 10));
    }
    assert!(net.node(NodeId(1)).skips_proposed() > 0);
    net.assert_consistent();
}
