//! Cross-shard atomic transactions: classic 2PC run **across** the
//! per-shard consensus groups, every phase decision made durable by the
//! participant shard's own replicated log — the "transaction commit over
//! replicated participants" construction the paper's §6 building blocks
//! enable.
//!
//! PR 3 sharded the engine into independent key-hash-routed groups
//! ([`crate::shard`]), which is exactly why a multi-key write spanning
//! groups loses atomicity: each shard's log orders only its own keys.
//! This module restores atomicity with the in-tree 2PC protocol lifted
//! one level: the *participants* of the 2PC round are no longer
//! individual replicas (as in [`crate::twopc`]) but whole **shard
//! groups**, and each phase message is an ordinary client command agreed
//! by the group's [`ReplicaEngine`](crate::engine::ReplicaEngine):
//!
//! * [`Op::TxnPrepare`] — the shard votes on (and stages + locks) its
//!   fragment of the write set. The vote is the command's state-machine
//!   output, so it lives in the shard's log: **a replica crash never
//!   loses a vote**, and any node that replays the log re-derives it.
//! * [`Op::TxnCommit`] / [`Op::TxnAbort`] — the outcome, likewise one
//!   agreed command per touched shard. A shard applies its staged
//!   fragment **atomically in one state-machine step** at commit, which
//!   is what keeps relaxed readers from ever observing half a
//!   transaction.
//!
//! Between prepare and outcome, the touched keys are locked in the
//! [`KvStore`](crate::kv::KvStore) replica; the engine's §7.5 local-read
//! gate is extended to refuse relaxed reads of locked keys (the reader
//! waits the window out, exactly like a 2PC lock window in
//! [`crate::twopc`]).
//!
//! # The coordinator
//!
//! [`TxnCoordinator`] is a **client-side**, sans-IO state machine: it
//! turns a multi-key write set into per-shard [`Fragment`]s and consumes
//! the replies. The harness (TestNet driver, the sim's `TxnMix` client
//! loop, the runtime's `ClientHandle::txn_put`) owns all transport:
//!
//! ```text
//! coordinator                 shard A (Paxos group)    shard B (Paxos group)
//!     | begin(writes)               |                        |
//!     |--- TxnPrepare(frag A) ----->| agree + stage + lock   |
//!     |--- TxnPrepare(frag B) ---------------------------- ->| agree + stage + lock
//!     |<-- reply: vote A -----------|                        |
//!     |<-- reply: vote B ------------------------------------|
//!     | all yes => Decided(Committed): EARLY ACK to caller   |
//!     |--- TxnCommit -------------->| agree + apply + unlock |
//!     |--- TxnCommit ------------------------------------- ->| agree + apply + unlock
//!     |    (acks drain in the background; the caller is      |
//!     |     already preparing its next transaction)          |
//! ```
//!
//! A write set owned by a single shard short-circuits to one
//! [`Op::MultiPut`] — no lock window, no second phase, batch-compatible
//! like any plain put.
//!
//! # The fan-out hot path
//!
//! Three compounding optimizations keep multi-shard transactions off
//! the abort-retry cliff:
//!
//! 1. **Ordered, pipelined lock acquisition + lock-wait queues.**
//!    [`TxnCoordinator::begin`] emits prepare fragments in shard-id
//!    order (pipelined — nothing waits for a vote), and a conflicting
//!    prepare no longer votes no: the `KvStore` participant parks it in
//!    a bounded lock-wait queue when wait-die allows
//!    ([`crate::types::TxnVote::Wait`]) and turns it away retryably
//!    otherwise ([`crate::types::TxnVote::Busy`]). Conflicts become
//!    short serialized waits instead of abort-retry storms.
//! 2. **Pipelined outcome phase (presumed-durability early ack).** Once
//!    the votes force the outcome, [`TxnStep::Decided`] hands the
//!    result to the caller immediately and the commit/abort fan-out
//!    drains asynchronously — safe because [`recover_outcome`]'s
//!    all-prepared-commits rule reconstructs exactly the same decision
//!    if the coordinator dies mid-fan-out.
//! 3. **Conflict-aware scheduling.** Wait/busy/abort replies feed a
//!    small recently-contended-key cache; re-probes go out a flush
//!    window later ([`TxnCoordinator::take_deferred`]) and
//!    [`TxnCoordinator::is_hot`] lets the harness delay transactions it
//!    knows will queue.
//!
//! # Failure matrix
//!
//! | failure                                    | consequence |
//! |--------------------------------------------|-------------|
//! | participant **replica** crashes mid-prepare | nothing lost: the vote is a decided command in the shard's log; the group keeps serving (its protocol's own failover) |
//! | coordinator crashes **before any prepare decides** | no shard staged anything; nothing to clean up |
//! | coordinator crashes **after a strict subset prepared** | prepared shards hold locks; recovery (below) queries every shard and aborts — the missing vote proves no commit was ever sent |
//! | coordinator crashes **after all shards prepared** | recovery finds unanimous yes votes and may commit (the coordinator could only ever have decided commit) |
//! | coordinator crashes **mid-outcome**        | recovery finds the outcome on ≥1 shard and replays it to the rest |
//!
//! Recovery ([`recover_outcome`] + [`TxnCoordinator::begin_recovery`])
//! reads per-shard [`TxnStatus`]es and drives the uniquely-safe outcome.
//! Two preconditions make it safe:
//!
//! 1. It must run only once the original coordinator is known dead (the
//!    outcome commands are idempotent per shard, but a *racing* live
//!    coordinator could disagree with recovery — the classic 2PC window
//!    that only a replicated coordinator log would close; see the
//!    README's failure matrix).
//! 2. Each status must reflect its shard's full decided log prefix —
//!    read it with the **agreed probe** [`Op::TxnStatus`], itself a
//!    command ordered by the shard's consensus, never from a replica's
//!    relaxed local state (a lagging replica under-reports and would
//!    steer recovery into a non-atomic abort; see
//!    [`recover_outcome`]'s freshness contract).
//!
//! Locks do **not** block unrelated writes: a plain [`Op::Put`] to a
//! locked key is already serialized by the shard's log and simply lands
//! *before* the staged fragment (which overwrites it at commit) — a
//! valid serial order. Locks exist to gate the §7.5 relaxed-read fast
//! path, whose readers bypass the log.

use std::collections::BTreeMap;

use crate::shard::{ShardId, ShardRouter};
use crate::types::{NodeId, Op, TxnId, TxnVote, TxnWrites};

/// State-machine output of a yes vote ([`Op::TxnPrepare`]) and of an
/// applied [`Op::TxnCommit`] — [`TxnVote::Commit`]'s encoding, kept as a
/// named constant for callers that deal in raw outputs.
pub const TXN_VOTE_COMMIT: u64 = 1;

/// State-machine output of a no vote and of an applied [`Op::TxnAbort`]
/// — [`TxnVote::Abort`]'s encoding.
pub const TXN_VOTE_ABORT: u64 = 0;

/// How many [`TxnVote::Wait`] replies per shard the coordinator absorbs
/// (re-probing with a fresh request id each time) before giving up and
/// aborting the transaction. Parked prepares normally resolve within a
/// couple of re-probes — the holder's outcome releases the locks — so
/// exhausting this patience means the holder is stuck (most likely a
/// dead coordinator whose recovery hasn't run); aborting breaks the
/// cross-shard poll-wait cycle that shard-local wait-die cannot see.
const WAIT_PATIENCE: u32 = 12;

/// How many [`TxnVote::Busy`] replies per shard before aborting. Busy
/// means wait-die made this (younger) transaction die retryably; a few
/// deferred re-probes usually land after the holder finishes.
const BUSY_PATIENCE: u32 = 12;

/// How many [`TxnCoordinator::begin`] calls a key stays in the
/// recently-contended cache after a conflict signal (abort/wait/busy
/// replies feed it). While cached, the harness is advised to delay
/// first submission by one flush window ([`TxnCoordinator::is_hot`]).
const HOT_TTL: u8 = 4;

/// Capacity of the recently-contended-key cache.
const HOT_CAP: usize = 32;

/// Final fate of a transaction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TxnOutcome {
    /// Every touched shard voted yes and applied its fragment.
    Committed,
    /// At least one shard refused (lock conflict) or recovery found the
    /// prepare incomplete; no fragment was applied anywhere.
    Aborted,
}

/// One shard's view of a transaction, as recorded by its replicated
/// [`KvStore`](crate::kv::KvStore) — what a recovering coordinator
/// queries to re-derive the outcome.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TxnStatus {
    /// No prepare for this transaction has been applied here.
    Unknown,
    /// Voted yes; fragment staged, locks held, awaiting the outcome.
    Prepared,
    /// Outcome applied: the fragment's writes landed.
    Committed,
    /// Outcome applied: the fragment was discarded.
    Aborted,
}

impl TxnStatus {
    /// Encodes this status as the state-machine output of an applied
    /// [`Op::TxnStatus`] probe (the agreed status read recovery uses).
    pub fn as_output(self) -> u64 {
        match self {
            TxnStatus::Unknown => 0,
            TxnStatus::Prepared => 1,
            TxnStatus::Committed => 2,
            TxnStatus::Aborted => 3,
        }
    }

    /// Decodes a probe's output; `None` for values no probe produces.
    pub fn from_output(v: u64) -> Option<TxnStatus> {
        match v {
            0 => Some(TxnStatus::Unknown),
            1 => Some(TxnStatus::Prepared),
            2 => Some(TxnStatus::Committed),
            3 => Some(TxnStatus::Aborted),
            _ => None,
        }
    }
}

/// One per-shard request the harness must submit on the coordinator's
/// behalf (as an ordinary client command of the coordinator's identity).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Fragment {
    /// The shard group this request belongs to.
    pub shard: ShardId,
    /// The coordinator-client's request id for it.
    pub req_id: u64,
    /// The command (prepare, commit, abort or single-shard multi-put).
    pub op: Op,
}

/// What the coordinator wants next after consuming a reply.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TxnStep {
    /// Nothing yet: the reply was stale, valueless, or votes are still
    /// outstanding. (A wait/busy vote also lands here — it queues a
    /// deferred re-probe, see [`TxnCoordinator::take_deferred`].)
    Pending,
    /// Phase transition: submit these outcome fragments and keep feeding
    /// replies (recovery drives its outcome this way and waits for the
    /// acknowledgements before reporting [`TxnStep::Done`]).
    Submit(Vec<Fragment>),
    /// The outcome is **forced** — unanimous yes votes can only ever
    /// become a commit (exactly the decision [`recover_outcome`]'s
    /// all-prepared rule reconstructs), a no vote can only become an
    /// abort — so the harness reports `outcome` to the caller *now* and
    /// fans `submit` out asynchronously: the outcome phase of this
    /// transaction overlaps the prepare phase of the next one (early
    /// ack). The coordinator tracks the fan-out in its drain queue
    /// ([`TxnCoordinator::draining`]) and absorbs the acknowledgements
    /// as [`TxnStep::Pending`].
    Decided {
        /// The transaction's (already decided) fate.
        outcome: TxnOutcome,
        /// One commit/abort fragment per touched shard, to submit
        /// asynchronously.
        submit: Vec<Fragment>,
    },
    /// The transaction finished (single-shard short-circuit, or a
    /// recovery's outcome fan-out fully acknowledged).
    Done(TxnOutcome),
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Phase {
    /// Single-shard short-circuit: one [`Op::MultiPut`] in flight.
    Single,
    /// Waiting for every touched shard's vote.
    Preparing,
    /// Waiting for every touched shard to acknowledge the outcome.
    Outcome(TxnOutcome),
}

#[derive(Debug)]
struct Active {
    txn: TxnId,
    phase: Phase,
    /// Fragments awaiting a reply: req_id → (shard, op) — the op kept
    /// for retransmission.
    outstanding: BTreeMap<u64, (ShardId, Op)>,
    /// Votes collected so far (prepare phase).
    votes: BTreeMap<ShardId, bool>,
    /// The per-shard write-set fragments (outcome routing keys come from
    /// here).
    fragments: BTreeMap<ShardId, TxnWrites>,
    /// Per-shard count of `Wait` votes absorbed (parked behind a
    /// holder); exhausting [`WAIT_PATIENCE`] aborts the transaction.
    waits: BTreeMap<ShardId, u32>,
    /// Per-shard count of `Busy` votes absorbed (wait-die retryable
    /// die); exhausting [`BUSY_PATIENCE`] aborts the transaction.
    busys: BTreeMap<ShardId, u32>,
}

/// One early-acked transaction's outcome fan-out still awaiting shard
/// acknowledgements. The client already has the outcome; these exist so
/// the harness can keep retransmitting until every shard has applied it
/// (the commands are idempotent and log-driven, so duplicates are free).
#[derive(Debug)]
struct Drain {
    outcome: TxnOutcome,
    outstanding: BTreeMap<u64, (ShardId, Op)>,
}

/// Client-side 2PC-over-Paxos coordinator; see the [module docs](self)
/// for the protocol and failure story.
///
/// One coordinator per client, living as long as the client: it owns the
/// client's transaction sequence numbers and (its slice of) the client's
/// request ids, both strictly increasing — which is what keeps the
/// per-shard [`Applier`](crate::rsm::Applier) sessions' at-most-once
/// dedup sound for fragments, and what keeps [`TxnId`]s unique (shards
/// remember finished ids forever). A caller that instead rebuilds a
/// coordinator per transaction must persist **both** counters across
/// rebuilds ([`Self::with_first_req`] + [`Self::with_first_seq`],
/// resynced from [`Self::next_req`] + [`Self::next_seq`]).
///
/// # Examples
///
/// ```
/// use onepaxos::shard::ShardRouter;
/// use onepaxos::txn::TxnCoordinator;
/// use onepaxos::NodeId;
///
/// let mut coord = TxnCoordinator::new(NodeId(9), ShardRouter::new(4));
/// let frags = coord.begin(&[(1, 10), (2, 20), (3, 30)]);
/// // One fragment per touched shard, ready for the harness to submit.
/// assert!(!frags.is_empty() && coord.in_flight());
/// ```
#[derive(Debug)]
pub struct TxnCoordinator {
    client: NodeId,
    router: ShardRouter,
    next_req: u64,
    next_seq: u64,
    active: Option<Active>,
    /// Outcome fan-outs of early-acked transactions still collecting
    /// shard acknowledgements; a new transaction may begin while these
    /// drain (phase 2 of txn *n* overlaps phase 1 of txn *n+1*).
    draining: Vec<Drain>,
    /// Re-probe fragments produced by wait/busy votes, for the harness
    /// to submit after one flush window (immediate resubmission would
    /// just re-join the same contended queue; see
    /// [`Self::take_deferred`]).
    deferred: Vec<Fragment>,
    /// Recently-contended keys (fed by abort/wait/busy replies) with a
    /// remaining time-to-live in [`Self::begin`] calls — the
    /// conflict-aware scheduling cache behind [`Self::is_hot`].
    recent: BTreeMap<u64, u8>,
    /// Cumulative re-probe fragments issued (bench: the `retries`
    /// column).
    reprobes: u64,
}

impl TxnCoordinator {
    /// Creates a coordinator for `client` over `router`'s shard space,
    /// with request ids starting at 1.
    pub fn new(client: NodeId, router: ShardRouter) -> Self {
        Self::with_first_req(client, router, 1)
    }

    /// Like [`Self::new`] with an explicit first request id — for
    /// callers that share the client's request-id counter with
    /// non-transactional traffic (the threaded runtime's
    /// `ClientHandle`).
    pub fn with_first_req(client: NodeId, router: ShardRouter, first_req: u64) -> Self {
        TxnCoordinator {
            client,
            router,
            next_req: first_req.max(1),
            next_seq: 1,
            active: None,
            draining: Vec::new(),
            deferred: Vec::new(),
            recent: BTreeMap::new(),
            reprobes: 0,
        }
    }

    /// Starts the transaction sequence at `first_seq` instead of 1 —
    /// mandatory for callers that rebuild a coordinator per transaction
    /// around a persistent client identity (the threaded runtime's
    /// `ClientHandle`). [`TxnId`]s must stay unique for the client's
    /// whole lifetime: participant shards remember a finished
    /// transaction's outcome forever, so a reused id makes a *new*
    /// transaction's prepare echo the *old* one's outcome without
    /// staging anything — reported committed, writes silently dropped.
    /// Resync via [`Self::next_seq`] after every transaction, exactly
    /// like the request-id counter via [`Self::next_req`].
    #[must_use]
    pub fn with_first_seq(mut self, first_seq: u64) -> Self {
        self.next_seq = first_seq.max(1);
        self
    }

    /// The client identity fragments are submitted under.
    pub fn client(&self) -> NodeId {
        self.client
    }

    /// The next request id this coordinator would allocate (for resyncing
    /// a shared client counter).
    pub fn next_req(&self) -> u64 {
        self.next_req
    }

    /// The next transaction sequence number this coordinator would
    /// allocate — what a caller that rebuilds coordinators must persist
    /// and feed back through [`Self::with_first_seq`], also after a
    /// failed transaction (the abandoned id may be prepared on some
    /// shards and must never be reused).
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Whether a transaction is currently in flight.
    pub fn in_flight(&self) -> bool {
        self.active.is_some()
    }

    /// The id of the in-flight transaction, if any (single-shard
    /// short-circuits have none — they are plain commands).
    pub fn current_txn(&self) -> Option<TxnId> {
        self.active
            .as_ref()
            .filter(|a| a.phase != Phase::Single)
            .map(|a| a.txn)
    }

    /// The still-unanswered fragment carrying `req_id`, if any — what a
    /// harness retransmits on timeout. Covers both the active
    /// transaction and the drain queues of early-acked ones.
    pub fn fragment(&self, req_id: u64) -> Option<Fragment> {
        let entry = self
            .active
            .as_ref()
            .and_then(|a| a.outstanding.get(&req_id))
            .or_else(|| {
                self.draining
                    .iter()
                    .find_map(|d| d.outstanding.get(&req_id))
            })?;
        let (shard, op) = entry;
        Some(Fragment {
            shard: *shard,
            req_id,
            op: op.clone(),
        })
    }

    /// Every still-unanswered fragment, active transaction first, then
    /// the drain queues (for bulk retransmission).
    pub fn outstanding_fragments(&self) -> Vec<Fragment> {
        let active = self.active.iter().flat_map(|a| a.outstanding.iter());
        let drains = self.draining.iter().flat_map(|d| d.outstanding.iter());
        active
            .chain(drains)
            .map(|(&req_id, (shard, op))| Fragment {
                shard: *shard,
                req_id,
                op: op.clone(),
            })
            .collect()
    }

    /// Whether any early-acked transaction's outcome fan-out is still
    /// collecting acknowledgements.
    pub fn draining(&self) -> bool {
        !self.draining.is_empty()
    }

    /// The already-acked outcome of the oldest transaction still
    /// draining its fan-out, if any — what a driver that was handed the
    /// outcome fragments of a decided transaction (rather than seeing
    /// the decision itself) reports once the drain empties.
    pub fn drain_outcome(&self) -> Option<TxnOutcome> {
        self.draining.first().map(|d| d.outcome)
    }

    /// Takes the re-probe fragments queued by wait/busy votes. The
    /// harness should submit them **after one flush window** rather than
    /// immediately: the shard just said the keys are contended, and an
    /// instant resubmit arrives inside the same lock window it was
    /// turned away from (conflict-aware scheduling; the TestNet's
    /// round cadence and the sim's deferred retransmission both provide
    /// the window).
    pub fn take_deferred(&mut self) -> Vec<Fragment> {
        std::mem::take(&mut self.deferred)
    }

    /// Whether any of `writes`' keys is in the recently-contended cache
    /// — a hint that submitting now will likely park or be turned away,
    /// so the harness may delay the transaction by one flush window.
    pub fn is_hot(&self, writes: &[(u64, u64)]) -> bool {
        writes.iter().any(|(key, _)| self.recent.contains_key(key))
    }

    /// Cumulative re-probe fragments issued after wait/busy votes (the
    /// bench's `retries` column).
    pub fn reprobes(&self) -> u64 {
        self.reprobes
    }

    /// Feeds every key of `shard`'s fragment into the
    /// recently-contended cache (bounded; oldest keys evicted).
    fn note_contended(&mut self, shard: ShardId) {
        let Some(writes) = self
            .active
            .as_ref()
            .and_then(|a| a.fragments.get(&shard))
            .cloned()
        else {
            return;
        };
        for &(key, _) in writes.iter() {
            self.recent.insert(key, HOT_TTL);
            while self.recent.len() > HOT_CAP {
                self.recent.pop_first();
            }
        }
    }

    fn alloc_req(&mut self) -> u64 {
        let r = self.next_req;
        self.next_req += 1;
        r
    }

    /// Partitions `writes` by owning shard, in shard order.
    fn partition(&self, writes: &[(u64, u64)]) -> BTreeMap<ShardId, Vec<(u64, u64)>> {
        let mut by_shard: BTreeMap<ShardId, Vec<(u64, u64)>> = BTreeMap::new();
        for &(key, value) in writes {
            by_shard
                .entry(self.router.route_key(key))
                .or_default()
                .push((key, value));
        }
        by_shard
    }

    /// Starts a transaction writing `writes` and returns the phase-1
    /// fragments to submit: one [`Op::TxnPrepare`] per touched shard, or
    /// a single [`Op::MultiPut`] when one shard owns every key (the
    /// short-circuit — no lock window, no second phase).
    ///
    /// Fragments come back in **shard-id order** (the partition is a
    /// `BTreeMap`), and the harness should emit them in that order:
    /// every coordinator acquiring locks along the same global shard
    /// order keeps lock-intent ordering consistent across the per-link
    /// FIFO transports, which combines with the participant's wait-die
    /// queue to make conflicting prepares serialize instead of storming.
    /// Emission is pipelined, not serialized — the next fragment goes
    /// out as soon as the previous one is handed to its (ordered) link,
    /// never waiting for a vote.
    ///
    /// A new transaction may begin while earlier early-acked
    /// transactions are still [`Self::draining`] their outcome fan-outs.
    ///
    /// # Panics
    ///
    /// Panics if a transaction is already in flight or `writes` is
    /// empty.
    pub fn begin(&mut self, writes: &[(u64, u64)]) -> Vec<Fragment> {
        assert!(self.active.is_none(), "a transaction is already in flight");
        assert!(!writes.is_empty(), "a transaction writes at least one key");
        // Age the conflict cache: one begin is one scheduling window.
        self.recent.retain(|_, ttl| {
            *ttl -= 1;
            *ttl > 0
        });
        let by_shard = self.partition(writes);
        let txn = TxnId::new(self.client, self.next_seq);
        self.next_seq += 1;
        let mut active = Active {
            txn,
            phase: if by_shard.len() == 1 {
                Phase::Single
            } else {
                Phase::Preparing
            },
            outstanding: BTreeMap::new(),
            votes: BTreeMap::new(),
            fragments: BTreeMap::new(),
            waits: BTreeMap::new(),
            busys: BTreeMap::new(),
        };
        let mut out = Vec::with_capacity(by_shard.len());
        for (shard, frag) in by_shard {
            let writes: TxnWrites = frag.into();
            active.fragments.insert(shard, writes.clone());
            let op = if active.phase == Phase::Single {
                Op::MultiPut { writes }
            } else {
                Op::TxnPrepare { txn, writes }
            };
            let req_id = self.alloc_req();
            active.outstanding.insert(req_id, (shard, op.clone()));
            out.push(Fragment { shard, req_id, op });
        }
        self.active = Some(active);
        out
    }

    /// Resumes a transaction whose coordinator died: builds the outcome
    /// fragments (`outcome` as decided by [`recover_outcome`] from the
    /// shards' statuses) for every shard `writes` touches, and arms the
    /// coordinator to collect their acknowledgements. `writes` must be
    /// the original write set (the recovering coordinator replays its
    /// client's request); `txn` the original id.
    ///
    /// # Panics
    ///
    /// Panics if a transaction is already in flight, `writes` is empty,
    /// or the write set is single-shard (nothing to recover — a
    /// [`Op::MultiPut`] either committed atomically or never existed).
    pub fn begin_recovery(
        &mut self,
        txn: TxnId,
        writes: &[(u64, u64)],
        outcome: TxnOutcome,
    ) -> Vec<Fragment> {
        assert!(self.active.is_none(), "a transaction is already in flight");
        assert!(!writes.is_empty(), "a transaction writes at least one key");
        let by_shard = self.partition(writes);
        assert!(
            by_shard.len() > 1,
            "single-shard transactions have no prepare window to recover"
        );
        self.active = Some(Active {
            txn,
            phase: Phase::Preparing, // placeholder; outcome_fragments sets it
            outstanding: BTreeMap::new(),
            votes: BTreeMap::new(),
            fragments: by_shard
                .into_iter()
                .map(|(shard, frag)| (shard, frag.into()))
                .collect(),
            waits: BTreeMap::new(),
            busys: BTreeMap::new(),
        });
        self.outcome_fragments(outcome)
    }

    /// Moves the active transaction into its outcome phase and builds
    /// one commit/abort fragment per touched shard — the single place
    /// outcome routing and request-id allocation happen, shared by the
    /// live path ([`Self::decide`]) and recovery
    /// ([`Self::begin_recovery`]).
    fn outcome_fragments(&mut self, outcome: TxnOutcome) -> Vec<Fragment> {
        let a = self.active.as_mut().expect("no transaction to conclude");
        a.phase = Phase::Outcome(outcome);
        // Unanswered prepares (and queued re-probes) are moot once the
        // outcome is decided: drop them so their late replies read as
        // unknown ids and the drain queue tracks outcome acks only. The
        // outcome command itself finishes the transaction at a shard
        // whose prepare never landed.
        a.outstanding.clear();
        let txn = a.txn;
        let shards: Vec<(ShardId, u64)> = a
            .fragments
            .iter()
            .map(|(&shard, writes)| (shard, writes[0].0))
            .collect();
        let mut out = Vec::with_capacity(shards.len());
        for (shard, key) in shards {
            let op = match outcome {
                TxnOutcome::Committed => Op::TxnCommit { txn, key },
                TxnOutcome::Aborted => Op::TxnAbort { txn, key },
            };
            let req_id = self.alloc_req();
            self.active
                .as_mut()
                .expect("still active")
                .outstanding
                .insert(req_id, (shard, op.clone()));
            out.push(Fragment { shard, req_id, op });
        }
        out
    }

    /// Forces the active transaction's outcome **now**: builds the
    /// outcome fragments, moves their acknowledgement tracking into the
    /// drain queue, and frees the coordinator for the next transaction.
    /// Safe because the decision is already immutable — unanimous yes
    /// votes can only ever be driven to commit ([`recover_outcome`]'s
    /// all-prepared rule reconstructs exactly this if we die before the
    /// fan-out lands) and a no vote (or given-up wait) can only be
    /// driven to abort, since this coordinator stops issuing prepares
    /// and no shard re-votes a finished transaction.
    fn force(&mut self, outcome: TxnOutcome) -> TxnStep {
        let submit = self.outcome_fragments(outcome);
        let a = self.active.take().expect("forcing without a txn");
        // Queued re-probes are for the now-decided prepares: drop them.
        self.deferred.clear();
        self.draining.push(Drain {
            outcome,
            outstanding: a.outstanding,
        });
        TxnStep::Decided { outcome, submit }
    }

    /// Decides once every vote is in: commit everywhere on unanimous
    /// yes, abort everywhere otherwise (a no-voting shard staged
    /// nothing, but the abort still records the txn as finished there,
    /// so a late or duplicate prepare can never lock keys for a dead
    /// transaction).
    fn decide(&mut self) -> TxnStep {
        let a = self.active.as_ref().expect("deciding without a txn");
        let outcome = if a.votes.values().all(|&yes| yes) {
            TxnOutcome::Committed
        } else {
            TxnOutcome::Aborted
        };
        self.force(outcome)
    }

    /// Queues a deferred re-probe of `shard`'s prepare under a fresh
    /// request id (the appliers' sessions dedup by `(client, req_id)`,
    /// so re-asking under the old id would echo the old vote instead of
    /// re-evaluating the locks) and feeds the conflict cache.
    fn reprobe(&mut self, shard: ShardId, op: Op) {
        let req_id = self.alloc_req();
        let a = self.active.as_mut().expect("re-probing without a txn");
        a.outstanding.insert(req_id, (shard, op.clone()));
        self.reprobes += 1;
        self.deferred.push(Fragment { shard, req_id, op });
        self.note_contended(shard);
    }

    /// Consumes one client reply. `value` is the reply's state-machine
    /// output (the vote, for a prepare); a valueless prepare reply — a
    /// log gap raced the reply out — leaves the fragment outstanding so
    /// the harness's retry resends it and collects the vote later.
    ///
    /// Replies for unknown request ids (stale, duplicate, or other
    /// traffic of the same client) return [`TxnStep::Pending`] and
    /// change nothing. Acknowledgements of an early-acked transaction's
    /// outcome fan-out also return [`TxnStep::Pending`] — the caller
    /// already has that outcome.
    pub fn on_reply(&mut self, req_id: u64, value: Option<u64>) -> TxnStep {
        // Drain acknowledgements first: they may interleave with the
        // next transaction's prepare replies.
        for i in 0..self.draining.len() {
            if self.draining[i].outstanding.remove(&req_id).is_some() {
                if self.draining[i].outstanding.is_empty() {
                    self.draining.remove(i);
                }
                return TxnStep::Pending;
            }
        }
        let Some(a) = self.active.as_mut() else {
            return TxnStep::Pending;
        };
        if !a.outstanding.contains_key(&req_id) {
            return TxnStep::Pending;
        }
        match a.phase {
            Phase::Single => {
                // The reply means the MultiPut decided: atomicity came
                // from the single agreement, nothing else to do.
                a.outstanding.remove(&req_id);
                self.active = None;
                TxnStep::Done(TxnOutcome::Committed)
            }
            Phase::Preparing => {
                let Some(raw) = value else {
                    return TxnStep::Pending; // vote not applied yet: retry will re-ask
                };
                let (shard, op) = a.outstanding.remove(&req_id).expect("checked");
                // Unknown encodings count as a no vote (defensive; the
                // participant only emits the four TxnVote values).
                match TxnVote::from_output(raw).unwrap_or(TxnVote::Abort) {
                    TxnVote::Commit => {
                        a.votes.insert(shard, true);
                        if a.votes.len() == a.fragments.len() {
                            self.decide()
                        } else {
                            TxnStep::Pending
                        }
                    }
                    TxnVote::Abort => {
                        // Early abort: one no vote forces the outcome;
                        // still-unanswered prepares are moot (their
                        // shards get the abort too).
                        a.votes.insert(shard, false);
                        self.note_contended(shard);
                        self.force(TxnOutcome::Aborted)
                    }
                    TxnVote::Wait => {
                        let waits = a.waits.entry(shard).or_insert(0);
                        *waits += 1;
                        if *waits > WAIT_PATIENCE {
                            // The holder is stuck (dead coordinator, or
                            // a cross-shard poll-wait cycle): give up.
                            // The abort purges our parked queue entry.
                            a.votes.insert(shard, false);
                            self.force(TxnOutcome::Aborted)
                        } else {
                            self.reprobe(shard, op);
                            TxnStep::Pending
                        }
                    }
                    TxnVote::Busy => {
                        let busys = a.busys.entry(shard).or_insert(0);
                        *busys += 1;
                        if *busys > BUSY_PATIENCE {
                            a.votes.insert(shard, false);
                            self.force(TxnOutcome::Aborted)
                        } else {
                            self.reprobe(shard, op);
                            TxnStep::Pending
                        }
                    }
                }
            }
            Phase::Outcome(outcome) => {
                // Only recovery drives an outcome through the active
                // slot (the live path early-acks into the drain queue):
                // report Done once every shard acknowledged.
                a.outstanding.remove(&req_id);
                if a.outstanding.is_empty() {
                    self.active = None;
                    TxnStep::Done(outcome)
                } else {
                    TxnStep::Pending
                }
            }
        }
    }
}

/// The uniquely safe outcome a recovering coordinator must drive, given
/// every touched shard's [`TxnStatus`]:
///
/// * any shard already **Committed** → the dead coordinator had decided
///   commit: finish the job.
/// * any shard already **Aborted** → likewise abort.
/// * all shards **Prepared** → unanimous yes votes are in the logs; the
///   coordinator could only ever have decided commit, so commit.
/// * otherwise (some shard **Unknown**) → the coordinator cannot have
///   assembled unanimous votes: abort. The abort lands on the unknown
///   shard too, so a prepare still in flight finds the transaction
///   finished and refuses to lock.
///
/// # Status freshness
///
/// Each input must reflect its shard's **full decided log prefix**:
/// obtain it with the agreed probe ([`Op::TxnStatus`], an ordinary
/// command ordered through the shard's consensus — e.g.
/// `TestNet::txn_status_agreed`), *not* from an arbitrary replica's
/// locally-applied state. A lagging replica under-reports: it answers
/// `Unknown` (or `Prepared`) for a transaction its shard has already
/// committed, which steers this function to `Aborted` — recovery then
/// aborts the other shards while the committed fragment stands, and
/// atomicity is broken. The relaxed accessors (`KvStore::txn_status`,
/// `ShardedEngine::txn_status`, `TestNet::txn_status`) are per-replica
/// test oracles, safe as recovery input only when the queried replica
/// is known to have applied everything its shards decided (e.g. a
/// deterministic harness at quiescence).
pub fn recover_outcome(statuses: &[TxnStatus]) -> TxnOutcome {
    assert!(!statuses.is_empty(), "recovery needs at least one shard");
    if statuses.contains(&TxnStatus::Committed) {
        return TxnOutcome::Committed;
    }
    if statuses.contains(&TxnStatus::Aborted) {
        return TxnOutcome::Aborted;
    }
    if statuses.iter().all(|&s| s == TxnStatus::Prepared) {
        TxnOutcome::Committed
    } else {
        TxnOutcome::Aborted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn coord(shards: u16) -> TxnCoordinator {
        TxnCoordinator::new(NodeId(9), ShardRouter::new(shards))
    }

    /// Keys that land on `n` distinct shards of a `shards`-way router.
    fn spanning_keys(shards: u16, n: usize) -> Vec<u64> {
        let r = ShardRouter::new(shards);
        let mut seen = std::collections::BTreeSet::new();
        let mut keys = Vec::new();
        for k in 0.. {
            if seen.insert(r.route_key(k)) {
                keys.push(k);
                if keys.len() == n {
                    return keys;
                }
            }
        }
        unreachable!()
    }

    #[test]
    fn single_shard_write_set_short_circuits_to_multiput() {
        let mut c = coord(4);
        let r = ShardRouter::new(4);
        let s0 = r.route_key(0);
        let twin = (1u64..).find(|&k| r.route_key(k) == s0).unwrap();
        let frags = c.begin(&[(0, 1), (twin, 2)]);
        assert_eq!(frags.len(), 1);
        assert!(matches!(frags[0].op, Op::MultiPut { .. }));
        assert_eq!(frags[0].shard, s0);
        assert_eq!(c.current_txn(), None, "short-circuit has no txn id");
        // Any reply (valueless included) completes it.
        assert_eq!(
            c.on_reply(frags[0].req_id, None),
            TxnStep::Done(TxnOutcome::Committed)
        );
        assert!(!c.in_flight());
    }

    #[test]
    fn unanimous_votes_commit_on_every_touched_shard() {
        let mut c = coord(4);
        let keys = spanning_keys(4, 3);
        let writes: Vec<(u64, u64)> = keys.iter().map(|&k| (k, k + 100)).collect();
        let frags = c.begin(&writes);
        assert_eq!(frags.len(), 3);
        assert!(frags.iter().all(|f| matches!(f.op, Op::TxnPrepare { .. })));
        let txn = c.current_txn().expect("multi-shard txn has an id");
        // Two yes votes: still pending.
        assert_eq!(
            c.on_reply(frags[0].req_id, Some(TXN_VOTE_COMMIT)),
            TxnStep::Pending
        );
        assert_eq!(
            c.on_reply(frags[1].req_id, Some(TXN_VOTE_COMMIT)),
            TxnStep::Pending
        );
        // Third vote forces the outcome: early ack, commits everywhere.
        let TxnStep::Decided {
            outcome: fate,
            submit,
        } = c.on_reply(frags[2].req_id, Some(TXN_VOTE_COMMIT))
        else {
            panic!("expected the forced outcome");
        };
        assert_eq!(fate, TxnOutcome::Committed);
        assert_eq!(submit.len(), 3);
        for f in &submit {
            match &f.op {
                Op::TxnCommit { txn: t, key } => {
                    assert_eq!(*t, txn);
                    assert_eq!(c.router.route_key(*key), f.shard, "outcome mis-routed");
                }
                other => panic!("expected TxnCommit, got {other:?}"),
            }
        }
        // The caller already has the outcome; the fan-out drains in the
        // background while the coordinator is free for the next txn.
        assert!(!c.in_flight());
        assert!(c.draining());
        assert_eq!(c.on_reply(submit[0].req_id, None), TxnStep::Pending);
        assert_eq!(c.on_reply(submit[1].req_id, None), TxnStep::Pending);
        assert_eq!(c.on_reply(submit[2].req_id, None), TxnStep::Pending);
        assert!(!c.draining());
    }

    #[test]
    fn one_no_vote_aborts_everywhere() {
        let mut c = coord(4);
        let keys = spanning_keys(4, 2);
        let frags = c.begin(&[(keys[0], 1), (keys[1], 2)]);
        // The FIRST no vote forces the outcome — no waiting for the
        // other shard's vote (it can no longer change anything).
        let TxnStep::Decided {
            outcome: fate,
            submit,
        } = c.on_reply(frags[0].req_id, Some(TXN_VOTE_ABORT))
        else {
            panic!("expected the forced outcome");
        };
        assert_eq!(fate, TxnOutcome::Aborted);
        // The abort reaches BOTH shards — the no-voter records the txn
        // as finished so a late duplicate prepare cannot lock, and the
        // other shard's stage (if its prepare landed) is discarded.
        assert_eq!(submit.len(), 2);
        assert!(submit.iter().all(|f| matches!(f.op, Op::TxnAbort { .. })));
        // The second shard's late vote reply is moot: its request id was
        // dropped when the outcome was forced.
        assert_eq!(
            c.on_reply(frags[1].req_id, Some(TXN_VOTE_COMMIT)),
            TxnStep::Pending
        );
        c.on_reply(submit[0].req_id, None);
        assert_eq!(c.on_reply(submit[1].req_id, None), TxnStep::Pending);
        assert!(!c.draining(), "acks drained");
    }

    #[test]
    fn valueless_prepare_reply_keeps_the_fragment_outstanding() {
        let mut c = coord(4);
        let keys = spanning_keys(4, 2);
        let frags = c.begin(&[(keys[0], 1), (keys[1], 2)]);
        assert_eq!(c.on_reply(frags[0].req_id, None), TxnStep::Pending);
        // The fragment is still retransmittable…
        let again = c.fragment(frags[0].req_id).expect("still outstanding");
        assert_eq!(again, frags[0]);
        assert_eq!(c.outstanding_fragments().len(), 2);
        // …and a later valued reply counts.
        c.on_reply(frags[0].req_id, Some(TXN_VOTE_COMMIT));
        assert!(matches!(
            c.on_reply(frags[1].req_id, Some(TXN_VOTE_COMMIT)),
            TxnStep::Decided {
                outcome: TxnOutcome::Committed,
                ..
            }
        ));
    }

    #[test]
    fn stale_and_duplicate_replies_are_ignored() {
        let mut c = coord(4);
        let keys = spanning_keys(4, 2);
        let frags = c.begin(&[(keys[0], 1), (keys[1], 2)]);
        assert_eq!(c.on_reply(9999, Some(1)), TxnStep::Pending, "unknown id");
        c.on_reply(frags[0].req_id, Some(TXN_VOTE_COMMIT));
        // A duplicate reply for a resolved fragment changes nothing.
        assert_eq!(
            c.on_reply(frags[0].req_id, Some(TXN_VOTE_ABORT)),
            TxnStep::Pending
        );
        assert!(matches!(
            c.on_reply(frags[1].req_id, Some(TXN_VOTE_COMMIT)),
            TxnStep::Decided { .. }
        ));
    }

    #[test]
    fn req_ids_stay_strictly_increasing_across_transactions() {
        let mut c = coord(4);
        let keys = spanning_keys(4, 2);
        let mut last = 0;
        for round in 0..3 {
            let frags = c.begin(&[(keys[0], round), (keys[1], round)]);
            for f in &frags {
                assert!(f.req_id > last, "req ids must increase");
                last = f.req_id;
            }
            c.on_reply(frags[0].req_id, Some(TXN_VOTE_COMMIT));
            let TxnStep::Decided { submit, .. } =
                c.on_reply(frags[1].req_id, Some(TXN_VOTE_COMMIT))
            else {
                panic!("expected the forced outcome");
            };
            for f in &submit {
                assert!(f.req_id > last);
                last = f.req_id;
            }
            c.on_reply(submit[0].req_id, None);
            assert_eq!(c.on_reply(submit[1].req_id, None), TxnStep::Pending);
            assert!(!c.draining());
        }
    }

    #[test]
    fn rebuilt_coordinators_resync_the_txn_sequence() {
        // The threaded runtime rebuilds a coordinator per txn_put call;
        // seeding `with_first_seq` from the previous coordinator's
        // `next_seq` must keep TxnIds unique across rebuilds — a reused
        // id would make participant shards echo the previous
        // transaction's recorded outcome instead of staging anything.
        let keys = spanning_keys(4, 2);
        let writes = [(keys[0], 1), (keys[1], 2)];
        let router = ShardRouter::new(4);
        let mut first = TxnCoordinator::with_first_req(NodeId(9), router, 1);
        first.begin(&writes);
        let t1 = first.current_txn().expect("multi-shard txn");
        // The rebuild (after the first transaction finished or timed
        // out) carries both counters forward.
        let mut second = TxnCoordinator::with_first_req(NodeId(9), router, first.next_req())
            .with_first_seq(first.next_seq());
        second.begin(&writes);
        let t2 = second.current_txn().expect("multi-shard txn");
        assert_ne!(t1, t2, "rebuilt coordinator reused a TxnId");
        assert!(t2.seq > t1.seq);
    }

    #[test]
    fn status_output_encoding_roundtrips() {
        use TxnStatus::*;
        for s in [Unknown, Prepared, Committed, Aborted] {
            assert_eq!(TxnStatus::from_output(s.as_output()), Some(s));
        }
        assert_eq!(TxnStatus::from_output(17), None);
    }

    #[test]
    fn recovery_outcomes_follow_the_matrix() {
        use TxnStatus::*;
        assert_eq!(
            recover_outcome(&[Prepared, Prepared]),
            TxnOutcome::Committed
        );
        assert_eq!(recover_outcome(&[Prepared, Unknown]), TxnOutcome::Aborted);
        assert_eq!(recover_outcome(&[Unknown, Unknown]), TxnOutcome::Aborted);
        assert_eq!(
            recover_outcome(&[Committed, Prepared]),
            TxnOutcome::Committed
        );
        assert_eq!(recover_outcome(&[Aborted, Prepared]), TxnOutcome::Aborted);
        // An outcome found anywhere wins over everything else.
        assert_eq!(
            recover_outcome(&[Committed, Unknown]),
            TxnOutcome::Committed
        );
    }

    #[test]
    fn wait_vote_defers_a_fresh_req_id_reprobe() {
        let mut c = coord(4);
        let keys = spanning_keys(4, 2);
        let frags = c.begin(&[(keys[0], 1), (keys[1], 2)]);
        // Shard 0 parks us behind a holder: Pending now, and a re-probe
        // under a FRESH request id is queued for deferred submission
        // (the appliers dedup by req_id, so re-asking under the old one
        // would echo the old Wait instead of re-evaluating the locks).
        assert_eq!(
            c.on_reply(frags[0].req_id, Some(TxnVote::Wait.as_output())),
            TxnStep::Pending
        );
        let deferred = c.take_deferred();
        assert_eq!(deferred.len(), 1);
        assert!(deferred[0].req_id > frags[1].req_id, "fresh req id");
        assert_eq!(deferred[0].shard, frags[0].shard);
        assert_eq!(deferred[0].op, frags[0].op, "same prepare, re-asked");
        assert_eq!(
            c.fragment(frags[0].req_id),
            None,
            "the old req id is dead; its late replies are ignored"
        );
        assert_eq!(c.reprobes(), 1);
        // The other shard's yes plus the granted re-probe's yes commit.
        assert_eq!(
            c.on_reply(frags[1].req_id, Some(TXN_VOTE_COMMIT)),
            TxnStep::Pending
        );
        assert!(matches!(
            c.on_reply(deferred[0].req_id, Some(TXN_VOTE_COMMIT)),
            TxnStep::Decided {
                outcome: TxnOutcome::Committed,
                ..
            }
        ));
    }

    #[test]
    fn busy_patience_exhausts_to_an_abort() {
        let mut c = coord(4);
        let keys = spanning_keys(4, 2);
        let frags = c.begin(&[(keys[0], 1), (keys[1], 2)]);
        assert_eq!(
            c.on_reply(frags[1].req_id, Some(TXN_VOTE_COMMIT)),
            TxnStep::Pending
        );
        let mut req = frags[0].req_id;
        for _ in 0..BUSY_PATIENCE {
            assert_eq!(
                c.on_reply(req, Some(TxnVote::Busy.as_output())),
                TxnStep::Pending
            );
            let deferred = c.take_deferred();
            assert_eq!(deferred.len(), 1);
            req = deferred[0].req_id;
        }
        // One Busy beyond the patience budget forces the abort; the
        // queued re-probe dies with the decision.
        let step = c.on_reply(req, Some(TxnVote::Busy.as_output()));
        let TxnStep::Decided {
            outcome: TxnOutcome::Aborted,
            submit,
        } = step
        else {
            panic!("expected a forced abort, got {step:?}");
        };
        assert_eq!(submit.len(), 2);
        assert!(c.take_deferred().is_empty(), "no zombie re-probes");
    }

    #[test]
    fn early_ack_overlaps_the_next_transaction() {
        let mut c = coord(4);
        let keys = spanning_keys(4, 2);
        let frags = c.begin(&[(keys[0], 1), (keys[1], 2)]);
        c.on_reply(frags[0].req_id, Some(TXN_VOTE_COMMIT));
        let TxnStep::Decided { submit, .. } = c.on_reply(frags[1].req_id, Some(TXN_VOTE_COMMIT))
        else {
            panic!("expected the forced outcome");
        };
        // Phase 2 of txn n overlaps phase 1 of txn n+1: begin() while
        // the fan-out drains.
        assert!(c.draining() && !c.in_flight());
        let next = c.begin(&[(keys[0], 3), (keys[1], 4)]);
        assert_eq!(next.len(), 2);
        // Interleaved replies resolve to the right transaction.
        assert_eq!(c.on_reply(submit[0].req_id, None), TxnStep::Pending);
        assert_eq!(
            c.on_reply(next[0].req_id, Some(TXN_VOTE_COMMIT)),
            TxnStep::Pending
        );
        assert_eq!(c.on_reply(submit[1].req_id, None), TxnStep::Pending);
        assert!(!c.draining());
        assert!(matches!(
            c.on_reply(next[1].req_id, Some(TXN_VOTE_COMMIT)),
            TxnStep::Decided {
                outcome: TxnOutcome::Committed,
                ..
            }
        ));
    }

    #[test]
    fn conflict_cache_marks_contended_keys_and_ages_out() {
        let mut c = coord(4);
        let keys = spanning_keys(4, 2);
        let writes = [(keys[0], 1), (keys[1], 2)];
        assert!(!c.is_hot(&writes));
        let frags = c.begin(&writes);
        // A hard no on shard 0 feeds that fragment's keys to the cache.
        let TxnStep::Decided { submit, .. } = c.on_reply(frags[0].req_id, Some(TXN_VOTE_ABORT))
        else {
            panic!("expected the forced abort");
        };
        for f in submit {
            c.on_reply(f.req_id, None);
        }
        assert!(c.is_hot(&writes), "conflicted key is hot");
        assert!(!c.is_hot(&[(keys[1], 9)]), "other shard's key is not");
        // The cache ages by one per begin(): after HOT_TTL begins the
        // key is cold again.
        for round in 0..HOT_TTL as u64 {
            let f = c.begin(&[(keys[1], round)]);
            c.on_reply(f[0].req_id, None);
        }
        assert!(!c.is_hot(&writes));
    }

    #[test]
    fn begin_recovery_builds_outcome_fragments_for_every_shard() {
        let mut c = coord(4);
        let keys = spanning_keys(4, 2);
        let writes = [(keys[0], 1), (keys[1], 2)];
        let txn = TxnId::new(NodeId(7), 42);
        let frags = c.begin_recovery(txn, &writes, TxnOutcome::Aborted);
        assert_eq!(frags.len(), 2);
        for f in &frags {
            match &f.op {
                Op::TxnAbort { txn: t, key } => {
                    assert_eq!(*t, txn);
                    assert_eq!(c.router.route_key(*key), f.shard);
                }
                other => panic!("expected TxnAbort, got {other:?}"),
            }
        }
        c.on_reply(frags[0].req_id, None);
        assert_eq!(
            c.on_reply(frags[1].req_id, None),
            TxnStep::Done(TxnOutcome::Aborted)
        );
    }
}
