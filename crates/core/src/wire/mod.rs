//! Deterministic, versioned binary wire format for every protocol
//! message in the tree — the serialization layer that lets the same
//! replica engines run behind a socket instead of a shared-memory queue.
//!
//! The in-process harnesses move messages *by value*: the `TestNet`
//! clones them across link FIFOs, the simulator passes them through its
//! event heap, the threaded runtime moves them through qc-channel slots.
//! None of that survives a process boundary. This module defines the
//! byte-level contract that does:
//!
//! * [`Codec`] — canonical binary encode/decode for a value. Encoding is
//!   a pure function of the value (no padding, no pointer identity, no
//!   platform dependence: all integers little-endian, multi-byte counts
//!   as minimal-length LEB128 varints), so two encodes of equal values
//!   produce identical bytes and `decode(encode(v)) == v` for every
//!   value — the round-trip property the codec proptests pin.
//! * [`DecodeError`] — decoding is **total**: corrupt, truncated or
//!   trailing bytes produce a typed error, never a panic. A replica
//!   must survive any byte sequence a broken or malicious peer sends.
//! * [Framing](self#framing) — a length-prefixed frame header
//!   ([`FRAME_MAGIC`], [`FRAME_VERSION`], payload length) so a stream
//!   transport can delimit messages and reject foreign or incompatible
//!   traffic before touching the payload.
//!
//! # Framing
//!
//! Every frame on a stream transport is:
//!
//! | offset | size | field                                        |
//! |--------|------|----------------------------------------------|
//! | 0      | 2    | magic `0xC51D` (little-endian)               |
//! | 2      | 1    | format version (currently `1`)               |
//! | 3      | 1    | reserved, must be `0`                        |
//! | 4      | 4    | payload length in bytes (little-endian u32)  |
//! | 8      | len  | payload                                      |
//!
//! The payload of the runtime's transport frames is a shard-group topic
//! (`u16`) followed by one encoded `Wire` message; this module only
//! delimits the payload. [`read_frame`] parses incrementally: it
//! distinguishes "need more bytes" (`Ok(None)`) from "stream is garbage"
//! (`Err`), which is what lets a receiver accumulate partial frames in a
//! reusable buffer.
//!
//! # Examples
//!
//! ```
//! use onepaxos::wire::{decode_exact, encode_to_vec, Codec};
//! use onepaxos::{Command, NodeId, Op};
//!
//! let cmd = Command::new(NodeId(9), 7, Op::Put { key: 1, value: 2 });
//! let bytes = encode_to_vec(&cmd);
//! assert_eq!(decode_exact::<Command>(&bytes).unwrap(), cmd);
//! // Truncation is an error, not a panic.
//! assert!(decode_exact::<Command>(&bytes[..bytes.len() - 1]).is_err());
//! ```

use std::fmt;
use std::sync::Arc;

use crate::kv::KvSnapshot;
use crate::onepaxos::{AbandonRe, Msg as OnePaxosMsg, UtilityEntry, UtilityMsg};
use crate::rsm::{ApplierSnapshot, StateMachine};
use crate::types::{Ballot, Command, NodeId, Op, TxnId};
use crate::{basic_paxos, mencius, multipaxos, twopc};

pub mod chunk;

pub use chunk::{Chunk, RecvBuf, SendQueue};

/// First two bytes of every frame, little-endian. Chosen to be unlikely
/// as the start of ASCII traffic accidentally pointed at a replica port.
pub const FRAME_MAGIC: u16 = 0xC51D;

/// Current wire-format version, bumped on any incompatible change to the
/// encodings below. A receiver refuses other versions outright
/// ([`DecodeError::BadVersion`]) instead of guessing.
pub const FRAME_VERSION: u8 = 1;

/// Size of the frame header preceding every payload.
pub const FRAME_HEADER: usize = 8;

/// Upper bound on a frame payload (16 MiB). Far above any real message
/// (the largest are batch commands of a few hundred entries), and small
/// enough that a corrupt length field cannot talk a receiver into a
/// multi-gigabyte allocation.
pub const MAX_FRAME: usize = 16 << 20;

// --------------------------------------------------------------------
// Errors
// --------------------------------------------------------------------

/// Why a byte sequence failed to decode. Every failure mode of the codec
/// is represented; none panics.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DecodeError {
    /// The input ended in the middle of a value.
    Truncated,
    /// A frame started with bytes other than [`FRAME_MAGIC`].
    BadMagic(u16),
    /// A frame declared a version this build does not speak.
    BadVersion(u8),
    /// A frame's reserved byte was non-zero.
    BadReserved(u8),
    /// A frame declared a payload larger than [`MAX_FRAME`].
    FrameTooLarge(u32),
    /// An enum discriminant no encoder produces. `what` names the type
    /// being decoded.
    BadTag {
        /// The type whose discriminant was invalid.
        what: &'static str,
        /// The offending tag byte.
        tag: u8,
    },
    /// A varint ran past its maximum width (a u64 fits in 10 bytes).
    VarintOverflow,
    /// The value decoded cleanly but left unconsumed payload bytes —
    /// a length mismatch between sender and receiver.
    Trailing(usize),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            DecodeError::Truncated => f.write_str("input truncated mid-value"),
            DecodeError::BadMagic(m) => write!(f, "bad frame magic {m:#06x}"),
            DecodeError::BadVersion(v) => write!(f, "unsupported wire version {v}"),
            DecodeError::BadReserved(b) => write!(f, "non-zero reserved frame byte {b:#04x}"),
            DecodeError::FrameTooLarge(n) => {
                write!(
                    f,
                    "frame payload of {n} bytes exceeds the {MAX_FRAME}-byte cap"
                )
            }
            DecodeError::BadTag { what, tag } => write!(f, "invalid {what} tag {tag:#04x}"),
            DecodeError::VarintOverflow => f.write_str("varint wider than 64 bits"),
            DecodeError::Trailing(n) => write!(f, "{n} unconsumed payload bytes"),
        }
    }
}

impl std::error::Error for DecodeError {}

// --------------------------------------------------------------------
// Reader
// --------------------------------------------------------------------

/// A bounds-checked cursor over the bytes being decoded. All reads
/// return [`DecodeError::Truncated`] instead of slicing out of range.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Starts a reader over `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Whether every byte has been consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, DecodeError> {
        let b = *self.buf.get(self.pos).ok_or(DecodeError::Truncated)?;
        self.pos += 1;
        Ok(b)
    }

    /// Reads a little-endian u16.
    pub fn u16(&mut self) -> Result<u16, DecodeError> {
        let end = self.pos.checked_add(2).ok_or(DecodeError::Truncated)?;
        let bytes = self.buf.get(self.pos..end).ok_or(DecodeError::Truncated)?;
        self.pos = end;
        Ok(u16::from_le_bytes([bytes[0], bytes[1]]))
    }

    /// Reads an LEB128 varint of at most 64 bits.
    pub fn varint(&mut self) -> Result<u64, DecodeError> {
        let mut value: u64 = 0;
        let mut shift = 0u32;
        loop {
            let byte = self.u8()?;
            if shift == 63 && byte > 1 {
                return Err(DecodeError::VarintOverflow);
            }
            value |= u64::from(byte & 0x7F) << shift;
            if byte & 0x80 == 0 {
                return Ok(value);
            }
            shift += 7;
            if shift > 63 {
                return Err(DecodeError::VarintOverflow);
            }
        }
    }

    /// Reads a length prefix (varint), bounds-checked against the bytes
    /// actually remaining so a corrupt length cannot drive a huge
    /// allocation before the inevitable [`DecodeError::Truncated`].
    pub fn len_prefix(&mut self) -> Result<usize, DecodeError> {
        let n = self.varint()?;
        if n > self.remaining() as u64 {
            return Err(DecodeError::Truncated);
        }
        Ok(n as usize)
    }
}

/// Appends `v` as an LEB128 varint.
pub fn put_varint(buf: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(byte);
            return;
        }
        buf.push(byte | 0x80);
    }
}

// --------------------------------------------------------------------
// Codec trait + base impls
// --------------------------------------------------------------------

/// Canonical binary encoding of a value.
///
/// `encode` appends the value's bytes to `buf`; `decode` consumes exactly
/// the bytes `encode` produced and reconstructs an equal value. Encoding
/// is deterministic — equal values yield identical bytes — and decoding
/// is total: any byte sequence either decodes or returns a
/// [`DecodeError`].
pub trait Codec: Sized {
    /// Appends this value's canonical encoding to `buf`.
    fn encode(&self, buf: &mut Vec<u8>);

    /// Reads one value from `r`.
    ///
    /// # Errors
    ///
    /// Returns a [`DecodeError`] on truncated input or bytes no encoder
    /// produces.
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError>;
}

/// Encodes `v` into a fresh buffer.
pub fn encode_to_vec<T: Codec>(v: &T) -> Vec<u8> {
    let mut buf = Vec::new();
    v.encode(&mut buf);
    buf
}

/// Decodes exactly one value from `bytes`, rejecting leftovers.
///
/// # Errors
///
/// Returns a [`DecodeError`] on malformed input or unconsumed trailing
/// bytes.
pub fn decode_exact<T: Codec>(bytes: &[u8]) -> Result<T, DecodeError> {
    let mut r = Reader::new(bytes);
    let v = T::decode(&mut r)?;
    if !r.is_empty() {
        return Err(DecodeError::Trailing(r.remaining()));
    }
    Ok(v)
}

impl Codec for u8 {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.push(*self);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        r.u8()
    }
}

impl Codec for u16 {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.extend_from_slice(&self.to_le_bytes());
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        r.u16()
    }
}

impl Codec for u32 {
    fn encode(&self, buf: &mut Vec<u8>) {
        put_varint(buf, u64::from(*self));
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let v = r.varint()?;
        u32::try_from(v).map_err(|_| DecodeError::VarintOverflow)
    }
}

impl Codec for u64 {
    fn encode(&self, buf: &mut Vec<u8>) {
        put_varint(buf, *self);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        r.varint()
    }
}

impl Codec for bool {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.push(u8::from(*self));
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        match r.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            tag => Err(DecodeError::BadTag { what: "bool", tag }),
        }
    }
}

impl<T: Codec> Codec for Option<T> {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            None => buf.push(0),
            Some(v) => {
                buf.push(1);
                v.encode(buf);
            }
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        match r.u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(r)?)),
            tag => Err(DecodeError::BadTag {
                what: "Option",
                tag,
            }),
        }
    }
}

impl<T: Codec> Codec for Vec<T> {
    fn encode(&self, buf: &mut Vec<u8>) {
        put_varint(buf, self.len() as u64);
        for item in self {
            item.encode(buf);
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        // Length is bounds-checked against the remaining bytes (every
        // element costs at least one), so a corrupt count cannot drive a
        // huge reservation.
        let n = r.len_prefix()?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(T::decode(r)?);
        }
        Ok(out)
    }
}

/// Throwaway element values for the single-allocation `Arc<[T]>` decode.
///
/// `Arc<[T]>` cannot be built incrementally the way a `Vec` can: the
/// only safe single-allocation construction is collecting an iterator of
/// **exactly** the promised length (std's `FromIterator` specialization
/// for exact-size iterators allocates the slice once). When an element
/// mid-slice fails to decode, the iterator still owes the remaining
/// elements before the error can surface; [`DecodeFill::filler`] supplies
/// those placeholders. They exist only inside the aborted decode — the
/// `Arc` is dropped and the caller sees the original [`DecodeError`] —
/// so any cheaply constructed value works.
pub trait DecodeFill {
    /// A cheap placeholder completing an aborted slice decode.
    fn filler() -> Self;
}

impl DecodeFill for u64 {
    fn filler() -> Self {
        0
    }
}

impl<A: DecodeFill, B: DecodeFill> DecodeFill for (A, B) {
    fn filler() -> Self {
        (A::filler(), B::filler())
    }
}

impl DecodeFill for Command {
    fn filler() -> Self {
        Command::noop(NodeId(0), 0)
    }
}

impl<T: Codec + DecodeFill> Codec for Arc<[T]> {
    fn encode(&self, buf: &mut Vec<u8>) {
        put_varint(buf, self.len() as u64);
        for item in self.iter() {
            item.encode(buf);
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        // Decode straight into the Arc's slice allocation: a
        // known-length iterator collects into `Arc<[T]>` with exactly
        // one allocation, where the old `Vec -> Arc` path paid a second
        // allocation plus an element-by-element move for every Batch /
        // MultiPut / TxnWrites payload crossing the wire.
        let n = r.len_prefix()?;
        let mut err = None;
        let out: Arc<[T]> = (0..n)
            .map(|_| {
                if err.is_some() {
                    return T::filler();
                }
                match T::decode(r) {
                    Ok(v) => v,
                    Err(e) => {
                        err = Some(e);
                        T::filler()
                    }
                }
            })
            .collect();
        match err {
            None => Ok(out),
            Some(e) => Err(e),
        }
    }
}

impl<A: Codec, B: Codec> Codec for (A, B) {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.0.encode(buf);
        self.1.encode(buf);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok((A::decode(r)?, B::decode(r)?))
    }
}

impl<A: Codec, B: Codec, C: Codec> Codec for (A, B, C) {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.0.encode(buf);
        self.1.encode(buf);
        self.2.encode(buf);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok((A::decode(r)?, B::decode(r)?, C::decode(r)?))
    }
}

// --------------------------------------------------------------------
// Core identifier / command types
// --------------------------------------------------------------------

impl Codec for NodeId {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.0.encode(buf);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(NodeId(r.u16()?))
    }
}

impl Codec for Ballot {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.round.encode(buf);
        self.node.encode(buf);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(Ballot {
            round: u32::decode(r)?,
            node: NodeId::decode(r)?,
        })
    }
}

impl Codec for TxnId {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.coordinator.encode(buf);
        self.seq.encode(buf);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(TxnId {
            coordinator: NodeId::decode(r)?,
            seq: u64::decode(r)?,
        })
    }
}

/// [`Op`] discriminants on the wire. New variants append; existing tags
/// never renumber (that is what [`FRAME_VERSION`] is for).
mod op_tag {
    pub const NOOP: u8 = 0;
    pub const PUT: u8 = 1;
    pub const GET: u8 = 2;
    pub const BATCH: u8 = 3;
    pub const MULTI_PUT: u8 = 4;
    pub const TXN_PREPARE: u8 = 5;
    pub const TXN_COMMIT: u8 = 6;
    pub const TXN_ABORT: u8 = 7;
    pub const TXN_STATUS: u8 = 8;
    pub const TRUNCATE: u8 = 9;
}

impl Codec for Op {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            Op::Noop => buf.push(op_tag::NOOP),
            Op::Put { key, value } => {
                buf.push(op_tag::PUT);
                key.encode(buf);
                value.encode(buf);
            }
            Op::Get { key } => {
                buf.push(op_tag::GET);
                key.encode(buf);
            }
            Op::Batch(cmds) => {
                buf.push(op_tag::BATCH);
                cmds.encode(buf);
            }
            Op::MultiPut { writes } => {
                buf.push(op_tag::MULTI_PUT);
                writes.encode(buf);
            }
            Op::TxnPrepare { txn, writes } => {
                buf.push(op_tag::TXN_PREPARE);
                txn.encode(buf);
                writes.encode(buf);
            }
            Op::TxnCommit { txn, key } => {
                buf.push(op_tag::TXN_COMMIT);
                txn.encode(buf);
                key.encode(buf);
            }
            Op::TxnAbort { txn, key } => {
                buf.push(op_tag::TXN_ABORT);
                txn.encode(buf);
                key.encode(buf);
            }
            Op::TxnStatus { txn, key } => {
                buf.push(op_tag::TXN_STATUS);
                txn.encode(buf);
                key.encode(buf);
            }
            Op::Truncate { watermark } => {
                buf.push(op_tag::TRUNCATE);
                watermark.encode(buf);
            }
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(match r.u8()? {
            op_tag::NOOP => Op::Noop,
            op_tag::PUT => Op::Put {
                key: u64::decode(r)?,
                value: u64::decode(r)?,
            },
            op_tag::GET => Op::Get {
                key: u64::decode(r)?,
            },
            op_tag::BATCH => Op::Batch(Codec::decode(r)?),
            op_tag::MULTI_PUT => Op::MultiPut {
                writes: Codec::decode(r)?,
            },
            op_tag::TXN_PREPARE => Op::TxnPrepare {
                txn: TxnId::decode(r)?,
                writes: Codec::decode(r)?,
            },
            op_tag::TXN_COMMIT => Op::TxnCommit {
                txn: TxnId::decode(r)?,
                key: u64::decode(r)?,
            },
            op_tag::TXN_ABORT => Op::TxnAbort {
                txn: TxnId::decode(r)?,
                key: u64::decode(r)?,
            },
            op_tag::TXN_STATUS => Op::TxnStatus {
                txn: TxnId::decode(r)?,
                key: u64::decode(r)?,
            },
            op_tag::TRUNCATE => Op::Truncate {
                watermark: u64::decode(r)?,
            },
            tag => return Err(DecodeError::BadTag { what: "Op", tag }),
        })
    }
}

impl Codec for Command {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.client.encode(buf);
        self.req_id.encode(buf);
        self.op.encode(buf);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(Command {
            client: NodeId::decode(r)?,
            req_id: u64::decode(r)?,
            op: Op::decode(r)?,
        })
    }
}

// --------------------------------------------------------------------
// Snapshots (catch-up transfer)
// --------------------------------------------------------------------

impl Codec for KvSnapshot {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.map.encode(buf);
        self.writes.encode(buf);
        self.reads.encode(buf);
        self.staged.encode(buf);
        self.parked.encode(buf);
        self.finished.encode(buf);
        self.finished_floor.encode(buf);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(KvSnapshot {
            map: Vec::decode(r)?,
            writes: u64::decode(r)?,
            reads: u64::decode(r)?,
            staged: Vec::decode(r)?,
            parked: Vec::decode(r)?,
            finished: Vec::decode(r)?,
            finished_floor: Vec::decode(r)?,
        })
    }
}

impl<S: StateMachine> Codec for ApplierSnapshot<S>
where
    S::Snapshot: Codec,
    S::Output: Codec,
{
    fn encode(&self, buf: &mut Vec<u8>) {
        self.watermark.encode(buf);
        self.state.encode(buf);
        self.sessions.encode(buf);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(ApplierSnapshot {
            watermark: u64::decode(r)?,
            state: Codec::decode(r)?,
            sessions: Vec::decode(r)?,
        })
    }
}

// --------------------------------------------------------------------
// 1Paxos messages (incl. the embedded PaxosUtility)
// --------------------------------------------------------------------

impl Codec for UtilityEntry {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            UtilityEntry::LeaderChange { leader, acceptor } => {
                buf.push(0);
                leader.encode(buf);
                acceptor.encode(buf);
            }
            UtilityEntry::AcceptorChange {
                by,
                acceptor,
                uncommitted,
            } => {
                buf.push(1);
                by.encode(buf);
                acceptor.encode(buf);
                uncommitted.encode(buf);
            }
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(match r.u8()? {
            0 => UtilityEntry::LeaderChange {
                leader: NodeId::decode(r)?,
                acceptor: NodeId::decode(r)?,
            },
            1 => UtilityEntry::AcceptorChange {
                by: NodeId::decode(r)?,
                acceptor: NodeId::decode(r)?,
                uncommitted: Vec::decode(r)?,
            },
            tag => {
                return Err(DecodeError::BadTag {
                    what: "UtilityEntry",
                    tag,
                })
            }
        })
    }
}

impl Codec for UtilityMsg {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            UtilityMsg::Prepare { uinst, bal } => {
                buf.push(0);
                uinst.encode(buf);
                bal.encode(buf);
            }
            UtilityMsg::Promise {
                uinst,
                bal,
                accepted,
            } => {
                buf.push(1);
                uinst.encode(buf);
                bal.encode(buf);
                accepted.encode(buf);
            }
            UtilityMsg::PrepareNack { uinst, promised } => {
                buf.push(2);
                uinst.encode(buf);
                promised.encode(buf);
            }
            UtilityMsg::Accept { uinst, bal, entry } => {
                buf.push(3);
                uinst.encode(buf);
                bal.encode(buf);
                entry.encode(buf);
            }
            UtilityMsg::AcceptNack { uinst, promised } => {
                buf.push(4);
                uinst.encode(buf);
                promised.encode(buf);
            }
            UtilityMsg::Learn { uinst, bal, entry } => {
                buf.push(5);
                uinst.encode(buf);
                bal.encode(buf);
                entry.encode(buf);
            }
            UtilityMsg::Query { qid, have } => {
                buf.push(6);
                qid.encode(buf);
                have.encode(buf);
            }
            UtilityMsg::QueryResp { qid, entries } => {
                buf.push(7);
                qid.encode(buf);
                entries.encode(buf);
            }
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(match r.u8()? {
            0 => UtilityMsg::Prepare {
                uinst: u64::decode(r)?,
                bal: Ballot::decode(r)?,
            },
            1 => UtilityMsg::Promise {
                uinst: u64::decode(r)?,
                bal: Ballot::decode(r)?,
                accepted: Option::decode(r)?,
            },
            2 => UtilityMsg::PrepareNack {
                uinst: u64::decode(r)?,
                promised: Ballot::decode(r)?,
            },
            3 => UtilityMsg::Accept {
                uinst: u64::decode(r)?,
                bal: Ballot::decode(r)?,
                entry: UtilityEntry::decode(r)?,
            },
            4 => UtilityMsg::AcceptNack {
                uinst: u64::decode(r)?,
                promised: Ballot::decode(r)?,
            },
            5 => UtilityMsg::Learn {
                uinst: u64::decode(r)?,
                bal: Ballot::decode(r)?,
                entry: UtilityEntry::decode(r)?,
            },
            6 => UtilityMsg::Query {
                qid: u64::decode(r)?,
                have: u64::decode(r)?,
            },
            7 => UtilityMsg::QueryResp {
                qid: u64::decode(r)?,
                entries: Vec::decode(r)?,
            },
            tag => {
                return Err(DecodeError::BadTag {
                    what: "UtilityMsg",
                    tag,
                })
            }
        })
    }
}

impl Codec for AbandonRe {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.push(match self {
            AbandonRe::Prepare => 0,
            AbandonRe::Accept => 1,
        });
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(match r.u8()? {
            0 => AbandonRe::Prepare,
            1 => AbandonRe::Accept,
            tag => {
                return Err(DecodeError::BadTag {
                    what: "AbandonRe",
                    tag,
                })
            }
        })
    }
}

impl Codec for OnePaxosMsg {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            OnePaxosMsg::Forward { cmd } => {
                buf.push(0);
                cmd.encode(buf);
            }
            OnePaxosMsg::PrepareReq { pn, expect_fresh } => {
                buf.push(1);
                pn.encode(buf);
                expect_fresh.encode(buf);
            }
            OnePaxosMsg::PrepareResp { pn, accepted } => {
                buf.push(2);
                pn.encode(buf);
                accepted.encode(buf);
            }
            OnePaxosMsg::AcceptReq { inst, pn, cmd } => {
                buf.push(3);
                inst.encode(buf);
                pn.encode(buf);
                cmd.encode(buf);
            }
            OnePaxosMsg::Abandon { hpn, fresh, re } => {
                buf.push(4);
                hpn.encode(buf);
                fresh.encode(buf);
                re.encode(buf);
            }
            OnePaxosMsg::Learn { inst, pn, cmd } => {
                buf.push(5);
                inst.encode(buf);
                pn.encode(buf);
                cmd.encode(buf);
            }
            OnePaxosMsg::Utility(u) => {
                buf.push(6);
                u.encode(buf);
            }
            OnePaxosMsg::Truncated { floor } => {
                buf.push(7);
                floor.encode(buf);
            }
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(match r.u8()? {
            0 => OnePaxosMsg::Forward {
                cmd: Command::decode(r)?,
            },
            1 => OnePaxosMsg::PrepareReq {
                pn: Ballot::decode(r)?,
                expect_fresh: bool::decode(r)?,
            },
            2 => OnePaxosMsg::PrepareResp {
                pn: Ballot::decode(r)?,
                accepted: Vec::decode(r)?,
            },
            3 => OnePaxosMsg::AcceptReq {
                inst: u64::decode(r)?,
                pn: Ballot::decode(r)?,
                cmd: Command::decode(r)?,
            },
            4 => OnePaxosMsg::Abandon {
                hpn: Ballot::decode(r)?,
                fresh: bool::decode(r)?,
                re: AbandonRe::decode(r)?,
            },
            5 => OnePaxosMsg::Learn {
                inst: u64::decode(r)?,
                pn: Ballot::decode(r)?,
                cmd: Command::decode(r)?,
            },
            6 => OnePaxosMsg::Utility(UtilityMsg::decode(r)?),
            7 => OnePaxosMsg::Truncated {
                floor: u64::decode(r)?,
            },
            tag => return Err(DecodeError::BadTag { what: "Msg", tag }),
        })
    }
}

// --------------------------------------------------------------------
// Baseline protocol messages
// --------------------------------------------------------------------

impl Codec for multipaxos::Msg {
    fn encode(&self, buf: &mut Vec<u8>) {
        use multipaxos::Msg;
        match self {
            Msg::Forward { cmd } => {
                buf.push(0);
                cmd.encode(buf);
            }
            Msg::Prepare { bal, from_inst } => {
                buf.push(1);
                bal.encode(buf);
                from_inst.encode(buf);
            }
            Msg::Promise { bal, accepted } => {
                buf.push(2);
                bal.encode(buf);
                accepted.encode(buf);
            }
            Msg::PrepareNack { promised } => {
                buf.push(3);
                promised.encode(buf);
            }
            Msg::Accept { bal, inst, cmd } => {
                buf.push(4);
                bal.encode(buf);
                inst.encode(buf);
                cmd.encode(buf);
            }
            Msg::AcceptNack { promised } => {
                buf.push(5);
                promised.encode(buf);
            }
            Msg::Learn { inst, bal, cmd } => {
                buf.push(6);
                inst.encode(buf);
                bal.encode(buf);
                cmd.encode(buf);
            }
            Msg::Heartbeat { bal } => {
                buf.push(7);
                bal.encode(buf);
            }
            Msg::Truncated { floor } => {
                buf.push(8);
                floor.encode(buf);
            }
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        use multipaxos::Msg;
        Ok(match r.u8()? {
            0 => Msg::Forward {
                cmd: Command::decode(r)?,
            },
            1 => Msg::Prepare {
                bal: Ballot::decode(r)?,
                from_inst: u64::decode(r)?,
            },
            2 => Msg::Promise {
                bal: Ballot::decode(r)?,
                accepted: Vec::decode(r)?,
            },
            3 => Msg::PrepareNack {
                promised: Ballot::decode(r)?,
            },
            4 => Msg::Accept {
                bal: Ballot::decode(r)?,
                inst: u64::decode(r)?,
                cmd: Command::decode(r)?,
            },
            5 => Msg::AcceptNack {
                promised: Ballot::decode(r)?,
            },
            6 => Msg::Learn {
                inst: u64::decode(r)?,
                bal: Ballot::decode(r)?,
                cmd: Command::decode(r)?,
            },
            7 => Msg::Heartbeat {
                bal: Ballot::decode(r)?,
            },
            8 => Msg::Truncated {
                floor: u64::decode(r)?,
            },
            tag => {
                return Err(DecodeError::BadTag {
                    what: "multipaxos::Msg",
                    tag,
                })
            }
        })
    }
}

impl Codec for twopc::Msg {
    fn encode(&self, buf: &mut Vec<u8>) {
        use twopc::Msg;
        match self {
            Msg::Forward { cmd } => {
                buf.push(0);
                cmd.encode(buf);
            }
            Msg::Prepare { round, cmd } => {
                buf.push(1);
                round.encode(buf);
                cmd.encode(buf);
            }
            Msg::Ack { round } => {
                buf.push(2);
                round.encode(buf);
            }
            Msg::Nack { round } => {
                buf.push(3);
                round.encode(buf);
            }
            Msg::Commit { round, cmd } => {
                buf.push(4);
                round.encode(buf);
                cmd.encode(buf);
            }
            Msg::CommitAck { round } => {
                buf.push(5);
                round.encode(buf);
            }
            Msg::Rollback { round } => {
                buf.push(6);
                round.encode(buf);
            }
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        use twopc::Msg;
        Ok(match r.u8()? {
            0 => Msg::Forward {
                cmd: Command::decode(r)?,
            },
            1 => Msg::Prepare {
                round: u64::decode(r)?,
                cmd: Command::decode(r)?,
            },
            2 => Msg::Ack {
                round: u64::decode(r)?,
            },
            3 => Msg::Nack {
                round: u64::decode(r)?,
            },
            4 => Msg::Commit {
                round: u64::decode(r)?,
                cmd: Command::decode(r)?,
            },
            5 => Msg::CommitAck {
                round: u64::decode(r)?,
            },
            6 => Msg::Rollback {
                round: u64::decode(r)?,
            },
            tag => {
                return Err(DecodeError::BadTag {
                    what: "twopc::Msg",
                    tag,
                })
            }
        })
    }
}

impl Codec for mencius::Msg {
    fn encode(&self, buf: &mut Vec<u8>) {
        use mencius::Msg;
        match self {
            Msg::Accept { inst, cmd } => {
                buf.push(0);
                inst.encode(buf);
                cmd.encode(buf);
            }
            Msg::Learn { inst, cmd } => {
                buf.push(1);
                inst.encode(buf);
                cmd.encode(buf);
            }
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        use mencius::Msg;
        Ok(match r.u8()? {
            0 => Msg::Accept {
                inst: u64::decode(r)?,
                cmd: Command::decode(r)?,
            },
            1 => Msg::Learn {
                inst: u64::decode(r)?,
                cmd: Command::decode(r)?,
            },
            tag => {
                return Err(DecodeError::BadTag {
                    what: "mencius::Msg",
                    tag,
                })
            }
        })
    }
}

impl Codec for basic_paxos::Msg {
    fn encode(&self, buf: &mut Vec<u8>) {
        use basic_paxos::Msg;
        match self {
            Msg::Forward { cmd } => {
                buf.push(0);
                cmd.encode(buf);
            }
            Msg::Prepare { inst, bal } => {
                buf.push(1);
                inst.encode(buf);
                bal.encode(buf);
            }
            Msg::Promise {
                inst,
                bal,
                accepted,
            } => {
                buf.push(2);
                inst.encode(buf);
                bal.encode(buf);
                accepted.encode(buf);
            }
            Msg::PrepareNack { inst, promised } => {
                buf.push(3);
                inst.encode(buf);
                promised.encode(buf);
            }
            Msg::Accept { inst, bal, cmd } => {
                buf.push(4);
                inst.encode(buf);
                bal.encode(buf);
                cmd.encode(buf);
            }
            Msg::AcceptNack { inst, promised } => {
                buf.push(5);
                inst.encode(buf);
                promised.encode(buf);
            }
            Msg::Learn { inst, bal, cmd } => {
                buf.push(6);
                inst.encode(buf);
                bal.encode(buf);
                cmd.encode(buf);
            }
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        use basic_paxos::Msg;
        Ok(match r.u8()? {
            0 => Msg::Forward {
                cmd: Command::decode(r)?,
            },
            1 => Msg::Prepare {
                inst: u64::decode(r)?,
                bal: Ballot::decode(r)?,
            },
            2 => Msg::Promise {
                inst: u64::decode(r)?,
                bal: Ballot::decode(r)?,
                accepted: Option::decode(r)?,
            },
            3 => Msg::PrepareNack {
                inst: u64::decode(r)?,
                promised: Ballot::decode(r)?,
            },
            4 => Msg::Accept {
                inst: u64::decode(r)?,
                bal: Ballot::decode(r)?,
                cmd: Command::decode(r)?,
            },
            5 => Msg::AcceptNack {
                inst: u64::decode(r)?,
                promised: Ballot::decode(r)?,
            },
            6 => Msg::Learn {
                inst: u64::decode(r)?,
                bal: Ballot::decode(r)?,
                cmd: Command::decode(r)?,
            },
            tag => {
                return Err(DecodeError::BadTag {
                    what: "basic_paxos::Msg",
                    tag,
                })
            }
        })
    }
}

// --------------------------------------------------------------------
// Framing
// --------------------------------------------------------------------

/// Appends one complete frame — header plus `payload` — to `out`.
///
/// # Panics
///
/// Panics if `payload` exceeds [`MAX_FRAME`]; no message in the tree
/// comes within orders of magnitude of the cap, so an oversized payload
/// is a logic error at the call site, not a runtime condition.
pub fn write_frame(out: &mut Vec<u8>, payload: &[u8]) {
    assert!(
        payload.len() <= MAX_FRAME,
        "frame payload of {} bytes exceeds MAX_FRAME",
        payload.len()
    );
    out.extend_from_slice(&FRAME_MAGIC.to_le_bytes());
    out.push(FRAME_VERSION);
    out.push(0); // reserved
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload);
}

/// Encodes `msg` directly into `out` as one frame, patching the length
/// field after the payload is written — the zero-copy path transports
/// use (no intermediate payload buffer).
pub fn write_frame_with(out: &mut Vec<u8>, write_payload: impl FnOnce(&mut Vec<u8>)) {
    out.extend_from_slice(&FRAME_MAGIC.to_le_bytes());
    out.push(FRAME_VERSION);
    out.push(0); // reserved
    let len_at = out.len();
    out.extend_from_slice(&[0; 4]);
    write_payload(out);
    let len = out.len() - len_at - 4;
    assert!(
        len <= MAX_FRAME,
        "frame payload of {len} bytes exceeds MAX_FRAME"
    );
    out[len_at..len_at + 4].copy_from_slice(&(len as u32).to_le_bytes());
}

/// Attempts to parse one frame from the start of `buf`.
///
/// Returns `Ok(None)` when `buf` holds only a partial frame (read more
/// bytes and retry), or `Ok(Some((payload, consumed)))` where `consumed`
/// covers the header and payload.
///
/// # Errors
///
/// Returns a [`DecodeError`] when the bytes can never become a valid
/// frame: wrong magic, unsupported version, non-zero reserved byte, or a
/// length above [`MAX_FRAME`]. A stream receiver should drop the
/// connection — there is no way to resynchronise a corrupt framed
/// stream.
pub fn read_frame(buf: &[u8]) -> Result<Option<(&[u8], usize)>, DecodeError> {
    if buf.len() < FRAME_HEADER {
        return Ok(None);
    }
    let magic = u16::from_le_bytes([buf[0], buf[1]]);
    if magic != FRAME_MAGIC {
        return Err(DecodeError::BadMagic(magic));
    }
    if buf[2] != FRAME_VERSION {
        return Err(DecodeError::BadVersion(buf[2]));
    }
    if buf[3] != 0 {
        return Err(DecodeError::BadReserved(buf[3]));
    }
    let len = u32::from_le_bytes([buf[4], buf[5], buf[6], buf[7]]);
    if len as usize > MAX_FRAME {
        return Err(DecodeError::FrameTooLarge(len));
    }
    let total = FRAME_HEADER + len as usize;
    if buf.len() < total {
        return Ok(None);
    }
    Ok(Some((&buf[FRAME_HEADER..total], total)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip<T: Codec + PartialEq + std::fmt::Debug>(v: T) {
        let bytes = encode_to_vec(&v);
        assert_eq!(decode_exact::<T>(&bytes).unwrap(), v, "bytes {bytes:?}");
    }

    #[test]
    fn primitives_round_trip() {
        for v in [0u64, 1, 127, 128, 300, u64::MAX] {
            round_trip(v);
        }
        round_trip(NodeId(0xFFFF));
        round_trip(Ballot::new(u32::MAX, NodeId(3)));
        round_trip(TxnId::new(NodeId(9), u64::MAX));
        round_trip(Some(42u64));
        round_trip(Option::<u64>::None);
        round_trip(vec![1u64, 2, 3]);
        round_trip(true);
        round_trip(false);
    }

    #[test]
    fn varint_is_minimal_and_compact() {
        // Values below 128 take one byte — the common case (small keys,
        // request ids, instances) stays compact on the wire.
        assert_eq!(encode_to_vec(&5u64).len(), 1);
        assert_eq!(encode_to_vec(&127u64).len(), 1);
        assert_eq!(encode_to_vec(&128u64).len(), 2);
        assert_eq!(encode_to_vec(&u64::MAX).len(), 10);
    }

    #[test]
    fn every_op_variant_round_trips() {
        let ops = [
            Op::Noop,
            Op::Put { key: 1, value: 2 },
            Op::Get { key: u64::MAX },
            Op::Batch(
                vec![
                    Command::noop(NodeId(3), 1),
                    Command::new(NodeId(4), 9, Op::Put { key: 8, value: 9 }),
                ]
                .into(),
            ),
            Op::MultiPut {
                writes: vec![(1, 2), (3, 4)].into(),
            },
            Op::TxnPrepare {
                txn: TxnId::new(NodeId(7), 3),
                writes: vec![(5, 6)].into(),
            },
            Op::TxnCommit {
                txn: TxnId::new(NodeId(7), 3),
                key: 5,
            },
            Op::TxnAbort {
                txn: TxnId::new(NodeId(7), 4),
                key: 6,
            },
            Op::TxnStatus {
                txn: TxnId::new(NodeId(7), 5),
                key: 7,
            },
            Op::Truncate {
                watermark: u64::MAX,
            },
        ];
        for op in ops {
            round_trip(op);
        }
    }

    #[test]
    fn onepaxos_messages_round_trip() {
        let msgs = [
            OnePaxosMsg::Forward {
                cmd: Command::noop(NodeId(9), 1),
            },
            OnePaxosMsg::PrepareReq {
                pn: Ballot::new(3, NodeId(1)),
                expect_fresh: true,
            },
            OnePaxosMsg::PrepareResp {
                pn: Ballot::new(3, NodeId(1)),
                accepted: vec![(7, Ballot::new(2, NodeId(0)), Command::noop(NodeId(8), 2))],
            },
            OnePaxosMsg::AcceptReq {
                inst: 12,
                pn: Ballot::new(3, NodeId(1)),
                cmd: Command::new(NodeId(8), 3, Op::Put { key: 1, value: 2 }),
            },
            OnePaxosMsg::Abandon {
                hpn: Ballot::new(9, NodeId(2)),
                fresh: false,
                re: AbandonRe::Accept,
            },
            OnePaxosMsg::Learn {
                inst: 12,
                pn: Ballot::new(3, NodeId(1)),
                cmd: Command::noop(NodeId(8), 3),
            },
            OnePaxosMsg::Utility(UtilityMsg::QueryResp {
                qid: 77,
                entries: vec![(
                    1,
                    UtilityEntry::AcceptorChange {
                        by: NodeId(0),
                        acceptor: NodeId(2),
                        uncommitted: vec![(3, Command::noop(NodeId(9), 1))],
                    },
                )],
            }),
            OnePaxosMsg::Truncated { floor: 4096 },
        ];
        for m in msgs {
            round_trip(m);
        }
    }

    #[test]
    fn truncation_errors_cleanly_at_every_length() {
        let msg = OnePaxosMsg::AcceptReq {
            inst: 300,
            pn: Ballot::new(2, NodeId(1)),
            cmd: Command::new(
                NodeId(8),
                3,
                Op::Batch(vec![Command::noop(NodeId(9), 500)].into()),
            ),
        };
        let bytes = encode_to_vec(&msg);
        for cut in 0..bytes.len() {
            assert!(
                decode_exact::<OnePaxosMsg>(&bytes[..cut]).is_err(),
                "prefix of {cut} bytes must not decode"
            );
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = encode_to_vec(&Op::Noop);
        bytes.push(0xAB);
        assert_eq!(decode_exact::<Op>(&bytes), Err(DecodeError::Trailing(1)));
    }

    #[test]
    fn frame_round_trip_and_partials() {
        let mut out = Vec::new();
        write_frame(&mut out, b"hello");
        // Partial header, partial payload: need more bytes, not an error.
        for cut in 0..out.len() {
            assert_eq!(read_frame(&out[..cut]).unwrap(), None, "cut {cut}");
        }
        let (payload, consumed) = read_frame(&out).unwrap().unwrap();
        assert_eq!(payload, b"hello");
        assert_eq!(consumed, out.len());
        // Two frames back to back parse one at a time.
        write_frame(&mut out, b"world");
        let (p1, c1) = read_frame(&out).unwrap().unwrap();
        assert_eq!(p1, b"hello");
        let (p2, c2) = read_frame(&out[c1..]).unwrap().unwrap();
        assert_eq!(p2, b"world");
        assert_eq!(c1 + c2, out.len());
    }

    #[test]
    fn frame_rejects_foreign_traffic() {
        assert_eq!(
            read_frame(b"GET / HTTP/1.1\r\n"),
            Err(DecodeError::BadMagic(u16::from_le_bytes([b'G', b'E'])))
        );
        let mut bad_version = Vec::new();
        write_frame(&mut bad_version, b"x");
        bad_version[2] = 99;
        assert_eq!(read_frame(&bad_version), Err(DecodeError::BadVersion(99)));
        let mut bad_reserved = Vec::new();
        write_frame(&mut bad_reserved, b"x");
        bad_reserved[3] = 1;
        assert_eq!(read_frame(&bad_reserved), Err(DecodeError::BadReserved(1)));
        let mut huge = Vec::new();
        write_frame(&mut huge, b"x");
        huge[4..8].copy_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(read_frame(&huge), Err(DecodeError::FrameTooLarge(u32::MAX)));
    }

    #[test]
    fn write_frame_with_patches_length_in_place() {
        let mut out = Vec::new();
        write_frame_with(&mut out, |buf| {
            Command::noop(NodeId(1), 2).encode(buf);
        });
        let (payload, consumed) = read_frame(&out).unwrap().unwrap();
        assert_eq!(consumed, out.len());
        assert_eq!(
            decode_exact::<Command>(payload).unwrap(),
            Command::noop(NodeId(1), 2)
        );
    }

    #[test]
    fn corrupt_length_cannot_over_allocate() {
        // A Vec length prefix claiming more elements than bytes remain
        // must fail before allocating.
        let mut bytes = Vec::new();
        put_varint(&mut bytes, u64::MAX);
        assert_eq!(
            decode_exact::<Vec<u64>>(&bytes),
            Err(DecodeError::Truncated)
        );
    }

    #[test]
    fn decode_error_display_is_informative() {
        let e: Box<dyn std::error::Error> = Box::new(DecodeError::BadVersion(9));
        assert!(e.to_string().contains("version 9"));
        assert!(DecodeError::BadTag {
            what: "Op",
            tag: 0xFF
        }
        .to_string()
        .contains("Op"));
    }
}
