//! Shared-ownership chunk buffers: the zero-copy receive path and the
//! coalescing send path of the wire layer.
//!
//! The first socket transport (PR 7) kept one growable `Vec<u8>` per
//! connection: every `read(2)` went through a scratch buffer and an
//! `extend_from_slice`, every partial frame triggered a
//! `drain(..rpos)` compaction, and every `send` paid one `write(2)`.
//! Each payload byte was therefore copied two or three times between
//! the socket and the protocol handler. This module is the replacement,
//! in the rope-buffer style of network stacks that slice frames out of
//! reference-counted segments instead of copying them around:
//!
//! * [`Chunk`] — a cheaply clonable view into an `Arc`-backed byte
//!   segment. `slice()` and `advance()` adjust offsets; the bytes are
//!   never moved. A decoded frame *borrows* its segment this way, which
//!   is what lets the receive path hand payloads to the codec without a
//!   per-frame copy.
//! * [`RecvBuf`] — the per-connection receive buffer. The socket reads
//!   **directly into the segment's tail** ([`RecvBuf::writable`] /
//!   [`RecvBuf::commit`]), and [`RecvBuf::next_frame`] slices each
//!   complete frame out as a [`Chunk`]. A frame's bytes are touched
//!   once between the kernel and the decoder. Segments are recycled
//!   through an internal pool, so steady-state receiving allocates
//!   nothing (frames larger than a segment fall back to a one-off
//!   right-sized segment).
//! * [`SendQueue`] — the per-connection send coalescer. `push_frame`
//!   encodes directly into a pooled segment (no intermediate payload
//!   buffer, capacity reused across flushes); [`SendQueue::slices`]
//!   exposes everything queued as [`IoSlice`]s so one
//!   `write_vectored(2)` carries a whole flush window of frames.
//!
//! The buffers are transport-agnostic — plain bytes in, frames out —
//! so the codec proptests can drive them through arbitrary split and
//! corruption schedules without a socket in sight.

use std::collections::VecDeque;
use std::io::IoSlice;
use std::ops::Range;
use std::sync::Arc;

use super::{read_frame, write_frame_with, DecodeError, FRAME_HEADER, MAX_FRAME};

/// Default capacity of one receive segment. Large enough that dozens of
/// protocol frames (tens of bytes each) arrive per segment fill, small
/// enough that a handful of pooled segments per connection is cheap.
pub const SEGMENT_SIZE: usize = 64 * 1024;

/// Soft cap on one send segment: frames append to the current segment
/// until it passes this size, then a fresh (pooled) segment starts.
pub const WRITE_SEGMENT: usize = 32 * 1024;

/// Segments kept for reuse per buffer; beyond this they are freed.
const POOL_CAP: usize = 8;

// --------------------------------------------------------------------
// Chunk
// --------------------------------------------------------------------

/// A shared-ownership view into an `Arc`-backed byte segment.
///
/// Cloning or [slicing](Chunk::slice) a chunk bumps a reference count;
/// the underlying bytes are never copied or moved. Equality compares
/// bytes, not identity.
#[derive(Clone)]
pub struct Chunk {
    seg: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Chunk {
    /// Wraps an owned byte vector as a single-segment chunk.
    pub fn from_vec(bytes: Vec<u8>) -> Self {
        let seg: Arc<[u8]> = bytes.into();
        let end = seg.len();
        Chunk { seg, start: 0, end }
    }

    /// The viewed bytes.
    pub fn as_slice(&self) -> &[u8] {
        &self.seg[self.start..self.end]
    }

    /// Number of viewed bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// A sub-view of `range` (relative to this chunk), sharing the same
    /// segment — no bytes are copied.
    ///
    /// # Panics
    ///
    /// Panics if `range` reaches past [`len`](Chunk::len).
    pub fn slice(&self, range: Range<usize>) -> Chunk {
        assert!(
            range.start <= range.end && range.end <= self.len(),
            "slice {range:?} out of bounds of chunk of {} bytes",
            self.len()
        );
        Chunk {
            seg: Arc::clone(&self.seg),
            start: self.start + range.start,
            end: self.start + range.end,
        }
    }

    /// Drops the first `n` bytes from the view (the bytes stay in the
    /// segment; only the offset moves).
    ///
    /// # Panics
    ///
    /// Panics if `n > len()`.
    pub fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "advance {n} past chunk of {}", self.len());
        self.start += n;
    }

    /// Whether two chunks view the **same segment allocation** — the
    /// aliasing oracle the zero-copy tests pin: a frame sliced out of a
    /// receive segment shares storage with it.
    pub fn same_segment(&self, other: &Chunk) -> bool {
        Arc::ptr_eq(&self.seg, &other.seg)
    }

    /// Pops one complete frame off the front of this chunk, returning
    /// its payload as a sub-chunk (shared storage, no copy) and
    /// advancing past it. `Ok(None)` means the remaining bytes are a
    /// partial frame.
    ///
    /// # Errors
    ///
    /// Propagates the framing errors of [`read_frame`].
    pub fn split_frame(&mut self) -> Result<Option<Chunk>, DecodeError> {
        match read_frame(self.as_slice())? {
            Some((_, consumed)) => {
                let payload = self.slice(FRAME_HEADER..consumed);
                self.advance(consumed);
                Ok(Some(payload))
            }
            None => Ok(None),
        }
    }
}

impl std::ops::Deref for Chunk {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Chunk {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl PartialEq for Chunk {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Chunk {}

impl std::fmt::Debug for Chunk {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Chunk")
            .field("len", &self.len())
            .field("segment", &self.seg.len())
            .finish()
    }
}

// --------------------------------------------------------------------
// RecvBuf
// --------------------------------------------------------------------

/// Per-connection receive buffer: sockets read into it in place, frames
/// slice out of it as [`Chunk`]s.
///
/// The fill cycle is `writable()` → `read(2)` into the returned tail →
/// `commit(n)` → `next_frame()` until `Ok(None)`. Unparsed bytes are
/// only ever moved when the segment's tail runs out (a bounded
/// `copy_within` of at most one partial frame — the old full-buffer
/// `drain` compaction is gone), or when a still-alive [`Chunk`] aliases
/// the segment, in which case the buffer *rolls* to a pooled fresh
/// segment rather than overwrite shared bytes.
pub struct RecvBuf {
    seg: Arc<[u8]>,
    /// Parse cursor: bytes `rpos..filled` are committed but unparsed.
    rpos: usize,
    filled: usize,
    /// Retired segments awaiting their chunk holders; reused once
    /// unique again.
    pool: Vec<Arc<[u8]>>,
    /// Capacity of newly allocated segments ([`SEGMENT_SIZE`] unless
    /// narrowed for tests).
    segment: usize,
}

impl RecvBuf {
    /// An empty buffer with the default segment size.
    pub fn new() -> Self {
        Self::with_segment_size(SEGMENT_SIZE)
    }

    /// An empty buffer with `segment`-byte segments — test hook for
    /// forcing frames to span segment boundaries.
    ///
    /// # Panics
    ///
    /// Panics if `segment` cannot hold even a frame header.
    pub fn with_segment_size(segment: usize) -> Self {
        assert!(segment > FRAME_HEADER, "segment too small for a header");
        RecvBuf {
            seg: Arc::from(vec![0u8; segment]),
            rpos: 0,
            filled: 0,
            pool: Vec::new(),
            segment,
        }
    }

    /// Committed-but-unparsed byte count.
    pub fn pending(&self) -> usize {
        self.filled - self.rpos
    }

    /// The segment capacity a partial frame at the cursor will need, if
    /// its header (and so its length field) is already visible. Clamped
    /// to the [`MAX_FRAME`] cap: a corrupt length field must not talk
    /// this buffer into a giant allocation — [`read_frame`] will reject
    /// the header on the next parse, and the connection dies there.
    fn needed(&self) -> Option<usize> {
        let buf = &self.seg[self.rpos..self.filled];
        if buf.len() < FRAME_HEADER {
            return None;
        }
        let len = u32::from_le_bytes([buf[4], buf[5], buf[6], buf[7]]) as usize;
        Some(FRAME_HEADER + len.min(MAX_FRAME))
    }

    /// Moves the pending bytes into a fresh segment of at least
    /// `min_cap`, retiring the current one into the pool.
    fn roll(&mut self, min_cap: usize) {
        let mut idx = None;
        for (i, s) in self.pool.iter_mut().enumerate() {
            if s.len() >= min_cap && Arc::get_mut(s).is_some() {
                idx = Some(i);
                break;
            }
        }
        let mut fresh = match idx {
            Some(i) => self.pool.swap_remove(i),
            // Oversized frames get a one-off right-sized segment; it is
            // pooled afterwards like any other and reused while unique.
            None => Arc::from(vec![0u8; min_cap.max(self.segment)]),
        };
        let pending = self.rpos..self.filled;
        let n = pending.len();
        Arc::get_mut(&mut fresh).expect("fresh segment is unique")[..n]
            .copy_from_slice(&self.seg[pending]);
        let old = std::mem::replace(&mut self.seg, fresh);
        if self.pool.len() < POOL_CAP {
            self.pool.push(old);
        }
        self.rpos = 0;
        self.filled = n;
    }

    /// The writable tail of the current segment, for the socket to read
    /// into; never empty. Call [`commit`](RecvBuf::commit) with the
    /// byte count actually read.
    pub fn writable(&mut self) -> &mut [u8] {
        if self.rpos == self.filled {
            self.rpos = 0;
            self.filled = 0;
        }
        // A frame longer than the current segment can never complete in
        // place; move to one that fits it.
        let min_cap = self.needed().unwrap_or(0);
        if min_cap > self.seg.len() {
            self.roll(min_cap);
        } else if Arc::get_mut(&mut self.seg).is_none() {
            // Live chunks still alias this segment: roll rather than
            // overwrite shared bytes. (Steady state never hits this —
            // decoded frames are consumed before the next fill.)
            self.roll(self.segment);
        } else if self.filled == self.seg.len() {
            // Tail exhausted mid-frame: compact the partial frame to
            // the front — a bounded copy, not a full-buffer drain.
            let seg = Arc::get_mut(&mut self.seg).expect("checked unique above");
            seg.copy_within(self.rpos..self.filled, 0);
            self.filled -= self.rpos;
            self.rpos = 0;
        }
        let filled = self.filled;
        Arc::get_mut(&mut self.seg)
            .expect("segment unique after roll")
            .get_mut(filled..)
            .expect("writable tail exists")
    }

    /// Records `n` bytes as read into the last [`writable`]
    /// (RecvBuf::writable) slice.
    ///
    /// # Panics
    ///
    /// Panics if `n` overruns the segment.
    pub fn commit(&mut self, n: usize) {
        assert!(self.filled + n <= self.seg.len(), "commit past segment");
        self.filled += n;
    }

    /// Slices the next complete frame's payload out of the buffer as a
    /// [`Chunk`] aliasing the segment — no copy. `Ok(None)` means more
    /// bytes are needed.
    ///
    /// # Errors
    ///
    /// Propagates the framing errors of [`read_frame`]; the stream is
    /// unrecoverable after one.
    pub fn next_frame(&mut self) -> Result<Option<Chunk>, DecodeError> {
        match read_frame(&self.seg[self.rpos..self.filled])? {
            Some((_, consumed)) => {
                let payload = Chunk {
                    seg: Arc::clone(&self.seg),
                    start: self.rpos + FRAME_HEADER,
                    end: self.rpos + consumed,
                };
                self.rpos += consumed;
                Ok(Some(payload))
            }
            None => Ok(None),
        }
    }
}

impl Default for RecvBuf {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for RecvBuf {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RecvBuf")
            .field("pending", &self.pending())
            .field("segment", &self.seg.len())
            .field("pooled", &self.pool.len())
            .finish()
    }
}

// --------------------------------------------------------------------
// SendQueue
// --------------------------------------------------------------------

/// Per-connection send coalescer: frames encode straight into pooled
/// segments, and everything queued flushes through one vectored write.
///
/// The cycle is `push_frame(..)` any number of times, then
/// [`slices`](SendQueue::slices) → `write_vectored(2)` →
/// [`consume`](SendQueue::consume) with the byte count the kernel
/// accepted. Fully-written segments are cleared (capacity kept) and
/// recycled, so steady-state sending allocates nothing.
pub struct SendQueue {
    /// Pending segments, oldest first; `head_pos` bytes of the front
    /// one are already written.
    segs: VecDeque<Vec<u8>>,
    head_pos: usize,
    /// Total unsent bytes across all segments.
    queued: usize,
    pool: Vec<Vec<u8>>,
}

impl SendQueue {
    /// An empty queue.
    pub fn new() -> Self {
        SendQueue {
            segs: VecDeque::new(),
            head_pos: 0,
            queued: 0,
            pool: Vec::new(),
        }
    }

    /// Whether nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.queued == 0
    }

    /// Unsent bytes queued (the backpressure signal).
    pub fn queued_bytes(&self) -> usize {
        self.queued
    }

    /// Appends one frame, encoding its payload via `payload` directly
    /// into the current segment (starting a fresh pooled one past the
    /// [`WRITE_SEGMENT`] soft cap) — no intermediate buffer, no copy.
    pub fn push_frame(&mut self, payload: impl FnOnce(&mut Vec<u8>)) {
        let start_new = match self.segs.back() {
            None => true,
            Some(b) => b.len() >= WRITE_SEGMENT,
        };
        if start_new {
            self.segs.push_back(self.pool.pop().unwrap_or_default());
        }
        let back = self.segs.back_mut().expect("segment just ensured");
        let before = back.len();
        write_frame_with(back, payload);
        self.queued += back.len() - before;
    }

    /// Fills `out` with [`IoSlice`]s over everything queued, oldest
    /// first, and returns how many were produced (bounded by
    /// `out.len()`).
    pub fn slices<'s>(&'s self, out: &mut [IoSlice<'s>]) -> usize {
        let mut n = 0;
        for (i, seg) in self.segs.iter().enumerate() {
            if n == out.len() {
                break;
            }
            let from = if i == 0 { self.head_pos } else { 0 };
            if seg.len() > from {
                out[n] = IoSlice::new(&seg[from..]);
                n += 1;
            }
        }
        n
    }

    /// Marks `n` bytes (as exposed by [`slices`](SendQueue::slices)) as
    /// written, recycling drained segments.
    ///
    /// # Panics
    ///
    /// Panics if `n` exceeds the queued byte count.
    pub fn consume(&mut self, mut n: usize) {
        assert!(n <= self.queued, "consumed {n} of {} queued", self.queued);
        self.queued -= n;
        while n > 0 {
            let head_len = self
                .segs
                .front()
                .expect("queued bytes imply a segment")
                .len();
            let left = head_len - self.head_pos;
            if n >= left {
                n -= left;
                let mut seg = self.segs.pop_front().expect("checked front");
                self.head_pos = 0;
                seg.clear();
                if self.pool.len() < POOL_CAP && seg.capacity() <= 4 * WRITE_SEGMENT {
                    self.pool.push(seg);
                }
            } else {
                self.head_pos += n;
                n = 0;
            }
        }
    }

    /// Drops everything queued (a dead connection's buffers), keeping
    /// the segments for reuse.
    pub fn clear(&mut self) {
        while let Some(mut seg) = self.segs.pop_front() {
            seg.clear();
            if self.pool.len() < POOL_CAP && seg.capacity() <= 4 * WRITE_SEGMENT {
                self.pool.push(seg);
            }
        }
        self.head_pos = 0;
        self.queued = 0;
    }
}

impl Default for SendQueue {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for SendQueue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SendQueue")
            .field("queued", &self.queued)
            .field("segments", &self.segs.len())
            .field("pooled", &self.pool.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::write_frame;

    fn frame(payload: &[u8]) -> Vec<u8> {
        let mut out = Vec::new();
        write_frame(&mut out, payload);
        out
    }

    /// Feeds `bytes` into `buf` in `step`-byte steps, collecting frames.
    fn feed(buf: &mut RecvBuf, bytes: &[u8], step: usize) -> Vec<Vec<u8>> {
        let mut got = Vec::new();
        let mut fed = 0;
        while fed < bytes.len() {
            let w = buf.writable();
            let n = w.len().min(step).min(bytes.len() - fed);
            w[..n].copy_from_slice(&bytes[fed..fed + n]);
            buf.commit(n);
            fed += n;
            while let Some(c) = buf.next_frame().expect("valid stream") {
                got.push(c.as_slice().to_vec());
            }
        }
        got
    }

    #[test]
    fn frames_slice_out_of_one_fill() {
        let mut stream = frame(b"alpha");
        stream.extend_from_slice(&frame(b"beta"));
        let mut buf = RecvBuf::new();
        let got = feed(&mut buf, &stream, stream.len());
        assert_eq!(got, vec![b"alpha".to_vec(), b"beta".to_vec()]);
    }

    #[test]
    fn decoded_chunks_alias_the_segment() {
        let mut stream = frame(b"one");
        stream.extend_from_slice(&frame(b"two"));
        let mut buf = RecvBuf::new();
        let w = buf.writable();
        w[..stream.len()].copy_from_slice(&stream);
        buf.commit(stream.len());
        let a = buf.next_frame().unwrap().unwrap();
        let b = buf.next_frame().unwrap().unwrap();
        assert!(a.same_segment(&b), "frames from one fill share storage");
        assert!(a.slice(0..2).same_segment(&a), "sub-slices share storage");
        assert_eq!(a.as_slice(), b"one");
        assert_eq!(b.as_slice(), b"two");
    }

    #[test]
    fn byte_by_byte_arrival_decodes_identically() {
        let mut stream = Vec::new();
        for p in [&b"x"[..], b"yy", b"zzz", b""] {
            stream.extend_from_slice(&frame(p));
        }
        let mut buf = RecvBuf::with_segment_size(16);
        let got = feed(&mut buf, &stream, 1);
        assert_eq!(
            got,
            vec![b"x".to_vec(), b"yy".to_vec(), b"zzz".to_vec(), Vec::new()]
        );
    }

    #[test]
    fn frame_longer_than_segment_completes_via_roll() {
        let payload = vec![7u8; 200];
        let stream = frame(&payload);
        let mut buf = RecvBuf::with_segment_size(32);
        let got = feed(&mut buf, &stream, 9);
        assert_eq!(got, vec![payload]);
    }

    #[test]
    fn live_chunks_survive_later_fills() {
        let mut stream = frame(b"keepme");
        stream.extend_from_slice(&frame(b"partial-"));
        let mut buf = RecvBuf::with_segment_size(64);
        let w = buf.writable();
        w[..stream.len()].copy_from_slice(&stream);
        buf.commit(stream.len());
        let held = buf.next_frame().unwrap().unwrap();
        let held2 = buf.next_frame().unwrap().unwrap();
        // Fill a lot more while the chunks are alive: the buffer must
        // roll to fresh segments, never overwrite the held bytes.
        for i in 0..64 {
            let f = frame(&[i; 100]);
            feed(&mut buf, &f, f.len());
        }
        assert_eq!(held.as_slice(), b"keepme");
        assert_eq!(held2.as_slice(), b"partial-");
    }

    #[test]
    fn corrupt_magic_surfaces_as_error_not_panic() {
        let mut stream = frame(b"fine");
        stream.extend_from_slice(b"\x00\x00garbage");
        let mut buf = RecvBuf::new();
        let w = buf.writable();
        w[..stream.len()].copy_from_slice(&stream);
        buf.commit(stream.len());
        assert_eq!(buf.next_frame().unwrap().unwrap().as_slice(), b"fine");
        assert!(buf.next_frame().is_err());
    }

    #[test]
    fn chunk_split_frame_walks_a_standalone_chunk() {
        let mut stream = frame(b"a");
        stream.extend_from_slice(&frame(b"bb"));
        let mut c = Chunk::from_vec(stream);
        let whole = c.clone();
        let a = c.split_frame().unwrap().unwrap();
        let b = c.split_frame().unwrap().unwrap();
        assert_eq!(c.split_frame().unwrap(), None);
        assert_eq!(a.as_slice(), b"a");
        assert_eq!(b.as_slice(), b"bb");
        assert!(a.same_segment(&whole) && b.same_segment(&whole));
    }

    #[test]
    fn send_queue_coalesces_and_recycles() {
        let mut q = SendQueue::new();
        assert!(q.is_empty());
        for i in 0..10u8 {
            q.push_frame(|buf| buf.extend_from_slice(&[i; 5]));
        }
        let total = q.queued_bytes();
        assert_eq!(total, 10 * (FRAME_HEADER + 5));
        // All ten frames surface as one contiguous slice — one syscall.
        {
            let mut iov = [IoSlice::new(&[]); 8];
            let n = q.slices(&mut iov);
            assert_eq!(n, 1, "coalesced into one segment");
            assert_eq!(iov[0].len(), total);
        }
        // Partial write, then the rest.
        q.consume(3);
        {
            let mut iov = [IoSlice::new(&[]); 8];
            let n = q.slices(&mut iov);
            assert_eq!(iov[..n].iter().map(|s| s.len()).sum::<usize>(), total - 3);
        }
        q.consume(total - 3);
        assert!(q.is_empty());
        assert_eq!(q.slices(&mut [IoSlice::new(&[]); 8]), 0);
    }

    #[test]
    fn send_queue_rolls_segments_past_the_soft_cap() {
        let mut q = SendQueue::new();
        let big = vec![1u8; WRITE_SEGMENT];
        q.push_frame(|buf| buf.extend_from_slice(&big));
        q.push_frame(|buf| buf.extend_from_slice(b"small"));
        assert_eq!(
            q.slices(&mut [IoSlice::new(&[]); 8]),
            2,
            "second frame starts a new segment"
        );
        let total = q.queued_bytes();
        q.consume(total);
        assert!(q.is_empty());
        // The drained segments went back to the pool: pushing again
        // reuses them (observable as retained capacity).
        q.push_frame(|buf| buf.extend_from_slice(b"reused"));
        assert_eq!(q.slices(&mut [IoSlice::new(&[]); 8]), 1);
    }

    #[test]
    fn clear_empties_a_dead_connections_queue() {
        let mut q = SendQueue::new();
        q.push_frame(|buf| buf.extend_from_slice(b"doomed"));
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.slices(&mut [IoSlice::new(&[]); 4]), 0);
    }
}
