//! Mencius-style multi-leader consensus (§8 related work), as an
//! extension baseline.
//!
//! "Mencius was derived from Multi-Paxos to distribute the load of client
//! commands among multiple leaders. [...] it partitions the space of
//! Paxos instance numbers among the leaders: each leader proposes the
//! received client commands only for its range of instance numbers.
//! [...] The under-loaded leaders also have to skip their share of the
//! instance space" (§8).
//!
//! This implementation captures exactly the behaviour the paper discusses
//! when comparing Mencius to 1Paxos:
//!
//! * instance `i` is owned by node `members[i mod n]`; the owner proposes
//!   in its slots without a phase 1 (implicitly promised ballots);
//! * balanced client load spreads the leader work over all cores — the
//!   scalability benefit;
//! * under *unbalanced* load the idle leaders must continuously propose
//!   `skip` no-ops to let the log advance, which costs the very messages
//!   the many-core cannot spare — the §8 critique, measurable with the
//!   `ablation_mencius` bench target.
//!
//! Scope: the failure-free path only (no slot revocation); the owner of a
//! slot is its only proposer. This suffices for the paper's
//! throughput-oriented comparison; fault tolerance in Mencius requires
//! the revocation machinery of the original paper and is out of scope.

use std::collections::{BTreeMap, BTreeSet};

use crate::basic_paxos::QuorumLearner;
use crate::config::ClusterConfig;
use crate::outbox::{Outbox, Timer};
use crate::protocol::Protocol;
use crate::types::{Ballot, Command, Instance, Nanos, NodeId, Op};

/// Wire messages of the Mencius-style protocol.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Msg {
    /// Owner → acceptors proposal for one of its slots.
    Accept {
        /// The slot (owned by the sender).
        inst: Instance,
        /// Proposed command (a no-op for skips).
        cmd: Command,
    },
    /// Acceptor → learners acceptance broadcast.
    Learn {
        /// The slot.
        inst: Instance,
        /// Accepted command.
        cmd: Command,
    },
}

/// A Mencius participant: every node is a leader for its own slot range.
///
/// # Examples
///
/// ```
/// use onepaxos::mencius::MenciusNode;
/// use onepaxos::testnet::TestNet;
/// use onepaxos::{ClusterConfig, NodeId, Op};
///
/// let mut net = TestNet::new(3, |m, me| {
///     MenciusNode::new(ClusterConfig::new(m.to_vec(), me))
/// });
/// // Each node advocates its own clients' commands in its own slots.
/// net.client_request(NodeId(0), NodeId(7), 1, Op::Noop);
/// net.client_request(NodeId(1), NodeId(8), 1, Op::Noop);
/// net.run_to_quiescence();
/// assert_eq!(net.replies().len(), 2);
/// net.assert_consistent();
/// ```
#[derive(Debug)]
pub struct MenciusNode {
    cfg: ClusterConfig,
    /// Next unused own slot.
    next_own: Instance,
    /// Highest slot seen proposed anywhere (drives skip production).
    max_seen: Instance,
    /// Acceptor state: accepted command per slot (the implicit ballot is
    /// `(1, owner)`; without revocation no other ballot ever appears).
    accepted: BTreeMap<Instance, Command>,
    learner: QuorumLearner<Command>,
    watermark: Instance,
    /// Agreed-truncation floor: per-slot state below it is dropped and
    /// below-floor accepts/learns are ignored (each slot has a unique
    /// owner that never re-proposes it, so silent refusal cannot lose a
    /// value).
    trunc_floor: Instance,
    my_clients: BTreeSet<(NodeId, u64)>,
    decided_ids: BTreeMap<(NodeId, u64), Instance>,
    /// Skips this node has proposed (for tests/metrics).
    skips_proposed: u64,
    tick_period: Nanos,
}

impl MenciusNode {
    /// Default maintenance tick (drives skip production): 100 µs.
    pub const DEFAULT_TICK: Nanos = 100_000;

    /// Creates a participant for `cfg`.
    pub fn new(cfg: ClusterConfig) -> Self {
        let my_idx = cfg
            .members()
            .iter()
            .position(|&m| m == cfg.me())
            .expect("validated by ClusterConfig");
        MenciusNode {
            next_own: my_idx as Instance,
            max_seen: 0,
            accepted: BTreeMap::new(),
            learner: QuorumLearner::new(),
            watermark: 0,
            trunc_floor: 0,
            my_clients: BTreeSet::new(),
            decided_ids: BTreeMap::new(),
            skips_proposed: 0,
            tick_period: Self::DEFAULT_TICK,
            cfg,
        }
    }

    /// The owner of slot `inst`.
    pub fn owner(&self, inst: Instance) -> NodeId {
        self.cfg.members()[(inst % self.cfg.len() as Instance) as usize]
    }

    /// Number of skip no-ops this node has proposed so far (§8: the cost
    /// of unbalanced load).
    pub fn skips_proposed(&self) -> u64 {
        self.skips_proposed
    }

    /// Contiguous decided prefix.
    pub fn watermark(&self) -> Instance {
        self.watermark
    }

    fn me(&self) -> NodeId {
        self.cfg.me()
    }

    fn slot_ballot(&self, inst: Instance) -> Ballot {
        Ballot::new(1, self.owner(inst))
    }

    /// Proposes `cmd` in this node's next own slot.
    fn propose_own(&mut self, cmd: Command, out: &mut Outbox<Msg>) {
        let inst = self.next_own;
        self.next_own += self.cfg.len() as Instance;
        self.max_seen = self.max_seen.max(inst);
        for peer in self.cfg.others() {
            out.send(
                peer,
                Msg::Accept {
                    inst,
                    cmd: cmd.clone(),
                },
            );
        }
        self.accept_locally(inst, cmd, out);
    }

    fn accept_locally(&mut self, inst: Instance, cmd: Command, out: &mut Outbox<Msg>) {
        self.accepted.insert(inst, cmd.clone());
        for peer in self.cfg.others() {
            out.send(
                peer,
                Msg::Learn {
                    inst,
                    cmd: cmd.clone(),
                },
            );
        }
        self.on_learn_vote(self.me(), inst, cmd, out);
    }

    fn on_learn_vote(&mut self, from: NodeId, inst: Instance, cmd: Command, out: &mut Outbox<Msg>) {
        if inst < self.trunc_floor {
            // The slot is already applied and snapshotted; counting a
            // stale vote could re-choose it.
            return;
        }
        let quorum = self.cfg.majority();
        let bal = self.slot_ballot(inst);
        if let Some(chosen) = self.learner.on_learn(inst, from, bal, cmd, quorum) {
            let id = chosen.id();
            out.commit(inst, chosen);
            self.decided_ids.entry(id).or_insert(inst);
            while self.learner.chosen(self.watermark).is_some() {
                self.watermark += 1;
            }
            if self.my_clients.remove(&id) {
                out.reply(id.0, id.1, inst);
            }
        }
    }

    /// Fills this node's owed slots below the frontier with skips, so the
    /// log stays contiguous ("the under-loaded leaders have to skip their
    /// share of the instance space", §8).
    fn produce_skips(&mut self, out: &mut Outbox<Msg>) {
        while self.next_own < self.max_seen {
            self.skips_proposed += 1;
            let skip = Command::new(self.me(), u64::MAX - self.skips_proposed, Op::Noop);
            self.propose_own(skip, out);
        }
    }
}

impl Protocol for MenciusNode {
    type Msg = Msg;

    fn node_id(&self) -> NodeId {
        self.cfg.me()
    }

    fn on_start(&mut self, _now: Nanos, out: &mut Outbox<Msg>) {
        out.set_timer(Timer::Tick, self.tick_period);
    }

    fn on_message(&mut self, from: NodeId, msg: Msg, _now: Nanos, out: &mut Outbox<Msg>) {
        match msg {
            Msg::Accept { inst, cmd } => {
                // Only the slot owner may propose (implicit promise).
                if from != self.owner(inst) {
                    return;
                }
                if inst < self.trunc_floor {
                    // A delayed proposal for a truncated (hence decided
                    // and applied) slot.
                    return;
                }
                self.max_seen = self.max_seen.max(inst);
                self.accept_locally(inst, cmd, out);
            }
            Msg::Learn { inst, cmd } => {
                self.max_seen = self.max_seen.max(inst);
                self.on_learn_vote(from, inst, cmd, out);
            }
        }
    }

    fn on_timer(&mut self, timer: Timer, _now: Nanos, out: &mut Outbox<Msg>) {
        if timer == Timer::Tick {
            self.produce_skips(out);
            out.set_timer(Timer::Tick, self.tick_period);
        }
    }

    fn on_client_request(
        &mut self,
        client: NodeId,
        req_id: u64,
        op: Op,
        _now: Nanos,
        out: &mut Outbox<Msg>,
    ) {
        let cmd = Command::new(client, req_id, op);
        if let Some(&inst) = self.decided_ids.get(&cmd.id()) {
            out.reply(client, req_id, inst);
            return;
        }
        self.my_clients.insert(cmd.id());
        // Multi-leader: this node advocates the command in its own slots,
        // no forwarding.
        self.propose_own(cmd, out);
    }

    /// Every Mencius node leads its own slot range.
    fn is_leader(&self) -> bool {
        true
    }

    fn leader_hint(&self) -> Option<NodeId> {
        Some(self.me())
    }

    fn truncate(&mut self, watermark: Instance) {
        if watermark <= self.trunc_floor {
            return;
        }
        self.trunc_floor = watermark;
        self.accepted = self.accepted.split_off(&watermark);
        self.learner.truncate(watermark);
        self.decided_ids.retain(|_, &mut inst| inst >= watermark);
        self.watermark = self.watermark.max(watermark);
        while self.learner.chosen(self.watermark).is_some() {
            self.watermark += 1;
        }
        self.max_seen = self.max_seen.max(watermark);
        // Keep `next_own` on this node's slot residue while jumping past
        // the floor (all own slots below it are decided, hence proposed).
        let n = self.cfg.len() as Instance;
        while self.next_own < watermark {
            self.next_own += n;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testnet::TestNet;

    fn net(n: u16) -> TestNet<MenciusNode> {
        TestNet::new(n, |m, me| {
            MenciusNode::new(ClusterConfig::new(m.to_vec(), me))
        })
    }

    #[test]
    fn slot_ownership_partitions_the_space() {
        let node = MenciusNode::new(ClusterConfig::new(
            vec![NodeId(0), NodeId(1), NodeId(2)],
            NodeId(1),
        ));
        assert_eq!(node.owner(0), NodeId(0));
        assert_eq!(node.owner(1), NodeId(1));
        assert_eq!(node.owner(5), NodeId(2));
        assert_eq!(node.next_own, 1);
    }

    #[test]
    fn balanced_load_commits_on_all_nodes() {
        let mut net = net(3);
        for n in 0..3u16 {
            net.client_request(NodeId(n), NodeId(100 + n), 1, Op::Noop);
        }
        net.run_to_quiescence();
        assert_eq!(net.replies().len(), 3);
        // Slots 0,1,2 all decided; watermark = 3 everywhere.
        for n in 0..3 {
            assert_eq!(net.node(NodeId(n)).watermark(), 3);
        }
        net.assert_consistent();
    }

    #[test]
    fn unbalanced_load_forces_skips() {
        let mut net = net(3);
        // All traffic at node 0: its slots are 0, 3, 6, ...
        for req in 1..=5 {
            net.client_request(NodeId(0), NodeId(9), req, Op::Noop);
        }
        net.run_to_quiescence();
        assert_eq!(net.replies().len(), 5);
        // The log has holes at n1/n2's slots until their ticks skip them.
        assert!(net.node(NodeId(0)).watermark() < 13);
        net.advance_and_settle(MenciusNode::DEFAULT_TICK, 3);
        // Skips filled the gaps: commands sat at slots 0,3,6,9,12.
        assert_eq!(net.node(NodeId(0)).watermark(), 13);
        assert!(net.node(NodeId(1)).skips_proposed() >= 4);
        assert!(net.node(NodeId(2)).skips_proposed() >= 4);
        net.assert_consistent();
    }

    #[test]
    fn skip_messages_are_the_cost_of_imbalance() {
        // §8: balanced load needs no skips; skewed load pays extra
        // messages for every idle leader's slot.
        let mut balanced = net(3);
        for req in 1..=4 {
            for n in 0..3u16 {
                balanced.client_request(NodeId(n), NodeId(100 + n), req, Op::Noop);
            }
            balanced.run_to_quiescence();
        }
        balanced.advance_and_settle(MenciusNode::DEFAULT_TICK, 3);
        let balanced_msgs = balanced.delivered();

        let mut skewed = net(3);
        for req in 1..=12 {
            skewed.client_request(NodeId(0), NodeId(9), req, Op::Noop);
            skewed.run_to_quiescence();
            skewed.advance_and_settle(MenciusNode::DEFAULT_TICK, 1);
        }
        let skewed_msgs = skewed.delivered();
        assert!(
            skewed_msgs as f64 > balanced_msgs as f64 * 1.5,
            "skew must cost messages: {skewed_msgs} vs {balanced_msgs}"
        );
        balanced.assert_consistent();
        skewed.assert_consistent();
    }

    #[test]
    fn commands_commit_in_slot_order_per_owner() {
        let mut net = net(3);
        for req in 1..=3 {
            net.client_request(NodeId(1), NodeId(8), req, Op::Noop);
        }
        net.run_to_quiescence();
        let commits = net.commits(NodeId(0));
        // n1's commands occupy slots 1, 4, 7 in submission order.
        assert_eq!(commits.get(&1).map(|c| c.req_id), Some(1));
        assert_eq!(commits.get(&4).map(|c| c.req_id), Some(2));
        assert_eq!(commits.get(&7).map(|c| c.req_id), Some(3));
    }

    #[test]
    fn tolerates_one_slow_node_for_chosen_slots() {
        // Quorum learning still works with a slow minority; only the slow
        // node's own slots stay unfilled (no revocation — documented).
        let mut net = net(3);
        net.block(NodeId(2));
        net.client_request(NodeId(0), NodeId(9), 1, Op::Noop);
        net.client_request(NodeId(1), NodeId(8), 1, Op::Noop);
        net.run_to_quiescence();
        assert_eq!(net.replies().len(), 2);
        net.unblock(NodeId(2));
        net.run_to_quiescence();
        net.assert_consistent();
    }

    #[test]
    fn duplicate_request_is_answered_from_decided_ids() {
        let mut net = net(3);
        net.client_request(NodeId(0), NodeId(9), 1, Op::Noop);
        net.run_to_quiescence();
        assert_eq!(net.replies().len(), 1);
        net.client_request(NodeId(0), NodeId(9), 1, Op::Noop);
        net.run_to_quiescence();
        assert_eq!(net.replies().len(), 2);
        // But it committed only once.
        let all: Vec<_> = net
            .commits(NodeId(0))
            .values()
            .filter(|c| c.client == NodeId(9))
            .collect();
        assert_eq!(all.len(), 1);
    }
}
