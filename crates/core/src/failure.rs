//! Timeout-based failure suspicion.
//!
//! The paper models faults as *slow* cores: "The notion of 'crash' used
//! here does not necessarily mean the cores stopping any activities
//! forever. It simply models slow ones" (§1, footnote 3). Accordingly,
//! suspicion is never permanent — a node is suspected while it has been
//! silent longer than a timeout and trusted again as soon as it is heard
//! from.

use std::collections::BTreeMap;

use crate::types::{Nanos, NodeId};

/// Per-peer last-heard tracking with a fixed suspicion timeout.
///
/// # Examples
///
/// ```
/// use onepaxos::failure::FailureDetector;
/// use onepaxos::NodeId;
///
/// let mut fd = FailureDetector::new(1_000);
/// fd.heard(NodeId(1), 0);
/// assert!(!fd.suspects(NodeId(1), 500));
/// assert!(fd.suspects(NodeId(1), 2_000));
/// fd.heard(NodeId(1), 2_000);
/// assert!(!fd.suspects(NodeId(1), 2_500));
/// ```
#[derive(Clone, Debug)]
pub struct FailureDetector {
    timeout: Nanos,
    last_heard: BTreeMap<NodeId, Nanos>,
}

impl FailureDetector {
    /// Creates a detector that suspects a peer after `timeout` nanoseconds
    /// of silence.
    pub fn new(timeout: Nanos) -> Self {
        FailureDetector {
            timeout,
            last_heard: BTreeMap::new(),
        }
    }

    /// The configured suspicion timeout.
    pub fn timeout(&self) -> Nanos {
        self.timeout
    }

    /// Records that a message from `peer` was received at `now`.
    pub fn heard(&mut self, peer: NodeId, now: Nanos) {
        let e = self.last_heard.entry(peer).or_insert(now);
        if *e < now {
            *e = now;
        }
    }

    /// Treat `peer` as alive as of `now` without having heard from it
    /// (used when this node first learns of a peer, so that the grace
    /// period starts from discovery rather than from time zero).
    pub fn reset(&mut self, peer: NodeId, now: Nanos) {
        self.last_heard.insert(peer, now);
    }

    /// Whether `peer` has been silent for longer than the timeout.
    ///
    /// A peer never heard from is given the benefit of the doubt starting
    /// at time zero.
    pub fn suspects(&self, peer: NodeId, now: Nanos) -> bool {
        let last = self.last_heard.get(&peer).copied().unwrap_or(0);
        now.saturating_sub(last) > self.timeout
    }

    /// When `peer` was last heard from (or `None` if never).
    pub fn last_heard(&self, peer: NodeId) -> Option<Nanos> {
        self.last_heard.get(&peer).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_peer_uses_time_zero() {
        let fd = FailureDetector::new(100);
        assert!(!fd.suspects(NodeId(3), 100));
        assert!(fd.suspects(NodeId(3), 101));
    }

    #[test]
    fn hearing_clears_suspicion() {
        let mut fd = FailureDetector::new(100);
        fd.heard(NodeId(1), 0);
        assert!(fd.suspects(NodeId(1), 500));
        fd.heard(NodeId(1), 500);
        assert!(!fd.suspects(NodeId(1), 550));
    }

    #[test]
    fn heard_is_monotonic() {
        let mut fd = FailureDetector::new(100);
        fd.heard(NodeId(1), 500);
        fd.heard(NodeId(1), 200); // stale timestamp must not regress
        assert_eq!(fd.last_heard(NodeId(1)), Some(500));
    }

    #[test]
    fn reset_starts_grace_period() {
        let mut fd = FailureDetector::new(100);
        assert!(fd.suspects(NodeId(2), 1_000));
        fd.reset(NodeId(2), 1_000);
        assert!(!fd.suspects(NodeId(2), 1_050));
    }
}
