//! The action buffer through which sans-IO protocol state machines talk to
//! the outside world.
//!
//! Handlers never perform IO; they push [`Action`]s into an [`Outbox`] and
//! the surrounding harness (the `manycore-sim` simulator or the
//! `onepaxos-runtime` threaded deployment) executes them. This is what lets
//! the very same protocol code run on virtual time for the paper's 48-core
//! experiments and on real threads for the examples.

use crate::types::{Command, Instance, Nanos, NodeId};

/// Timers a protocol node can arm.
///
/// All protocols in this crate drive their failure detection from a single
/// periodic [`Timer::Tick`]; the other variants exist for harness-level
/// bookkeeping and tests. `Custom(u8::MAX)` is reserved for the replica
/// engine's batch-flush deadline ([`crate::engine::BATCH_FLUSH`]) and is
/// intercepted before protocol dispatch — protocols must not arm it.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Timer {
    /// Periodic maintenance tick (failure detection, retries).
    Tick,
    /// One-shot timer usable by harnesses or extensions.
    Custom(u8),
}

/// One effect requested by a protocol handler.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Action<M> {
    /// Send `msg` to node `to`. Sending to oneself is allowed and must be
    /// delivered (harnesses deliver it without transmission cost, modelling
    /// collapsed roles on one core, §2.3 footnote 5).
    Send {
        /// Destination node.
        to: NodeId,
        /// Protocol message.
        msg: M,
    },
    /// Reply to a client: the command `(client, req_id)` has committed in
    /// slot `instance`.
    Reply {
        /// Client to notify.
        client: NodeId,
        /// The client's request id.
        req_id: u64,
        /// Slot in which the command committed.
        instance: Instance,
    },
    /// The local learner learned (decided) `cmd` in `instance`. The harness
    /// applies it, in instance order, to the local state-machine replica.
    Commit {
        /// Decided slot.
        instance: Instance,
        /// Decided command.
        cmd: Command,
    },
    /// Arm (or re-arm) `timer` to fire `after` nanoseconds from now.
    SetTimer {
        /// Which timer.
        timer: Timer,
        /// Delay from now, in nanoseconds.
        after: Nanos,
    },
    /// Cancel a pending timer; a no-op if it is not armed.
    CancelTimer {
        /// Which timer.
        timer: Timer,
    },
}

/// Buffer of [`Action`]s produced by one handler invocation.
///
/// # Examples
///
/// ```
/// use onepaxos::{Action, NodeId, Outbox};
///
/// let mut out: Outbox<&'static str> = Outbox::new();
/// out.send(NodeId(1), "hello");
/// let actions = out.take();
/// assert_eq!(actions.len(), 1);
/// assert!(matches!(actions[0], Action::Send { to: NodeId(1), .. }));
/// ```
#[derive(Debug)]
pub struct Outbox<M> {
    actions: Vec<Action<M>>,
}

impl<M> Default for Outbox<M> {
    fn default() -> Self {
        Outbox::new()
    }
}

impl<M> Outbox<M> {
    /// Creates an empty outbox.
    pub fn new() -> Self {
        Outbox {
            actions: Vec::new(),
        }
    }

    /// Queues a raw action (used by harness shims and scripted test
    /// protocols; protocol code prefers the typed helpers below).
    pub fn push(&mut self, action: Action<M>) {
        self.actions.push(action);
    }

    /// Queues a message send.
    pub fn send(&mut self, to: NodeId, msg: M) {
        self.actions.push(Action::Send { to, msg });
    }

    /// Queues a client reply.
    pub fn reply(&mut self, client: NodeId, req_id: u64, instance: Instance) {
        self.actions.push(Action::Reply {
            client,
            req_id,
            instance,
        });
    }

    /// Queues a local commit notification.
    pub fn commit(&mut self, instance: Instance, cmd: Command) {
        self.actions.push(Action::Commit { instance, cmd });
    }

    /// Arms a timer.
    pub fn set_timer(&mut self, timer: Timer, after: Nanos) {
        self.actions.push(Action::SetTimer { timer, after });
    }

    /// Cancels a timer.
    pub fn cancel_timer(&mut self, timer: Timer) {
        self.actions.push(Action::CancelTimer { timer });
    }

    /// Number of queued actions.
    pub fn len(&self) -> usize {
        self.actions.len()
    }

    /// Whether no actions are queued.
    pub fn is_empty(&self) -> bool {
        self.actions.is_empty()
    }

    /// Drains and returns all queued actions, leaving the outbox empty and
    /// reusable. Allocates a fresh backing vector on the next push; hot
    /// loops use [`Self::take_into`] instead.
    pub fn take(&mut self) -> Vec<Action<M>> {
        std::mem::take(&mut self.actions)
    }

    /// Moves all queued actions into `buf` by swapping backing vectors:
    /// the outbox adopts `buf`'s (empty) allocation and `buf` receives
    /// the queued actions. Both capacities survive, so a caller that
    /// drains `buf` and hands it back next time never allocates — the
    /// zero-alloc counterpart of [`Self::take`] for per-event hot paths.
    ///
    /// # Panics
    ///
    /// Panics (debug only) if `buf` is not empty.
    pub fn take_into(&mut self, buf: &mut Vec<Action<M>>) {
        debug_assert!(buf.is_empty(), "scratch buffer handed back undrained");
        std::mem::swap(&mut self.actions, buf);
    }

    /// Iterates over the queued actions without draining them.
    pub fn iter(&self) -> std::slice::Iter<'_, Action<M>> {
        self.actions.iter()
    }
}

impl<M> IntoIterator for Outbox<M> {
    type Item = Action<M>;
    type IntoIter = std::vec::IntoIter<Action<M>>;

    fn into_iter(self) -> Self::IntoIter {
        self.actions.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Command;

    #[test]
    fn outbox_collects_in_order() {
        let mut out: Outbox<u32> = Outbox::new();
        out.send(NodeId(1), 10);
        out.commit(0, Command::noop(NodeId(2), 1));
        out.reply(NodeId(2), 1, 0);
        out.set_timer(Timer::Tick, 100);
        let a = out.take();
        assert_eq!(a.len(), 4);
        assert!(matches!(a[0], Action::Send { .. }));
        assert!(matches!(a[1], Action::Commit { .. }));
        assert!(matches!(a[2], Action::Reply { .. }));
        assert!(matches!(a[3], Action::SetTimer { .. }));
        assert!(out.is_empty());
    }

    #[test]
    fn take_resets_for_reuse() {
        let mut out: Outbox<u32> = Outbox::new();
        out.send(NodeId(0), 1);
        assert_eq!(out.len(), 1);
        let _ = out.take();
        out.send(NodeId(0), 2);
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn take_into_swaps_and_preserves_capacity() {
        let mut out: Outbox<u32> = Outbox::new();
        out.send(NodeId(1), 1);
        out.send(NodeId(2), 2);
        let mut scratch: Vec<Action<u32>> = Vec::with_capacity(64);
        out.take_into(&mut scratch);
        assert_eq!(scratch.len(), 2);
        assert!(out.is_empty());
        // The outbox adopted the scratch allocation: pushing again does
        // not need to grow from zero.
        assert!(out.actions.capacity() >= 64);
        // Drained scratch keeps the actions' old capacity for next time.
        let old_cap = scratch.capacity();
        scratch.clear();
        out.send(NodeId(3), 3);
        out.take_into(&mut scratch);
        assert_eq!(scratch.len(), 1);
        assert!(scratch.capacity() >= old_cap.min(64));
    }

    #[test]
    fn into_iter_yields_actions() {
        let mut out: Outbox<u32> = Outbox::new();
        out.send(NodeId(3), 7);
        out.cancel_timer(Timer::Tick);
        let v: Vec<_> = out.into_iter().collect();
        assert_eq!(v.len(), 2);
    }
}
