//! Basic-Paxos (the Synod protocol), as recalled in §2.3 of the paper.
//!
//! "In the first phase, a proposer attempts to become the leader for a
//! particular instance number by broadcasting a `prepare request` message
//! to the acceptors. Upon receiving a `prepare response` message from a
//! majority of acceptors, the proposer becomes the leader of that instance
//! number. In the second phase, the leader proposes a value to the
//! acceptors and the acceptors broadcast the corresponding message to all
//! the learners. A learner learns the proposal after receiving the message
//! from a majority of acceptors" (§2.3).
//!
//! This module provides the reusable single-decree building blocks
//! ([`InstanceAcceptor`], [`QuorumLearner`]) — also the engine behind
//! 1Paxos's *PaxosUtility* — and a complete collapsed deployment
//! ([`BasicPaxosNode`]) that runs both phases for every command, giving
//! the four server-side message delays the paper attributes to
//! Basic-Paxos (§8).

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use crate::config::ClusterConfig;
use crate::outbox::{Outbox, Timer};
use crate::protocol::Protocol;
use crate::types::{Ballot, Command, Instance, Nanos, NodeId, Op};

/// Acceptor state for one Paxos instance: the promise and the accepted
/// proposal. This is the "short-term memory" role of the acceptor (§4.1).
#[derive(Clone, Debug, Default)]
pub struct InstanceAcceptor<V> {
    promised: Ballot,
    accepted: Option<(Ballot, V)>,
}

impl<V: Clone> InstanceAcceptor<V> {
    /// Creates a fresh acceptor (promised = the paper's `-∞`).
    pub fn new() -> Self {
        InstanceAcceptor {
            promised: Ballot::ZERO,
            accepted: None,
        }
    }

    /// Phase-1: handle `prepare(bal)`.
    ///
    /// On success (bal strictly greater than any prior promise) returns the
    /// previously accepted proposal to be echoed in the promise; on failure
    /// returns the higher promised ballot (for a NACK).
    pub fn on_prepare(&mut self, bal: Ballot) -> Result<Option<(Ballot, V)>, Ballot> {
        if bal > self.promised {
            self.promised = bal;
            Ok(self.accepted.clone())
        } else {
            Err(self.promised)
        }
    }

    /// Phase-2: handle `accept(bal, v)`.
    ///
    /// Accepts iff `bal` is at least the promised ballot; returns the
    /// higher promised ballot otherwise.
    pub fn on_accept(&mut self, bal: Ballot, v: V) -> Result<(), Ballot> {
        if bal >= self.promised {
            self.promised = bal;
            self.accepted = Some((bal, v));
            Ok(())
        } else {
            Err(self.promised)
        }
    }

    /// The highest promised ballot.
    pub fn promised(&self) -> Ballot {
        self.promised
    }

    /// The accepted proposal, if any.
    pub fn accepted(&self) -> Option<&(Ballot, V)> {
        self.accepted.as_ref()
    }
}

/// Learner that declares a value chosen once a majority of acceptors have
/// reported accepting the *same ballot* for an instance.
#[derive(Clone, Debug)]
pub struct QuorumLearner<V> {
    votes: BTreeMap<Instance, BTreeMap<Ballot, (V, BTreeSet<NodeId>)>>,
    chosen: BTreeMap<Instance, V>,
}

impl<V: Clone + PartialEq + std::fmt::Debug> QuorumLearner<V> {
    /// Creates an empty learner.
    pub fn new() -> Self {
        QuorumLearner {
            votes: BTreeMap::new(),
            chosen: BTreeMap::new(),
        }
    }

    /// Records that acceptor `from` accepted `(bal, v)` for `inst`;
    /// returns the newly chosen value when the `quorum`-th vote arrives
    /// (and `None` on duplicates or if already chosen).
    ///
    /// Votes arriving after the instance is decided are ignored even if
    /// they carry a different value: a *single* stale acceptance under a
    /// lower ballot is legal in Paxos (quorum intersection only forbids a
    /// second majority). End-to-end consistency is asserted at commit
    /// level by the harnesses.
    ///
    /// # Panics
    ///
    /// Panics if two different values gather votes under the *same*
    /// ballot, which only a buggy proposer can produce.
    pub fn on_learn(
        &mut self,
        inst: Instance,
        from: NodeId,
        bal: Ballot,
        v: V,
        quorum: usize,
    ) -> Option<V> {
        if self.chosen.contains_key(&inst) {
            return None;
        }
        let slot = self.votes.entry(inst).or_default();
        let (value, voters) = slot
            .entry(bal)
            .or_insert_with(|| (v.clone(), BTreeSet::new()));
        assert_eq!(
            *value, v,
            "two different values under ballot {bal} for instance {inst}"
        );
        voters.insert(from);
        if voters.len() >= quorum {
            self.chosen.insert(inst, v.clone());
            self.votes.remove(&inst);
            Some(v)
        } else {
            None
        }
    }

    /// The chosen value for `inst`, if decided.
    pub fn chosen(&self, inst: Instance) -> Option<&V> {
        self.chosen.get(&inst)
    }

    /// Number of decided instances.
    pub fn decided_count(&self) -> usize {
        self.chosen.len()
    }

    /// The length of the contiguous decided prefix starting at instance 0.
    pub fn contiguous_prefix(&self) -> Instance {
        let mut n = 0;
        while self.chosen.contains_key(&n) {
            n += 1;
        }
        n
    }

    /// Drops chosen values and pending votes below `floor` (agreed
    /// truncation: everything below is decided, applied and covered by a
    /// snapshot). Callers must stop feeding below-floor votes afterwards,
    /// or a truncated instance could gather a quorum a second time.
    pub fn truncate(&mut self, floor: Instance) {
        self.votes = self.votes.split_off(&floor);
        self.chosen = self.chosen.split_off(&floor);
    }
}

impl<V: Clone + PartialEq + std::fmt::Debug> Default for QuorumLearner<V> {
    fn default() -> Self {
        Self::new()
    }
}

/// Wire messages of the collapsed Basic-Paxos deployment.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Msg {
    /// Forward a client command to the proposer.
    Forward {
        /// The advocated command.
        cmd: Command,
    },
    /// Phase-1 request for one instance.
    Prepare {
        /// Target instance.
        inst: Instance,
        /// Proposal number.
        bal: Ballot,
    },
    /// Phase-1 response (promise), echoing any accepted proposal.
    Promise {
        /// Target instance.
        inst: Instance,
        /// The promised ballot.
        bal: Ballot,
        /// Previously accepted proposal for this instance, if any.
        accepted: Option<(Ballot, Command)>,
    },
    /// Phase-1 refusal carrying the higher promised ballot.
    PrepareNack {
        /// Target instance.
        inst: Instance,
        /// The acceptor's promised ballot.
        promised: Ballot,
    },
    /// Phase-2 request.
    Accept {
        /// Target instance.
        inst: Instance,
        /// Proposal number.
        bal: Ballot,
        /// Proposed command.
        cmd: Command,
    },
    /// Phase-2 refusal carrying the higher promised ballot.
    AcceptNack {
        /// Target instance.
        inst: Instance,
        /// The acceptor's promised ballot.
        promised: Ballot,
    },
    /// Acceptor → learners broadcast of an acceptance.
    Learn {
        /// Target instance.
        inst: Instance,
        /// Ballot under which the command was accepted.
        bal: Ballot,
        /// Accepted command.
        cmd: Command,
    },
}

/// Per-instance proposer bookkeeping.
#[derive(Debug)]
struct ProposerInstance {
    bal: Ballot,
    cmd: Command,
    promises: BTreeSet<NodeId>,
    /// Highest-ballot accepted proposal seen in promises; must be proposed
    /// instead of our own command if present.
    prior: Option<(Ballot, Command)>,
    phase2: bool,
}

/// A collapsed Basic-Paxos node (proposer + acceptor + learner on every
/// node, §2.3 footnote 5). The configured initial leader advocates all
/// commands; both phases run for every single command.
///
/// # Examples
///
/// ```
/// use onepaxos::basic_paxos::BasicPaxosNode;
/// use onepaxos::testnet::TestNet;
/// use onepaxos::{ClusterConfig, NodeId, Op};
///
/// let mut net = TestNet::new(3, |m, me| {
///     BasicPaxosNode::new(ClusterConfig::new(m.to_vec(), me))
/// });
/// net.client_request(NodeId(0), NodeId(9), 1, Op::Noop);
/// net.run_to_quiescence();
/// assert_eq!(net.replies().len(), 1);
/// ```
#[derive(Debug)]
pub struct BasicPaxosNode {
    cfg: ClusterConfig,
    proposer_node: NodeId,
    round: u32,
    next_instance: Instance,
    proposing: BTreeMap<Instance, ProposerInstance>,
    queue: VecDeque<Command>,
    acceptors: BTreeMap<Instance, InstanceAcceptor<Command>>,
    learner: QuorumLearner<Command>,
    /// Agreed-truncation floor: per-instance state below it is dropped
    /// and below-floor prepares/accepts/learns are ignored (the single
    /// fixed proposer never revisits an instance it has seen decided, so
    /// silent refusal cannot lose a value).
    trunc_floor: Instance,
    /// Requests this node received directly from clients, for reply
    /// routing.
    my_clients: BTreeSet<(NodeId, u64)>,
    tick_period: Nanos,
}

impl BasicPaxosNode {
    /// Default maintenance tick period (100 µs).
    pub const DEFAULT_TICK: Nanos = 100_000;

    /// Creates a node; `cfg.initial_leader()` is the (fixed) proposer.
    pub fn new(cfg: ClusterConfig) -> Self {
        let proposer_node = cfg.initial_leader();
        BasicPaxosNode {
            cfg,
            proposer_node,
            round: 0,
            next_instance: 0,
            proposing: BTreeMap::new(),
            queue: VecDeque::new(),
            acceptors: BTreeMap::new(),
            learner: QuorumLearner::new(),
            trunc_floor: 0,
            my_clients: BTreeSet::new(),
            tick_period: Self::DEFAULT_TICK,
        }
    }

    fn me(&self) -> NodeId {
        self.cfg.me()
    }

    fn start_instance(&mut self, cmd: Command, out: &mut Outbox<Msg>) {
        let inst = self.next_instance;
        self.next_instance += 1;
        self.round += 1;
        let bal = Ballot::new(self.round, self.me());
        self.proposing.insert(
            inst,
            ProposerInstance {
                bal,
                cmd,
                promises: BTreeSet::new(),
                prior: None,
                phase2: false,
            },
        );
        // Collapsed roles: prepare locally without a message, remotely via
        // messages.
        for peer in self.cfg.others() {
            out.send(peer, Msg::Prepare { inst, bal });
        }
        self.local_prepare(inst, bal, out);
    }

    fn local_prepare(&mut self, inst: Instance, bal: Ballot, out: &mut Outbox<Msg>) {
        let acc = self
            .acceptors
            .entry(inst)
            .or_insert_with(InstanceAcceptor::new);
        if let Ok(accepted) = acc.on_prepare(bal) {
            let me = self.me();
            self.on_promise(me, inst, bal, accepted, out);
        }
    }

    fn on_promise(
        &mut self,
        from: NodeId,
        inst: Instance,
        bal: Ballot,
        accepted: Option<(Ballot, Command)>,
        out: &mut Outbox<Msg>,
    ) {
        let majority = self.cfg.majority();
        let Some(p) = self.proposing.get_mut(&inst) else {
            return;
        };
        if p.bal != bal || p.phase2 {
            return;
        }
        p.promises.insert(from);
        if let Some((abal, acmd)) = accepted {
            if p.prior.as_ref().is_none_or(|(pb, _)| abal > *pb) {
                p.prior = Some((abal, acmd));
            }
        }
        if p.promises.len() >= majority {
            p.phase2 = true;
            // Non-triviality: propose the highest-ballot accepted value if
            // one exists, else our own command.
            let cmd = p
                .prior
                .clone()
                .map(|(_, c)| c)
                .unwrap_or_else(|| p.cmd.clone());
            let bal = p.bal;
            for peer in self.cfg.others() {
                out.send(
                    peer,
                    Msg::Accept {
                        inst,
                        bal,
                        cmd: cmd.clone(),
                    },
                );
            }
            self.local_accept(inst, bal, cmd, out);
        }
    }

    fn local_accept(&mut self, inst: Instance, bal: Ballot, cmd: Command, out: &mut Outbox<Msg>) {
        let acc = self
            .acceptors
            .entry(inst)
            .or_insert_with(InstanceAcceptor::new);
        if acc.on_accept(bal, cmd.clone()).is_ok() {
            for peer in self.cfg.others() {
                out.send(
                    peer,
                    Msg::Learn {
                        inst,
                        bal,
                        cmd: cmd.clone(),
                    },
                );
            }
            let me = self.me();
            self.on_learn_vote(me, inst, bal, cmd, out);
        }
    }

    fn on_learn_vote(
        &mut self,
        from: NodeId,
        inst: Instance,
        bal: Ballot,
        cmd: Command,
        out: &mut Outbox<Msg>,
    ) {
        if inst < self.trunc_floor {
            // The instance is already applied and snapshotted; counting a
            // stale vote could re-choose it.
            return;
        }
        let quorum = self.cfg.majority();
        if let Some(chosen) = self.learner.on_learn(inst, from, bal, cmd, quorum) {
            let id = chosen.id();
            out.commit(inst, chosen);
            if let Some(p) = self.proposing.remove(&inst) {
                // A competing proposer's value won this instance: advocate
                // our command again in a fresh instance (drained on tick).
                if p.cmd.id() != id {
                    self.queue.push_back(p.cmd);
                }
            }
            if self.my_clients.remove(&id) {
                out.reply(id.0, id.1, inst);
            }
        }
    }

    fn retry_instance(&mut self, inst: Instance, out: &mut Outbox<Msg>) {
        // A NACK told us a higher ballot exists: retry phase 1 with a
        // larger round for the same instance and command.
        let Some(p) = self.proposing.get_mut(&inst) else {
            return;
        };
        self.round += 1;
        let bal = Ballot::new(self.round, self.cfg.me());
        p.bal = bal;
        p.promises.clear();
        p.prior = None;
        p.phase2 = false;
        for peer in self.cfg.others() {
            out.send(peer, Msg::Prepare { inst, bal });
        }
        self.local_prepare(inst, bal, out);
    }
}

impl Protocol for BasicPaxosNode {
    type Msg = Msg;

    fn node_id(&self) -> NodeId {
        self.cfg.me()
    }

    fn on_start(&mut self, _now: Nanos, out: &mut Outbox<Msg>) {
        out.set_timer(Timer::Tick, self.tick_period);
    }

    fn on_message(&mut self, from: NodeId, msg: Msg, _now: Nanos, out: &mut Outbox<Msg>) {
        match msg {
            Msg::Forward { cmd } => {
                if self.me() == self.proposer_node {
                    self.start_instance(cmd, out);
                }
            }
            Msg::Prepare { inst, bal } => {
                if inst < self.trunc_floor {
                    // A delayed phase 1 for a truncated (hence decided
                    // and applied) instance.
                    return;
                }
                let acc = self
                    .acceptors
                    .entry(inst)
                    .or_insert_with(InstanceAcceptor::new);
                match acc.on_prepare(bal) {
                    Ok(accepted) => out.send(
                        from,
                        Msg::Promise {
                            inst,
                            bal,
                            accepted,
                        },
                    ),
                    Err(promised) => out.send(from, Msg::PrepareNack { inst, promised }),
                }
            }
            Msg::Promise {
                inst,
                bal,
                accepted,
            } => {
                self.on_promise(from, inst, bal, accepted, out);
            }
            Msg::PrepareNack { inst, promised } => {
                if self
                    .proposing
                    .get(&inst)
                    .is_some_and(|p| !p.phase2 && promised > p.bal)
                {
                    self.retry_instance(inst, out);
                }
            }
            Msg::Accept { inst, bal, cmd } => {
                if inst < self.trunc_floor {
                    // A delayed phase 2 for a truncated instance.
                    return;
                }
                let acc = self
                    .acceptors
                    .entry(inst)
                    .or_insert_with(InstanceAcceptor::new);
                match acc.on_accept(bal, cmd.clone()) {
                    Ok(()) => {
                        for peer in self.cfg.others() {
                            out.send(
                                peer,
                                Msg::Learn {
                                    inst,
                                    bal,
                                    cmd: cmd.clone(),
                                },
                            );
                        }
                        let me = self.me();
                        self.on_learn_vote(me, inst, bal, cmd, out);
                    }
                    Err(promised) => out.send(from, Msg::AcceptNack { inst, promised }),
                }
            }
            Msg::AcceptNack { inst, promised } => {
                if self
                    .proposing
                    .get(&inst)
                    .is_some_and(|p| p.phase2 && promised > p.bal)
                {
                    self.retry_instance(inst, out);
                }
            }
            Msg::Learn { inst, bal, cmd } => {
                self.on_learn_vote(from, inst, bal, cmd, out);
            }
        }
    }

    fn on_timer(&mut self, timer: Timer, _now: Nanos, out: &mut Outbox<Msg>) {
        if timer == Timer::Tick {
            // Drain queued commands (one instance each).
            while let Some(cmd) = self.queue.pop_front() {
                self.start_instance(cmd, out);
            }
            out.set_timer(Timer::Tick, self.tick_period);
        }
    }

    fn on_client_request(
        &mut self,
        client: NodeId,
        req_id: u64,
        op: Op,
        _now: Nanos,
        out: &mut Outbox<Msg>,
    ) {
        let cmd = Command::new(client, req_id, op);
        self.my_clients.insert(cmd.id());
        if self.me() == self.proposer_node {
            self.start_instance(cmd, out);
        } else {
            out.send(self.proposer_node, Msg::Forward { cmd });
        }
    }

    fn is_leader(&self) -> bool {
        self.me() == self.proposer_node
    }

    fn leader_hint(&self) -> Option<NodeId> {
        Some(self.proposer_node)
    }

    fn truncate(&mut self, watermark: Instance) {
        if watermark <= self.trunc_floor {
            return;
        }
        self.trunc_floor = watermark;
        // By the time a Truncate at `watermark` applies here, every
        // instance below it is decided, so the proposer bookkeeping for
        // those instances is already gone (removed on learn). Re-advocate
        // defensively if any survives; the RSM session layer deduplicates.
        let keep = self.proposing.split_off(&watermark);
        let orphans = std::mem::replace(&mut self.proposing, keep);
        self.queue.extend(orphans.into_values().map(|p| p.cmd));
        self.acceptors = self.acceptors.split_off(&watermark);
        self.learner.truncate(watermark);
        self.next_instance = self.next_instance.max(watermark);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testnet::TestNet;

    #[test]
    fn acceptor_promises_monotonically() {
        let mut acc: InstanceAcceptor<u32> = InstanceAcceptor::new();
        assert!(acc.on_prepare(Ballot::new(2, NodeId(0))).is_ok());
        assert_eq!(
            acc.on_prepare(Ballot::new(1, NodeId(1))),
            Err(Ballot::new(2, NodeId(0)))
        );
        assert!(acc.on_prepare(Ballot::new(3, NodeId(1))).is_ok());
    }

    #[test]
    fn acceptor_echoes_accepted_in_promise() {
        let mut acc: InstanceAcceptor<u32> = InstanceAcceptor::new();
        acc.on_prepare(Ballot::new(1, NodeId(0))).unwrap();
        acc.on_accept(Ballot::new(1, NodeId(0)), 42).unwrap();
        let echoed = acc.on_prepare(Ballot::new(2, NodeId(1))).unwrap();
        assert_eq!(echoed, Some((Ballot::new(1, NodeId(0)), 42)));
    }

    #[test]
    fn acceptor_rejects_stale_accept() {
        let mut acc: InstanceAcceptor<u32> = InstanceAcceptor::new();
        acc.on_prepare(Ballot::new(5, NodeId(0))).unwrap();
        assert_eq!(
            acc.on_accept(Ballot::new(4, NodeId(1)), 1),
            Err(Ballot::new(5, NodeId(0)))
        );
        // Equal ballot is fine (the promise holder's own accept).
        assert!(acc.on_accept(Ballot::new(5, NodeId(0)), 1).is_ok());
    }

    #[test]
    fn learner_needs_quorum_of_same_ballot() {
        let mut l: QuorumLearner<u32> = QuorumLearner::new();
        let b1 = Ballot::new(1, NodeId(0));
        let b2 = Ballot::new(2, NodeId(1));
        assert_eq!(l.on_learn(0, NodeId(0), b1, 7, 2), None);
        // A vote under a different ballot does not count toward b1.
        assert_eq!(l.on_learn(0, NodeId(1), b2, 7, 2), None);
        assert_eq!(l.on_learn(0, NodeId(2), b1, 7, 2), Some(7));
        assert_eq!(l.chosen(0), Some(&7));
    }

    #[test]
    fn learner_ignores_duplicate_votes() {
        let mut l: QuorumLearner<u32> = QuorumLearner::new();
        let b = Ballot::new(1, NodeId(0));
        assert_eq!(l.on_learn(0, NodeId(0), b, 7, 2), None);
        assert_eq!(l.on_learn(0, NodeId(0), b, 7, 2), None);
        assert_eq!(l.decided_count(), 0);
    }

    #[test]
    fn learner_contiguous_prefix() {
        let mut l: QuorumLearner<u32> = QuorumLearner::new();
        let b = Ballot::new(1, NodeId(0));
        for inst in [1u64, 2] {
            l.on_learn(inst, NodeId(0), b, 1, 2);
            l.on_learn(inst, NodeId(1), b, 1, 2);
        }
        assert_eq!(l.contiguous_prefix(), 0);
        l.on_learn(0, NodeId(0), b, 1, 2);
        l.on_learn(0, NodeId(1), b, 1, 2);
        assert_eq!(l.contiguous_prefix(), 3);
    }

    #[test]
    #[should_panic(expected = "two different values")]
    fn learner_panics_on_equivocation() {
        let mut l: QuorumLearner<u32> = QuorumLearner::new();
        let b = Ballot::new(1, NodeId(0));
        l.on_learn(0, NodeId(0), b, 7, 2);
        l.on_learn(0, NodeId(1), b, 8, 2);
    }

    fn net(n: u16) -> TestNet<BasicPaxosNode> {
        TestNet::new(n, |m, me| {
            BasicPaxosNode::new(ClusterConfig::new(m.to_vec(), me))
        })
    }

    #[test]
    fn commits_on_all_nodes() {
        let mut net = net(3);
        net.client_request(NodeId(0), NodeId(9), 1, Op::Noop);
        net.run_to_quiescence();
        for n in 0..3 {
            assert_eq!(net.commits(NodeId(n)).len(), 1);
        }
        assert_eq!(net.replies().len(), 1);
        net.assert_consistent();
    }

    #[test]
    fn tolerates_one_slow_node() {
        let mut net = net(3);
        net.block(NodeId(2));
        net.client_request(NodeId(0), NodeId(9), 1, Op::Noop);
        net.run_to_quiescence();
        // Non-blocking: majority {n0, n1} suffices.
        assert_eq!(net.replies().len(), 1);
        assert_eq!(net.commits(NodeId(0)).len(), 1);
        net.unblock(NodeId(2));
        net.run_to_quiescence();
        assert_eq!(net.commits(NodeId(2)).len(), 1);
        net.assert_consistent();
    }

    #[test]
    fn many_commands_commit_in_instance_order() {
        let mut net = net(3);
        for req in 1..=10 {
            net.client_request(NodeId(0), NodeId(9), req, Op::Noop);
        }
        net.run_to_quiescence();
        let commits = net.commits(NodeId(1));
        assert_eq!(commits.len(), 10);
        for (&inst, cmd) in commits {
            assert_eq!(cmd.req_id, inst + 1);
        }
        net.assert_consistent();
    }

    #[test]
    fn forwarded_requests_reach_proposer() {
        let mut net = net(3);
        net.client_request(NodeId(1), NodeId(9), 1, Op::Noop);
        net.run_to_quiescence();
        assert_eq!(net.replies().len(), 1);
        // The node the client contacted routes the reply.
        assert_eq!(net.replies()[0].from, NodeId(1));
    }

    #[test]
    fn five_nodes_tolerate_two_slow() {
        let mut net = net(5);
        net.block(NodeId(3));
        net.block(NodeId(4));
        net.client_request(NodeId(0), NodeId(9), 1, Op::Noop);
        net.run_to_quiescence();
        assert_eq!(net.replies().len(), 1);
        net.assert_consistent();
    }
}
