//! Cluster membership and role placement.

use crate::types::NodeId;

/// Static membership of one agreement group plus the local node's identity.
///
/// In the paper's replica deployments the members are cores 0..R-1 with
/// core 0 the initial leader; in the *joint* deployments (§7.4) every
/// client core is also a member.
///
/// # Examples
///
/// ```
/// use onepaxos::{ClusterConfig, NodeId};
/// let cfg = ClusterConfig::new(vec![NodeId(0), NodeId(1), NodeId(2)], NodeId(1));
/// assert_eq!(cfg.majority(), 2);
/// assert_eq!(cfg.initial_leader(), NodeId(0));
/// assert_eq!(cfg.initial_acceptor(), NodeId(1));
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ClusterConfig {
    members: Vec<NodeId>,
    me: NodeId,
}

impl ClusterConfig {
    /// Creates a config for node `me` within `members`.
    ///
    /// # Panics
    ///
    /// Panics if `members` is empty, contains duplicates, or does not
    /// contain `me`.
    pub fn new(members: Vec<NodeId>, me: NodeId) -> Self {
        assert!(!members.is_empty(), "cluster must have at least one member");
        let mut sorted = members.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), members.len(), "duplicate member ids");
        assert!(members.contains(&me), "local node must be a member");
        ClusterConfig { members, me }
    }

    /// All members, in configuration order.
    pub fn members(&self) -> &[NodeId] {
        &self.members
    }

    /// The local node.
    pub fn me(&self) -> NodeId {
        self.me
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the group is empty (never true for a validated config).
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Size of a strict majority quorum (`⌊n/2⌋ + 1`).
    pub fn majority(&self) -> usize {
        self.members.len() / 2 + 1
    }

    /// Members other than the local node.
    pub fn others(&self) -> impl Iterator<Item = NodeId> + '_ {
        let me = self.me;
        self.members.iter().copied().filter(move |&n| n != me)
    }

    /// The initial leader: the first member (core 0 in the paper's setup).
    pub fn initial_leader(&self) -> NodeId {
        self.members[0]
    }

    /// The initial active acceptor for 1Paxos: the member after the initial
    /// leader, so that leader and active acceptor start on separate nodes
    /// (§5.4). For a single-node group it degenerates to that node.
    pub fn initial_acceptor(&self) -> NodeId {
        if self.members.len() > 1 {
            self.members[1]
        } else {
            self.members[0]
        }
    }

    /// Whether `node` is a member.
    pub fn contains(&self, node: NodeId) -> bool {
        self.members.contains(&node)
    }

    /// The member after `node` in ring order; used to pick backup acceptors
    /// and to retarget clients.
    ///
    /// # Panics
    ///
    /// Panics if `node` is not a member.
    pub fn successor(&self, node: NodeId) -> NodeId {
        let pos = self
            .members
            .iter()
            .position(|&n| n == node)
            .expect("node must be a member");
        self.members[(pos + 1) % self.members.len()]
    }

    /// Picks a backup acceptor: the first member in ring order after
    /// `after` that is neither `leader` nor in `exclude`. Implements the
    /// pseudocode's `selectAcceptor()` with the §5.4 placement rule that
    /// the leader and active acceptor live on separate nodes.
    ///
    /// Returns `None` if no such node exists (e.g. a two-node group where
    /// the only other node is excluded).
    pub fn select_acceptor(
        &self,
        leader: NodeId,
        after: NodeId,
        exclude: &[NodeId],
    ) -> Option<NodeId> {
        let mut cand = after;
        for _ in 0..self.members.len() {
            cand = self.successor(cand);
            if cand != leader && !exclude.contains(&cand) {
                return Some(cand);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn three() -> ClusterConfig {
        ClusterConfig::new(vec![NodeId(0), NodeId(1), NodeId(2)], NodeId(0))
    }

    #[test]
    fn majority_sizes() {
        assert_eq!(three().majority(), 2);
        let five = ClusterConfig::new((0..5).map(NodeId).collect(), NodeId(0));
        assert_eq!(five.majority(), 3);
        let four = ClusterConfig::new((0..4).map(NodeId).collect(), NodeId(0));
        assert_eq!(four.majority(), 3);
    }

    #[test]
    fn initial_roles_are_distinct_nodes() {
        let cfg = three();
        assert_ne!(cfg.initial_leader(), cfg.initial_acceptor());
    }

    #[test]
    fn others_excludes_me() {
        let cfg = ClusterConfig::new(vec![NodeId(0), NodeId(1), NodeId(2)], NodeId(1));
        let others: Vec<_> = cfg.others().collect();
        assert_eq!(others, vec![NodeId(0), NodeId(2)]);
    }

    #[test]
    fn successor_wraps() {
        let cfg = three();
        assert_eq!(cfg.successor(NodeId(2)), NodeId(0));
        assert_eq!(cfg.successor(NodeId(0)), NodeId(1));
    }

    #[test]
    fn select_acceptor_avoids_leader_and_excluded() {
        let cfg = three();
        // Leader n0, current acceptor n1 failed: pick n2.
        let next = cfg.select_acceptor(NodeId(0), NodeId(1), &[NodeId(1)]);
        assert_eq!(next, Some(NodeId(2)));
        // Everything but the leader excluded: no candidate.
        let none = cfg.select_acceptor(NodeId(0), NodeId(1), &[NodeId(1), NodeId(2)]);
        assert_eq!(none, None);
    }

    #[test]
    fn select_acceptor_ring_order_from_after() {
        let cfg = ClusterConfig::new((0..5).map(NodeId).collect(), NodeId(0));
        // After n2, skipping leader n3: candidates n4 (not leader) first.
        let next = cfg.select_acceptor(NodeId(3), NodeId(2), &[]);
        assert_eq!(next, Some(NodeId(4)));
    }

    #[test]
    #[should_panic(expected = "local node must be a member")]
    fn me_must_be_member() {
        let _ = ClusterConfig::new(vec![NodeId(0)], NodeId(9));
    }

    #[test]
    #[should_panic(expected = "duplicate member ids")]
    fn duplicates_rejected() {
        let _ = ClusterConfig::new(vec![NodeId(0), NodeId(0)], NodeId(0));
    }
}
