//! Key-hash-routed multi-group consensus: S independent replica engines
//! behind one router.
//!
//! The paper's thesis is that agreement inside a machine is bounded by
//! per-message CPU cost on the hot cores, not by propagation (§3). PR 1
//! made [`ReplicaEngine`] the one protocol-agnostic unit of execution and
//! PR 2 made each agreement carry a batch; this module adds the remaining
//! structural multiplier: run **S independent consensus groups** over the
//! same set of nodes and route every command to a group by the hash of its
//! key. Throughput then scales with the number of cores hosting shard
//! leaders while the protocol code stays untouched — the same
//! partition-by-instance idea Mencius applies to *leaders*, applied here
//! to the *key space*.
//!
//! # Model
//!
//! A [`ShardedEngine`] owns one [`ReplicaEngine`] per shard. Each shard is
//! a complete, independent consensus group: its own instance log, its own
//! timers, its own batch accumulator, its own applied state-machine
//! replica. Nothing is shared between shards, which is exactly why they
//! scale — and why cross-shard operations (transactions) need a protocol
//! of their own (see the `twopc` module for the natural candidate).
//!
//! Routing is **deterministic and key-stable**: the same key always maps
//! to the same shard ([`ShardRouter::route_key`]), so every node of the
//! cluster, every client, and every incarnation of either agrees on which
//! group owns which key without coordination. Keyless commands
//! ([`Op::Noop`]) route by client id, spreading closed-loop load evenly.
//!
//! # Batching composes with sharding
//!
//! Batches must never span shards (a batch travels through one group's
//! log), so the accumulator lives *per shard*: requests are routed first
//! and coalesce inside their shard's engine. [`Op::Batch`] commands
//! therefore never need routing themselves — they are built downstream of
//! it.
//!
//! # Harness contract
//!
//! Harnesses drive shards exactly like single engines, with a [`ShardId`]
//! tag on both directions: [`ShardedEngine::handle`] takes the shard a
//! message or timer belongs to, and every emitted effect is tagged with
//! the shard that produced it, so one transport link can multiplex all S
//! groups. [`ShardedEngine::next_deadline`] merges the per-shard timer
//! tables for sleep-until-deadline schedulers.
//!
//! # Example
//!
//! ```
//! use onepaxos::engine::{EngineEffect, ReplicaEngine};
//! use onepaxos::kv::KvStore;
//! use onepaxos::shard::{ShardId, ShardedEngine};
//! use onepaxos::twopc::TwoPcNode;
//! use onepaxos::{ClusterConfig, NodeId, Op};
//!
//! // Four single-node 2PC groups: each decides immediately.
//! let mut sharded = ShardedEngine::new(4, |shard| {
//!     let cfg = ClusterConfig::new(vec![NodeId(0)], NodeId(0));
//!     ReplicaEngine::new(TwoPcNode::new(cfg), KvStore::new()).with_shard(shard)
//! });
//! let mut effects = Vec::new();
//! sharded.start(0, &mut effects);
//! let owner = sharded.submit(NodeId(9), 1, Op::Put { key: 7, value: 70 }, 0, &mut effects);
//! assert_eq!(owner, sharded.router().route_key(7));
//! assert!(effects
//!     .iter()
//!     .any(|(s, e)| *s == owner && matches!(e, EngineEffect::Committed { .. })));
//! assert_eq!(sharded.kv_get(7), Some(70));
//! ```

use std::fmt;

use crate::engine::{
    BatchConfig, EngineEffect, EngineEvent, EngineStats, LocalRead, ReplicaEngine,
};
use crate::protocol::Protocol;
use crate::rsm::{ApplierSnapshot, StateMachine};
use crate::types::{Instance, Nanos, NodeId, Op};

/// Identifier of one consensus group (shard) inside a sharded deployment.
///
/// Shards are numbered `0..S`; the id tags engine events and effects so a
/// single transport link can multiplex all groups.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ShardId(pub u16);

impl ShardId {
    /// The shard id as a zero-based index (for vector indexing).
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for ShardId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

impl fmt::Display for ShardId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// Deterministic, key-stable assignment of commands to shards.
///
/// Every node, client and harness builds its own router from the shard
/// count alone; no coordination, no routing tables. The hash is a
/// fixed-point finalizer (SplitMix64's), so nearby keys spread evenly and
/// the mapping never changes between runs or processes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShardRouter {
    shards: u16,
}

/// SplitMix64 finalizer: full-avalanche mixing so sequential keys do not
/// clump on one shard.
fn mix64(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

impl ShardRouter {
    /// Creates a router over `shards` groups.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    pub fn new(shards: u16) -> Self {
        assert!(shards >= 1, "a deployment has at least one shard");
        ShardRouter { shards }
    }

    /// Number of shards routed over.
    pub fn shards(&self) -> u16 {
        self.shards
    }

    /// The shard owning `key`. Deterministic and key-stable: the same key
    /// maps to the same shard on every node, forever.
    pub fn route_key(&self, key: u64) -> ShardId {
        ShardId((mix64(key) % u64::from(self.shards)) as u16)
    }

    /// The shard a command from `client` performing `op` routes to: keyed
    /// operations go by key hash, keyless ones ([`Op::Noop`]) by client
    /// hash so closed-loop load spreads evenly.
    ///
    /// # Panics
    ///
    /// Panics on [`Op::Batch`]: batches are assembled per shard,
    /// *downstream* of routing, so one reaching the router could only
    /// mean a client submitted a pre-built batch — routing it by client
    /// hash would land its constituents in a shard that does not own
    /// their keys and silently break the disjoint-partition invariant
    /// every read path depends on. Failing loudly (in release builds
    /// too) is the only safe answer.
    pub fn route(&self, client: NodeId, op: &Op) -> ShardId {
        assert!(
            !matches!(op, Op::Batch(_)),
            "batches are built per shard and must not be routed"
        );
        // A multi-key fragment (transaction prepare or single-shard
        // multi-put) routes by its first key; the coordinator must have
        // partitioned the write set so the rest agree.
        if let Op::MultiPut { writes } | Op::TxnPrepare { writes, .. } = op {
            debug_assert!(
                writes
                    .iter()
                    .all(|&(k, _)| self.route_key(k) == self.route_key(writes[0].0)),
                "write-set fragment crosses shards — mis-partitioned coordinator"
            );
        }
        match op.key() {
            Some(key) => self.route_key(key),
            None => ShardId((mix64(u64::from(client.0)) % u64::from(self.shards)) as u16),
        }
    }
}

/// The tagged effect stream of a sharded engine: which shard produced
/// each [`EngineEffect`].
pub type ShardedEffects<M, O> = Vec<(ShardId, EngineEffect<M, O>)>;

/// S independent [`ReplicaEngine`]s behind one key-hash router; see the
/// [module docs](self) for the model.
#[derive(Debug)]
pub struct ShardedEngine<P: Protocol, S: StateMachine> {
    router: ShardRouter,
    shards: Vec<ReplicaEngine<P, S>>,
    /// Reusable untagged-effect buffer for per-shard dispatch.
    scratch: Vec<EngineEffect<P::Msg, S::Output>>,
}

impl<P: Protocol, S: StateMachine> ShardedEngine<P, S> {
    /// Builds `shards` engines with `make(shard)`.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    pub fn new(shards: u16, mut make: impl FnMut(ShardId) -> ReplicaEngine<P, S>) -> Self {
        ShardedEngine {
            router: ShardRouter::new(shards),
            shards: (0..shards).map(|s| make(ShardId(s))).collect(),
            scratch: Vec::new(),
        }
    }

    /// Wraps a single engine as a one-shard deployment (the unsharded
    /// special case every pre-sharding harness is now expressed in).
    pub fn single(engine: ReplicaEngine<P, S>) -> Self {
        ShardedEngine {
            router: ShardRouter::new(1),
            shards: vec![engine],
            scratch: Vec::new(),
        }
    }

    /// The router shared by every node of this deployment.
    pub fn router(&self) -> ShardRouter {
        self.router
    }

    /// Number of shards.
    pub fn shards(&self) -> u16 {
        self.router.shards()
    }

    /// The engine of one shard.
    pub fn shard(&self, s: ShardId) -> &ReplicaEngine<P, S> {
        &self.shards[s.index()]
    }

    /// Mutable access to one shard's engine (harness drivers, white-box
    /// assertions).
    pub fn shard_mut(&mut self, s: ShardId) -> &mut ReplicaEngine<P, S> {
        &mut self.shards[s.index()]
    }

    /// Iterates the shards in id order.
    pub fn iter(&self) -> impl Iterator<Item = (ShardId, &ReplicaEngine<P, S>)> {
        self.shards
            .iter()
            .enumerate()
            .map(|(i, e)| (ShardId(i as u16), e))
    }

    /// Feeds `event` to shard `s` at time `now`, appending the resulting
    /// effects tagged with `s`.
    pub fn handle(
        &mut self,
        s: ShardId,
        event: EngineEvent<P::Msg>,
        now: Nanos,
        effects: &mut ShardedEffects<P::Msg, S::Output>,
    ) {
        let mut scratch = std::mem::take(&mut self.scratch);
        self.shards[s.index()].handle(event, now, &mut scratch);
        effects.extend(scratch.drain(..).map(|e| (s, e)));
        self.scratch = scratch;
    }

    /// Routes a client request to its owning shard, feeds it there, and
    /// returns the shard it went to. This is the entry point that keeps
    /// callers shard-oblivious; the shard's own batch accumulator
    /// coalesces it from here ([`Op::Batch`] constituents are routed
    /// *before* batching by construction).
    pub fn submit(
        &mut self,
        client: NodeId,
        req_id: u64,
        op: Op,
        now: Nanos,
        effects: &mut ShardedEffects<P::Msg, S::Output>,
    ) -> ShardId {
        let s = self.router.route(client, &op);
        self.handle(
            s,
            EngineEvent::ClientRequest { client, req_id, op },
            now,
            effects,
        );
        s
    }

    /// Bootstraps every shard (runs each protocol's `on_start`).
    pub fn start(&mut self, now: Nanos, effects: &mut ShardedEffects<P::Msg, S::Output>) {
        for s in 0..self.shards() {
            self.handle(ShardId(s), EngineEvent::Start, now, effects);
        }
    }

    /// Fires every due timer of every shard (in shard order); returns how
    /// many fired across all shards.
    pub fn fire_due(
        &mut self,
        now: Nanos,
        effects: &mut ShardedEffects<P::Msg, S::Output>,
    ) -> usize {
        let mut fired = 0;
        for i in 0..self.shards.len() {
            let s = ShardId(i as u16);
            let mut scratch = std::mem::take(&mut self.scratch);
            fired += self.shards[i].fire_due(now, &mut scratch);
            effects.extend(scratch.drain(..).map(|e| (s, e)));
            self.scratch = scratch;
        }
        fired
    }

    /// The earliest armed deadline **across all shards** — what a
    /// sleep-until-deadline harness must wake for. Per-shard deadlines
    /// are available through [`Self::shard`] when shards live on
    /// different cores.
    pub fn next_deadline(&self) -> Option<Nanos> {
        self.shards.iter().filter_map(|e| e.next_deadline()).min()
    }

    /// Marks every shard blocked/unblocked: blocking models a slow *core*,
    /// and all shards hosted on that core starve together.
    pub fn set_blocked(&mut self, blocked: bool) {
        for e in &mut self.shards {
            e.set_blocked(blocked);
        }
    }

    /// Whether the shards are currently blocked (uniform across shards by
    /// construction).
    pub fn is_blocked(&self) -> bool {
        self.shards.iter().any(ReplicaEngine::is_blocked)
    }

    /// Enables or disables command batching on every shard. Each shard
    /// keeps its own accumulator, so batches never span shards.
    ///
    /// # Panics
    ///
    /// Panics if any shard currently has requests buffered.
    pub fn set_batching(&mut self, cfg: Option<BatchConfig>) {
        for e in &mut self.shards {
            e.set_batching(cfg);
        }
    }

    /// Batching counters of one shard group's engine (each shard runs
    /// its own accumulator — and, under [`BatchConfig::Adaptive`], its
    /// own depth controller, since per-shard load diverges under key
    /// skew).
    pub fn stats(&self, s: ShardId) -> EngineStats {
        self.shards[s.index()].stats()
    }

    /// Batching counters folded across every shard: counts add, `depth`
    /// reports the deepest controller (see [`EngineStats::absorb`]).
    pub fn merged_stats(&self) -> EngineStats {
        let mut total = EngineStats::default();
        for e in &self.shards {
            total.absorb(&e.stats());
        }
        total
    }

    /// Raises every shard's batch sequence floor (see
    /// [`ReplicaEngine::set_batch_seq_floor`]): a rebuilt node must move
    /// **all** of its shard engines into a fresh epoch, since each shard
    /// group deduplicates its advocate's batch ids independently.
    pub fn set_batch_seq_floor(&mut self, floor: u64) {
        for e in &mut self.shards {
            e.set_batch_seq_floor(floor);
        }
    }

    /// Proposes an agreed truncation of shard `s` at this replica's
    /// applied watermark, as an ordinary client command through the
    /// shard's own log (the same shape as the `Op::TxnStatus` probe).
    /// Returns the proposed watermark. `client`/`req_id` must follow the
    /// session rules of any other client (monotone ids per client).
    pub fn propose_truncate(
        &mut self,
        s: ShardId,
        client: NodeId,
        req_id: u64,
        now: Nanos,
        effects: &mut ShardedEffects<P::Msg, S::Output>,
    ) -> Instance {
        let watermark = self.shards[s.index()]
            .applier()
            .applied_up_to()
            .map_or(0, |i| i + 1);
        self.handle(
            s,
            EngineEvent::ClientRequest {
                client,
                req_id,
                op: Op::Truncate { watermark },
            },
            now,
            effects,
        );
        watermark
    }

    /// Captures shard `s`'s applied prefix as an installable snapshot.
    pub fn snapshot_shard(&self, s: ShardId) -> ApplierSnapshot<S> {
        self.shards[s.index()].snapshot()
    }

    /// Installs a peer's snapshot into shard `s` (see
    /// [`ReplicaEngine::install_snapshot`]). Returns `false` if the
    /// snapshot is at or below what the shard already applied.
    pub fn install_shard_snapshot(&mut self, s: ShardId, snap: ApplierSnapshot<S>) -> bool {
        self.shards[s.index()].install_snapshot(snap)
    }

    /// Whether the deployed protocol ever serves reads locally (uniform:
    /// every shard runs the same protocol).
    pub fn supports_local_reads(&self) -> bool {
        self.shards[0].supports_local_reads()
    }

    /// Whether `key` is readable from the local replica of its owning
    /// shard *right now*: the shard's protocol gate **and** the
    /// state-machine lock gate (a prepared cross-shard transaction keeps
    /// its keys unreadable, see [`crate::txn`]) must both be open.
    pub fn can_read_locally(&self, key: u64) -> bool
    where
        S: LocalRead,
    {
        self.shards[self.router.route_key(key).index()].can_read_locally(key)
    }

    /// Serves a relaxed read of `key` from its owning shard's local
    /// replica, if that shard's protocol currently allows it (§7.5). The
    /// per-shard gate is what keeps cross-shard reads correct: a key is
    /// only ever read from the one group that orders its writes.
    pub fn local_read(&self, key: u64) -> Option<S::Output>
    where
        S: LocalRead,
    {
        self.shards[self.router.route_key(key).index()].local_read(key)
    }
}

impl<P: Protocol> ShardedEngine<P, crate::kv::KvStore> {
    /// Reads `key` from its owning shard's applied replica, ungated (for
    /// harness oracles and tests; clients go through
    /// [`Self::local_read`]).
    pub fn kv_get(&self, key: u64) -> Option<u64> {
        self.shards[self.router.route_key(key).index()]
            .state()
            .get(key)
    }

    /// This node's **locally-applied** view of transaction `txn` at the
    /// shard owning `routing_key` (any key of that shard's fragment) —
    /// a per-replica test oracle. A replica lagging its group's decided
    /// log under-reports, so coordinator recovery must not read status
    /// here: it goes through the agreed probe
    /// [`Op::TxnStatus`](crate::types::Op::TxnStatus) instead (see
    /// [`crate::txn::recover_outcome`]'s freshness contract).
    pub fn txn_status(&self, routing_key: u64, txn: crate::types::TxnId) -> crate::txn::TxnStatus {
        self.shards[self.router.route_key(routing_key).index()]
            .state()
            .txn_status(txn)
    }

    /// Transactional locks currently held across every shard replica on
    /// this node (test oracle: zero once every transaction has its
    /// outcome).
    pub fn txn_locks(&self) -> usize {
        self.shards.iter().map(|e| e.state().txn_locks()).sum()
    }

    /// Prepares parked in lock-wait queues across every shard replica
    /// on this node (test oracle: zero once every transaction has its
    /// outcome — a leftover entry is a zombie waiter).
    pub fn txn_parked(&self) -> usize {
        self.shards.iter().map(|e| e.state().txn_parked()).sum()
    }

    /// A digest of the replica's full key/value contents across shards.
    /// Equals the plain [`KvStore::digest`](crate::kv::KvStore::digest)
    /// for a one-shard deployment; multi-shard digests fold the per-shard
    /// digests in shard order (key sets are disjoint by routing, so equal
    /// folds mean equal contents for deployments with equal shard
    /// counts).
    pub fn kv_digest(&self) -> u64 {
        if self.shards.len() == 1 {
            return self.shards[0].state().digest();
        }
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for e in &self.shards {
            h = mix64(h ^ e.state().digest());
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::BatchConfig;
    use crate::kv::KvStore;
    use crate::outbox::{Outbox, Timer};
    use crate::types::{Command, Instance};

    /// A protocol that instantly decides whatever it advocates (same
    /// shape as the engine's batching tests): one agreement per
    /// `on_client_request`, so agreement counts are observable.
    struct Deciding {
        me: NodeId,
        next: Instance,
        requests: Vec<(NodeId, u64)>,
    }

    impl Deciding {
        fn new() -> Self {
            Deciding {
                me: NodeId(0),
                next: 0,
                requests: Vec::new(),
            }
        }
    }

    impl Protocol for Deciding {
        type Msg = u8;

        fn node_id(&self) -> NodeId {
            self.me
        }

        fn on_start(&mut self, _now: Nanos, _out: &mut Outbox<u8>) {}

        fn on_message(&mut self, _from: NodeId, _msg: u8, _now: Nanos, _out: &mut Outbox<u8>) {}

        fn on_timer(&mut self, _timer: Timer, _now: Nanos, _out: &mut Outbox<u8>) {}

        fn on_client_request(
            &mut self,
            client: NodeId,
            req_id: u64,
            op: Op,
            _now: Nanos,
            out: &mut Outbox<u8>,
        ) {
            self.requests.push((client, req_id));
            let cmd = Command::new(client, req_id, op);
            let inst = self.next;
            self.next += 1;
            out.commit(inst, cmd);
            out.reply(client, req_id, inst);
        }

        fn is_leader(&self) -> bool {
            true
        }

        fn leader_hint(&self) -> Option<NodeId> {
            Some(self.me)
        }
    }

    type Sharded = ShardedEngine<Deciding, KvStore>;
    type Fx = ShardedEffects<u8, Option<u64>>;

    fn sharded(shards: u16) -> Sharded {
        ShardedEngine::new(shards, |s| {
            ReplicaEngine::new(Deciding::new(), KvStore::new()).with_shard(s)
        })
    }

    #[test]
    fn router_is_deterministic_and_in_range() {
        for shards in 1..=8u16 {
            let r = ShardRouter::new(shards);
            for key in 0..200u64 {
                let s = r.route_key(key);
                assert!(s.0 < shards);
                assert_eq!(s, r.route_key(key), "key {key} must be stable");
                assert_eq!(s, ShardRouter::new(shards).route_key(key));
            }
        }
    }

    #[test]
    fn router_spreads_sequential_keys() {
        let r = ShardRouter::new(4);
        let mut hits = [0usize; 4];
        for key in 0..4_000u64 {
            hits[r.route_key(key).index()] += 1;
        }
        for (s, &h) in hits.iter().enumerate() {
            assert!(
                h > 500 && h < 1_500,
                "shard {s} got {h}/4000 sequential keys"
            );
        }
    }

    #[test]
    fn keyed_ops_route_by_key_and_noops_by_client() {
        let r = ShardRouter::new(5);
        let key = 42;
        let by_key = r.route_key(key);
        for client in 0..20u16 {
            let c = NodeId(client);
            assert_eq!(r.route(c, &Op::Put { key, value: 1 }), by_key);
            assert_eq!(r.route(c, &Op::Get { key }), by_key);
            assert_eq!(r.route(c, &Op::Noop), r.route(c, &Op::Noop));
        }
        // Noops from enough distinct clients reach more than one shard.
        let shards: std::collections::BTreeSet<ShardId> =
            (0..32u16).map(|c| r.route(NodeId(c), &Op::Noop)).collect();
        assert!(shards.len() > 1);
    }

    #[test]
    #[should_panic(expected = "must not be routed")]
    fn routing_a_batch_panics_in_release_semantics_too() {
        // A hard assert, not a debug_assert: a client-submitted batch
        // routed by client hash would plant foreign keys in a shard that
        // does not own them — every later read would miss them silently.
        let r = ShardRouter::new(2);
        let batch = Command::batch(NodeId(0), 1, vec![Command::noop(NodeId(9), 1)]);
        let _ = r.route(NodeId(9), &batch.op);
    }

    #[test]
    fn one_shard_routes_everything_to_shard_zero() {
        let r = ShardRouter::new(1);
        for key in 0..100 {
            assert_eq!(r.route_key(key), ShardId(0));
        }
    }

    #[test]
    fn submit_routes_and_tags_effects_with_the_owning_shard() {
        let mut e = sharded(4);
        let mut fx: Fx = Vec::new();
        e.start(0, &mut fx);
        fx.clear();
        let owner = e.submit(NodeId(9), 1, Op::Put { key: 7, value: 70 }, 0, &mut fx);
        assert_eq!(owner, e.router().route_key(7));
        assert!(!fx.is_empty());
        assert!(fx.iter().all(|(s, _)| *s == owner), "effects mis-tagged");
        // Only the owning shard saw an agreement; its replica holds the key.
        for (s, eng) in e.iter() {
            let expect = usize::from(s == owner);
            assert_eq!(eng.node().requests.len(), expect, "shard {s}");
        }
        assert_eq!(e.kv_get(7), Some(70));
        assert_eq!(e.shard(owner).state().get(7), Some(70));
    }

    #[test]
    fn batch_accumulators_are_per_shard() {
        let mut e = ShardedEngine::new(2, |s| {
            ReplicaEngine::new(Deciding::new(), KvStore::new())
                .with_shard(s)
                .with_batching(BatchConfig::new(3, 1_000))
        });
        let mut fx: Fx = Vec::new();
        e.start(0, &mut fx);
        // Find keys owned by each shard.
        let r = e.router();
        let k0 = (0..).find(|&k| r.route_key(k) == ShardId(0)).unwrap();
        let k1 = (0..).find(|&k| r.route_key(k) == ShardId(1)).unwrap();
        e.submit(NodeId(9), 1, Op::Put { key: k0, value: 1 }, 0, &mut fx);
        e.submit(NodeId(10), 1, Op::Put { key: k1, value: 2 }, 0, &mut fx);
        e.submit(NodeId(11), 1, Op::Put { key: k0, value: 3 }, 0, &mut fx);
        // Neither shard reached its 3-command flush: the accumulators did
        // not share requests across shards.
        assert_eq!(e.shard(ShardId(0)).pending_batch(), 2);
        assert_eq!(e.shard(ShardId(1)).pending_batch(), 1);
        assert_eq!(e.next_deadline(), Some(1_000), "flush deadlines armed");
        // Deadline flush drains both shards; each commits in its own log.
        fx.clear();
        assert_eq!(e.fire_due(1_000, &mut fx), 2);
        assert_eq!(e.kv_get(k0), Some(3));
        assert_eq!(e.kv_get(k1), Some(2));
        // Both instance logs start at 0: independent groups.
        assert_eq!(e.shard(ShardId(0)).applier().applied_up_to(), Some(0));
        assert_eq!(e.shard(ShardId(1)).applier().applied_up_to(), Some(0));
    }

    #[test]
    fn adaptive_controllers_are_per_shard_under_key_skew() {
        use crate::engine::AdaptiveBatch;
        // One hot shard hammered with back-to-back traffic, one cold
        // shard trickled: each learns its own depth.
        let mut e = ShardedEngine::new(2, |s| {
            ReplicaEngine::new(Deciding::new(), KvStore::new())
                .with_shard(s)
                .with_batching(BatchConfig::adaptive(AdaptiveBatch::new(16, 1_000)))
        });
        let r = e.router();
        let hot = (0..).find(|&k| r.route_key(k) == ShardId(0)).unwrap();
        let cold = (0..).find(|&k| r.route_key(k) == ShardId(1)).unwrap();
        let mut fx: Fx = Vec::new();
        for i in 0..120u64 {
            e.submit(
                NodeId((i % 100) as u16),
                i / 100 + 1,
                Op::Put { key: hot, value: i },
                0,
                &mut fx,
            );
        }
        // The cold shard sees one request every ten flush windows.
        for round in 0..4u64 {
            e.submit(
                NodeId(120),
                round + 1,
                Op::Put {
                    key: cold,
                    value: round,
                },
                round * 10_000,
                &mut fx,
            );
        }
        let hot_depth = e.stats(ShardId(0)).depth;
        let cold_depth = e.stats(ShardId(1)).depth;
        assert!(hot_depth > 4, "hot shard should grow, got {hot_depth}");
        assert_eq!(cold_depth, 1, "cold shard must stay latency-optimal");
        // Merged stats fold counters and surface the deepest controller.
        let merged = e.merged_stats();
        assert_eq!(merged.depth, hot_depth);
        assert_eq!(
            merged.enqueued,
            e.stats(ShardId(0)).enqueued + e.stats(ShardId(1)).enqueued
        );
    }

    #[test]
    fn next_deadline_merges_across_shards() {
        let mut e = ShardedEngine::new(3, |s| {
            ReplicaEngine::new(Deciding::new(), KvStore::new())
                .with_shard(s)
                .with_batching(BatchConfig::new(8, 100 * (u64::from(s.0) + 1)))
        });
        let mut fx: Fx = Vec::new();
        let r = e.router();
        // One pending request per shard, armed at different deadlines.
        for shard in 0..3u16 {
            let k = (0..).find(|&k| r.route_key(k) == ShardId(shard)).unwrap();
            e.submit(
                NodeId(9),
                u64::from(shard) + 1,
                Op::Put { key: k, value: 1 },
                0,
                &mut fx,
            );
        }
        assert_eq!(e.next_deadline(), Some(100), "earliest shard wins");
        assert_eq!(e.shard(ShardId(2)).next_deadline(), Some(300));
    }

    #[test]
    fn blocking_gates_every_shard() {
        let mut e = ShardedEngine::new(2, |s| {
            ReplicaEngine::new(Deciding::new(), KvStore::new())
                .with_shard(s)
                .with_batching(BatchConfig::new(8, 100))
        });
        let mut fx: Fx = Vec::new();
        e.submit(NodeId(9), 1, Op::Noop, 0, &mut fx);
        e.set_blocked(true);
        assert!(e.is_blocked());
        assert_eq!(e.fire_due(10_000, &mut fx), 0, "blocked core fires nothing");
        e.set_blocked(false);
        assert_eq!(e.fire_due(10_000, &mut fx), 1);
    }

    #[test]
    fn kv_digest_matches_plain_digest_for_one_shard() {
        let mut e = sharded(1);
        let mut fx: Fx = Vec::new();
        e.submit(NodeId(9), 1, Op::Put { key: 1, value: 10 }, 0, &mut fx);
        assert_eq!(e.kv_digest(), e.shard(ShardId(0)).state().digest());
    }

    #[test]
    fn local_read_routes_to_the_owning_shard() {
        // Deciding never supports local reads; use the gate observably.
        let mut e = sharded(4);
        let mut fx: Fx = Vec::new();
        e.submit(NodeId(9), 1, Op::Put { key: 3, value: 30 }, 0, &mut fx);
        assert!(!e.supports_local_reads());
        assert!(!e.can_read_locally(3));
        assert_eq!(e.local_read(3), None);
        // The ungated oracle read still routes correctly.
        assert_eq!(e.kv_get(3), Some(30));
        assert_eq!(e.kv_get(4), None);
    }
}
