//! A minimal, fully deterministic single-threaded harness for driving
//! [`Protocol`] state machines in tests and documentation examples.
//!
//! Unlike the `manycore-sim` crate (which models CPU cost and propagation
//! delay), `TestNet` gives *schedule-level* control: per-link FIFO queues,
//! explicit message delivery, manual time, and the ability to block a node
//! to model the paper's slow cores. Safety properties must hold under every
//! schedule this harness can produce; the property tests exploit that.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use crate::outbox::{Action, Outbox, Timer};
use crate::protocol::Protocol;
use crate::types::{Command, Instance, Nanos, NodeId, Op};

/// A recorded client reply.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ReplyRecord {
    /// The client that was answered.
    pub client: NodeId,
    /// The request id that committed.
    pub req_id: u64,
    /// The slot it committed in.
    pub instance: Instance,
    /// The node that produced the reply.
    pub from: NodeId,
}

/// Deterministic in-process network of protocol nodes.
///
/// # Examples
///
/// Driving three 2PC replicas to commit one command:
///
/// ```
/// use onepaxos::testnet::TestNet;
/// use onepaxos::twopc::TwoPcNode;
/// use onepaxos::{ClusterConfig, NodeId, Op};
///
/// let mut net = TestNet::new(3, |members, me| {
///     TwoPcNode::new(ClusterConfig::new(members.to_vec(), me))
/// });
/// net.client_request(NodeId(0), NodeId(9), 1, Op::Noop);
/// net.run_to_quiescence();
/// assert_eq!(net.replies().len(), 1);
/// ```
pub struct TestNet<P: Protocol> {
    nodes: Vec<P>,
    /// Per-link FIFO queues, mirroring the paper's per-pair message queues.
    links: BTreeMap<(NodeId, NodeId), VecDeque<P::Msg>>,
    timers: BTreeMap<NodeId, BTreeMap<Timer, Nanos>>,
    blocked: BTreeSet<NodeId>,
    now: Nanos,
    commits: BTreeMap<NodeId, BTreeMap<Instance, Command>>,
    replies: Vec<ReplyRecord>,
    delivered: u64,
}

impl<P: Protocol> std::fmt::Debug for TestNet<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TestNet")
            .field("nodes", &self.nodes.len())
            .field("now", &self.now)
            .field("delivered", &self.delivered)
            .field("blocked", &self.blocked)
            .field("replies", &self.replies.len())
            .finish_non_exhaustive()
    }
}

impl<P: Protocol> TestNet<P> {
    /// Builds `n` nodes with ids `0..n` using `make(members, me)` and runs
    /// each node's `on_start`.
    pub fn new(n: u16, mut make: impl FnMut(&[NodeId], NodeId) -> P) -> Self {
        let members: Vec<NodeId> = (0..n).map(NodeId).collect();
        let mut net = TestNet {
            nodes: members.iter().map(|&me| make(&members, me)).collect(),
            links: BTreeMap::new(),
            timers: BTreeMap::new(),
            blocked: BTreeSet::new(),
            now: 0,
            commits: BTreeMap::new(),
            replies: Vec::new(),
            delivered: 0,
        };
        for i in 0..net.nodes.len() {
            let mut out = Outbox::new();
            let now = net.now;
            net.nodes[i].on_start(now, &mut out);
            net.absorb(NodeId(i as u16), out);
        }
        net
    }

    /// Current virtual time.
    pub fn now(&self) -> Nanos {
        self.now
    }

    /// Total messages delivered so far.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Immutable access to a node.
    pub fn node(&self, id: NodeId) -> &P {
        &self.nodes[id.index()]
    }

    /// Mutable access to a node (for white-box assertions only).
    pub fn node_mut(&mut self, id: NodeId) -> &mut P {
        &mut self.nodes[id.index()]
    }

    /// Replaces a node's state machine with a fresh one, losing all state:
    /// models the paper's silently rebooted acceptor (§5, Appendix A).
    /// In-flight messages to and from the node are preserved.
    pub fn reset_node(&mut self, id: NodeId, fresh: P) {
        self.nodes[id.index()] = fresh;
        self.timers.remove(&id);
        let mut out = Outbox::new();
        self.nodes[id.index()].on_start(self.now, &mut out);
        self.absorb(id, out);
    }

    /// Blocks a node: it stops processing messages and timers (a slow
    /// core). Messages addressed to it queue up.
    pub fn block(&mut self, id: NodeId) {
        self.blocked.insert(id);
    }

    /// Unblocks a node; queued input becomes deliverable again.
    pub fn unblock(&mut self, id: NodeId) {
        self.blocked.remove(&id);
    }

    /// Whether `id` is currently blocked.
    pub fn is_blocked(&self, id: NodeId) -> bool {
        self.blocked.contains(&id)
    }

    /// Submits a client request to `target`.
    pub fn client_request(&mut self, target: NodeId, client: NodeId, req_id: u64, op: Op) {
        let mut out = Outbox::new();
        let now = self.now;
        self.nodes[target.index()].on_client_request(client, req_id, op, now, &mut out);
        self.absorb(target, out);
    }

    /// Links `(from, to)` that currently hold at least one deliverable
    /// message (destination not blocked), in deterministic order.
    pub fn deliverable_links(&self) -> Vec<(NodeId, NodeId)> {
        self.links
            .iter()
            .filter(|((_, to), q)| !q.is_empty() && !self.blocked.contains(to))
            .map(|(&l, _)| l)
            .collect()
    }

    /// Delivers the head-of-line message on `(from, to)`. Returns `false`
    /// if there was none or the destination is blocked.
    pub fn deliver_one(&mut self, from: NodeId, to: NodeId) -> bool {
        if self.blocked.contains(&to) {
            return false;
        }
        let Some(q) = self.links.get_mut(&(from, to)) else {
            return false;
        };
        let Some(msg) = q.pop_front() else {
            return false;
        };
        self.delivered += 1;
        let mut out = Outbox::new();
        let now = self.now;
        self.nodes[to.index()].on_message(from, msg, now, &mut out);
        self.absorb(to, out);
        true
    }

    /// Drops the head-of-line message on `(from, to)` without delivering
    /// it. The paper assumes reliable links, so protocol *safety* tests may
    /// use this only to emulate a message that is still in flight forever
    /// behind a blocked core.
    pub fn drop_one(&mut self, from: NodeId, to: NodeId) -> bool {
        self.links
            .get_mut(&(from, to))
            .and_then(|q| q.pop_front())
            .is_some()
    }

    /// Delivers messages in deterministic (link-ordered, FIFO) rounds until
    /// no deliverable message remains. Panics if `limit` deliveries are
    /// exceeded (a livelock guard for tests).
    ///
    /// # Panics
    ///
    /// Panics after `100_000` deliveries.
    pub fn run_to_quiescence(&mut self) {
        self.run_to_quiescence_limit(100_000);
    }

    /// Same as [`run_to_quiescence`](Self::run_to_quiescence) with an
    /// explicit delivery budget.
    ///
    /// # Panics
    ///
    /// Panics if the budget is exhausted.
    pub fn run_to_quiescence_limit(&mut self, limit: u64) {
        let mut budget = limit;
        loop {
            let links = self.deliverable_links();
            if links.is_empty() {
                return;
            }
            for (from, to) in links {
                while self.deliver_one(from, to) {
                    budget = budget.checked_sub(1).unwrap_or_else(|| {
                        panic!("run_to_quiescence exceeded {limit} deliveries (livelock?)")
                    });
                }
            }
        }
    }

    /// Advances virtual time by `delta`, firing every due timer of every
    /// unblocked node (in node order), then returns. Does not deliver
    /// messages.
    pub fn advance(&mut self, delta: Nanos) {
        self.now += delta;
        let due: Vec<(NodeId, Timer)> = self
            .timers
            .iter()
            .filter(|(id, _)| !self.blocked.contains(id))
            .flat_map(|(&id, ts)| {
                ts.iter()
                    .filter(|&(_, &at)| at <= self.now)
                    .map(move |(&t, _)| (id, t))
            })
            .collect();
        for (id, t) in due {
            self.timers.get_mut(&id).unwrap().remove(&t);
            let mut out = Outbox::new();
            let now = self.now;
            self.nodes[id.index()].on_timer(t, now, &mut out);
            self.absorb(id, out);
        }
    }

    /// Convenience: `advance` then `run_to_quiescence`, repeated `rounds`
    /// times — lets timer-driven recovery logic make progress.
    pub fn advance_and_settle(&mut self, delta: Nanos, rounds: usize) {
        for _ in 0..rounds {
            self.advance(delta);
            self.run_to_quiescence();
        }
    }

    /// Commits recorded at `node` (instance → command).
    pub fn commits(&self, node: NodeId) -> &BTreeMap<Instance, Command> {
        static EMPTY: BTreeMap<Instance, Command> = BTreeMap::new();
        self.commits.get(&node).unwrap_or(&EMPTY)
    }

    /// All recorded client replies, in emission order.
    pub fn replies(&self) -> &[ReplyRecord] {
        &self.replies
    }

    /// Asserts the Appendix B *consistency* property across all nodes: no
    /// two nodes have learned different commands for the same instance.
    ///
    /// # Panics
    ///
    /// Panics on violation, naming the instance.
    pub fn assert_consistent(&self) {
        let mut chosen: BTreeMap<Instance, (NodeId, Command)> = BTreeMap::new();
        for (&node, commits) in &self.commits {
            for (&inst, &cmd) in commits {
                match chosen.get(&inst) {
                    None => {
                        chosen.insert(inst, (node, cmd));
                    }
                    Some(&(other, prior)) => assert_eq!(
                        prior, cmd,
                        "instance {inst}: {other} learned {prior:?} but {node} learned {cmd:?}"
                    ),
                }
            }
        }
    }

    fn absorb(&mut self, me: NodeId, mut out: Outbox<P::Msg>) {
        for action in out.take() {
            match action {
                Action::Send { to, msg } => {
                    self.links.entry((me, to)).or_default().push_back(msg);
                }
                Action::Reply {
                    client,
                    req_id,
                    instance,
                } => self.replies.push(ReplyRecord {
                    client,
                    req_id,
                    instance,
                    from: me,
                }),
                Action::Commit { instance, cmd } => {
                    let prior = self.commits.entry(me).or_default().insert(instance, cmd);
                    if let Some(prior) = prior {
                        assert_eq!(
                            prior, cmd,
                            "{me} re-learned instance {instance} with a different command"
                        );
                    }
                }
                Action::SetTimer { timer, after } => {
                    self.timers
                        .entry(me)
                        .or_default()
                        .insert(timer, self.now + after);
                }
                Action::CancelTimer { timer } => {
                    if let Some(ts) = self.timers.get_mut(&me) {
                        ts.remove(&timer);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::outbox::Outbox;

    /// A trivial echo protocol for exercising the harness itself.
    struct Echo {
        me: NodeId,
        peers: Vec<NodeId>,
        seen: usize,
    }

    impl Protocol for Echo {
        type Msg = u64;

        fn node_id(&self) -> NodeId {
            self.me
        }

        fn on_start(&mut self, _now: Nanos, out: &mut Outbox<u64>) {
            out.set_timer(Timer::Tick, 1_000);
        }

        fn on_message(&mut self, _from: NodeId, msg: u64, _now: Nanos, out: &mut Outbox<u64>) {
            self.seen += 1;
            if msg > 0 {
                for &p in &self.peers {
                    if p != self.me {
                        out.send(p, msg - 1);
                    }
                }
            }
        }

        fn on_timer(&mut self, _t: Timer, _now: Nanos, _out: &mut Outbox<u64>) {
            self.seen += 100;
        }

        fn on_client_request(
            &mut self,
            _client: NodeId,
            _req: u64,
            _op: Op,
            _now: Nanos,
            out: &mut Outbox<u64>,
        ) {
            for &p in &self.peers {
                if p != self.me {
                    out.send(p, 1);
                }
            }
        }

        fn is_leader(&self) -> bool {
            false
        }

        fn leader_hint(&self) -> Option<NodeId> {
            None
        }
    }

    fn echo_net(n: u16) -> TestNet<Echo> {
        TestNet::new(n, |members, me| Echo {
            me,
            peers: members.to_vec(),
            seen: 0,
        })
    }

    #[test]
    fn messages_flow_and_quiesce() {
        let mut net = echo_net(3);
        net.client_request(NodeId(0), NodeId(9), 1, Op::Noop);
        net.run_to_quiescence();
        // n0 sent 1 to n1 and n2; each echoed 0 to the two others.
        assert_eq!(net.delivered(), 2 + 4);
        assert_eq!(net.node(NodeId(1)).seen, 2);
    }

    #[test]
    fn blocked_node_queues_input() {
        let mut net = echo_net(3);
        net.block(NodeId(1));
        net.client_request(NodeId(0), NodeId(9), 1, Op::Noop);
        net.run_to_quiescence();
        assert_eq!(net.node(NodeId(1)).seen, 0);
        net.unblock(NodeId(1));
        net.run_to_quiescence();
        assert!(net.node(NodeId(1)).seen > 0);
    }

    #[test]
    fn timers_fire_on_advance() {
        let mut net = echo_net(2);
        net.advance(999);
        assert_eq!(net.node(NodeId(0)).seen, 0);
        net.advance(1);
        assert_eq!(net.node(NodeId(0)).seen, 100);
        // One-shot: does not refire.
        net.advance(10_000);
        assert_eq!(net.node(NodeId(0)).seen, 100);
    }

    #[test]
    fn blocked_node_timers_do_not_fire() {
        let mut net = echo_net(2);
        net.block(NodeId(0));
        net.advance(10_000);
        assert_eq!(net.node(NodeId(0)).seen, 0);
        net.unblock(NodeId(0));
        net.advance(0);
        assert_eq!(net.node(NodeId(0)).seen, 100);
    }

    #[test]
    fn drop_one_discards_head() {
        let mut net = echo_net(2);
        net.client_request(NodeId(0), NodeId(9), 1, Op::Noop);
        assert!(net.drop_one(NodeId(0), NodeId(1)));
        net.run_to_quiescence();
        assert_eq!(net.node(NodeId(1)).seen, 0);
    }
}
