//! A minimal, fully deterministic single-threaded harness for driving
//! [`Protocol`] state machines in tests and documentation examples.
//!
//! Unlike the `manycore-sim` crate (which models CPU cost and propagation
//! delay), `TestNet` gives *schedule-level* control: per-link FIFO queues,
//! explicit message delivery, manual time, and the ability to block a node
//! to model the paper's slow cores. Safety properties must hold under every
//! schedule this harness can produce; the property tests exploit that.
//!
//! Each node is a [`ShardedEngine`] (one shard unless the
//! [`builder`](TestNet::builder) asked for more), so `TestNet` itself is only a
//! scheduler over per-link FIFOs of protocol messages: it decides *when*
//! an [`EngineEffect`] crosses a link, while the engines own all timer,
//! commit, apply and reply semantics — the same engines the simulator and
//! the threaded runtime deploy. Sharded nets multiplex every shard
//! group's messages over the same per-pair links, each message tagged
//! with its [`ShardId`].

use std::collections::{BTreeMap, VecDeque};

use crate::engine::{
    AdaptiveBatch, BatchConfig, EngineConfig, EngineEffect, EngineEvent, EngineStats, ReplicaEngine,
};
use crate::kv::KvStore;
use crate::protocol::Protocol;
use crate::shard::{ShardId, ShardedEffects, ShardedEngine};
use crate::txn::{Fragment, TxnCoordinator, TxnOutcome, TxnStatus, TxnStep};
use crate::types::{Command, Instance, Nanos, NodeId, Op, TxnId};

/// A recorded client reply at the harness level: who was answered, for
/// what, from where — and the state-machine output the reply carried
/// (`None` when the output was not yet applied at emission under
/// [`crate::engine::ReplyMode::Immediate`]; for a transaction prepare
/// the attached output **is** the shard's vote, which is how the
/// [`TxnCoordinator`] driver reads votes off this harness).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ReplyRecord {
    /// The client that was answered.
    pub client: NodeId,
    /// The request id that committed.
    pub req_id: u64,
    /// The slot it committed in.
    pub instance: Instance,
    /// The node that produced the reply.
    pub from: NodeId,
    /// The flattened state-machine output attached to the reply.
    pub value: Option<u64>,
}

/// The tagged effect stream produced by a `TestNet` node's engines.
type Effects<P> = ShardedEffects<<P as Protocol>::Msg, Option<u64>>;

/// One directed link's FIFO: shard-tagged protocol messages.
type LinkQueue<P> = VecDeque<(ShardId, <P as Protocol>::Msg)>;

/// Configures and builds a [`TestNet`] (see [`TestNet::builder`]): node
/// count plus the harness-shared [`EngineConfig`].
#[derive(Debug)]
#[must_use = "a builder does nothing until build() is called"]
pub struct TestNetBuilder<P> {
    nodes: u16,
    config: EngineConfig,
    _marker: std::marker::PhantomData<fn() -> P>,
}

impl<P: Protocol> TestNetBuilder<P> {
    /// Replaces the whole deployment config at once — the entry point
    /// for shapes shared with the other harnesses.
    pub fn config(mut self, cfg: EngineConfig) -> Self {
        self.config = cfg;
        self
    }

    /// Number of independent consensus groups per node with key-hash
    /// routing (default 1). Client requests route to their owning group;
    /// per-pair links multiplex all groups.
    ///
    /// # Panics
    ///
    /// Panics if `s` is zero.
    pub fn shards(mut self, s: u16) -> Self {
        self.config = self.config.shards(s);
        self
    }

    /// Enables engine-level command batching on every node (each shard
    /// group keeps its own accumulator). Batches flush on size
    /// immediately; deadline flushes need [`TestNet::advance`] past
    /// `cfg.max_delay` (the flush deadline is an ordinary engine timer).
    pub fn batching(mut self, cfg: BatchConfig) -> Self {
        self.config = self.config.batching(cfg);
        self
    }

    /// Enables **adaptive** command batching: the engine grows and
    /// shrinks its flush depth within `[1, cfg.max_commands]` from
    /// observed load (see [`BatchConfig::Adaptive`]). Observe the
    /// learned depth via [`TestNet::engine_stats`].
    pub fn adaptive_batching(mut self, cfg: AdaptiveBatch) -> Self {
        self.config = self.config.adaptive_batching(cfg);
        self
    }

    /// Builds the net: `make(members, me)` is invoked once per
    /// `(shard, node)` and every node's `on_start` runs.
    pub fn build(self, make: impl FnMut(&[NodeId], NodeId) -> P) -> TestNet<P> {
        TestNet::build_with(self.nodes, self.config.shards, self.config.batching, make)
    }
}

/// Deterministic in-process network of protocol nodes.
///
/// # Examples
///
/// Driving three 2PC replicas to commit one command:
///
/// ```
/// use onepaxos::testnet::TestNet;
/// use onepaxos::twopc::TwoPcNode;
/// use onepaxos::{ClusterConfig, NodeId, Op};
///
/// let mut net = TestNet::new(3, |members, me| {
///     TwoPcNode::new(ClusterConfig::new(members.to_vec(), me))
/// });
/// net.client_request(NodeId(0), NodeId(9), 1, Op::Noop);
/// net.run_to_quiescence();
/// assert_eq!(net.replies().len(), 1);
/// ```
pub struct TestNet<P: Protocol> {
    engines: Vec<ShardedEngine<P, KvStore>>,
    /// Number of consensus groups per node (1 unless built sharded).
    shards: u16,
    /// Per-link FIFO queues, mirroring the paper's per-pair message
    /// queues. One FIFO per directed pair carries **all** shard groups'
    /// messages, each tagged with its group — the multiplexing a real
    /// per-core link would do.
    links: BTreeMap<(NodeId, NodeId), LinkQueue<P>>,
    now: Nanos,
    /// Harness-level commit oracle (node, shard → instance → command).
    /// Held outside the engines so it survives [`Self::reset_node`]: a
    /// silently rebooted node loses its state, but the *oracle* must
    /// still catch the rebooted node re-deciding an old instance
    /// differently (§5, Appendix A).
    commits: BTreeMap<(NodeId, ShardId), BTreeMap<Instance, Command>>,
    replies: Vec<ReplyRecord>,
    delivered: u64,
    /// Engine-level command batching, if enabled; remembered here so a
    /// [`Self::reset_node`] rebuild keeps the same configuration.
    batching: Option<BatchConfig>,
    /// Rebuilds per node, so each engine incarnation advocates batches
    /// in a fresh sequence epoch (recycled batch ids would be dropped as
    /// already-decided duplicates by surviving peers).
    resets: BTreeMap<NodeId, u64>,
    /// Request ids already allocated to [`Self::txn_status_agreed`]
    /// probes (issued under [`Self::PROBE_CLIENT`]).
    probe_reqs: u64,
    /// Reusable effect buffer.
    scratch: Effects<P>,
}

impl<P: Protocol> std::fmt::Debug for TestNet<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let blocked: Vec<NodeId> = (0..self.engines.len() as u16)
            .map(NodeId)
            .filter(|&id| self.is_blocked(id))
            .collect();
        f.debug_struct("TestNet")
            .field("nodes", &self.engines.len())
            .field("now", &self.now)
            .field("delivered", &self.delivered)
            .field("blocked", &blocked)
            .field("replies", &self.replies.len())
            .finish_non_exhaustive()
    }
}

impl<P: Protocol> TestNet<P> {
    /// The synthetic client identity under which the harness issues its
    /// own [`Self::txn_status_agreed`] probes — far above any test's
    /// real client ids, below the reserved batch-source namespace.
    pub const PROBE_CLIENT: NodeId = NodeId(0x7F00);

    /// Builds `n` nodes with ids `0..n` using `make(members, me)` and runs
    /// each node's `on_start` — the default deployment (one consensus
    /// group, batching off). Non-default shapes go through
    /// [`Self::builder`].
    pub fn new(n: u16, make: impl FnMut(&[NodeId], NodeId) -> P) -> Self {
        Self::builder(n).build(make)
    }

    /// Starts a builder for an `n`-node net. Every deployment knob —
    /// shard groups, batching — arrives through the same
    /// [`EngineConfig`] the simulator's `SimBuilder` and the runtime's
    /// `ClusterBuilder` accept, so a deployment shape moves between
    /// harnesses unchanged.
    ///
    /// # Examples
    ///
    /// ```
    /// use onepaxos::testnet::TestNet;
    /// use onepaxos::twopc::TwoPcNode;
    /// use onepaxos::{BatchConfig, ClusterConfig, NodeId, Op};
    ///
    /// let mut net = TestNet::builder(3)
    ///     .shards(2)
    ///     .batching(BatchConfig::new(4, 20_000))
    ///     .build(|m, me| TwoPcNode::new(ClusterConfig::new(m.to_vec(), me)));
    /// net.client_request(NodeId(0), NodeId(9), 1, Op::Put { key: 1, value: 7 });
    /// net.run_to_quiescence();
    /// net.advance(25_000); // flush the waiting batch
    /// net.run_to_quiescence();
    /// assert_eq!(net.kv_get(NodeId(0), 1), Some(7));
    /// ```
    pub fn builder(n: u16) -> TestNetBuilder<P> {
        TestNetBuilder {
            nodes: n,
            config: EngineConfig::new(),
            _marker: std::marker::PhantomData,
        }
    }

    fn build_with(
        n: u16,
        shards: u16,
        batching: Option<BatchConfig>,
        mut make: impl FnMut(&[NodeId], NodeId) -> P,
    ) -> Self {
        let members: Vec<NodeId> = (0..n).map(NodeId).collect();
        let mut net = TestNet {
            // Engine-level history is off: the harness records commits
            // and replies itself (below), so that the records survive
            // node resets.
            engines: members
                .iter()
                .map(|&me| {
                    let mut e = ShardedEngine::new(shards, |shard| {
                        ReplicaEngine::new(make(&members, me), KvStore::new())
                            .with_history(false)
                            .with_shard(shard)
                    });
                    e.set_batching(batching);
                    e
                })
                .collect(),
            shards,
            links: BTreeMap::new(),
            now: 0,
            commits: BTreeMap::new(),
            replies: Vec::new(),
            delivered: 0,
            batching,
            resets: BTreeMap::new(),
            probe_reqs: 0,
            scratch: Vec::new(),
        };
        for i in 0..net.engines.len() {
            let now = net.now;
            let mut effects = std::mem::take(&mut net.scratch);
            net.engines[i].start(now, &mut effects);
            net.absorb(NodeId(i as u16), &mut effects);
            net.scratch = effects;
        }
        net
    }

    /// Current virtual time.
    pub fn now(&self) -> Nanos {
        self.now
    }

    /// Total messages delivered so far.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Number of consensus groups per node (1 unless built
    /// [`sharded`](Self::sharded)).
    pub fn shards(&self) -> u16 {
        self.shards
    }

    /// Immutable access to a node's shard-0 protocol instance (the only
    /// one on unsharded nets). Sharded nets use [`Self::shard_node`].
    pub fn node(&self, id: NodeId) -> &P {
        self.shard_node(id, ShardId(0))
    }

    /// Mutable access to a node's shard-0 protocol instance (for
    /// white-box assertions only).
    pub fn node_mut(&mut self, id: NodeId) -> &mut P {
        self.engines[id.index()].shard_mut(ShardId(0)).node_mut()
    }

    /// Immutable access to the protocol instance of one shard group at a
    /// node.
    pub fn shard_node(&self, id: NodeId, shard: ShardId) -> &P {
        self.engines[id.index()].shard(shard).node()
    }

    /// The engine wrapping node `id`'s shard 0 (timer table, applier).
    /// Engine-level commit/reply history is disabled here — the harness
    /// records both itself so they survive [`Self::reset_node`]; use
    /// [`Self::commits`]/[`Self::replies`] instead.
    pub fn engine(&self, id: NodeId) -> &ReplicaEngine<P, KvStore> {
        self.engines[id.index()].shard(ShardId(0))
    }

    /// The sharded engine hosting all of node `id`'s groups.
    pub fn sharded_engine(&self, id: NodeId) -> &ShardedEngine<P, KvStore> {
        &self.engines[id.index()]
    }

    /// Batching counters of node `id`, folded across its shard groups
    /// (counters add, `depth` reports the deepest controller). Per-group
    /// counters are reachable through
    /// [`sharded_engine`](Self::sharded_engine)`.stats(shard)`.
    pub fn engine_stats(&self, id: NodeId) -> EngineStats {
        self.engines[id.index()].merged_stats()
    }

    /// The key/value replica applied at node `id`'s shard 0 (the only
    /// shard on unsharded nets). Sharded nets read across groups with
    /// [`Self::kv_get`].
    pub fn state(&self, id: NodeId) -> &KvStore {
        self.engines[id.index()].shard(ShardId(0)).state()
    }

    /// Reads `key` from its owning shard's replica at node `id`, ungated
    /// (a test oracle; clients go through [`Self::local_read`]).
    pub fn kv_get(&self, id: NodeId, key: u64) -> Option<u64> {
        self.engines[id.index()].kv_get(key)
    }

    /// Replaces a node's state machine with a fresh one, losing all state:
    /// models the paper's silently rebooted acceptor (§5, Appendix A).
    /// In-flight messages to and from the node are preserved, as is the
    /// node's blocked status (a rebooted slow core is still slow). On a
    /// sharded net, *every* shard group's member at that node reboots
    /// (the whole core went away), each into a fresh batch epoch.
    pub fn reset_node(&mut self, id: NodeId, mut fresh: impl FnMut() -> P) {
        let was_blocked = self.engines[id.index()].is_blocked();
        self.engines[id.index()] = ShardedEngine::new(self.shards, |shard| {
            ReplicaEngine::new(fresh(), KvStore::new())
                .with_history(false)
                .with_shard(shard)
        });
        self.engines[id.index()].set_batching(self.batching);
        // A rebuilt engine must not reuse its predecessor's batch
        // identities (surviving peers deduplicate them forever).
        let epoch = self.resets.entry(id).or_insert(0);
        *epoch += 1;
        let floor = *epoch * ReplicaEngine::<P, KvStore>::BATCH_EPOCH;
        self.engines[id.index()].set_batch_seq_floor(floor);
        self.engines[id.index()].set_blocked(was_blocked);
        let now = self.now;
        let mut effects = std::mem::take(&mut self.scratch);
        self.engines[id.index()].start(now, &mut effects);
        self.absorb(id, &mut effects);
        self.scratch = effects;
    }

    /// Reboots `id` like [`Self::reset_node`], then immediately installs
    /// into every shard group a state snapshot taken from the live peer
    /// `donor` — the snapshot-install catch-up path. The fresh engines
    /// resume applying from the donor's applied watermark instead of
    /// replaying (possibly truncated, hence unreplayable) history from
    /// instance 0, and their protocol nodes fast-forward their truncation
    /// floors to the same watermark. A donor shard that has applied
    /// nothing yet contributes nothing (its watermark-0 snapshot is
    /// rejected by the installer), which leaves that group cold — exactly
    /// the plain reset behaviour.
    pub fn reset_node_warm(&mut self, id: NodeId, donor: NodeId, fresh: impl FnMut() -> P) {
        self.reset_node(id, fresh);
        for s in 0..self.shards {
            let snap = self.engines[donor.index()].snapshot_shard(ShardId(s));
            self.engines[id.index()].install_shard_snapshot(ShardId(s), snap);
        }
    }

    /// Proposes an **agreed truncation** through shard `shard`'s own log
    /// at `target`: an [`Op::Truncate`] at the serving replica's applied
    /// watermark, submitted as an ordinary client command under
    /// [`Self::PROBE_CLIENT`]. Once decided and applied, every replica of
    /// the group drops its applied log, retired outputs and learner state
    /// below the watermark. Returns the watermark proposed; the caller
    /// drives delivery ([`Self::run_to_quiescence`] /
    /// [`Self::advance_and_settle`]) like any other request.
    pub fn propose_truncate(&mut self, target: NodeId, shard: ShardId) -> Instance {
        self.probe_reqs += 1;
        let req_id = self.probe_reqs;
        let now = self.now;
        let mut effects = std::mem::take(&mut self.scratch);
        let watermark = self.engines[target.index()].propose_truncate(
            shard,
            Self::PROBE_CLIENT,
            req_id,
            now,
            &mut effects,
        );
        self.absorb(target, &mut effects);
        self.scratch = effects;
        watermark
    }

    /// Blocks a node: it stops processing messages and timers (a slow
    /// core). Messages addressed to it queue up.
    pub fn block(&mut self, id: NodeId) {
        self.engines[id.index()].set_blocked(true);
    }

    /// Unblocks a node; queued input becomes deliverable again.
    pub fn unblock(&mut self, id: NodeId) {
        self.engines[id.index()].set_blocked(false);
    }

    /// Whether `id` is currently blocked.
    pub fn is_blocked(&self, id: NodeId) -> bool {
        self.engines[id.index()].is_blocked()
    }

    /// Submits a client request to `target`, routing it to the owning
    /// shard group; returns the shard it went to (always shard 0 on an
    /// unsharded net).
    pub fn client_request(
        &mut self,
        target: NodeId,
        client: NodeId,
        req_id: u64,
        op: Op,
    ) -> ShardId {
        let now = self.now;
        let mut effects = std::mem::take(&mut self.scratch);
        let shard = self.engines[target.index()].submit(client, req_id, op, now, &mut effects);
        self.absorb(target, &mut effects);
        self.scratch = effects;
        shard
    }

    /// Serves a relaxed read of `key` at node `id` through the engine's
    /// §7.5 local-read fast path: `Some(value)` if the owning shard's
    /// protocol allows a local read right now, `None` if the read must
    /// wait (2PC lock window) or go through consensus. On a sharded net
    /// the key routes to its owning group first — the per-engine gate is
    /// what keeps cross-shard reads correct.
    pub fn local_read(&self, id: NodeId, key: u64) -> Option<Option<u64>> {
        self.engines[id.index()].local_read(key)
    }

    // ----------------------------------------------------------------
    // Cross-shard transactions (see `crate::txn`): the TestNet is the
    // coordinator's transport — fragments are submitted as ordinary
    // client requests of the coordinator's identity, and votes are read
    // back off the recorded reply values.
    // ----------------------------------------------------------------

    /// Submits each fragment to `target`, letting the engines route it
    /// to its owning shard group.
    pub fn submit_fragments(&mut self, target: NodeId, client: NodeId, frags: Vec<Fragment>) {
        for f in frags {
            let routed = self.client_request(target, client, f.req_id, f.op);
            debug_assert_eq!(routed, f.shard, "fragment routed off its shard");
        }
    }

    /// Runs one complete transaction through `coord` against `target`,
    /// driving every phase to quiescence: prepares out, votes in,
    /// outcome out, acknowledgements in. Time advances a little between
    /// rounds so batch-flush deadlines and protocol ticks fire.
    ///
    /// # Panics
    ///
    /// Panics if the transaction does not finish within the driver's
    /// round budget (a stuck shard group).
    pub fn run_txn(
        &mut self,
        target: NodeId,
        coord: &mut TxnCoordinator,
        writes: &[(u64, u64)],
    ) -> TxnOutcome {
        let frags = coord.begin(writes);
        self.drive_txn(target, coord, frags)
    }

    /// Drives an already-started transaction (or a recovery started with
    /// [`TxnCoordinator::begin_recovery`]) to its outcome; see
    /// [`Self::run_txn`].
    ///
    /// # Panics
    ///
    /// Panics if the transaction does not finish within the round
    /// budget.
    pub fn drive_txn(
        &mut self,
        target: NodeId,
        coord: &mut TxnCoordinator,
        mut frags: Vec<Fragment>,
    ) -> TxnOutcome {
        let client = coord.client();
        let mut seen = self.replies.len();
        // A caller may hand us the fan-out fragments of a transaction
        // it already saw decided (early ack): with no prepare phase to
        // drive, the decided outcome is the drain's.
        let mut decided = if coord.in_flight() {
            None
        } else {
            coord.drain_outcome()
        };
        for round in 0..Self::TXN_DRIVER_ROUNDS {
            self.submit_fragments(target, client, std::mem::take(&mut frags));
            self.settle_round(round);
            let mut step = TxnStep::Pending;
            while seen < self.replies.len() {
                let r = self.replies[seen];
                seen += 1;
                if r.client != client {
                    continue;
                }
                match coord.on_reply(r.req_id, r.value) {
                    TxnStep::Pending => {}
                    next => step = next,
                }
            }
            match step {
                TxnStep::Done(outcome) => return outcome,
                // Early ack: the outcome is already decided; keep
                // driving the fan-out until the acknowledgements drain
                // so the next call starts from a quiet network.
                TxnStep::Decided { outcome, submit } => {
                    decided = Some(outcome);
                    frags = submit;
                }
                TxnStep::Submit(next) => frags = next,
                // No phase transition: re-ask for whatever is still
                // outstanding — a valueless reply raced its apply (the
                // protocols re-answer decided ids with the value), or a
                // lock-wait re-probe was queued for deferred submission
                // (the deterministic driver submits it right away; the
                // one-window delay only matters under load).
                TxnStep::Pending => {
                    coord.take_deferred();
                    if let Some(outcome) = decided {
                        if !coord.draining() {
                            return outcome;
                        }
                    }
                    frags = coord.outstanding_fragments();
                }
            }
        }
        panic!("transaction did not finish within the driver budget");
    }

    /// Round budget shared by the transaction drivers ([`Self::drive_txn`]
    /// and [`Self::txn_status_agreed`]) before declaring a shard group
    /// stuck.
    const TXN_DRIVER_ROUNDS: usize = 64;

    /// One driver round's settling policy, shared by [`Self::drive_txn`]
    /// and [`Self::txn_status_agreed`]: drain all deliverable messages,
    /// and on retry rounds also advance time so deadline-driven machinery
    /// (batch flushes, protocol ticks, retries) makes progress.
    fn settle_round(&mut self, round: usize) {
        self.run_to_quiescence();
        if round > 0 {
            self.advance_and_settle(200_000, 1);
        }
    }

    /// `node`'s **locally-applied** view of transaction `txn` at the
    /// shard owning `routing_key` — a per-replica test oracle. A
    /// lagging (e.g. blocked) node under-reports, so this must not feed
    /// [`crate::txn::recover_outcome`] unless the net is known settled;
    /// recovery reads statuses with [`Self::txn_status_agreed`], which
    /// cannot lag.
    pub fn txn_status(&self, node: NodeId, routing_key: u64, txn: TxnId) -> TxnStatus {
        self.engines[node.index()].txn_status(routing_key, txn)
    }

    /// The status of transaction `txn` at the shard owning
    /// `routing_key`, read **through the shard's log**: an
    /// [`Op::TxnStatus`] probe submitted to `target` as an ordinary
    /// agreed command, so the answer reflects the shard's full decided
    /// prefix no matter which replica serves it — the form of status
    /// read coordinator recovery requires (see
    /// [`crate::txn::recover_outcome`]'s freshness contract; the
    /// relaxed [`Self::txn_status`] is a per-replica oracle that can
    /// lag).
    ///
    /// # Panics
    ///
    /// Panics if the probe does not decide within the driver's round
    /// budget (a stuck shard group), or if a reply carries an output no
    /// probe produces.
    pub fn txn_status_agreed(&mut self, target: NodeId, routing_key: u64, txn: TxnId) -> TxnStatus {
        self.probe_reqs += 1;
        let req_id = self.probe_reqs;
        let op = Op::TxnStatus {
            txn,
            key: routing_key,
        };
        let mut seen = self.replies.len();
        for round in 0..Self::TXN_DRIVER_ROUNDS {
            // Re-submitting the same (client, req_id) is safe: the
            // appliers dedup and the protocols re-answer decided ids,
            // this time with the applied output attached.
            self.client_request(target, Self::PROBE_CLIENT, req_id, op.clone());
            self.settle_round(round);
            while seen < self.replies.len() {
                let r = self.replies[seen];
                seen += 1;
                if r.client == Self::PROBE_CLIENT && r.req_id == req_id {
                    if let Some(v) = r.value {
                        return TxnStatus::from_output(v).expect("probe output is a status");
                    }
                }
            }
        }
        panic!("status probe did not decide within the driver budget");
    }

    /// Transactional locks currently held across every shard replica of
    /// `node` (zero once every transaction has its outcome).
    pub fn txn_locks(&self, node: NodeId) -> usize {
        self.engines[node.index()].txn_locks()
    }

    /// Prepares parked in lock-wait queues across every shard replica
    /// of `node` (zero once every transaction has its outcome).
    pub fn txn_parked(&self, node: NodeId) -> usize {
        self.engines[node.index()].txn_parked()
    }

    /// Links `(from, to)` that currently hold at least one deliverable
    /// message (destination not blocked), in deterministic order.
    pub fn deliverable_links(&self) -> Vec<(NodeId, NodeId)> {
        self.links
            .iter()
            .filter(|((_, to), q)| !q.is_empty() && !self.is_blocked(*to))
            .map(|(&l, _)| l)
            .collect()
    }

    /// Delivers the head-of-line message on `(from, to)` to its shard
    /// group. Returns `false` if there was none or the destination is
    /// blocked.
    pub fn deliver_one(&mut self, from: NodeId, to: NodeId) -> bool {
        if self.is_blocked(to) {
            return false;
        }
        let Some(q) = self.links.get_mut(&(from, to)) else {
            return false;
        };
        let Some((shard, msg)) = q.pop_front() else {
            return false;
        };
        self.delivered += 1;
        let now = self.now;
        let mut effects = std::mem::take(&mut self.scratch);
        self.engines[to.index()].handle(
            shard,
            EngineEvent::Message { from, msg },
            now,
            &mut effects,
        );
        self.absorb(to, &mut effects);
        self.scratch = effects;
        true
    }

    /// Drops the head-of-line message on `(from, to)` without delivering
    /// it. The paper assumes reliable links, so protocol *safety* tests may
    /// use this only to emulate a message that is still in flight forever
    /// behind a blocked core.
    pub fn drop_one(&mut self, from: NodeId, to: NodeId) -> bool {
        self.links
            .get_mut(&(from, to))
            .and_then(|q| q.pop_front())
            .is_some()
    }

    /// Delivers messages in deterministic (link-ordered, FIFO) rounds until
    /// no deliverable message remains. Panics if `limit` deliveries are
    /// exceeded (a livelock guard for tests).
    ///
    /// # Panics
    ///
    /// Panics after `100_000` deliveries.
    pub fn run_to_quiescence(&mut self) {
        self.run_to_quiescence_limit(100_000);
    }

    /// Same as [`run_to_quiescence`](Self::run_to_quiescence) with an
    /// explicit delivery budget.
    ///
    /// # Panics
    ///
    /// Panics if the budget is exhausted.
    pub fn run_to_quiescence_limit(&mut self, limit: u64) {
        let mut budget = limit;
        loop {
            let links = self.deliverable_links();
            if links.is_empty() {
                return;
            }
            for (from, to) in links {
                while self.deliver_one(from, to) {
                    budget = budget.checked_sub(1).unwrap_or_else(|| {
                        panic!("run_to_quiescence exceeded {limit} deliveries (livelock?)")
                    });
                }
            }
        }
    }

    /// Advances virtual time by `delta`, firing every due timer of every
    /// unblocked node (in node order, shards within a node in shard
    /// order), then returns. Does not deliver messages.
    pub fn advance(&mut self, delta: Nanos) {
        self.now += delta;
        let now = self.now;
        for i in 0..self.engines.len() {
            let mut effects = std::mem::take(&mut self.scratch);
            self.engines[i].fire_due(now, &mut effects);
            self.absorb(NodeId(i as u16), &mut effects);
            self.scratch = effects;
        }
    }

    /// Convenience: `advance` then `run_to_quiescence`, repeated `rounds`
    /// times — lets timer-driven recovery logic make progress.
    pub fn advance_and_settle(&mut self, delta: Nanos, rounds: usize) {
        for _ in 0..rounds {
            self.advance(delta);
            self.run_to_quiescence();
        }
    }

    /// Commits recorded at `node`'s shard 0 (instance → command) — the
    /// whole record on unsharded nets. Survives [`Self::reset_node`]:
    /// the record belongs to the harness oracle, not to the (rebootable)
    /// node. Sharded nets inspect each group with
    /// [`Self::shard_commits`].
    pub fn commits(&self, node: NodeId) -> &BTreeMap<Instance, Command> {
        self.shard_commits(node, ShardId(0))
    }

    /// Commits recorded at one shard group's member on `node`.
    pub fn shard_commits(&self, node: NodeId, shard: ShardId) -> &BTreeMap<Instance, Command> {
        static EMPTY: BTreeMap<Instance, Command> = BTreeMap::new();
        self.commits.get(&(node, shard)).unwrap_or(&EMPTY)
    }

    /// All recorded client replies, in emission order.
    pub fn replies(&self) -> &[ReplyRecord] {
        &self.replies
    }

    /// Asserts the Appendix B *consistency* property across all nodes,
    /// per shard group: no two nodes have learned different commands for
    /// the same instance of the same group. (Instances of *different*
    /// groups are unrelated logs.)
    ///
    /// # Panics
    ///
    /// Panics on violation, naming the shard and instance.
    pub fn assert_consistent(&self) {
        let mut chosen: BTreeMap<(ShardId, Instance), (NodeId, &Command)> = BTreeMap::new();
        for (&(node, shard), commits) in &self.commits {
            for (&inst, cmd) in commits {
                match chosen.get(&(shard, inst)) {
                    None => {
                        chosen.insert((shard, inst), (node, cmd));
                    }
                    Some(&(other, prior)) => assert_eq!(
                        prior, cmd,
                        "shard {shard} instance {inst}: {other} learned {prior:?} \
                         but {node} learned {cmd:?}"
                    ),
                }
            }
        }
    }

    /// Routes one node's tagged effects: sends into per-link FIFOs
    /// (multiplexing all shard groups, tagged), replies and commits into
    /// the harness-level records (which outlive node resets, unlike the
    /// engines they came from).
    fn absorb(&mut self, me: NodeId, effects: &mut Effects<P>) {
        for (shard, effect) in effects.drain(..) {
            match effect {
                EngineEffect::SendTo { to, msg } => {
                    self.links
                        .entry((me, to))
                        .or_default()
                        .push_back((shard, msg));
                }
                EngineEffect::ReplyTo {
                    client,
                    req_id,
                    instance,
                    value,
                } => self.replies.push(ReplyRecord {
                    client,
                    req_id,
                    instance,
                    from: me,
                    value: value.flatten(),
                }),
                EngineEffect::Committed { instance, cmd } => {
                    let prior = self
                        .commits
                        .entry((me, shard))
                        .or_default()
                        .insert(instance, cmd.clone());
                    if let Some(prior) = prior {
                        assert_eq!(
                            prior, cmd,
                            "{me} (shard {shard}) re-learned instance {instance} \
                             with a different command"
                        );
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::outbox::{Outbox, Timer};

    /// A trivial echo protocol for exercising the harness itself.
    struct Echo {
        me: NodeId,
        peers: Vec<NodeId>,
        seen: usize,
    }

    impl Protocol for Echo {
        type Msg = u64;

        fn node_id(&self) -> NodeId {
            self.me
        }

        fn on_start(&mut self, _now: Nanos, out: &mut Outbox<u64>) {
            out.set_timer(Timer::Tick, 1_000);
        }

        fn on_message(&mut self, _from: NodeId, msg: u64, _now: Nanos, out: &mut Outbox<u64>) {
            self.seen += 1;
            if msg > 0 {
                for &p in &self.peers {
                    if p != self.me {
                        out.send(p, msg - 1);
                    }
                }
            }
        }

        fn on_timer(&mut self, _t: Timer, _now: Nanos, _out: &mut Outbox<u64>) {
            self.seen += 100;
        }

        fn on_client_request(
            &mut self,
            _client: NodeId,
            _req: u64,
            _op: Op,
            _now: Nanos,
            out: &mut Outbox<u64>,
        ) {
            for &p in &self.peers {
                if p != self.me {
                    out.send(p, 1);
                }
            }
        }

        fn is_leader(&self) -> bool {
            false
        }

        fn leader_hint(&self) -> Option<NodeId> {
            None
        }
    }

    fn echo_net(n: u16) -> TestNet<Echo> {
        TestNet::new(n, |members, me| Echo {
            me,
            peers: members.to_vec(),
            seen: 0,
        })
    }

    #[test]
    fn messages_flow_and_quiesce() {
        let mut net = echo_net(3);
        net.client_request(NodeId(0), NodeId(9), 1, Op::Noop);
        net.run_to_quiescence();
        // n0 sent 1 to n1 and n2; each echoed 0 to the two others.
        assert_eq!(net.delivered(), 2 + 4);
        assert_eq!(net.node(NodeId(1)).seen, 2);
    }

    #[test]
    fn blocked_node_queues_input() {
        let mut net = echo_net(3);
        net.block(NodeId(1));
        net.client_request(NodeId(0), NodeId(9), 1, Op::Noop);
        net.run_to_quiescence();
        assert_eq!(net.node(NodeId(1)).seen, 0);
        net.unblock(NodeId(1));
        net.run_to_quiescence();
        assert!(net.node(NodeId(1)).seen > 0);
    }

    #[test]
    fn timers_fire_on_advance() {
        let mut net = echo_net(2);
        net.advance(999);
        assert_eq!(net.node(NodeId(0)).seen, 0);
        net.advance(1);
        assert_eq!(net.node(NodeId(0)).seen, 100);
        // One-shot: does not refire.
        net.advance(10_000);
        assert_eq!(net.node(NodeId(0)).seen, 100);
    }

    #[test]
    fn blocked_node_timers_do_not_fire() {
        let mut net = echo_net(2);
        net.block(NodeId(0));
        net.advance(10_000);
        assert_eq!(net.node(NodeId(0)).seen, 0);
        net.unblock(NodeId(0));
        net.advance(0);
        assert_eq!(net.node(NodeId(0)).seen, 100);
    }

    #[test]
    fn drop_one_discards_head() {
        let mut net = echo_net(2);
        net.client_request(NodeId(0), NodeId(9), 1, Op::Noop);
        assert!(net.drop_one(NodeId(0), NodeId(1)));
        net.run_to_quiescence();
        assert_eq!(net.node(NodeId(1)).seen, 0);
    }

    #[test]
    fn state_is_applied_per_node() {
        use crate::twopc::TwoPcNode;
        use crate::ClusterConfig;
        let mut net = TestNet::new(3, |m, me| {
            TwoPcNode::new(ClusterConfig::new(m.to_vec(), me))
        });
        net.client_request(NodeId(0), NodeId(9), 1, Op::Put { key: 4, value: 44 });
        net.run_to_quiescence();
        for n in 0..3u16 {
            assert_eq!(net.state(NodeId(n)).get(4), Some(44));
        }
    }

    #[test]
    fn sharded_net_partitions_keys_across_independent_groups() {
        use crate::twopc::TwoPcNode;
        use crate::ClusterConfig;
        let mut net = TestNet::builder(3)
            .shards(4)
            .build(|m, me| TwoPcNode::new(ClusterConfig::new(m.to_vec(), me)));
        for key in 0..16u64 {
            let shard = net.client_request(
                NodeId(0),
                NodeId(9),
                key + 1,
                Op::Put {
                    key,
                    value: key * 10,
                },
            );
            assert_eq!(shard, net.sharded_engine(NodeId(0)).router().route_key(key));
        }
        net.run_to_quiescence();
        assert_eq!(net.replies().len(), 16);
        net.assert_consistent();
        // Every node's owning-shard replica holds every key…
        for n in 0..3u16 {
            for key in 0..16u64 {
                assert_eq!(net.kv_get(NodeId(n), key), Some(key * 10), "node {n}");
            }
        }
        // …and the 16 keys really spread over more than one group, each
        // group numbering its own instances from 0.
        let populated: Vec<ShardId> = (0..4u16)
            .map(ShardId)
            .filter(|&s| !net.shard_commits(NodeId(0), s).is_empty())
            .collect();
        assert!(populated.len() > 1, "all keys landed on one shard");
        for &s in &populated {
            assert_eq!(
                *net.shard_commits(NodeId(0), s).keys().next().unwrap(),
                0,
                "group {s} must own an independent instance log"
            );
        }
    }

    #[test]
    fn sharded_equals_unsharded_per_key_state() {
        use crate::twopc::TwoPcNode;
        use crate::ClusterConfig;
        let make = |m: &[NodeId], me| TwoPcNode::new(ClusterConfig::new(m.to_vec(), me));
        let mut plain = TestNet::new(3, make);
        let mut sharded = TestNet::builder(3).shards(3).build(make);
        let ops = [(1u64, 10u64), (2, 20), (1, 11), (7, 70), (2, 21)];
        for (i, &(key, value)) in ops.iter().enumerate() {
            let op = Op::Put { key, value };
            plain.client_request(NodeId(0), NodeId(9), i as u64 + 1, op.clone());
            plain.run_to_quiescence();
            sharded.client_request(NodeId(0), NodeId(9), i as u64 + 1, op);
            sharded.run_to_quiescence();
        }
        assert_eq!(plain.replies().len(), sharded.replies().len());
        for key in [1u64, 2, 7, 99] {
            assert_eq!(
                plain.state(NodeId(1)).get(key),
                sharded.kv_get(NodeId(1), key),
                "key {key}"
            );
        }
    }

    #[test]
    fn adaptive_batched_net_commits_everything_and_learns_a_depth() {
        use crate::twopc::TwoPcNode;
        use crate::ClusterConfig;
        let mut net = TestNet::builder(3)
            .adaptive_batching(AdaptiveBatch::new(8, 1_000))
            .build(|m, me| TwoPcNode::new(ClusterConfig::new(m.to_vec(), me)));
        // A back-to-back burst at one instant: the target node's
        // controller must climb off depth 1 while the backlog knee keeps
        // it honest (nothing is delivered until quiescence).
        for c in 0..20u16 {
            net.client_request(
                NodeId(0),
                NodeId(9 + c),
                1,
                Op::Put {
                    key: u64::from(c),
                    value: 1,
                },
            );
        }
        net.advance(1_000); // flush any tail batch
        net.run_to_quiescence();
        assert_eq!(net.replies().len(), 20);
        net.assert_consistent();
        let stats = net.engine_stats(NodeId(0));
        assert!(stats.depth > 1, "demand must grow the depth: {stats:?}");
        assert!(stats.flushes > 0 && stats.enqueued == 20);
        // Non-target nodes never buffered anything.
        assert_eq!(net.engine_stats(NodeId(1)).enqueued, 0);
        for c in 0..20u64 {
            assert_eq!(net.kv_get(NodeId(2), c), Some(1));
        }
    }

    #[test]
    fn txn_driver_commits_across_shards_and_short_circuits_within_one() {
        use crate::shard::ShardRouter;
        use crate::twopc::TwoPcNode;
        use crate::txn::{TxnCoordinator, TxnOutcome};
        use crate::ClusterConfig;
        let mut net = TestNet::builder(3)
            .shards(4)
            .build(|m, me| TwoPcNode::new(ClusterConfig::new(m.to_vec(), me)));
        let router = ShardRouter::new(4);
        let mut coord = TxnCoordinator::new(NodeId(9), router);
        // Keys spanning two distinct shards.
        let k0 = 0u64;
        let k1 = (1u64..)
            .find(|&k| router.route_key(k) != router.route_key(k0))
            .unwrap();
        assert_eq!(
            net.run_txn(NodeId(0), &mut coord, &[(k0, 10), (k1, 11)]),
            TxnOutcome::Committed
        );
        // Atomic: both writes visible on every node, no locks left.
        for n in 0..3u16 {
            assert_eq!(net.kv_get(NodeId(n), k0), Some(10), "node {n}");
            assert_eq!(net.kv_get(NodeId(n), k1), Some(11), "node {n}");
            assert_eq!(net.txn_locks(NodeId(n)), 0, "node {n}");
        }
        net.assert_consistent();
        // Single-shard write set: the MultiPut short-circuit.
        let twin = (1u64..)
            .find(|&k| k != k0 && router.route_key(k) == router.route_key(k0))
            .unwrap();
        assert_eq!(
            net.run_txn(NodeId(0), &mut coord, &[(k0, 20), (twin, 21)]),
            TxnOutcome::Committed
        );
        assert_eq!(net.kv_get(NodeId(2), k0), Some(20));
        assert_eq!(net.kv_get(NodeId(2), twin), Some(21));
        net.assert_consistent();
    }

    #[test]
    fn txn_driver_composes_with_batching() {
        use crate::shard::ShardRouter;
        use crate::twopc::TwoPcNode;
        use crate::txn::{TxnCoordinator, TxnOutcome};
        use crate::ClusterConfig;
        // Fragments ride the per-shard batch accumulators like any
        // client command; the driver's time advances flush the tails.
        let mut net = TestNet::builder(3)
            .shards(2)
            .batching(BatchConfig::new(4, 1_000))
            .build(|m, me| TwoPcNode::new(ClusterConfig::new(m.to_vec(), me)));
        let router = ShardRouter::new(2);
        let mut coord = TxnCoordinator::new(NodeId(9), router);
        let k0 = 0u64;
        let k1 = (1u64..)
            .find(|&k| router.route_key(k) != router.route_key(k0))
            .unwrap();
        assert_eq!(
            net.run_txn(NodeId(0), &mut coord, &[(k0, 1), (k1, 2)]),
            TxnOutcome::Committed
        );
        assert_eq!(net.kv_get(NodeId(1), k0), Some(1));
        assert_eq!(net.kv_get(NodeId(1), k1), Some(2));
        net.assert_consistent();
    }

    #[test]
    fn sharded_batches_stay_within_their_group() {
        use crate::twopc::TwoPcNode;
        use crate::ClusterConfig;
        let mut net = TestNet::builder(3)
            .shards(2)
            .batching(BatchConfig::new(4, 1_000))
            .build(|m, me| TwoPcNode::new(ClusterConfig::new(m.to_vec(), me)));
        for key in 0..12u64 {
            net.client_request(
                NodeId(0),
                NodeId(9 + key as u16),
                1,
                Op::Put { key, value: 1 },
            );
        }
        net.advance(1_000); // flush partial batches
        net.run_to_quiescence();
        assert_eq!(net.replies().len(), 12);
        // Every decided batch carries only keys its group owns.
        for node in 0..3u16 {
            for s in 0..2u16 {
                let shard = ShardId(s);
                let router = net.sharded_engine(NodeId(node)).router();
                for cmd in net.shard_commits(NodeId(node), shard).values() {
                    for inner in cmd.as_batch().into_iter().flatten() {
                        let key = inner.op.key().expect("puts have keys");
                        assert_eq!(router.route_key(key), shard, "batch crossed shards");
                    }
                }
            }
        }
        net.assert_consistent();
    }
}
