//! A minimal, fully deterministic single-threaded harness for driving
//! [`Protocol`] state machines in tests and documentation examples.
//!
//! Unlike the `manycore-sim` crate (which models CPU cost and propagation
//! delay), `TestNet` gives *schedule-level* control: per-link FIFO queues,
//! explicit message delivery, manual time, and the ability to block a node
//! to model the paper's slow cores. Safety properties must hold under every
//! schedule this harness can produce; the property tests exploit that.
//!
//! Each node is a [`ReplicaEngine`], so `TestNet` itself is only a
//! scheduler over per-link FIFOs of protocol messages: it decides *when*
//! an [`EngineEffect`] crosses a link, while the engine owns all timer,
//! commit, apply and reply semantics — the same engine the simulator and
//! the threaded runtime deploy.

use std::collections::{BTreeMap, VecDeque};

use crate::engine::{BatchConfig, EngineEffect, EngineEvent, ReplicaEngine};
use crate::kv::KvStore;
use crate::protocol::Protocol;
use crate::types::{Command, Instance, Nanos, NodeId, Op};

pub use crate::engine::ReplyRecord;

/// The effect stream produced by a `TestNet` node's engine.
type Effects<P> = Vec<EngineEffect<<P as Protocol>::Msg, Option<u64>>>;

/// Deterministic in-process network of protocol nodes.
///
/// # Examples
///
/// Driving three 2PC replicas to commit one command:
///
/// ```
/// use onepaxos::testnet::TestNet;
/// use onepaxos::twopc::TwoPcNode;
/// use onepaxos::{ClusterConfig, NodeId, Op};
///
/// let mut net = TestNet::new(3, |members, me| {
///     TwoPcNode::new(ClusterConfig::new(members.to_vec(), me))
/// });
/// net.client_request(NodeId(0), NodeId(9), 1, Op::Noop);
/// net.run_to_quiescence();
/// assert_eq!(net.replies().len(), 1);
/// ```
pub struct TestNet<P: Protocol> {
    engines: Vec<ReplicaEngine<P, KvStore>>,
    /// Per-link FIFO queues, mirroring the paper's per-pair message queues.
    links: BTreeMap<(NodeId, NodeId), VecDeque<P::Msg>>,
    now: Nanos,
    /// Harness-level commit oracle (node → instance → command). Held
    /// outside the engines so it survives [`Self::reset_node`]: a
    /// silently rebooted node loses its state, but the *oracle* must
    /// still catch the rebooted node re-deciding an old instance
    /// differently (§5, Appendix A).
    commits: BTreeMap<NodeId, BTreeMap<Instance, Command>>,
    replies: Vec<ReplyRecord>,
    delivered: u64,
    /// Engine-level command batching, if enabled; remembered here so a
    /// [`Self::reset_node`] rebuild keeps the same configuration.
    batching: Option<BatchConfig>,
    /// Rebuilds per node, so each engine incarnation advocates batches
    /// in a fresh sequence epoch (recycled batch ids would be dropped as
    /// already-decided duplicates by surviving peers).
    resets: BTreeMap<NodeId, u64>,
    /// Reusable effect buffer.
    scratch: Effects<P>,
}

impl<P: Protocol> std::fmt::Debug for TestNet<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let blocked: Vec<NodeId> = (0..self.engines.len() as u16)
            .map(NodeId)
            .filter(|&id| self.is_blocked(id))
            .collect();
        f.debug_struct("TestNet")
            .field("nodes", &self.engines.len())
            .field("now", &self.now)
            .field("delivered", &self.delivered)
            .field("blocked", &blocked)
            .field("replies", &self.replies.len())
            .finish_non_exhaustive()
    }
}

impl<P: Protocol> TestNet<P> {
    /// Builds `n` nodes with ids `0..n` using `make(members, me)` and runs
    /// each node's `on_start`.
    pub fn new(n: u16, make: impl FnMut(&[NodeId], NodeId) -> P) -> Self {
        Self::build(n, None, make)
    }

    /// Like [`Self::new`], with engine-level command batching enabled on
    /// every node. Batches flush on size immediately; deadline flushes
    /// need [`Self::advance`] past `cfg.max_delay` (the flush deadline is
    /// an ordinary engine timer).
    pub fn with_batching(
        n: u16,
        cfg: BatchConfig,
        make: impl FnMut(&[NodeId], NodeId) -> P,
    ) -> Self {
        Self::build(n, Some(cfg), make)
    }

    fn build(
        n: u16,
        batching: Option<BatchConfig>,
        mut make: impl FnMut(&[NodeId], NodeId) -> P,
    ) -> Self {
        let members: Vec<NodeId> = (0..n).map(NodeId).collect();
        let mut net = TestNet {
            // Engine-level history is off: the harness records commits
            // and replies itself (below), so that the records survive
            // node resets.
            engines: members
                .iter()
                .map(|&me| {
                    let mut e =
                        ReplicaEngine::new(make(&members, me), KvStore::new()).with_history(false);
                    e.set_batching(batching);
                    e
                })
                .collect(),
            links: BTreeMap::new(),
            now: 0,
            commits: BTreeMap::new(),
            replies: Vec::new(),
            delivered: 0,
            batching,
            resets: BTreeMap::new(),
            scratch: Vec::new(),
        };
        for i in 0..net.engines.len() {
            let now = net.now;
            let mut effects = std::mem::take(&mut net.scratch);
            net.engines[i].handle(EngineEvent::Start, now, &mut effects);
            net.absorb(NodeId(i as u16), &mut effects);
            net.scratch = effects;
        }
        net
    }

    /// Current virtual time.
    pub fn now(&self) -> Nanos {
        self.now
    }

    /// Total messages delivered so far.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Immutable access to a node.
    pub fn node(&self, id: NodeId) -> &P {
        self.engines[id.index()].node()
    }

    /// Mutable access to a node (for white-box assertions only).
    pub fn node_mut(&mut self, id: NodeId) -> &mut P {
        self.engines[id.index()].node_mut()
    }

    /// The engine wrapping node `id` (timer table, applier). Engine-level
    /// commit/reply history is disabled here — the harness records both
    /// itself so they survive [`Self::reset_node`]; use
    /// [`Self::commits`]/[`Self::replies`] instead.
    pub fn engine(&self, id: NodeId) -> &ReplicaEngine<P, KvStore> {
        &self.engines[id.index()]
    }

    /// The key/value replica applied at node `id`.
    pub fn state(&self, id: NodeId) -> &KvStore {
        self.engines[id.index()].state()
    }

    /// Replaces a node's state machine with a fresh one, losing all state:
    /// models the paper's silently rebooted acceptor (§5, Appendix A).
    /// In-flight messages to and from the node are preserved, as is the
    /// node's blocked status (a rebooted slow core is still slow).
    pub fn reset_node(&mut self, id: NodeId, fresh: P) {
        let was_blocked = self.engines[id.index()].is_blocked();
        self.engines[id.index()] = ReplicaEngine::new(fresh, KvStore::new()).with_history(false);
        self.engines[id.index()].set_batching(self.batching);
        // A rebuilt engine must not reuse its predecessor's batch
        // identities (surviving peers deduplicate them forever).
        let epoch = self.resets.entry(id).or_insert(0);
        *epoch += 1;
        let floor = *epoch * ReplicaEngine::<P, KvStore>::BATCH_EPOCH;
        self.engines[id.index()].set_batch_seq_floor(floor);
        self.engines[id.index()].set_blocked(was_blocked);
        let now = self.now;
        let mut effects = std::mem::take(&mut self.scratch);
        self.engines[id.index()].handle(EngineEvent::Start, now, &mut effects);
        self.absorb(id, &mut effects);
        self.scratch = effects;
    }

    /// Blocks a node: it stops processing messages and timers (a slow
    /// core). Messages addressed to it queue up.
    pub fn block(&mut self, id: NodeId) {
        self.engines[id.index()].set_blocked(true);
    }

    /// Unblocks a node; queued input becomes deliverable again.
    pub fn unblock(&mut self, id: NodeId) {
        self.engines[id.index()].set_blocked(false);
    }

    /// Whether `id` is currently blocked.
    pub fn is_blocked(&self, id: NodeId) -> bool {
        self.engines[id.index()].is_blocked()
    }

    /// Submits a client request to `target`.
    pub fn client_request(&mut self, target: NodeId, client: NodeId, req_id: u64, op: Op) {
        let now = self.now;
        let mut effects = std::mem::take(&mut self.scratch);
        self.engines[target.index()].handle(
            EngineEvent::ClientRequest { client, req_id, op },
            now,
            &mut effects,
        );
        self.absorb(target, &mut effects);
        self.scratch = effects;
    }

    /// Serves a relaxed read of `key` at node `id` through the engine's
    /// §7.5 local-read fast path: `Some(value)` if the protocol allows a
    /// local read right now, `None` if the read must wait (2PC lock
    /// window) or go through consensus.
    pub fn local_read(&self, id: NodeId, key: u64) -> Option<Option<u64>> {
        self.engines[id.index()].local_read(key)
    }

    /// Links `(from, to)` that currently hold at least one deliverable
    /// message (destination not blocked), in deterministic order.
    pub fn deliverable_links(&self) -> Vec<(NodeId, NodeId)> {
        self.links
            .iter()
            .filter(|((_, to), q)| !q.is_empty() && !self.is_blocked(*to))
            .map(|(&l, _)| l)
            .collect()
    }

    /// Delivers the head-of-line message on `(from, to)`. Returns `false`
    /// if there was none or the destination is blocked.
    pub fn deliver_one(&mut self, from: NodeId, to: NodeId) -> bool {
        if self.is_blocked(to) {
            return false;
        }
        let Some(q) = self.links.get_mut(&(from, to)) else {
            return false;
        };
        let Some(msg) = q.pop_front() else {
            return false;
        };
        self.delivered += 1;
        let now = self.now;
        let mut effects = std::mem::take(&mut self.scratch);
        self.engines[to.index()].handle(EngineEvent::Message { from, msg }, now, &mut effects);
        self.absorb(to, &mut effects);
        self.scratch = effects;
        true
    }

    /// Drops the head-of-line message on `(from, to)` without delivering
    /// it. The paper assumes reliable links, so protocol *safety* tests may
    /// use this only to emulate a message that is still in flight forever
    /// behind a blocked core.
    pub fn drop_one(&mut self, from: NodeId, to: NodeId) -> bool {
        self.links
            .get_mut(&(from, to))
            .and_then(|q| q.pop_front())
            .is_some()
    }

    /// Delivers messages in deterministic (link-ordered, FIFO) rounds until
    /// no deliverable message remains. Panics if `limit` deliveries are
    /// exceeded (a livelock guard for tests).
    ///
    /// # Panics
    ///
    /// Panics after `100_000` deliveries.
    pub fn run_to_quiescence(&mut self) {
        self.run_to_quiescence_limit(100_000);
    }

    /// Same as [`run_to_quiescence`](Self::run_to_quiescence) with an
    /// explicit delivery budget.
    ///
    /// # Panics
    ///
    /// Panics if the budget is exhausted.
    pub fn run_to_quiescence_limit(&mut self, limit: u64) {
        let mut budget = limit;
        loop {
            let links = self.deliverable_links();
            if links.is_empty() {
                return;
            }
            for (from, to) in links {
                while self.deliver_one(from, to) {
                    budget = budget.checked_sub(1).unwrap_or_else(|| {
                        panic!("run_to_quiescence exceeded {limit} deliveries (livelock?)")
                    });
                }
            }
        }
    }

    /// Advances virtual time by `delta`, firing every due timer of every
    /// unblocked node (in node order), then returns. Does not deliver
    /// messages.
    pub fn advance(&mut self, delta: Nanos) {
        self.now += delta;
        let now = self.now;
        for i in 0..self.engines.len() {
            let mut effects = std::mem::take(&mut self.scratch);
            self.engines[i].fire_due(now, &mut effects);
            self.absorb(NodeId(i as u16), &mut effects);
            self.scratch = effects;
        }
    }

    /// Convenience: `advance` then `run_to_quiescence`, repeated `rounds`
    /// times — lets timer-driven recovery logic make progress.
    pub fn advance_and_settle(&mut self, delta: Nanos, rounds: usize) {
        for _ in 0..rounds {
            self.advance(delta);
            self.run_to_quiescence();
        }
    }

    /// Commits recorded at `node` (instance → command). Survives
    /// [`Self::reset_node`]: the record belongs to the harness oracle,
    /// not to the (rebootable) node.
    pub fn commits(&self, node: NodeId) -> &BTreeMap<Instance, Command> {
        static EMPTY: BTreeMap<Instance, Command> = BTreeMap::new();
        self.commits.get(&node).unwrap_or(&EMPTY)
    }

    /// All recorded client replies, in emission order.
    pub fn replies(&self) -> &[ReplyRecord] {
        &self.replies
    }

    /// Asserts the Appendix B *consistency* property across all nodes: no
    /// two nodes have learned different commands for the same instance.
    ///
    /// # Panics
    ///
    /// Panics on violation, naming the instance.
    pub fn assert_consistent(&self) {
        let mut chosen: BTreeMap<Instance, (NodeId, &Command)> = BTreeMap::new();
        for (&node, commits) in &self.commits {
            for (&inst, cmd) in commits {
                match chosen.get(&inst) {
                    None => {
                        chosen.insert(inst, (node, cmd));
                    }
                    Some(&(other, prior)) => assert_eq!(
                        prior, cmd,
                        "instance {inst}: {other} learned {prior:?} but {node} learned {cmd:?}"
                    ),
                }
            }
        }
    }

    /// Routes one engine's effects: sends into per-link FIFOs, replies
    /// and commits into the harness-level records (which outlive node
    /// resets, unlike the engines they came from).
    fn absorb(&mut self, me: NodeId, effects: &mut Effects<P>) {
        for effect in effects.drain(..) {
            match effect {
                EngineEffect::SendTo { to, msg } => {
                    self.links.entry((me, to)).or_default().push_back(msg);
                }
                EngineEffect::ReplyTo {
                    client,
                    req_id,
                    instance,
                    ..
                } => self.replies.push(ReplyRecord {
                    client,
                    req_id,
                    instance,
                    from: me,
                }),
                EngineEffect::Committed { instance, cmd } => {
                    let prior = self
                        .commits
                        .entry(me)
                        .or_default()
                        .insert(instance, cmd.clone());
                    if let Some(prior) = prior {
                        assert_eq!(
                            prior, cmd,
                            "{me} re-learned instance {instance} with a different command"
                        );
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::outbox::{Outbox, Timer};

    /// A trivial echo protocol for exercising the harness itself.
    struct Echo {
        me: NodeId,
        peers: Vec<NodeId>,
        seen: usize,
    }

    impl Protocol for Echo {
        type Msg = u64;

        fn node_id(&self) -> NodeId {
            self.me
        }

        fn on_start(&mut self, _now: Nanos, out: &mut Outbox<u64>) {
            out.set_timer(Timer::Tick, 1_000);
        }

        fn on_message(&mut self, _from: NodeId, msg: u64, _now: Nanos, out: &mut Outbox<u64>) {
            self.seen += 1;
            if msg > 0 {
                for &p in &self.peers {
                    if p != self.me {
                        out.send(p, msg - 1);
                    }
                }
            }
        }

        fn on_timer(&mut self, _t: Timer, _now: Nanos, _out: &mut Outbox<u64>) {
            self.seen += 100;
        }

        fn on_client_request(
            &mut self,
            _client: NodeId,
            _req: u64,
            _op: Op,
            _now: Nanos,
            out: &mut Outbox<u64>,
        ) {
            for &p in &self.peers {
                if p != self.me {
                    out.send(p, 1);
                }
            }
        }

        fn is_leader(&self) -> bool {
            false
        }

        fn leader_hint(&self) -> Option<NodeId> {
            None
        }
    }

    fn echo_net(n: u16) -> TestNet<Echo> {
        TestNet::new(n, |members, me| Echo {
            me,
            peers: members.to_vec(),
            seen: 0,
        })
    }

    #[test]
    fn messages_flow_and_quiesce() {
        let mut net = echo_net(3);
        net.client_request(NodeId(0), NodeId(9), 1, Op::Noop);
        net.run_to_quiescence();
        // n0 sent 1 to n1 and n2; each echoed 0 to the two others.
        assert_eq!(net.delivered(), 2 + 4);
        assert_eq!(net.node(NodeId(1)).seen, 2);
    }

    #[test]
    fn blocked_node_queues_input() {
        let mut net = echo_net(3);
        net.block(NodeId(1));
        net.client_request(NodeId(0), NodeId(9), 1, Op::Noop);
        net.run_to_quiescence();
        assert_eq!(net.node(NodeId(1)).seen, 0);
        net.unblock(NodeId(1));
        net.run_to_quiescence();
        assert!(net.node(NodeId(1)).seen > 0);
    }

    #[test]
    fn timers_fire_on_advance() {
        let mut net = echo_net(2);
        net.advance(999);
        assert_eq!(net.node(NodeId(0)).seen, 0);
        net.advance(1);
        assert_eq!(net.node(NodeId(0)).seen, 100);
        // One-shot: does not refire.
        net.advance(10_000);
        assert_eq!(net.node(NodeId(0)).seen, 100);
    }

    #[test]
    fn blocked_node_timers_do_not_fire() {
        let mut net = echo_net(2);
        net.block(NodeId(0));
        net.advance(10_000);
        assert_eq!(net.node(NodeId(0)).seen, 0);
        net.unblock(NodeId(0));
        net.advance(0);
        assert_eq!(net.node(NodeId(0)).seen, 100);
    }

    #[test]
    fn drop_one_discards_head() {
        let mut net = echo_net(2);
        net.client_request(NodeId(0), NodeId(9), 1, Op::Noop);
        assert!(net.drop_one(NodeId(0), NodeId(1)));
        net.run_to_quiescence();
        assert_eq!(net.node(NodeId(1)).seen, 0);
    }

    #[test]
    fn state_is_applied_per_node() {
        use crate::twopc::TwoPcNode;
        use crate::ClusterConfig;
        let mut net = TestNet::new(3, |m, me| {
            TwoPcNode::new(ClusterConfig::new(m.to_vec(), me))
        });
        net.client_request(NodeId(0), NodeId(9), 1, Op::Put { key: 4, value: 44 });
        net.run_to_quiescence();
        for n in 0..3u16 {
            assert_eq!(net.state(NodeId(n)).get(4), Some(44));
        }
    }
}
