//! A small key/value store used as the replicated state machine in the
//! examples and the read-workload experiment (Fig 10).
//!
//! The paper motivates software-managed replication for "specific
//! application state or configuration information \[that\] need to be shared
//! by multiple cores" (§1); a KV map is the canonical such state.

use std::collections::BTreeMap;

use crate::rsm::{StateMachine, TxnStats};
use crate::txn::TxnStatus;
use crate::types::{NodeId, Op, TxnId, TxnVote, TxnWrites};

/// Capacity of the per-shard lock-wait queue: a conflicting prepare
/// beyond this parks nowhere and is turned away with [`TxnVote::Busy`].
/// The bound keeps a contention storm from accumulating unbounded parked
/// state in the replicated store (every entry pins its write set until
/// granted or finished).
pub const MAX_PARKED: usize = 32;

/// How many finished-transaction outcomes the store retains per
/// coordinator before GC'ing the oldest. A coordinator runs its
/// transactions sequentially (seq n+1 starts only after n's outcome),
/// so by the time seq n finishes, no correct participant or recovery
/// can still be asking about seqs ≤ n − `FINISHED_WINDOW`; those
/// entries only served to keep stale duplicates idempotent, which the
/// per-coordinator floor now does in O(1) space.
pub const FINISHED_WINDOW: u64 = 64;

/// Deterministic in-memory key/value store.
///
/// Besides plain puts and gets, the store is a 2PC **participant** for
/// cross-shard transactions (see [`crate::txn`]): an applied
/// [`Op::TxnPrepare`] stages the fragment and locks its keys (the vote
/// is the apply output, so it is as durable as the log that carried the
/// command), and the outcome command atomically applies or discards the
/// staged writes. A prepare that conflicts with a held lock does not
/// vote no outright: when wait-die allows (the requester is older than
/// every conflicting holder) it **parks** in a bounded lock-wait queue
/// ([`TxnVote::Wait`]) and is granted, in arrival order, as outcomes
/// release locks; otherwise it is turned away retryably
/// ([`TxnVote::Busy`]). Locks gate only the §7.5 local-read fast path —
/// log-ordered writes to a locked key simply serialize before the staged
/// fragment.
///
/// # Examples
///
/// ```
/// use onepaxos::kv::KvStore;
/// use onepaxos::rsm::StateMachine;
/// use onepaxos::Op;
///
/// let mut kv = KvStore::new();
/// assert_eq!(kv.apply(Op::Put { key: 1, value: 10 }), None);
/// assert_eq!(kv.apply(Op::Get { key: 1 }), Some(10));
/// assert_eq!(kv.get(1), Some(10));
/// ```
#[derive(Clone, Debug, Default)]
pub struct KvStore {
    map: BTreeMap<u64, u64>,
    writes: u64,
    reads: u64,
    /// Prepared transactions: fragment staged, keys locked, outcome
    /// pending.
    staged: BTreeMap<TxnId, TxnWrites>,
    /// Key → the prepared transaction holding its lock.
    locks: BTreeMap<u64, TxnId>,
    /// The lock-wait queue, in arrival order: prepares that conflicted
    /// with a holder but were **older** than every conflicting holder
    /// (wait-die), parked here holding *no* locks and staging nothing
    /// until [`Self::finish`]'s grant scan finds their keys free.
    /// Bounded by [`MAX_PARKED`]. Because parked entries hold nothing,
    /// the only wait edges in the system point from a parked (older)
    /// transaction to lock-holding (younger) ones — a cycle would need
    /// an old→young and a young→old edge under one total order, so
    /// deadlock is impossible by construction.
    parked: Vec<(TxnId, TxnWrites)>,
    /// Finished transactions (`true` = committed), so late or duplicate
    /// phase commands stay idempotent and recovery can query the
    /// outcome. Bounded: outcomes older than [`FINISHED_WINDOW`] seqs
    /// behind their coordinator's newest are GC'd, with
    /// [`Self::finished_floor`] preserving the "a finished transaction
    /// can never re-lock" invariant for the dropped prefix.
    finished: BTreeMap<TxnId, bool>,
    /// Per-coordinator GC floor over `finished`: every seq **below**
    /// the recorded value is known finished but its outcome has been
    /// dropped. Prepares below the floor are refused with a hard no
    /// (they can never re-lock); outcome replays below it echo without
    /// re-recording. O(coordinators), never GC'd itself.
    finished_floor: BTreeMap<NodeId, u64>,
    /// Prepare-traffic counters (see [`TxnStats`]).
    txn_stats: TxnStats,
}

/// Serializable image of a [`KvStore`] (see [`StateMachine::Snapshot`]):
/// the map **plus** the in-flight 2PC participant state — staged
/// fragments (locks are rebuilt from them on install), parked waiters,
/// the retained finished-outcome window and its GC floors — so a replica
/// that catches up by snapshot can still vote, grant and recover
/// transactions whose lock window straddles the snapshot boundary.
/// Observability counters ride along so an installed replica reports
/// sensible totals; `TxnStats` stays local (it meters this node's own
/// prepare traffic, not replicated state).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct KvSnapshot {
    /// The key/value entries, in key order.
    pub map: Vec<(u64, u64)>,
    /// Applied-write counter at the watermark.
    pub writes: u64,
    /// Applied-read counter at the watermark.
    pub reads: u64,
    /// Prepared transactions: fragment staged, outcome pending.
    pub staged: Vec<(TxnId, TxnWrites)>,
    /// The lock-wait queue, in arrival order.
    pub parked: Vec<(TxnId, TxnWrites)>,
    /// Retained finished-transaction outcomes (`true` = committed).
    pub finished: Vec<(TxnId, bool)>,
    /// Per-coordinator finished-outcome GC floors (exclusive).
    pub finished_floor: Vec<(NodeId, u64)>,
}

impl KvStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        KvStore::default()
    }

    /// Reads `key` without counting it as an applied operation (used for
    /// local reads in 2PC-Joint, §7.5, and for assertions in tests).
    pub fn get(&self, key: u64) -> Option<u64> {
        self.map.get(&key).copied()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Number of applied write operations.
    pub fn writes(&self) -> u64 {
        self.writes
    }

    /// Number of applied read operations.
    pub fn reads(&self) -> u64 {
        self.reads
    }

    /// Iterates the `(key, value)` entries in key order. Sharded
    /// deployments partition the key space, so merging per-shard replicas
    /// (for oracles and property tests) is a disjoint union of these.
    pub fn entries(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.map.iter().map(|(&k, &v)| (k, v))
    }

    /// Whether `key` is locked by a prepared (outcome-pending)
    /// transaction — the replica is inside that transaction's lock
    /// window for this key, so the §7.5 local-read fast path must wait
    /// (see [`crate::engine::LocalRead::blocks_local_read`]).
    pub fn txn_locked(&self, key: u64) -> bool {
        self.locks.contains_key(&key)
    }

    /// Number of keys currently locked by prepared transactions (test
    /// oracle: must drain to zero once every transaction has an
    /// outcome).
    pub fn txn_locks(&self) -> usize {
        self.locks.len()
    }

    /// This replica's **locally-applied** view of transaction `txn`
    /// (see [`TxnStatus`]) — a test oracle. A replica lagging its
    /// shard's decided log under-reports (e.g. `Unknown` for a
    /// committed transaction), so coordinator recovery must not read
    /// statuses here: it uses the agreed probe [`Op::TxnStatus`], which
    /// answers through this same method but only *after* the log has
    /// ordered the probe behind every earlier decision (see
    /// [`crate::txn::recover_outcome`]'s freshness contract).
    ///
    /// A transaction whose outcome was GC'd (below the per-coordinator
    /// [`FINISHED_WINDOW`] floor) reports `Unknown`: its coordinator ran
    /// ≥ `FINISHED_WINDOW` later transactions since, so no recovery can
    /// still be pending for it — and even a stale probe's abort decision
    /// is harmless, because prepares below the floor can never re-lock.
    pub fn txn_status(&self, txn: TxnId) -> TxnStatus {
        if self.staged.contains_key(&txn) {
            TxnStatus::Prepared
        } else {
            match self.finished.get(&txn) {
                Some(true) => TxnStatus::Committed,
                Some(false) => TxnStatus::Aborted,
                None => TxnStatus::Unknown,
            }
        }
    }

    /// Votes on `txn`'s fragment: stages it and locks its keys on yes
    /// ([`TxnVote::Commit`]); on a lock conflict, parks it in the
    /// bounded lock-wait queue when wait-die allows ([`TxnVote::Wait`] —
    /// the requester is older than every conflicting holder) and turns
    /// it away retryably otherwise ([`TxnVote::Busy`]). A hard no
    /// ([`TxnVote::Abort`]) only ever echoes an already-recorded abort.
    fn prepare(&mut self, txn: TxnId, writes: &TxnWrites) -> u64 {
        // Below the GC floor the transaction is certainly finished but
        // its outcome is gone: still never re-lock — answer a hard no,
        // which takes no locks and stages nothing. Only a hopelessly
        // stale duplicate (≥ FINISHED_WINDOW transactions behind its
        // own coordinator) can land here.
        if txn.seq < self.floor_of(txn.coordinator) {
            return TxnVote::Abort.as_output();
        }
        // A finished transaction can never re-enter its lock window: a
        // late or re-decided prepare echoes the recorded outcome.
        if let Some(&committed) = self.finished.get(&txn) {
            return if committed {
                TxnVote::Commit.as_output()
            } else {
                TxnVote::Abort.as_output()
            };
        }
        self.txn_stats.prepares += 1;
        if self.staged.contains_key(&txn) {
            // Duplicate prepare (or a re-probe of a since-granted parked
            // one): already locked by us.
            return TxnVote::Commit.as_output();
        }
        if self.parked.iter().any(|&(t, _)| t == txn) {
            // A re-probe of a still-parked transaction: keep waiting.
            return TxnVote::Wait.as_output();
        }
        let conflicted = writes.iter().any(|&(key, _)| self.locks.contains_key(&key));
        if !conflicted {
            for &(key, _) in writes.iter() {
                self.locks.insert(key, txn);
            }
            self.staged.insert(txn, writes.clone());
            return TxnVote::Commit.as_output();
        }
        // Wait-die: only a requester older than EVERY conflicting holder
        // may park (wait edges then all point old→young, so no cycle);
        // a younger requester must die — retryably, from the
        // coordinator's side — rather than wait.
        let older_than_holders = writes
            .iter()
            .all(|&(key, _)| self.locks.get(&key).is_none_or(|&holder| txn < holder));
        if older_than_holders && self.parked.len() < MAX_PARKED {
            self.parked.push((txn, writes.clone()));
            self.txn_stats.lock_waits += 1;
            self.txn_stats.wait_depth = self.txn_stats.wait_depth.max(self.parked.len());
            TxnVote::Wait.as_output()
        } else {
            self.txn_stats.busy_rejects += 1;
            TxnVote::Busy.as_output()
        }
    }

    /// Applies `txn`'s outcome; both directions are idempotent, and the
    /// first outcome to arrive wins forever. Releasing locks re-scans
    /// the lock-wait queue and grants (stages + locks) every parked
    /// prepare whose keys are now free, in arrival order — the granted
    /// coordinator collects its yes vote on the next re-probe.
    fn finish(&mut self, txn: TxnId, commit: bool) -> u64 {
        // A replay below the GC floor: the outcome was recorded and
        // dropped. Echo the requested direction (the coordinator only
        // ever resends the outcome it decided) without resurrecting a
        // map entry below the floor.
        if txn.seq < self.floor_of(txn.coordinator) {
            return if commit {
                TxnVote::Commit.as_output()
            } else {
                TxnVote::Abort.as_output()
            };
        }
        // An outcome reaching a transaction still parked (its
        // coordinator gave up waiting, or crashed and was recovered to
        // abort) must purge the queue entry: a later grant would re-lock
        // keys for a transaction whose fate is already sealed.
        self.parked.retain(|&(t, _)| t != txn);
        if let Some(writes) = self.staged.remove(&txn) {
            for &(key, value) in writes.iter() {
                self.locks.remove(&key);
                if commit {
                    self.writes += 1;
                    self.map.insert(key, value);
                }
            }
            self.grant_parked();
        }
        let recorded = *self.finished.entry(txn).or_insert(commit);
        self.gc_finished(txn.coordinator);
        if recorded {
            TxnVote::Commit.as_output()
        } else {
            TxnVote::Abort.as_output()
        }
    }

    /// The exclusive finished-outcome GC floor for `coordinator`: seqs
    /// below it are finished with their outcome dropped.
    fn floor_of(&self, coordinator: NodeId) -> u64 {
        self.finished_floor.get(&coordinator).copied().unwrap_or(0)
    }

    /// Advances `coordinator`'s GC floor so at most [`FINISHED_WINDOW`]
    /// outcomes stay recorded for it, and drops the entries below. The
    /// floor chases the coordinator's *newest* finished seq, so one
    /// sequential coordinator holds a sliding window regardless of how
    /// many transactions it has ever run.
    fn gc_finished(&mut self, coordinator: NodeId) {
        let newest = self
            .finished
            .range(TxnId::new(coordinator, 0)..=TxnId::new(coordinator, u64::MAX))
            .next_back()
            .map(|(t, _)| t.seq);
        let Some(newest) = newest else { return };
        let floor = (newest + 1).saturating_sub(FINISHED_WINDOW);
        if floor <= self.floor_of(coordinator) {
            return;
        }
        self.finished_floor.insert(coordinator, floor);
        let stale: Vec<TxnId> = self
            .finished
            .range(TxnId::new(coordinator, 0)..TxnId::new(coordinator, floor))
            .map(|(&t, _)| t)
            .collect();
        for t in stale {
            self.finished.remove(&t);
        }
    }

    /// Grants every parked prepare whose keys are all free, oldest
    /// arrival first, repeating until a full pass grants nothing (one
    /// grant can never free keys for another — grants only *take* locks
    /// — but the loop keeps the policy obviously complete).
    fn grant_parked(&mut self) {
        loop {
            let mut granted = false;
            let mut i = 0;
            while i < self.parked.len() {
                let free = self.parked[i]
                    .1
                    .iter()
                    .all(|&(key, _)| !self.locks.contains_key(&key));
                if free {
                    let (txn, writes) = self.parked.remove(i);
                    for &(key, _) in writes.iter() {
                        self.locks.insert(key, txn);
                    }
                    self.staged.insert(txn, writes);
                    granted = true;
                } else {
                    i += 1;
                }
            }
            if !granted {
                break;
            }
        }
    }

    /// Number of prepares currently parked in the lock-wait queue (test
    /// oracle: must drain to zero once every transaction has an
    /// outcome).
    pub fn txn_parked(&self) -> usize {
        self.parked.len()
    }

    /// Number of retained finished-transaction outcomes (RSS proxy:
    /// bounded by coordinators × [`FINISHED_WINDOW`] under GC).
    pub fn finished_len(&self) -> usize {
        self.finished.len()
    }

    /// A digest of the full contents, for cheap cross-replica equality
    /// checks in tests (FNV-1a over the sorted entries).
    pub fn digest(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for (&k, &v) in &self.map {
            for w in [k, v] {
                for b in w.to_le_bytes() {
                    h ^= b as u64;
                    h = h.wrapping_mul(0x100_0000_01b3);
                }
            }
        }
        h
    }
}

impl StateMachine for KvStore {
    /// `Put` returns the previous value; `Get` returns the current value;
    /// `Noop` returns `None`. A `TxnPrepare` returns its vote
    /// ([`TxnVote::as_output`]); outcome phases return the recorded
    /// outcome (`TxnVote::Commit`/`TxnVote::Abort`); `MultiPut` returns
    /// the number of keys written; `TxnStatus` returns the encoded
    /// status ([`TxnStatus::as_output`]).
    type Output = Option<u64>;

    type Snapshot = KvSnapshot;

    fn txn_stats(&self) -> TxnStats {
        TxnStats {
            finished_len: self.finished.len(),
            ..self.txn_stats
        }
    }

    fn snapshot(&self) -> KvSnapshot {
        KvSnapshot {
            map: self.map.iter().map(|(&k, &v)| (k, v)).collect(),
            writes: self.writes,
            reads: self.reads,
            staged: self.staged.iter().map(|(&t, w)| (t, w.clone())).collect(),
            parked: self.parked.clone(),
            finished: self.finished.iter().map(|(&t, &c)| (t, c)).collect(),
            finished_floor: self.finished_floor.iter().map(|(&c, &f)| (c, f)).collect(),
        }
    }

    fn install(&mut self, snap: KvSnapshot) {
        self.map = snap.map.into_iter().collect();
        self.writes = snap.writes;
        self.reads = snap.reads;
        self.staged = snap.staged.into_iter().collect();
        // Locks are exactly the keys of staged fragments — rebuild
        // rather than ship them.
        self.locks = self
            .staged
            .iter()
            .flat_map(|(&txn, writes)| writes.iter().map(move |&(key, _)| (key, txn)))
            .collect();
        self.parked = snap.parked;
        self.finished = snap.finished.into_iter().collect();
        self.finished_floor = snap.finished_floor.into_iter().collect();
    }

    fn apply(&mut self, op: Op) -> Self::Output {
        match op {
            Op::Noop => None,
            Op::Put { key, value } => {
                self.writes += 1;
                self.map.insert(key, value)
            }
            Op::Get { key } => {
                self.reads += 1;
                self.get(key)
            }
            Op::MultiPut { writes } => {
                // The single-shard transaction short-circuit: one
                // command, all writes — atomic by construction, since a
                // state-machine step is indivisible to every read path.
                for &(key, value) in writes.iter() {
                    self.writes += 1;
                    self.map.insert(key, value);
                }
                Some(writes.len() as u64)
            }
            Op::TxnPrepare { txn, writes } => Some(self.prepare(txn, &writes)),
            Op::TxnCommit { txn, .. } => Some(self.finish(txn, true)),
            Op::TxnAbort { txn, .. } => Some(self.finish(txn, false)),
            Op::TxnStatus { txn, .. } => {
                // The agreed status probe: by the time it applies, this
                // replica has applied the shard's full decided prefix,
                // so the local view it reports is fresh by construction.
                self.reads += 1;
                Some(self.txn_status(txn).as_output())
            }
            // Truncation is log bookkeeping: the Applier drops its
            // retained prefix when this applies; the store itself has
            // nothing to do.
            Op::Truncate { .. } => None,
            // The RSM layer unpacks batches into per-command applications
            // before they reach any state machine.
            Op::Batch(_) => unreachable!("Op::Batch must be unpacked by the Applier"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_returns_previous_value() {
        let mut kv = KvStore::new();
        assert_eq!(kv.apply(Op::Put { key: 1, value: 1 }), None);
        assert_eq!(kv.apply(Op::Put { key: 1, value: 2 }), Some(1));
        assert_eq!(kv.len(), 1);
    }

    #[test]
    fn counters_track_op_kinds() {
        let mut kv = KvStore::new();
        kv.apply(Op::Put { key: 1, value: 1 });
        kv.apply(Op::Get { key: 1 });
        kv.apply(Op::Noop);
        assert_eq!(kv.writes(), 1);
        assert_eq!(kv.reads(), 1);
    }

    #[test]
    fn digest_detects_divergence() {
        let mut a = KvStore::new();
        let mut b = KvStore::new();
        a.apply(Op::Put { key: 1, value: 1 });
        b.apply(Op::Put { key: 1, value: 1 });
        assert_eq!(a.digest(), b.digest());
        b.apply(Op::Put { key: 2, value: 2 });
        assert_ne!(a.digest(), b.digest());
    }

    #[test]
    fn prepare_stages_and_locks_without_touching_the_map() {
        use crate::types::NodeId;
        let mut kv = KvStore::new();
        kv.apply(Op::Put { key: 1, value: 10 });
        let txn = TxnId::new(NodeId(9), 1);
        let writes: TxnWrites = vec![(1, 11), (2, 22)].into();
        assert_eq!(
            kv.apply(Op::TxnPrepare { txn, writes }),
            Some(TxnVote::Commit.as_output())
        );
        // Staged, locked, but not visible.
        assert_eq!(kv.get(1), Some(10));
        assert_eq!(kv.get(2), None);
        assert!(kv.txn_locked(1) && kv.txn_locked(2) && !kv.txn_locked(3));
        assert_eq!(kv.txn_locks(), 2);
        assert_eq!(kv.txn_status(txn), TxnStatus::Prepared);
        // Commit applies atomically and releases the locks.
        assert_eq!(
            kv.apply(Op::TxnCommit { txn, key: 1 }),
            Some(TxnVote::Commit.as_output())
        );
        assert_eq!(kv.get(1), Some(11));
        assert_eq!(kv.get(2), Some(22));
        assert_eq!(kv.txn_locks(), 0);
        assert_eq!(kv.txn_status(txn), TxnStatus::Committed);
    }

    #[test]
    fn conflicting_younger_prepare_is_turned_away_and_takes_no_locks() {
        use crate::types::NodeId;
        let mut kv = KvStore::new();
        let first = TxnId::new(NodeId(9), 1);
        let second = TxnId::new(NodeId(10), 1); // younger: NodeId(10) > NodeId(9)
        kv.apply(Op::TxnPrepare {
            txn: first,
            writes: vec![(5, 50)].into(),
        });
        // Overlapping fragment from a younger transaction: wait-die says
        // die (retryably), and crucially no partial locks land on the
        // non-conflicting key.
        assert_eq!(
            kv.apply(Op::TxnPrepare {
                txn: second,
                writes: vec![(5, 99), (6, 60)].into(),
            }),
            Some(TxnVote::Busy.as_output())
        );
        assert!(!kv.txn_locked(6), "losing prepare must not lock anything");
        assert_eq!(kv.txn_parked(), 0, "a Busy reject parks nothing");
        assert_eq!(kv.txn_status(second), TxnStatus::Unknown);
        // Once the holder commits, a retry of the same prepare succeeds.
        kv.apply(Op::TxnCommit { txn: first, key: 5 });
        assert_eq!(
            kv.apply(Op::TxnPrepare {
                txn: second,
                writes: vec![(5, 99), (6, 60)].into(),
            }),
            Some(TxnVote::Commit.as_output())
        );
    }

    #[test]
    fn conflicting_older_prepare_parks_and_is_granted_on_release() {
        use crate::types::NodeId;
        let mut kv = KvStore::new();
        let holder = TxnId::new(NodeId(9), 1);
        let older = TxnId::new(NodeId(3), 1); // older: NodeId(3) < NodeId(9)
        kv.apply(Op::TxnPrepare {
            txn: holder,
            writes: vec![(5, 50)].into(),
        });
        // The older requester parks (wait-die): no vote yet, no locks
        // taken, nothing staged — recovery would see Unknown and may
        // safely abort it.
        assert_eq!(
            kv.apply(Op::TxnPrepare {
                txn: older,
                writes: vec![(5, 99), (6, 60)].into(),
            }),
            Some(TxnVote::Wait.as_output())
        );
        assert_eq!(kv.txn_parked(), 1);
        assert!(!kv.txn_locked(6), "parked prepares hold no locks");
        assert_eq!(kv.txn_status(older), TxnStatus::Unknown);
        // A re-probe while still parked keeps waiting.
        assert_eq!(
            kv.apply(Op::TxnPrepare {
                txn: older,
                writes: vec![(5, 99), (6, 60)].into(),
            }),
            Some(TxnVote::Wait.as_output())
        );
        // The holder's outcome releases the lock and grants the parked
        // prepare: staged + locked, and the next re-probe collects yes.
        kv.apply(Op::TxnCommit {
            txn: holder,
            key: 5,
        });
        assert_eq!(kv.txn_parked(), 0);
        assert!(kv.txn_locked(5) && kv.txn_locked(6));
        assert_eq!(kv.txn_status(older), TxnStatus::Prepared);
        assert_eq!(
            kv.apply(Op::TxnPrepare {
                txn: older,
                writes: vec![(5, 99), (6, 60)].into(),
            }),
            Some(TxnVote::Commit.as_output())
        );
        // Its commit applies the fragment over the holder's value.
        kv.apply(Op::TxnCommit { txn: older, key: 5 });
        assert_eq!(kv.get(5), Some(99));
        assert_eq!(kv.get(6), Some(60));
        assert_eq!(kv.txn_locks(), 0);
    }

    #[test]
    fn outcome_for_a_parked_transaction_purges_the_queue_entry() {
        use crate::types::NodeId;
        let mut kv = KvStore::new();
        let holder = TxnId::new(NodeId(9), 1);
        let parked = TxnId::new(NodeId(3), 1);
        kv.apply(Op::TxnPrepare {
            txn: holder,
            writes: vec![(5, 50)].into(),
        });
        kv.apply(Op::TxnPrepare {
            txn: parked,
            writes: vec![(5, 99)].into(),
        });
        assert_eq!(kv.txn_parked(), 1);
        // The parked transaction's coordinator gives up (or dies and is
        // recovered to abort): the abort must purge the queue entry so a
        // later release cannot re-lock keys for a dead transaction.
        assert_eq!(
            kv.apply(Op::TxnAbort {
                txn: parked,
                key: 5
            }),
            Some(TxnVote::Abort.as_output())
        );
        assert_eq!(kv.txn_parked(), 0);
        kv.apply(Op::TxnCommit {
            txn: holder,
            key: 5,
        });
        assert_eq!(kv.txn_locks(), 0, "no zombie grant after the purge");
        assert_eq!(kv.txn_status(parked), TxnStatus::Aborted);
        // And a late re-probe of the aborted transaction cannot lock.
        assert_eq!(
            kv.apply(Op::TxnPrepare {
                txn: parked,
                writes: vec![(5, 99)].into(),
            }),
            Some(TxnVote::Abort.as_output())
        );
        assert_eq!(kv.txn_locks(), 0);
    }

    #[test]
    fn abort_discards_the_staged_fragment_and_outcomes_are_idempotent() {
        use crate::types::NodeId;
        let mut kv = KvStore::new();
        let txn = TxnId::new(NodeId(9), 1);
        kv.apply(Op::TxnPrepare {
            txn,
            writes: vec![(7, 70)].into(),
        });
        assert_eq!(
            kv.apply(Op::TxnAbort { txn, key: 7 }),
            Some(TxnVote::Abort.as_output())
        );
        assert_eq!(kv.get(7), None);
        assert_eq!(kv.txn_locks(), 0);
        assert_eq!(kv.txn_status(txn), TxnStatus::Aborted);
        // A duplicate abort, and even a late commit, echo the recorded
        // outcome instead of resurrecting the transaction.
        assert_eq!(
            kv.apply(Op::TxnAbort { txn, key: 7 }),
            Some(TxnVote::Abort.as_output())
        );
        assert_eq!(
            kv.apply(Op::TxnCommit { txn, key: 7 }),
            Some(TxnVote::Abort.as_output())
        );
        assert_eq!(kv.get(7), None);
        // A late re-prepare of the dead transaction cannot lock.
        assert_eq!(
            kv.apply(Op::TxnPrepare {
                txn,
                writes: vec![(7, 70)].into(),
            }),
            Some(TxnVote::Abort.as_output())
        );
        assert_eq!(kv.txn_locks(), 0);
    }

    #[test]
    fn status_probe_reports_each_phase_without_mutating_state() {
        use crate::types::NodeId;
        let mut kv = KvStore::new();
        let txn = TxnId::new(NodeId(9), 1);
        let probe = Op::TxnStatus { txn, key: 1 };
        assert_eq!(
            kv.apply(probe.clone()),
            Some(TxnStatus::Unknown.as_output())
        );
        kv.apply(Op::TxnPrepare {
            txn,
            writes: vec![(1, 11)].into(),
        });
        assert_eq!(
            kv.apply(probe.clone()),
            Some(TxnStatus::Prepared.as_output())
        );
        assert_eq!(kv.txn_locks(), 1, "probing must not disturb the window");
        kv.apply(Op::TxnCommit { txn, key: 1 });
        assert_eq!(kv.apply(probe), Some(TxnStatus::Committed.as_output()));
        assert_eq!(kv.get(1), Some(11));
    }

    #[test]
    fn log_ordered_put_on_a_locked_key_serializes_before_the_fragment() {
        use crate::types::NodeId;
        let mut kv = KvStore::new();
        let txn = TxnId::new(NodeId(9), 1);
        kv.apply(Op::TxnPrepare {
            txn,
            writes: vec![(3, 30)].into(),
        });
        // The put lands (the log already ordered it)…
        kv.apply(Op::Put { key: 3, value: 5 });
        assert_eq!(kv.get(3), Some(5));
        // …and the committed fragment overwrites it: a valid serial
        // order (put before transaction).
        kv.apply(Op::TxnCommit { txn, key: 3 });
        assert_eq!(kv.get(3), Some(30));
    }

    #[test]
    fn multiput_applies_every_write_in_one_step() {
        let mut kv = KvStore::new();
        let out = kv.apply(Op::MultiPut {
            writes: vec![(1, 10), (2, 20), (1, 11)].into(),
        });
        assert_eq!(out, Some(3));
        assert_eq!(kv.get(1), Some(11), "in-order application");
        assert_eq!(kv.get(2), Some(20));
        assert_eq!(kv.writes(), 3);
        assert_eq!(kv.txn_locks(), 0, "no lock window for the short-circuit");
    }

    #[test]
    fn digest_is_order_independent_for_same_contents() {
        let mut a = KvStore::new();
        let mut b = KvStore::new();
        a.apply(Op::Put { key: 1, value: 10 });
        a.apply(Op::Put { key: 2, value: 20 });
        b.apply(Op::Put { key: 2, value: 20 });
        b.apply(Op::Put { key: 1, value: 10 });
        assert_eq!(a.digest(), b.digest());
    }
}
